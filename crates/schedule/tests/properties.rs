//! Randomized tests over the schedule machinery, driven by a deterministic
//! seed sweep: for arbitrary device counts, microbatch counts, pass-time
//! ratios and variants, generated schedules must validate, complete,
//! respect the §5.2 memory bounds and sustain steady-state throughput.

use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::generators;
use vp_schedule::pass::{PassKind, VocabVariant};

/// Minimal SplitMix64 — vp-schedule deliberately has no tensor dependency,
/// so the tests carry their own deterministic generator.
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Self {
        Mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn random_times(rng: &mut Mix) -> PassTimes {
    PassTimes {
        f: rng.f64_range(0.5, 2.0),
        b: rng.f64_range(1.0, 3.0),
        w: 0.0,
        s: rng.f64_range(0.02, 0.8),
        t: rng.f64_range(0.02, 0.8),
        input_f: 0.05,
        input_b: 0.05,
        comm: 0.01,
    }
}

fn random_variant(rng: &mut Mix) -> VocabVariant {
    [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2][rng.range(0, 3)]
}

/// Every generated vocabulary schedule validates, runs to completion,
/// contains exactly `m` of each pass per device, and its simulated
/// peak activation stays within `p − d + barriers` microbatches.
#[test]
fn vocab_schedules_are_valid_and_memory_bounded() {
    for seed in 0..32u64 {
        let mut rng = Mix::new(seed);
        let p = rng.range(2, 7);
        let m = rng.range(4, 24) as u32;
        let variant = random_variant(&mut rng);
        let times = random_times(&mut rng);
        let include_input = rng.bool();
        let schedule = generators::vocab_1f1b(p, m, variant, times, include_input);
        let graph = vp_schedule::deps::validate(&schedule).expect("schedule validates");
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run_with_graph(&schedule, &graph);
        for d in 0..p {
            assert_eq!(
                schedule.count_kind(d, PassKind::F),
                m as usize,
                "seed {seed}"
            );
            assert_eq!(
                schedule.count_kind(d, PassKind::B),
                m as usize,
                "seed {seed}"
            );
            assert_eq!(
                schedule.count_kind(d, PassKind::T),
                m as usize,
                "seed {seed}"
            );
            let cap = (p - d + variant.barriers()).min(m as usize);
            assert!(
                report.peak_resident_microbatches[d] <= cap,
                "seed {seed} device {d}: {} > {cap}",
                report.peak_resident_microbatches[d]
            );
        }
        // Sanity: the makespan at least covers one device's work.
        assert!(report.makespan >= report.busy[0] - 1e-9, "seed {seed}");
    }
}

/// Steady-state throughput: with enough microbatches, the makespan is
/// close to work + fill/drain for every variant and time ratio.
#[test]
fn vocab_schedules_sustain_throughput() {
    for seed in 100..132u64 {
        let mut rng = Mix::new(seed);
        let p = rng.range(2, 6);
        let variant = random_variant(&mut rng);
        let times = random_times(&mut rng);
        let m = 48u32;
        let schedule = generators::vocab_1f1b(p, m, variant, times, false);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        let out: f64 = variant
            .output_passes()
            .iter()
            .map(|&k| times.duration(k))
            .sum();
        let interval = times.f + times.b + out;
        let work = interval * m as f64;
        let fill = (p as f64 + variant.barriers() as f64 + 2.0) * interval;
        // Allow a few percent of greedy-packing slack at extreme pass-time
        // ratios (e.g. b ≈ 5f): the synthesized order is near-optimal, not
        // optimal.
        assert!(
            report.makespan < 1.05 * work + fill,
            "seed {seed} p={p} {variant:?}: makespan {} vs work {work} + fill {fill}",
            report.makespan
        );
    }
}

/// Plain 1F1B keeps its classical properties under arbitrary times.
#[test]
fn one_f_one_b_classical_properties() {
    for seed in 200..232u64 {
        let mut rng = Mix::new(seed);
        let p = rng.range(2, 8);
        let m = rng.range(4, 32) as u32;
        let times = random_times(&mut rng);
        let schedule = generators::one_f_one_b(p, m, times);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        for d in 0..p {
            assert!(
                report.peak_resident_microbatches[d] <= (p - d).min(m as usize),
                "seed {seed} device {d}"
            );
        }
    }
}

/// V-Half: valid, complete, and balanced in activation units across
/// devices.
#[test]
fn vhalf_is_valid_and_balanced() {
    for seed in 300..332u64 {
        let mut rng = Mix::new(seed);
        let p = rng.range(2, 6);
        let extra_m = rng.range(0, 16) as u32;
        let vocab = rng.bool();
        // Balance is a steady-state property: use enough microbatches that
        // every device reaches its in-flight budget.
        let m = 4 * p as u32 + extra_m;
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        let schedule = if vocab {
            generators::vhalf_vocab(p, m, VocabVariant::Alg1, times, true)
        } else {
            generators::vhalf(p, m, times)
        };
        let costs = UnitCosts::new(times, 2);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        let max = report
            .peak_activation_units
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min = report
            .peak_activation_units
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= 2.0,
            "seed {seed} units {:?}",
            report.peak_activation_units
        );
        for d in 0..p {
            assert_eq!(
                schedule.count_kind(d, PassKind::F),
                2 * m as usize,
                "seed {seed}"
            );
        }
    }
}

/// The interlaced schedule is valid and its memory exceeds plain
/// 1F1B's (the Appendix B.1 claim).
#[test]
fn interlaced_holds_more_activations() {
    for seed in 400..432u64 {
        let mut rng = Mix::new(seed);
        let p = rng.range(3, 7);
        let m = rng.range(8, 24) as u32;
        let times = PassTimes::default();
        let inter = generators::interlaced_1f1b(p, m, times);
        let plain = generators::one_f_one_b(p, m, times);
        let costs = UnitCosts::new(times, 1);
        let ri = Executor::new(&costs).run(&inter).unwrap();
        let rp = Executor::new(&costs).run(&plain).unwrap();
        // Compare mid-pipeline devices (device 0 saturates at m).
        let d = p / 2;
        assert!(
            ri.peak_resident_microbatches[d] >= rp.peak_resident_microbatches[d],
            "seed {seed} device {d}: interlaced {} vs plain {}",
            ri.peak_resident_microbatches[d],
            rp.peak_resident_microbatches[d]
        );
    }
}
