//! Property-based tests over the schedule machinery: for arbitrary device
//! counts, microbatch counts, pass-time ratios and variants, generated
//! schedules must validate, complete, respect the §5.2 memory bounds and
//! sustain steady-state throughput.

use proptest::prelude::*;
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::generators;
use vp_schedule::pass::{PassKind, VocabVariant};

fn times_strategy() -> impl Strategy<Value = PassTimes> {
    (0.5f64..2.0, 1.0f64..3.0, 0.02f64..0.8, 0.02f64..0.8).prop_map(|(f, b, s, t)| PassTimes {
        f,
        b,
        w: 0.0,
        s,
        t,
        input_f: 0.05,
        input_b: 0.05,
        comm: 0.01,
    })
}

fn variant_strategy() -> impl Strategy<Value = VocabVariant> {
    prop_oneof![
        Just(VocabVariant::Naive),
        Just(VocabVariant::Alg1),
        Just(VocabVariant::Alg2)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated vocabulary schedule validates, runs to completion,
    /// contains exactly `m` of each pass per device, and its simulated
    /// peak activation stays within `p − d + barriers` microbatches.
    #[test]
    fn vocab_schedules_are_valid_and_memory_bounded(
        p in 2usize..7,
        m in 4u32..24,
        variant in variant_strategy(),
        times in times_strategy(),
        include_input in proptest::bool::ANY,
    ) {
        let schedule = generators::vocab_1f1b(p, m, variant, times, include_input);
        let graph = vp_schedule::deps::validate(&schedule).expect("schedule validates");
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run_with_graph(&schedule, &graph);
        for d in 0..p {
            prop_assert_eq!(schedule.count_kind(d, PassKind::F), m as usize);
            prop_assert_eq!(schedule.count_kind(d, PassKind::B), m as usize);
            prop_assert_eq!(schedule.count_kind(d, PassKind::T), m as usize);
            let cap = (p - d + variant.barriers()).min(m as usize);
            prop_assert!(
                report.peak_resident_microbatches[d] <= cap,
                "device {}: {} > {}", d, report.peak_resident_microbatches[d], cap
            );
        }
        // Sanity: the makespan at least covers one device's work.
        prop_assert!(report.makespan >= report.busy[0] - 1e-9);
    }

    /// Steady-state throughput: with enough microbatches, the makespan is
    /// close to work + fill/drain for every variant and time ratio.
    #[test]
    fn vocab_schedules_sustain_throughput(
        p in 2usize..6,
        variant in variant_strategy(),
        times in times_strategy(),
    ) {
        let m = 48u32;
        let schedule = generators::vocab_1f1b(p, m, variant, times, false);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        let out: f64 = variant.output_passes().iter().map(|&k| times.duration(k)).sum();
        let interval = times.f + times.b + out;
        let work = interval * m as f64;
        let fill = (p as f64 + variant.barriers() as f64 + 2.0) * interval;
        // Allow a few percent of greedy-packing slack at extreme pass-time
        // ratios (e.g. b ≈ 5f): the synthesized order is near-optimal, not
        // optimal.
        prop_assert!(
            report.makespan < 1.05 * work + fill,
            "p={} {:?}: makespan {} vs work {} + fill {}",
            p, variant, report.makespan, work, fill
        );
    }

    /// Plain 1F1B keeps its classical properties under arbitrary times.
    #[test]
    fn one_f_one_b_classical_properties(
        p in 2usize..8,
        m in 4u32..32,
        times in times_strategy(),
    ) {
        let schedule = generators::one_f_one_b(p, m, times);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        for d in 0..p {
            prop_assert!(report.peak_resident_microbatches[d] <= (p - d).min(m as usize));
        }
    }

    /// V-Half: valid, complete, and balanced in activation units across
    /// devices.
    #[test]
    fn vhalf_is_valid_and_balanced(
        p in 2usize..6,
        extra_m in 0u32..16,
        vocab in proptest::bool::ANY,
    ) {
        // Balance is a steady-state property: use enough microbatches that
        // every device reaches its in-flight budget.
        let m = 4 * p as u32 + extra_m;
        let times = PassTimes { f: 1.0, b: 1.0, w: 1.0, ..PassTimes::default() };
        let schedule = if vocab {
            generators::vhalf_vocab(p, m, VocabVariant::Alg1, times, true)
        } else {
            generators::vhalf(p, m, times)
        };
        let costs = UnitCosts::new(times, 2);
        let report = Executor::new(&costs).run(&schedule).unwrap();
        let max = report.peak_activation_units.iter().cloned().fold(0.0f64, f64::max);
        let min = report.peak_activation_units.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(max - min <= 2.0, "units {:?}", report.peak_activation_units);
        for d in 0..p {
            prop_assert_eq!(schedule.count_kind(d, PassKind::F), 2 * m as usize);
        }
    }

    /// The interlaced schedule is valid and its memory exceeds plain
    /// 1F1B's (the Appendix B.1 claim).
    #[test]
    fn interlaced_holds_more_activations(p in 3usize..7, m in 8u32..24) {
        let times = PassTimes::default();
        let inter = generators::interlaced_1f1b(p, m, times);
        let plain = generators::one_f_one_b(p, m, times);
        let costs = UnitCosts::new(times, 1);
        let ri = Executor::new(&costs).run(&inter).unwrap();
        let rp = Executor::new(&costs).run(&plain).unwrap();
        // Compare mid-pipeline devices (device 0 saturates at m).
        let d = p / 2;
        prop_assert!(
            ri.peak_resident_microbatches[d] >= rp.peak_resident_microbatches[d],
            "device {}: interlaced {} vs plain {}",
            d, ri.peak_resident_microbatches[d], rp.peak_resident_microbatches[d]
        );
    }
}
