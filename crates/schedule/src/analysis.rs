//! Post-execution schedule analysis: where the bubbles are (warm-up,
//! steady state, drain), what sits on the critical path, and per-kind time
//! budgets. The quantitative companion to the timeline renderings.

use crate::exec::ExecReport;
use crate::pass::{PassKind, Schedule};
use std::collections::HashMap;

/// Idle-time decomposition for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleBreakdown {
    /// Idle before the device's first pass starts (pipeline fill).
    pub warmup: f64,
    /// Idle between the first and last pass (dependency stalls).
    pub steady: f64,
    /// Idle after the device's last pass until the global makespan (drain).
    pub drain: f64,
}

impl IdleBreakdown {
    /// Total idle time.
    pub fn total(&self) -> f64 {
        self.warmup + self.steady + self.drain
    }
}

/// Aggregate analysis of an executed schedule.
#[derive(Debug, Clone)]
pub struct ScheduleAnalysis {
    /// Per-device idle decomposition.
    pub idle: Vec<IdleBreakdown>,
    /// Total busy seconds per pass kind, summed over devices.
    pub time_by_kind: HashMap<PassKind, f64>,
    /// End-to-end makespan.
    pub makespan: f64,
    /// Number of devices.
    pub devices: usize,
}

impl ScheduleAnalysis {
    /// Computes the analysis from a schedule and its execution report.
    pub fn new(schedule: &Schedule, report: &ExecReport) -> Self {
        let p = schedule.devices();
        let mut idle = Vec::with_capacity(p);
        let mut time_by_kind: HashMap<PassKind, f64> = HashMap::new();
        for d in 0..p {
            let passes = schedule.passes(d);
            if passes.is_empty() {
                idle.push(IdleBreakdown {
                    warmup: report.makespan,
                    steady: 0.0,
                    drain: 0.0,
                });
                continue;
            }
            let first_start = report.start[d][0];
            let last_end = report.end[d][passes.len() - 1];
            let mut busy = 0.0;
            for (i, pass) in passes.iter().enumerate() {
                let dur = report.end[d][i] - report.start[d][i];
                busy += dur;
                *time_by_kind.entry(pass.kind).or_insert(0.0) += dur;
            }
            idle.push(IdleBreakdown {
                warmup: first_start,
                steady: (last_end - first_start - busy).max(0.0),
                drain: (report.makespan - last_end).max(0.0),
            });
        }
        ScheduleAnalysis {
            idle,
            time_by_kind,
            makespan: report.makespan,
            devices: p,
        }
    }

    /// Mean idle fraction across devices.
    pub fn mean_bubble(&self) -> f64 {
        self.idle.iter().map(IdleBreakdown::total).sum::<f64>()
            / (self.devices as f64 * self.makespan)
    }

    /// Fraction of total busy time spent in vocabulary passes
    /// (`S`/`S2`/`T` and the sharded input passes).
    pub fn vocab_fraction(&self) -> f64 {
        let vocab: f64 = [
            PassKind::S,
            PassKind::S2,
            PassKind::T,
            PassKind::InputF,
            PassKind::InputB,
        ]
        .iter()
        .filter_map(|k| self.time_by_kind.get(k))
        .sum();
        let total: f64 = self.time_by_kind.values().sum();
        if total == 0.0 {
            0.0
        } else {
            vocab / total
        }
    }

    /// Renders a compact text report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "makespan {:.3}, mean bubble {:.1}%, vocab-pass share {:.1}%\n",
            self.makespan,
            100.0 * self.mean_bubble(),
            100.0 * self.vocab_fraction()
        );
        for (d, idle) in self.idle.iter().enumerate() {
            out.push_str(&format!(
                "dev {d:>2}: warmup {:>7.3}  steady-stall {:>7.3}  drain {:>7.3}\n",
                idle.warmup, idle.steady, idle.drain
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::exec::{Executor, UnitCosts};
    use crate::generators::{one_f_one_b, vocab_1f1b};
    use crate::pass::VocabVariant;

    fn analyze(schedule: &Schedule, times: PassTimes) -> ScheduleAnalysis {
        let costs = UnitCosts::new(times, schedule.chunks());
        let report = Executor::new(&costs).run(schedule).unwrap();
        ScheduleAnalysis::new(schedule, &report)
    }

    #[test]
    fn one_f_one_b_idle_is_warmup_and_drain() {
        let times = PassTimes::default();
        let a = analyze(&one_f_one_b(4, 32, times), times);
        // Device 0 starts first and (receiving the final backward) also
        // finishes last: no warmup or drain idle. The last device pays
        // (p−1)·f of warmup and (p−1)·b of drain.
        assert!(a.idle[0].warmup < 1e-9);
        assert!(a.idle[0].drain < 0.2, "{:?}", a.idle[0]);
        assert!((a.idle[3].warmup - 3.0).abs() < 0.2, "{:?}", a.idle[3]);
        assert!((a.idle[3].drain - 6.0).abs() < 0.3, "{:?}", a.idle[3]);
        // Steady-state stalls are small in balanced 1F1B.
        for d in 0..4 {
            assert!(
                a.idle[d].steady < 0.15 * a.makespan,
                "device {d}: {:?}",
                a.idle[d]
            );
        }
        // Known bubble: (p−1)(f+b) of the (m+p−1)(f+b) makespan.
        let expected = 3.0 / 35.0;
        assert!(
            (a.mean_bubble() - expected).abs() < 0.05,
            "{}",
            a.mean_bubble()
        );
    }

    #[test]
    fn vocab_fraction_tracks_pass_times() {
        let times = PassTimes {
            s: 0.3,
            t: 0.3,
            ..PassTimes::default()
        };
        let a = analyze(&vocab_1f1b(4, 24, VocabVariant::Alg2, times, false), times);
        let expected = 0.6 / 3.6;
        assert!(
            (a.vocab_fraction() - expected).abs() < 0.02,
            "{}",
            a.vocab_fraction()
        );
        let plain = analyze(&one_f_one_b(4, 24, times), times);
        assert_eq!(plain.vocab_fraction(), 0.0);
    }

    #[test]
    fn time_by_kind_accounts_all_busy_time() {
        let times = PassTimes::default();
        let sched = vocab_1f1b(3, 8, VocabVariant::Alg1, times, true);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        let a = ScheduleAnalysis::new(&sched, &report);
        let by_kind: f64 = a.time_by_kind.values().sum();
        let busy: f64 = report.busy.iter().sum();
        assert!((by_kind - busy).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_device() {
        let times = PassTimes::default();
        let a = analyze(&one_f_one_b(3, 6, times), times);
        let text = a.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("mean bubble"));
    }
}
