//! Typed pipeline passes and the [`Schedule`] container.

use std::fmt;

/// The kind of work a pipeline pass performs.
///
/// Transformer passes follow the zero-bubble decomposition of Qi et al.:
/// `F` (forward), `B` (activation gradients) and `W` (weight gradients);
/// plain 1F1B schedules fold `W` into `B`. The vocabulary passes are the
/// paper's §4 groupings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Transformer-chunk forward.
    F,
    /// Transformer-chunk backward (activation gradients; includes weight
    /// gradients unless the schedule emits separate [`PassKind::W`] passes).
    B,
    /// Transformer-chunk weight gradients (zero-bubble style split).
    W,
    /// Vocabulary output pass `S`: logits + local softmax (Algorithms 1/2),
    /// and additionally the pre-barrier matmuls for Algorithm 2.
    S,
    /// Second vocabulary output pass of the *naive* 3-barrier grouping
    /// (the `F2` pass of §4.1).
    S2,
    /// Vocabulary output pass `T`: weight gradients (and, for Algorithm 1,
    /// the `∇X′` matmul preceding the `C2` reduce).
    T,
    /// Sharded input-layer forward (Appendix C).
    InputF,
    /// Sharded input-layer backward (Appendix C).
    InputB,
    /// Interlaced (tensor-parallel style) output-layer forward — runs
    /// synchronously on all devices (Lin et al.'s nnScaler baseline).
    OutputF,
    /// Interlaced output-layer backward.
    OutputB,
}

impl PassKind {
    /// Whether this pass allocates a resident activation (counted against
    /// the schedule's peak activation memory): transformer forwards do.
    pub fn allocates_activation(self) -> bool {
        matches!(self, PassKind::F)
    }

    /// Whether this pass frees the corresponding resident activation.
    pub fn frees_activation(self) -> bool {
        matches!(self, PassKind::B)
    }

    /// Whether this pass may appear in a forward-only decode schedule.
    /// Inference runs the transformer forward, the sharded input
    /// embedding and the Algorithm-2 `S` pass (whose single barrier doubles
    /// as the sampling merge) — plus, in the overlapped decode family, the
    /// `T` pass as the *deferred* sampling merge: `S` submits the
    /// all-gather to a communication stream and `T` waits on the result,
    /// so transformer compute of other microbatches runs while the
    /// collective is in flight. Everything else either produces gradients
    /// or belongs to a multi-barrier grouping decode never uses.
    pub fn decode_safe(self) -> bool {
        matches!(
            self,
            PassKind::F | PassKind::S | PassKind::T | PassKind::InputF
        )
    }

    /// Static label used by the measured-run tracer and timeline tables
    /// (stable across both the simulator and the numeric runtime, so
    /// simulated and measured traces key per-kind time the same way).
    pub fn name(self) -> &'static str {
        match self {
            PassKind::F => "F",
            PassKind::B => "B",
            PassKind::W => "W",
            PassKind::S => "S",
            PassKind::S2 => "S2",
            PassKind::T => "T",
            PassKind::InputF => "InputF",
            PassKind::InputB => "InputB",
            PassKind::OutputF => "OutputF",
            PassKind::OutputB => "OutputB",
        }
    }

    /// Single-character label used by the ASCII renderer.
    pub fn glyph(self) -> char {
        match self {
            PassKind::F => 'F',
            PassKind::B => 'B',
            PassKind::W => 'W',
            PassKind::S => 'S',
            PassKind::S2 => 'Z',
            PassKind::T => 'T',
            PassKind::InputF => 'i',
            PassKind::InputB => 'j',
            PassKind::OutputF => 'O',
            PassKind::OutputB => 'Q',
        }
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.glyph())
    }
}

/// Which output-layer grouping a vocabulary schedule uses (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VocabVariant {
    /// Naive 3-barrier grouping (`F1`/`F2`/`B` of §4.1).
    Naive,
    /// Algorithm 1: 2 barriers (Vocab-1).
    Alg1,
    /// Algorithm 2: 1 barrier (Vocab-2).
    Alg2,
}

impl VocabVariant {
    /// Number of communication barriers between the last transformer
    /// forward and backward — equal to the activation-memory overhead in
    /// microbatches (§5.2).
    pub fn barriers(self) -> usize {
        match self {
            VocabVariant::Naive => 3,
            VocabVariant::Alg1 => 2,
            VocabVariant::Alg2 => 1,
        }
    }

    /// The output passes this variant schedules, in dependency order.
    pub fn output_passes(self) -> &'static [PassKind] {
        match self {
            VocabVariant::Naive => &[PassKind::S, PassKind::S2, PassKind::T],
            VocabVariant::Alg1 | VocabVariant::Alg2 => &[PassKind::S, PassKind::T],
        }
    }
}

/// How a schedule maps virtual pipeline stages onto `(device, chunk)`
/// pairs when each device hosts several model chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkPlacement {
    /// V-shape (Qi et al. 2024): chunk 0 descends devices `0..p`, chunk 1
    /// ascends back `p−1..0`. Used by V-Half.
    VShape,
    /// Round-robin (Narayanan et al. 2021): virtual stage `c·p + d` lives
    /// on device `d`. Used by interleaved 1F1B.
    RoundRobin,
}

/// The schedule family a [`Schedule`] belongs to; determines the
/// cross-device dependency rules of [`crate::deps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Plain 1F1B (Baseline / Redis layouts): output layer folded into the
    /// last stage's `F`/`B` passes.
    Plain,
    /// Vocabulary Parallelism with the given output-layer variant.
    Vocab(VocabVariant),
    /// Interlaced pipeline (synchronous TP-style vocabulary layers).
    Interlaced,
}

/// One pass instance scheduled on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledPass {
    /// What the pass computes.
    pub kind: PassKind,
    /// Microbatch index in `0..num_microbatches`.
    pub microbatch: u32,
    /// Model chunk on this device (0 for 1F1B; 0/1 for V-shape schedules).
    pub chunk: u8,
}

impl ScheduledPass {
    /// Convenience constructor for chunk-0 passes.
    pub fn new(kind: PassKind, microbatch: u32) -> Self {
        ScheduledPass {
            kind,
            microbatch,
            chunk: 0,
        }
    }

    /// Constructor including the chunk index.
    pub fn with_chunk(kind: PassKind, microbatch: u32, chunk: u8) -> Self {
        ScheduledPass {
            kind,
            microbatch,
            chunk,
        }
    }
}

impl fmt::Display for ScheduledPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.chunk == 0 {
            write!(f, "{}{}", self.kind, self.microbatch)
        } else {
            write!(f, "{}{}'{}", self.kind, self.microbatch, self.chunk)
        }
    }
}

/// A static pipeline schedule: an ordered pass list per device.
///
/// The order within each device is the *execution order* (the device runs
/// its passes strictly in sequence, blocking on cross-device dependencies);
/// the dependency relation itself is derived from
/// [`ScheduleKind`] by [`crate::deps`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    kind: ScheduleKind,
    num_microbatches: u32,
    /// Virtual pipeline stages per device (1 for 1F1B, 2 for V-shape).
    chunks: u8,
    placement: ChunkPlacement,
    device_passes: Vec<Vec<ScheduledPass>>,
}

impl Schedule {
    /// Assembles a schedule from per-device pass lists.
    ///
    /// # Panics
    ///
    /// Panics if `device_passes` is empty (zero devices is meaningless).
    pub fn new(
        kind: ScheduleKind,
        num_microbatches: u32,
        chunks: u8,
        device_passes: Vec<Vec<ScheduledPass>>,
    ) -> Self {
        assert!(
            !device_passes.is_empty(),
            "schedule must have at least one device"
        );
        Schedule {
            kind,
            num_microbatches,
            chunks,
            placement: ChunkPlacement::VShape,
            device_passes,
        }
    }

    /// Overrides the virtual-stage placement (default: V-shape).
    pub fn with_placement(mut self, placement: ChunkPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// The virtual-stage placement.
    pub fn placement(&self) -> ChunkPlacement {
        self.placement
    }

    /// The schedule family.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Number of pipeline devices.
    pub fn devices(&self) -> usize {
        self.device_passes.len()
    }

    /// Number of microbatches per iteration.
    pub fn num_microbatches(&self) -> u32 {
        self.num_microbatches
    }

    /// Virtual pipeline chunks per device.
    pub fn chunks(&self) -> u8 {
        self.chunks
    }

    /// The ordered pass list of device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn passes(&self, d: usize) -> &[ScheduledPass] {
        &self.device_passes[d]
    }

    /// Iterates over `(device, index_in_device, pass)` in device order.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, usize, &ScheduledPass)> {
        self.device_passes
            .iter()
            .enumerate()
            .flat_map(|(d, ps)| ps.iter().enumerate().map(move |(i, p)| (d, i, p)))
    }

    /// Total number of scheduled passes.
    pub fn total_passes(&self) -> usize {
        self.device_passes.iter().map(Vec::len).sum()
    }

    /// Number of passes of `kind` on device `d`.
    pub fn count_kind(&self, d: usize, kind: PassKind) -> usize {
        self.device_passes[d]
            .iter()
            .filter(|p| p.kind == kind)
            .count()
    }

    /// The number of virtual pipeline stages (`devices × chunks`).
    pub fn virtual_stages(&self) -> usize {
        self.devices() * self.chunks as usize
    }

    /// Maps a virtual stage index to `(device, chunk)` under the
    /// schedule's placement.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= virtual_stages()`.
    pub fn device_of_virtual_stage(&self, stage: usize) -> (usize, u8) {
        assert!(stage < self.virtual_stages(), "virtual stage out of range");
        placement_device_of(self.placement, self.devices(), stage)
    }

    /// Inverse of [`Self::device_of_virtual_stage`].
    pub fn virtual_stage_of(&self, device: usize, chunk: u8) -> usize {
        placement_stage_of(self.placement, self.devices(), device, chunk)
    }
}

/// Maps a virtual stage to `(device, chunk)` under `placement`.
pub fn placement_device_of(placement: ChunkPlacement, devices: usize, stage: usize) -> (usize, u8) {
    match placement {
        ChunkPlacement::VShape => {
            if stage < devices {
                (stage, 0)
            } else {
                (2 * devices - 1 - stage, 1)
            }
        }
        ChunkPlacement::RoundRobin => (stage % devices, (stage / devices) as u8),
    }
}

/// Maps `(device, chunk)` to a virtual stage under `placement`.
pub fn placement_stage_of(
    placement: ChunkPlacement,
    devices: usize,
    device: usize,
    chunk: u8,
) -> usize {
    match placement {
        ChunkPlacement::VShape => match chunk {
            0 => device,
            _ => 2 * devices - 1 - device,
        },
        ChunkPlacement::RoundRobin => chunk as usize * devices + device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_counts_match_paper() {
        assert_eq!(VocabVariant::Naive.barriers(), 3);
        assert_eq!(VocabVariant::Alg1.barriers(), 2);
        assert_eq!(VocabVariant::Alg2.barriers(), 1);
    }

    #[test]
    fn virtual_stage_mapping_is_a_v_shape() {
        let sched = Schedule::new(ScheduleKind::Plain, 1, 2, vec![vec![]; 4]);
        // Chunk 0 descends, chunk 1 ascends.
        assert_eq!(sched.device_of_virtual_stage(0), (0, 0));
        assert_eq!(sched.device_of_virtual_stage(3), (3, 0));
        assert_eq!(sched.device_of_virtual_stage(4), (3, 1));
        assert_eq!(sched.device_of_virtual_stage(7), (0, 1));
        for vs in 0..8 {
            let (d, c) = sched.device_of_virtual_stage(vs);
            assert_eq!(sched.virtual_stage_of(d, c), vs);
        }
    }

    #[test]
    fn round_robin_placement_maps_stages_cyclically() {
        let sched = Schedule::new(ScheduleKind::Plain, 1, 2, vec![vec![]; 4])
            .with_placement(ChunkPlacement::RoundRobin);
        assert_eq!(sched.device_of_virtual_stage(0), (0, 0));
        assert_eq!(sched.device_of_virtual_stage(3), (3, 0));
        assert_eq!(sched.device_of_virtual_stage(4), (0, 1));
        assert_eq!(sched.device_of_virtual_stage(7), (3, 1));
        for vs in 0..8 {
            let (d, c) = sched.device_of_virtual_stage(vs);
            assert_eq!(sched.virtual_stage_of(d, c), vs);
        }
    }

    #[test]
    fn activation_accounting_flags() {
        assert!(PassKind::F.allocates_activation());
        assert!(PassKind::B.frees_activation());
        assert!(!PassKind::S.allocates_activation());
        assert!(!PassKind::W.frees_activation());
    }

    #[test]
    fn display_formats_compactly() {
        assert_eq!(ScheduledPass::new(PassKind::F, 3).to_string(), "F3");
        assert_eq!(
            ScheduledPass::with_chunk(PassKind::B, 2, 1).to_string(),
            "B2'1"
        );
    }
}
