//! Building blocks: the per-microbatch scheduling pattern whose uniform
//! repetition yields a full pipeline schedule (Qi et al. 2024, used by the
//! paper in §5.2).

use crate::pass::{PassKind, Schedule, ScheduleKind, ScheduledPass};

/// Relative durations of the pass kinds, in arbitrary units.
///
/// The paper's schedules are constructed assuming the backward pass takes
/// roughly twice the forward pass (§6.1 profiles this and notes deviations
/// rarely change the schedule); [`PassTimes::default`] encodes that
/// assumption with small vocabulary passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassTimes {
    /// Transformer forward.
    pub f: f64,
    /// Transformer backward (activation grads; includes weight grads unless
    /// `w > 0` and the generator emits `W` passes).
    pub b: f64,
    /// Transformer weight-gradient pass (0 folds it into `b`).
    pub w: f64,
    /// Vocabulary output `S` pass.
    pub s: f64,
    /// Vocabulary output `T` pass.
    pub t: f64,
    /// Sharded input-layer forward.
    pub input_f: f64,
    /// Sharded input-layer backward.
    pub input_b: f64,
    /// Communication delay modelled between dependent cross-device passes.
    pub comm: f64,
}

impl Default for PassTimes {
    fn default() -> Self {
        PassTimes {
            f: 1.0,
            b: 2.0,
            w: 0.0,
            s: 0.3,
            t: 0.3,
            input_f: 0.05,
            input_b: 0.05,
            comm: 0.01,
        }
    }
}

impl PassTimes {
    /// Duration of one pass kind.
    pub fn duration(&self, kind: PassKind) -> f64 {
        match kind {
            PassKind::F => self.f,
            PassKind::B => self.b,
            PassKind::W => self.w,
            PassKind::S | PassKind::S2 | PassKind::OutputF => self.s,
            PassKind::T | PassKind::OutputB => self.t,
            PassKind::InputF => self.input_f,
            PassKind::InputB => self.input_b,
        }
    }
}

/// One pass of the building block: its kind, chunk and start offset for
/// microbatch 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockEntry {
    /// What runs.
    pub kind: PassKind,
    /// Model chunk.
    pub chunk: u8,
    /// Start offset of the microbatch-0 instance, in the same units as
    /// [`PassTimes`]. May be negative; only relative order matters.
    pub offset: f64,
}

/// A building block: per-device pass offsets for one microbatch plus the
/// repeat interval.
///
/// Repeating the block (`offset + k·interval` for microbatch `k`) and
/// sorting each device's passes by start time yields the schedule's
/// per-device execution order. The analytic peak activation memory is
/// `ceil(lifespan / interval)` per §5.2.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingBlock {
    kind: ScheduleKind,
    entries: Vec<Vec<BlockEntry>>,
    interval: f64,
    times: PassTimes,
    chunks: u8,
}

impl BuildingBlock {
    /// Assembles a building block.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or `interval <= 0`.
    pub fn new(
        kind: ScheduleKind,
        entries: Vec<Vec<BlockEntry>>,
        interval: f64,
        times: PassTimes,
        chunks: u8,
    ) -> Self {
        assert!(
            !entries.is_empty(),
            "building block must cover at least one device"
        );
        assert!(interval > 0.0, "interval must be positive");
        BuildingBlock {
            kind,
            entries,
            interval,
            times,
            chunks,
        }
    }

    /// Number of devices the block covers.
    pub fn devices(&self) -> usize {
        self.entries.len()
    }

    /// The repeat interval (the per-microbatch workload of one device).
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// The block's entries for device `d`.
    pub fn entries(&self, d: usize) -> &[BlockEntry] {
        &self.entries[d]
    }

    /// The schedule family this block builds.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Virtual chunks per device.
    pub fn chunks(&self) -> u8 {
        self.chunks
    }

    /// Lifespan on device `d` for `chunk`: time from the start of the `F`
    /// pass to the end of the matching `B` pass (the window during which
    /// the microbatch's activations stay resident).
    ///
    /// Returns `None` if the device has no `F`/`B` pair for that chunk.
    pub fn lifespan(&self, d: usize, chunk: u8) -> Option<f64> {
        let f = self.entries[d]
            .iter()
            .find(|e| e.kind == PassKind::F && e.chunk == chunk)?;
        let b = self.entries[d]
            .iter()
            .find(|e| e.kind == PassKind::B && e.chunk == chunk)?;
        Some(b.offset + self.times.duration(PassKind::B) - f.offset)
    }

    /// The analytic peak activation memory of the repeated schedule on
    /// device `d`, in resident microbatches (each counted once per chunk):
    /// `Σ_chunks ceil(lifespan / interval)` bounded by the microbatch count
    /// at generation time.
    pub fn peak_activation_microbatches(&self, d: usize) -> f64 {
        (0..=self.chunks.saturating_sub(1))
            .filter_map(|c| self.lifespan(d, c))
            .map(|l| (l / self.interval).ceil())
            .sum()
    }

    /// Uniformly repeats the block for `m` microbatches and extracts each
    /// device's execution order.
    ///
    /// Ties are broken by `(kind-priority, microbatch, chunk)` so the order
    /// is deterministic and consistent across devices.
    pub fn generate(&self, m: u32) -> Schedule {
        let mut device_passes = Vec::with_capacity(self.devices());
        for d in 0..self.devices() {
            let mut timed: Vec<(f64, u32, &BlockEntry)> = Vec::new();
            for entry in &self.entries[d] {
                for k in 0..m {
                    timed.push((entry.offset + k as f64 * self.interval, k, entry));
                }
            }
            timed.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then_with(|| kind_priority(a.2.kind).cmp(&kind_priority(b.2.kind)))
                    .then_with(|| a.1.cmp(&b.1))
                    .then_with(|| a.2.chunk.cmp(&b.2.chunk))
            });
            device_passes.push(
                timed
                    .into_iter()
                    .map(|(_, k, e)| ScheduledPass::with_chunk(e.kind, k, e.chunk))
                    .collect(),
            );
        }
        Schedule::new(self.kind, m, self.chunks, device_passes)
    }

    /// The pass times the block was built with.
    pub fn times(&self) -> &PassTimes {
        &self.times
    }

    /// The timed pass instances of device `d` for `m` microbatches, before
    /// ordering. Generators that need irregular extra passes (e.g. the
    /// warmup placement of input-layer passes, Appendix C) extend this list
    /// and feed it to [`order_passes`].
    pub fn timed_passes(&self, d: usize, m: u32) -> Vec<(f64, ScheduledPass)> {
        let mut timed = Vec::with_capacity(self.entries[d].len() * m as usize);
        for entry in &self.entries[d] {
            for k in 0..m {
                timed.push((
                    entry.offset + k as f64 * self.interval,
                    ScheduledPass::with_chunk(entry.kind, k, entry.chunk),
                ));
            }
        }
        timed
    }
}

/// Sorts timed passes into a deterministic device execution order
/// (time, then kind priority, then microbatch, then chunk).
pub fn order_passes(mut timed: Vec<(f64, ScheduledPass)>) -> Vec<ScheduledPass> {
    timed.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| kind_priority(a.1.kind).cmp(&kind_priority(b.1.kind)))
            .then_with(|| a.1.microbatch.cmp(&b.1.microbatch))
            .then_with(|| a.1.chunk.cmp(&b.1.chunk))
    });
    timed.into_iter().map(|(_, p)| p).collect()
}

/// Stable tie-breaking priority: consumers (B) before producers of new
/// work (F) at equal offsets keeps steady-state memory minimal, and input
/// passes slot in ahead of the heavy passes they feed.
fn kind_priority(kind: PassKind) -> u8 {
    match kind {
        PassKind::InputF => 0,
        PassKind::S => 1,
        PassKind::S2 => 2,
        PassKind::T => 3,
        PassKind::OutputF => 4,
        PassKind::OutputB => 5,
        PassKind::B => 6,
        PassKind::F => 7,
        PassKind::W => 8,
        PassKind::InputB => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic 1F1B block: F at `d·f`, B at `p·f + (p−1−d)·b`.
    fn block_1f1b(p: usize) -> BuildingBlock {
        let times = PassTimes::default();
        let entries = (0..p)
            .map(|d| {
                vec![
                    BlockEntry {
                        kind: PassKind::F,
                        chunk: 0,
                        offset: d as f64 * times.f,
                    },
                    BlockEntry {
                        kind: PassKind::B,
                        chunk: 0,
                        offset: p as f64 * times.f + (p - 1 - d) as f64 * times.b,
                    },
                ]
            })
            .collect();
        BuildingBlock::new(ScheduleKind::Plain, entries, times.f + times.b, times, 1)
    }

    #[test]
    fn one_f_one_b_peak_memory_is_p_minus_d() {
        let p = 4;
        let block = block_1f1b(p);
        for d in 0..p {
            let peak = block.peak_activation_microbatches(d);
            assert_eq!(peak, (p - d) as f64, "device {d}");
        }
    }

    #[test]
    fn generate_emits_all_passes_in_order() {
        let block = block_1f1b(3);
        let sched = block.generate(5);
        assert_eq!(sched.devices(), 3);
        for d in 0..3 {
            assert_eq!(sched.count_kind(d, PassKind::F), 5);
            assert_eq!(sched.count_kind(d, PassKind::B), 5);
            // Microbatches of the same kind appear in increasing order.
            let fs: Vec<u32> = sched
                .passes(d)
                .iter()
                .filter(|pass| pass.kind == PassKind::F)
                .map(|pass| pass.microbatch)
                .collect();
            assert_eq!(fs, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn last_device_alternates_f_and_b() {
        let block = block_1f1b(4);
        let sched = block.generate(6);
        let seq: String = sched
            .passes(3)
            .iter()
            .map(|pass| pass.kind.glyph())
            .collect();
        // Device p−1 warms up with a single F, then strictly alternates.
        assert!(seq.starts_with("FB"), "{seq}");
        assert!(!seq.contains("FF"), "{seq}");
    }

    #[test]
    fn first_device_warms_up_with_p_forwards() {
        let p = 4;
        let block = block_1f1b(p);
        let sched = block.generate(8);
        let seq: String = sched
            .passes(0)
            .iter()
            .map(|pass| pass.kind.glyph())
            .collect();
        assert!(seq.starts_with("FFFFB"), "{seq}");
    }

    #[test]
    fn lifespan_missing_for_absent_chunk() {
        let block = block_1f1b(2);
        assert!(block.lifespan(0, 1).is_none());
        assert!(block.lifespan(0, 0).is_some());
    }
}
