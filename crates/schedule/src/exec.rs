//! Deterministic list-scheduling executor.
//!
//! Replays a [`Schedule`] under a [`Costs`] provider: each device runs its
//! passes strictly in order, starting a pass at
//! `max(device free time, max over dependencies (end + edge cost))`.
//! Because each device's order is fixed, overlap of communication with
//! compute arises exactly as in the paper: a barrier's latency is hidden
//! when the schedule places other passes between the producer and the
//! consumer, and bites as a bubble when it does not (the interlaced
//! pipeline's synchronous all-reduces).
//!
//! The executor also tracks resident activation "units" per device —
//! `+alloc` at each `F`, `−alloc` at the matching `B`, plus transient
//! vocabulary buffers between `S` and `T` — giving the simulated peak
//! activation memory that §5.2 reasons about analytically.

use crate::block::PassTimes;
use crate::deps::{validate, DepError, DepGraph, EdgeKind};
use crate::pass::{PassKind, Schedule, ScheduledPass};

/// Cost provider: durations of passes, communication costs of dependency
/// edges and memory weights of resident buffers.
pub trait Costs {
    /// Wall-clock duration of `pass` on `device`.
    fn pass_seconds(&self, device: usize, pass: &ScheduledPass) -> f64;

    /// Communication cost attached to a dependency edge.
    fn edge_seconds(&self, kind: EdgeKind, from_device: usize, to_device: usize) -> f64;

    /// Memory units allocated by a transformer `F` (freed by the matching
    /// `B`) for `chunk` on `device`. Units are arbitrary (the simulator
    /// uses bytes; [`UnitCosts`] counts microbatches weighted per chunk).
    fn activation_units(&self, device: usize, chunk: u8) -> f64;

    /// Memory units held between a vocabulary `S` (or interlaced
    /// `OutputF`) and the matching `T` / `OutputB` pass.
    fn vocab_buffer_units(&self, device: usize) -> f64;
}

/// Unit-cost provider: pass durations from a [`PassTimes`], point-to-point
/// edges cost `times.comm`, collective barriers cost `barrier_comm`
/// (defaults to `times.comm`), activations count one unit per microbatch
/// divided evenly among chunks.
#[derive(Debug, Clone)]
pub struct UnitCosts {
    times: PassTimes,
    chunks: u8,
    barrier_comm: f64,
}

impl UnitCosts {
    /// Creates unit costs for a schedule with the given chunk count.
    pub fn new(times: PassTimes, chunks: u8) -> Self {
        UnitCosts {
            times,
            chunks: chunks.max(1),
            barrier_comm: times.comm,
        }
    }

    /// Overrides the cost of collective (barrier) edges, modelling slow
    /// all-reduces over fast point-to-point links.
    pub fn with_barrier_comm(mut self, barrier_comm: f64) -> Self {
        self.barrier_comm = barrier_comm;
        self
    }
}

impl Costs for UnitCosts {
    fn pass_seconds(&self, _device: usize, pass: &ScheduledPass) -> f64 {
        self.times.duration(pass.kind)
    }

    fn edge_seconds(&self, kind: EdgeKind, from_device: usize, to_device: usize) -> f64 {
        match kind {
            EdgeKind::Local => 0.0,
            EdgeKind::ActivationP2p | EdgeKind::GradP2p => {
                if from_device == to_device {
                    0.0
                } else {
                    self.times.comm
                }
            }
            _ => self.barrier_comm,
        }
    }

    fn activation_units(&self, _device: usize, _chunk: u8) -> f64 {
        1.0 / self.chunks as f64
    }

    fn vocab_buffer_units(&self, _device: usize) -> f64 {
        0.0
    }
}

/// Result of executing a schedule.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Start time of each pass, indexed `[device][pass index]`.
    pub start: Vec<Vec<f64>>,
    /// End time of each pass.
    pub end: Vec<Vec<f64>>,
    /// Total busy (computing) time per device.
    pub busy: Vec<f64>,
    /// End-to-end iteration time (max end over all passes).
    pub makespan: f64,
    /// Peak resident activation units per device (see [`Costs`]).
    pub peak_activation_units: Vec<f64>,
    /// Peak resident microbatch count per device, unweighted (each chunk's
    /// in-flight microbatch counts once).
    pub peak_resident_microbatches: Vec<usize>,
}

impl ExecReport {
    /// Idle fraction of device `d` within the makespan.
    pub fn bubble_fraction(&self, d: usize) -> f64 {
        1.0 - self.busy[d] / self.makespan
    }

    /// Mean idle fraction across devices.
    pub fn mean_bubble_fraction(&self) -> f64 {
        let p = self.busy.len() as f64;
        (0..self.busy.len())
            .map(|d| self.bubble_fraction(d))
            .sum::<f64>()
            / p
    }
}

/// Executes schedules under a cost provider.
#[derive(Debug)]
pub struct Executor<'a, C: Costs> {
    costs: &'a C,
}

impl<'a, C: Costs> Executor<'a, C> {
    /// Creates an executor.
    pub fn new(costs: &'a C) -> Self {
        Executor { costs }
    }

    /// Validates and executes `schedule`, returning per-pass times and
    /// memory peaks.
    ///
    /// # Errors
    ///
    /// Returns [`DepError`] if the schedule is malformed (missing or
    /// duplicate passes, or deadlocking per-device orders).
    pub fn run(&self, schedule: &Schedule) -> Result<ExecReport, DepError> {
        let graph = validate(schedule)?;
        Ok(self.run_with_graph(schedule, &graph))
    }

    /// Executes a schedule whose dependency graph was already validated.
    pub fn run_with_graph(&self, schedule: &Schedule, graph: &DepGraph) -> ExecReport {
        let p = schedule.devices();
        let mut start: Vec<Vec<f64>> = (0..p)
            .map(|d| vec![0.0; schedule.passes(d).len()])
            .collect();
        let mut end: Vec<Vec<f64>> = start.clone();
        let mut done: Vec<Vec<bool>> = (0..p)
            .map(|d| vec![false; schedule.passes(d).len()])
            .collect();
        let mut cursor = vec![0usize; p];
        let mut free_at = vec![0.0f64; p];
        let mut busy = vec![0.0f64; p];
        // Memory accounting.
        let mut act_units = vec![0.0f64; p];
        let mut peak_units = vec![0.0f64; p];
        let mut resident = vec![0usize; p];
        let mut peak_resident = vec![0usize; p];

        loop {
            let mut progressed = false;
            let mut all_done = true;
            for d in 0..p {
                while cursor[d] < schedule.passes(d).len() {
                    let i = cursor[d];
                    let deps = graph.preds(d, i);
                    if !deps.iter().all(|dep| done[dep.device][dep.index]) {
                        break;
                    }
                    let pass = &schedule.passes(d)[i];
                    let mut ready = free_at[d];
                    for dep in deps {
                        let t = end[dep.device][dep.index]
                            + self.costs.edge_seconds(dep.kind, dep.device, d);
                        ready = ready.max(t);
                    }
                    let dur = self.costs.pass_seconds(d, pass);
                    start[d][i] = ready;
                    end[d][i] = ready + dur;
                    free_at[d] = end[d][i];
                    busy[d] += dur;
                    done[d][i] = true;
                    cursor[d] += 1;
                    progressed = true;
                    // Memory events, in program order per device.
                    match pass.kind {
                        PassKind::F => {
                            act_units[d] += self.costs.activation_units(d, pass.chunk);
                            resident[d] += 1;
                        }
                        PassKind::B => {
                            act_units[d] -= self.costs.activation_units(d, pass.chunk);
                            resident[d] = resident[d].saturating_sub(1);
                        }
                        PassKind::S | PassKind::OutputF => {
                            act_units[d] += self.costs.vocab_buffer_units(d);
                        }
                        PassKind::T | PassKind::OutputB => {
                            act_units[d] -= self.costs.vocab_buffer_units(d);
                        }
                        _ => {}
                    }
                    peak_units[d] = peak_units[d].max(act_units[d]);
                    peak_resident[d] = peak_resident[d].max(resident[d]);
                }
                if cursor[d] < schedule.passes(d).len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            assert!(progressed, "validated schedule cannot deadlock");
        }
        let makespan = end.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        ExecReport {
            start,
            end,
            busy,
            makespan,
            peak_activation_units: peak_units,
            peak_resident_microbatches: peak_resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{interlaced_1f1b, one_f_one_b, vhalf, vocab_1f1b};
    use crate::pass::VocabVariant;

    fn unit_run(schedule: &Schedule) -> ExecReport {
        let costs = UnitCosts::new(*passes_times(schedule), schedule.chunks());
        Executor::new(&costs).run(schedule).unwrap()
    }

    fn passes_times(_s: &Schedule) -> &'static PassTimes {
        static TIMES: PassTimes = PassTimes {
            f: 1.0,
            b: 2.0,
            w: 0.0,
            s: 0.3,
            t: 0.3,
            input_f: 0.05,
            input_b: 0.05,
            comm: 0.01,
        };
        &TIMES
    }

    #[test]
    fn one_f_one_b_makespan_matches_theory() {
        // 1F1B: makespan ≈ (p−1)(f+b) warmup/drain + m(f+b) steady state.
        let (p, m) = (4, 16);
        let sched = one_f_one_b(
            p,
            m as u32,
            *passes_times(&one_f_one_b(1, 1, PassTimes::default())),
        );
        let report = unit_run(&sched);
        let expected = (p - 1) as f64 * 3.0 + m as f64 * 3.0;
        assert!(
            (report.makespan - expected).abs() < expected * 0.05,
            "makespan {} vs expected {expected}",
            report.makespan
        );
    }

    #[test]
    fn one_f_one_b_peak_memory_is_p_minus_d() {
        let (p, m) = (4, 12);
        let sched = one_f_one_b(p, m, PassTimes::default());
        let report = unit_run(&sched);
        for d in 0..p {
            assert_eq!(report.peak_resident_microbatches[d], p - d, "device {d}");
        }
    }

    #[test]
    fn vocab_alg1_adds_two_microbatches_alg2_one() {
        let p = 4;
        let m = 16;
        let times = PassTimes {
            s: 0.05,
            t: 0.05,
            comm: 0.001,
            ..PassTimes::default()
        };
        let plain = unit_run(&one_f_one_b(p, m, times));
        for (variant, extra) in [
            (VocabVariant::Alg1, 2),
            (VocabVariant::Alg2, 1),
            (VocabVariant::Naive, 3),
        ] {
            let sched = vocab_1f1b(p, m, variant, times, false);
            let costs = UnitCosts::new(times, 1);
            let report = Executor::new(&costs).run(&sched).unwrap();
            for d in 0..p {
                let base = plain.peak_resident_microbatches[d];
                let got = report.peak_resident_microbatches[d];
                assert!(
                    got <= base + extra && got + 1 >= base + extra,
                    "{variant:?} device {d}: base {base} got {got} extra {extra}"
                );
            }
        }
    }

    #[test]
    fn last_device_has_small_bubble_in_balanced_1f1b() {
        let sched = one_f_one_b(4, 64, PassTimes::default());
        let report = unit_run(&sched);
        // Each device only idles during warmup/drain: ≈(p−1)(f+b) of the
        // ≈(m+p−1)(f+b) makespan.
        for d in 0..4 {
            assert!(
                report.bubble_fraction(d) < 0.10,
                "device {d}: {}",
                report.bubble_fraction(d)
            );
        }
    }

    #[test]
    fn interlaced_sync_creates_bubbles() {
        // With identical pass work and slow collective barriers over fast
        // p2p links (the multi-node regime of Appendix B.2), the interlaced
        // schedule must be slower than vocab-parallel: its barriers sit
        // between consecutive passes with nothing to overlap them.
        let times = PassTimes::default();
        let p = 4;
        let m = 32;
        let inter = unit_run_barrier(&interlaced_1f1b(p, m, times), times, 0.2);
        let vocab = unit_run_barrier(
            &vocab_1f1b(p, m, VocabVariant::Alg2, times, false),
            times,
            0.2,
        );
        assert!(
            inter.makespan > vocab.makespan * 1.05,
            "interlaced {} vs vocab {}",
            inter.makespan,
            vocab.makespan
        );
        // Removing the barrier cost (the paper's B.2 ablation) recovers
        // most of the gap.
        let inter_free = unit_run_barrier(&interlaced_1f1b(p, m, times), times, 0.0);
        assert!(inter_free.makespan < inter.makespan * 0.95);
    }

    fn unit_run_barrier(schedule: &Schedule, times: PassTimes, barrier: f64) -> ExecReport {
        let costs = UnitCosts::new(times, schedule.chunks()).with_barrier_comm(barrier);
        Executor::new(&costs).run(schedule).unwrap()
    }

    #[test]
    fn vhalf_halves_device0_activation_units() {
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        let p = 8;
        let m = 32;
        let plain_1f1b = unit_run_barrier(
            &one_f_one_b(p, m, PassTimes::default()),
            PassTimes::default(),
            0.01,
        );
        let v = unit_run_barrier(&vhalf(p, m, times), times, 0.01);
        // In units of one device's layers: V-Half's device-0 peak should be
        // well below 1F1B's p.
        let ratio = v.peak_activation_units[0] / plain_1f1b.peak_activation_units[0];
        assert!(ratio < 0.75, "ratio {ratio}");
        // And balanced across devices.
        let max = v
            .peak_activation_units
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min = v
            .peak_activation_units
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max - min <= 1.0, "peaks {:?}", v.peak_activation_units);
    }

    #[test]
    fn makespan_bounded_below_by_critical_work() {
        let times = PassTimes::default();
        let sched = one_f_one_b(3, 8, times);
        let report = unit_run_barrier(&sched, times, 0.01);
        // No device can finish before its own total work.
        for d in 0..3 {
            assert!(report.makespan >= report.busy[d]);
            assert!((report.busy[d] - 8.0 * 3.0).abs() < 1e-9);
        }
    }
}
