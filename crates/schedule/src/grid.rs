//! The 2D device grid composing pipeline parallelism with Megatron-style
//! tensor parallelism.
//!
//! The paper's measured configurations (§6.2) compose vocabulary
//! parallelism with tensor parallelism exactly as Megatron-LM's PTD-P
//! composition does (Narayanan et al. 2021): devices form a grid of
//! `pp × tp` entries, where each *pipeline stage* is replicated across a
//! row of `tp` devices that shard every attention/MLP layer column- and
//! row-wise, rendezvousing in the classic `f`/`g` conjugate all-reduce
//! pairs. This module is the schedule-level half of that composition:
//!
//! * [`DeviceGrid`] — the layout. Global rank `pp_rank · tp + tp_rank`
//!   (tensor ranks innermost, matching Megatron's order so that a TP group
//!   always sits inside one node where the fast links are).
//! * [`ProcessGroup`] — an explicit member list for one collective
//!   communicator, tagged with its axis ([`GroupKind`]). Formed once from
//!   the grid; runtimes build one communicator per group.
//! * [`tp_ops`] — the derived per-pass TP collective metadata: which
//!   grid entries enter which group, in which order, for every scheduled
//!   `F`/`B` pass. `vp-check`'s grid lints consume this table, and seeded
//!   mutations of it drive the grid mutation suite.
//!
//! A 1D schedule is exactly the `tp = 1` column of the grid: every group
//! has a single member, every collective degenerates to a no-op, and the
//! runtime/simulator are required (and tested) to be bitwise identical to
//! the pre-grid code paths.

use crate::pass::{PassKind, Schedule};

/// A `pp × tp` device grid.
///
/// # Example
///
/// ```
/// use vp_schedule::grid::DeviceGrid;
///
/// let grid = DeviceGrid::new(4, 2);
/// assert_eq!(grid.devices(), 8);
/// assert_eq!(grid.global(1, 0), 2); // tp innermost
/// assert_eq!(grid.coords(5), (2, 1));
/// assert_eq!(grid.tp_group(1).ranks, vec![2, 3]);
/// assert_eq!(grid.pp_group(1).ranks, vec![1, 3, 5, 7]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceGrid {
    pp: usize,
    tp: usize,
}

impl DeviceGrid {
    /// Creates a grid of `pp` pipeline stages × `tp` tensor ranks.
    ///
    /// # Panics
    ///
    /// Panics if either axis is zero.
    pub fn new(pp: usize, tp: usize) -> Self {
        assert!(pp > 0 && tp > 0, "grid axes must be positive");
        DeviceGrid { pp, tp }
    }

    /// Pipeline depth (number of stages).
    pub fn pp(&self) -> usize {
        self.pp
    }

    /// Tensor-parallel width (devices per stage).
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Total device count `pp · tp`.
    pub fn devices(&self) -> usize {
        self.pp * self.tp
    }

    /// Global rank of grid entry `(pp_rank, tp_rank)`; tensor ranks are
    /// innermost (Megatron order).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    pub fn global(&self, pp_rank: usize, tp_rank: usize) -> usize {
        assert!(pp_rank < self.pp, "pp_rank {pp_rank} out of {}", self.pp);
        assert!(tp_rank < self.tp, "tp_rank {tp_rank} out of {}", self.tp);
        pp_rank * self.tp + tp_rank
    }

    /// Grid coordinates `(pp_rank, tp_rank)` of a global rank.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn coords(&self, global: usize) -> (usize, usize) {
        assert!(global < self.devices(), "global rank out of range");
        (global / self.tp, global % self.tp)
    }

    /// The tensor-parallel group (one grid *row*): all tensor ranks of
    /// pipeline stage `pp_rank`.
    ///
    /// # Panics
    ///
    /// Panics if `pp_rank` is out of range.
    pub fn tp_group(&self, pp_rank: usize) -> ProcessGroup {
        assert!(pp_rank < self.pp, "pp_rank out of range");
        ProcessGroup {
            kind: GroupKind::Tensor,
            index: pp_rank,
            ranks: (0..self.tp).map(|t| self.global(pp_rank, t)).collect(),
        }
    }

    /// The pipeline group (one grid *column*): the full pipeline seen by
    /// tensor rank `tp_rank`.
    ///
    /// # Panics
    ///
    /// Panics if `tp_rank` is out of range.
    pub fn pp_group(&self, tp_rank: usize) -> ProcessGroup {
        assert!(tp_rank < self.tp, "tp_rank out of range");
        ProcessGroup {
            kind: GroupKind::Pipeline,
            index: tp_rank,
            ranks: (0..self.pp).map(|p| self.global(p, tp_rank)).collect(),
        }
    }

    /// All tensor groups, one per pipeline stage.
    pub fn tp_groups(&self) -> Vec<ProcessGroup> {
        (0..self.pp).map(|p| self.tp_group(p)).collect()
    }

    /// All pipeline groups, one per tensor rank.
    pub fn pp_groups(&self) -> Vec<ProcessGroup> {
        (0..self.tp).map(|t| self.pp_group(t)).collect()
    }
}

/// Which grid axis a [`ProcessGroup`] spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// A grid row: the tensor ranks of one pipeline stage.
    Tensor,
    /// A grid column: one full pipeline at a fixed tensor rank.
    Pipeline,
}

impl GroupKind {
    /// Stable lower-case name for diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            GroupKind::Tensor => "tensor",
            GroupKind::Pipeline => "pipeline",
        }
    }
}

/// An explicit process group: the member list of one collective
/// communicator, as NCCL would form it from the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGroup {
    /// The axis this group spans.
    pub kind: GroupKind,
    /// Row index (tensor groups) or column index (pipeline groups).
    pub index: usize,
    /// Global ranks of the members, in group-rank order.
    pub ranks: Vec<usize>,
}

impl ProcessGroup {
    /// Number of members.
    pub fn world(&self) -> usize {
        self.ranks.len()
    }

    /// Whether `global` is a member.
    pub fn contains(&self, global: usize) -> bool {
        self.ranks.contains(&global)
    }

    /// The member's rank *within* the group, if it is a member.
    pub fn local_rank(&self, global: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == global)
    }
}

/// One TP collective a sharded transformer pass enters — the Megatron
/// `f`/`g` pattern gives two per forward (post-attention, post-MLP) and
/// two per backward, in reverse order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpOp {
    /// Forward all-reduce after the attention output projection (`g`).
    AttnForward,
    /// Forward all-reduce after the MLP down-projection (`g`).
    MlpForward,
    /// Backward all-reduce of the MLP input gradient (`f` conjugate).
    MlpBackward,
    /// Backward all-reduce of the attention input gradient (`f` conjugate).
    AttnBackward,
}

impl TpOp {
    /// Stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            TpOp::AttnForward => "attn-fwd",
            TpOp::MlpForward => "mlp-fwd",
            TpOp::MlpBackward => "mlp-bwd",
            TpOp::AttnBackward => "attn-bwd",
        }
    }

    /// The collectives a pass of `kind` enters, in execution order.
    pub fn of_pass(kind: PassKind) -> &'static [TpOp] {
        match kind {
            PassKind::F => &[TpOp::AttnForward, TpOp::MlpForward],
            PassKind::B => &[TpOp::MlpBackward, TpOp::AttnBackward],
            // W recomputes weight gradients from stashed activations —
            // no cross-rank rendezvous (Megatron's wgrad is local too).
            _ => &[],
        }
    }
}

/// One row of the derived TP collective table: grid entry `global`
/// (claiming membership of tensor group `group`) enters collective `op`
/// for `(microbatch, chunk)` as its `seq`-th TP rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpCollective {
    /// Global rank of the participant.
    pub global: usize,
    /// Tensor-group (row) index the participant enters under.
    pub group: usize,
    /// Position in this participant's TP rendezvous sequence.
    pub seq: usize,
    /// The collective's role in the block.
    pub op: TpOp,
    /// Microbatch of the originating pass.
    pub microbatch: u32,
    /// Model chunk of the originating pass.
    pub chunk: u8,
}

/// Derives the full TP collective participation table for `schedule`
/// replicated across the rows of `grid`.
///
/// The schedule's device axis is the *pipeline* axis (`schedule.devices()`
/// must equal `grid.pp()`); every tensor rank of a row executes the same
/// pass list, so each sharded pass contributes one entry per tensor rank
/// per collective. With `tp == 1` the table is the degenerate one-member
/// case every lint must accept.
///
/// # Panics
///
/// Panics if the schedule's device count does not match the grid's
/// pipeline depth.
pub fn tp_ops(schedule: &Schedule, grid: &DeviceGrid) -> Vec<TpCollective> {
    assert_eq!(
        schedule.devices(),
        grid.pp(),
        "schedule devices must equal the grid's pipeline depth"
    );
    let mut table = Vec::new();
    for pp_rank in 0..grid.pp() {
        for tp_rank in 0..grid.tp() {
            let global = grid.global(pp_rank, tp_rank);
            let mut seq = 0;
            for pass in schedule.passes(pp_rank) {
                for &op in TpOp::of_pass(pass.kind) {
                    table.push(TpCollective {
                        global,
                        group: pp_rank,
                        seq,
                        op,
                        microbatch: pass.microbatch,
                        chunk: pass.chunk,
                    });
                    seq += 1;
                }
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::pass::VocabVariant;

    #[test]
    fn global_and_coords_roundtrip() {
        let grid = DeviceGrid::new(4, 2);
        for g in 0..grid.devices() {
            let (p, t) = grid.coords(g);
            assert_eq!(grid.global(p, t), g);
        }
        // tp innermost: consecutive globals share a row.
        assert_eq!(grid.coords(0), (0, 0));
        assert_eq!(grid.coords(1), (0, 1));
        assert_eq!(grid.coords(2), (1, 0));
    }

    #[test]
    fn groups_partition_the_grid() {
        let grid = DeviceGrid::new(3, 4);
        let mut seen = vec![0usize; grid.devices()];
        for g in grid.tp_groups() {
            assert_eq!(g.kind, GroupKind::Tensor);
            assert_eq!(g.world(), 4);
            for &r in &g.ranks {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "rows must tile the grid");
        let mut seen = vec![0usize; grid.devices()];
        for g in grid.pp_groups() {
            assert_eq!(g.kind, GroupKind::Pipeline);
            assert_eq!(g.world(), 3);
            for &r in &g.ranks {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "columns must tile the grid");
    }

    #[test]
    fn local_rank_matches_position() {
        let grid = DeviceGrid::new(2, 3);
        let row = grid.tp_group(1);
        assert_eq!(row.local_rank(grid.global(1, 2)), Some(2));
        assert_eq!(row.local_rank(grid.global(0, 0)), None);
        assert!(row.contains(grid.global(1, 0)));
        assert!(!row.contains(grid.global(0, 1)));
    }

    #[test]
    fn degenerate_tp1_grid_is_the_flat_pipeline() {
        let grid = DeviceGrid::new(4, 1);
        for p in 0..4 {
            assert_eq!(grid.global(p, 0), p);
            assert_eq!(grid.tp_group(p).ranks, vec![p]);
        }
        assert_eq!(grid.pp_group(0).ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tp_ops_replicates_passes_across_rows() {
        let sched = generators::one_f_one_b(2, 3, Default::default());
        let grid = DeviceGrid::new(2, 2);
        let table = tp_ops(&sched, &grid);
        // Row peers see identical (op, microbatch, seq) sequences.
        let per_global = |g: usize| -> Vec<(usize, TpOp, u32)> {
            table
                .iter()
                .filter(|e| e.global == g)
                .map(|e| (e.seq, e.op, e.microbatch))
                .collect()
        };
        assert_eq!(per_global(0), per_global(1));
        assert_eq!(per_global(2), per_global(3));
        // Each F contributes 2 entries, each B contributes 2: per device
        // 3 microbatches × 4 = 12 entries.
        assert_eq!(per_global(0).len(), 12);
        // seq is dense per participant.
        let seqs: Vec<usize> = per_global(0).iter().map(|e| e.0).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn tp_ops_skips_non_sharded_passes() {
        let sched = generators::vocab_1f1b(2, 2, VocabVariant::Alg2, Default::default(), true);
        let grid = DeviceGrid::new(2, 1);
        let table = tp_ops(&sched, &grid);
        // S/T/InputF/InputB passes contribute nothing; only F and B do.
        let expected: usize = (0..2)
            .map(|d| {
                sched
                    .passes(d)
                    .iter()
                    .map(|p| TpOp::of_pass(p.kind).len())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(table.len(), expected);
        assert!(table.iter().all(|e| e.group == grid.coords(e.global).0));
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn tp_ops_rejects_mismatched_grid() {
        let sched = generators::one_f_one_b(4, 2, Default::default());
        let _ = tp_ops(&sched, &DeviceGrid::new(2, 2));
    }
}
