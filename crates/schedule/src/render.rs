//! ASCII rendering of pipeline schedules — the textual analogue of the
//! paper's schedule figures (1, 9, 10, 15, 16).

use crate::exec::ExecReport;
use crate::pass::{PassKind, Schedule};

/// Renders the executed schedule as one timeline row per device.
///
/// Time is binned into `width` columns across the makespan; each cell shows
/// the glyph of the pass running there (last writer wins within a bin) or
/// `.` when the device is idle. Vocabulary passes show as `S`/`T`,
/// interlaced output passes as `O`/`Q`, input passes as `i`/`j`.
pub fn render_timeline(schedule: &Schedule, report: &ExecReport, width: usize) -> String {
    let width = width.max(10);
    let scale = width as f64 / report.makespan;
    let mut out = String::new();
    for d in 0..schedule.devices() {
        let mut row = vec!['.'; width];
        for (i, pass) in schedule.passes(d).iter().enumerate() {
            let s = (report.start[d][i] * scale) as usize;
            let e = ((report.end[d][i] * scale) as usize).max(s + 1).min(width);
            for cell in row.iter_mut().take(e).skip(s.min(width - 1)) {
                *cell = pass.kind.glyph();
            }
        }
        out.push_str(&format!("dev {d:>2} |"));
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Renders the per-device pass orders compactly (first `limit` passes),
/// e.g. `F0 F1 B0 S0 F2 B1 T0 …`.
pub fn render_order(schedule: &Schedule, limit: usize) -> String {
    let mut out = String::new();
    for d in 0..schedule.devices() {
        out.push_str(&format!("dev {d:>2} |"));
        for pass in schedule.passes(d).iter().take(limit) {
            out.push(' ');
            out.push_str(&pass.to_string());
        }
        if schedule.passes(d).len() > limit {
            out.push_str(" …");
        }
        out.push('\n');
    }
    out
}

/// Renders a legend for the glyphs used by [`render_timeline`].
pub fn legend() -> String {
    let kinds = [
        (PassKind::F, "transformer forward"),
        (PassKind::B, "transformer backward"),
        (PassKind::W, "transformer weight grad"),
        (PassKind::S, "vocab output S pass"),
        (PassKind::S2, "vocab output F2 pass (naive)"),
        (PassKind::T, "vocab output T pass"),
        (PassKind::InputF, "vocab input forward"),
        (PassKind::InputB, "vocab input backward"),
        (PassKind::OutputF, "interlaced output forward"),
        (PassKind::OutputB, "interlaced output backward"),
    ];
    let mut out = String::from("legend: ");
    for (k, name) in kinds {
        out.push_str(&format!("{}={} ", k.glyph(), name));
    }
    out.push_str(".=idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::exec::{Executor, UnitCosts};
    use crate::generators::one_f_one_b;

    #[test]
    fn timeline_has_one_row_per_device() {
        let sched = one_f_one_b(3, 6, PassTimes::default());
        let costs = UnitCosts::new(PassTimes::default(), 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        let art = render_timeline(&sched, &report, 80);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('F') && art.contains('B'));
    }

    #[test]
    fn imbalanced_pipeline_shows_idle_cells() {
        // Figure 1's point: longer last-stage passes leave bubbles
        // elsewhere. Emulate via unit costs (warmup always idles dev 1).
        let sched = one_f_one_b(2, 4, PassTimes::default());
        let costs = UnitCosts::new(PassTimes::default(), 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        let art = render_timeline(&sched, &report, 60);
        assert!(art.contains('.'));
    }

    #[test]
    fn order_rendering_truncates() {
        let sched = one_f_one_b(2, 50, PassTimes::default());
        let art = render_order(&sched, 5);
        assert!(art.contains('…'));
        assert!(art.contains("F0"));
    }

    #[test]
    fn legend_mentions_all_glyphs() {
        let l = legend();
        for g in ['F', 'B', 'W', 'S', 'T', 'i', 'j', 'O', 'Q', 'Z'] {
            assert!(l.contains(g), "missing {g}");
        }
    }
}
