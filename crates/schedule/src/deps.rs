//! Cross-device dependency rules (§5.1) and schedule validation.
//!
//! The constraints encoded here are exactly the paper's:
//!
//! * `S` passes run after the forward of the last (virtual) transformer
//!   stage completes (`C0` broadcast of `X`).
//! * `T` passes run after *all* `S` passes (`C1` barrier; the naive
//!   grouping interposes `S2` with its extra barrier).
//! * For Algorithm 1 (and naive), the backward of the last transformer
//!   stage waits for all `T` passes (`C2` reduce of `∇X`); for Algorithm 2
//!   it waits only for all `S` passes, since `∇X` is assembled inside the
//!   single `C1` barrier and `T` is freely deferrable.
//! * Interlaced output passes synchronize all devices per microbatch.
//! * Sharded input-layer forwards must all complete (and all-reduce)
//!   before the first stage's forward; input-layer backwards wait for the
//!   first stage's backward to produce the embedding gradient.

use crate::pass::{
    placement_device_of, placement_stage_of, ChunkPlacement, PassKind, Schedule, ScheduleKind,
    ScheduledPass, VocabVariant,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Classification of a dependency edge, used by executors to attach
/// communication costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Activation transfer between adjacent stages (forward chain).
    ActivationP2p,
    /// Gradient transfer between adjacent stages (backward chain).
    GradP2p,
    /// `C0`: broadcast of the last transformer output to all shards.
    C0Broadcast,
    /// `C1`: all-reduce of softmax statistics (and, for Algorithm 2, the
    /// `∇X` reduce folded into the same barrier).
    C1Barrier,
    /// `C2`: reduce of `∇X` after the `T` passes (Algorithm 1 / naive).
    C2Reduce,
    /// Extra barrier of the naive grouping (between `S` and `S2`).
    NaiveBarrier,
    /// Synchronous tensor-parallel communication of the interlaced
    /// pipeline (blocks the compute stream).
    InterlacedSync,
    /// All-reduce of sharded input-layer outputs before the first stage.
    InputAllReduce,
    /// Broadcast of the embedding gradient to all input shards.
    InputGradBroadcast,
    /// Same-device data dependency (zero communication cost), e.g. the
    /// last stage's backward consuming its own forward's activations.
    Local,
}

/// A dependency: the pass at `(device, index)` must finish (plus the edge's
/// communication cost) before the dependent pass may start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dep {
    /// Producing device.
    pub device: usize,
    /// Index of the producing pass in its device's execution order.
    pub index: usize,
    /// Edge classification.
    pub kind: EdgeKind,
}

/// The dependency graph of a schedule: `preds[d][i]` lists the cross-device
/// prerequisites of pass `i` on device `d` (program order within a device
/// is implicit).
#[derive(Debug, Clone)]
pub struct DepGraph {
    preds: Vec<Vec<Vec<Dep>>>,
}

impl DepGraph {
    /// Prerequisites of pass `i` on device `d`.
    pub fn preds(&self, d: usize, i: usize) -> &[Dep] {
        &self.preds[d][i]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().flatten().map(Vec::len).sum()
    }
}

/// Errors produced by schedule validation.
///
/// Each variant's message carries the stable diagnostic code the `vp-check`
/// static analyzer assigns to the same defect class (`VP0001` deadlock,
/// `VP0002` missing pass, `VP0003` duplicate pass), so dynamic validation
/// failures and static diagnostics read the same.
#[derive(Debug, Clone, PartialEq)]
pub enum DepError {
    /// A pass another pass depends on does not exist in the schedule.
    MissingPass {
        /// Human-readable description of the missing pass.
        what: String,
    },
    /// A pass appears more than once on a device.
    DuplicatePass {
        /// Device index.
        device: usize,
        /// The duplicated pass.
        pass: ScheduledPass,
    },
    /// Execution cannot make progress: a set of passes wait on each other
    /// in a cycle through program order and the §5.1 dependency rules.
    Deadlock {
        /// Device of the first pass on the extracted cycle.
        device: usize,
        /// The first pass on the extracted cycle.
        pass: ScheduledPass,
        /// The minimal happens-before cycle: each step's pass must finish
        /// before the next step's pass may start, and the last must finish
        /// before the first — an impossibility.
        cycle: Vec<crate::hb::CycleStep>,
    },
}

impl fmt::Display for DepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepError::MissingPass { what } => write!(f, "[VP0002] missing pass: {what}"),
            DepError::DuplicatePass { device, pass } => {
                write!(f, "[VP0003] duplicate pass {pass} on device {device}")
            }
            DepError::Deadlock {
                device,
                pass,
                cycle,
            } => {
                write!(
                    f,
                    "[VP0001] deadlock: {pass} on device {device} waits on itself through a \
                     {}-pass cycle: ",
                    cycle.len()
                )?;
                for (i, step) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(
                        f,
                        "{} [device {}, slot {}] ({})",
                        step.pass,
                        step.device,
                        step.slot,
                        step.edge.describe()
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DepError {}

/// Identity of a pass: kind, microbatch, chunk, device.
pub type Key = (PassKind, u32, u8, usize);

/// Structural description of a schedule, sufficient to derive the logical
/// dependency rules without a concrete pass ordering. Used both by
/// [`build_deps`] and by the greedy synthesizer in [`crate::synth`].
#[derive(Debug, Clone, Copy)]
pub struct DepContext {
    /// Schedule family.
    pub kind: ScheduleKind,
    /// Number of pipeline devices.
    pub devices: usize,
    /// Virtual chunks per device.
    pub chunks: u8,
    /// Virtual-stage placement for multi-chunk schedules.
    pub placement: ChunkPlacement,
    /// Whether sharded input-layer passes are present.
    pub has_input: bool,
}

impl DepContext {
    /// Derives the context from a concrete schedule.
    pub fn of(schedule: &Schedule) -> Self {
        let has_input =
            (0..schedule.devices()).any(|d| schedule.count_kind(d, PassKind::InputF) > 0);
        DepContext {
            kind: schedule.kind(),
            devices: schedule.devices(),
            chunks: schedule.chunks(),
            placement: schedule.placement(),
            has_input,
        }
    }

    fn virtual_stages(&self) -> usize {
        self.devices * self.chunks as usize
    }

    fn device_of_virtual_stage(&self, stage: usize) -> (usize, u8) {
        placement_device_of(self.placement, self.devices, stage)
    }

    fn virtual_stage_of(&self, device: usize, chunk: u8) -> usize {
        placement_stage_of(self.placement, self.devices, device, chunk)
    }

    /// The logical prerequisites of `pass` running on `device`, as
    /// `(producer key, edge kind)` pairs — the §5.1 constraints.
    pub fn logical_preds(&self, pass: &ScheduledPass, device: usize) -> Vec<(Key, EdgeKind)> {
        let p = self.devices;
        let mb = pass.microbatch;
        let last_vs = self.virtual_stages() - 1;
        let mut out = Vec::new();
        match pass.kind {
            PassKind::F => {
                let vs = self.virtual_stage_of(device, pass.chunk);
                if vs == 0 {
                    if self.has_input {
                        for src in 0..p {
                            out.push(((PassKind::InputF, mb, 0, src), EdgeKind::InputAllReduce));
                        }
                    }
                } else {
                    let (pd, pc) = self.device_of_virtual_stage(vs - 1);
                    out.push(((PassKind::F, mb, pc, pd), EdgeKind::ActivationP2p));
                }
            }
            PassKind::B => {
                let vs = self.virtual_stage_of(device, pass.chunk);
                if vs == last_vs {
                    out.push(((PassKind::F, mb, pass.chunk, device), EdgeKind::Local));
                    match self.kind {
                        ScheduleKind::Plain => {}
                        ScheduleKind::Vocab(variant) => {
                            let (gate, kind) = match variant {
                                VocabVariant::Alg2 => (PassKind::S, EdgeKind::C1Barrier),
                                VocabVariant::Alg1 | VocabVariant::Naive => {
                                    (PassKind::T, EdgeKind::C2Reduce)
                                }
                            };
                            for src in 0..p {
                                out.push(((gate, mb, 0, src), kind));
                            }
                        }
                        ScheduleKind::Interlaced => {
                            for src in 0..p {
                                out.push((
                                    (PassKind::OutputB, mb, 0, src),
                                    EdgeKind::InterlacedSync,
                                ));
                            }
                        }
                    }
                } else {
                    let (nd, nc) = self.device_of_virtual_stage(vs + 1);
                    out.push(((PassKind::B, mb, nc, nd), EdgeKind::GradP2p));
                }
            }
            PassKind::W => {
                out.push(((PassKind::B, mb, pass.chunk, device), EdgeKind::Local));
            }
            PassKind::S | PassKind::OutputF => {
                let (ld, lc) = self.device_of_virtual_stage(last_vs);
                let kind = if pass.kind == PassKind::S {
                    EdgeKind::C0Broadcast
                } else {
                    EdgeKind::InterlacedSync
                };
                out.push(((PassKind::F, mb, lc, ld), kind));
            }
            PassKind::S2 => {
                for src in 0..p {
                    out.push(((PassKind::S, mb, 0, src), EdgeKind::NaiveBarrier));
                }
            }
            PassKind::T => {
                let (gate, kind) = match self.kind {
                    ScheduleKind::Vocab(VocabVariant::Naive) => {
                        (PassKind::S2, EdgeKind::NaiveBarrier)
                    }
                    _ => (PassKind::S, EdgeKind::C1Barrier),
                };
                for src in 0..p {
                    out.push(((gate, mb, 0, src), kind));
                }
            }
            PassKind::OutputB => {
                for src in 0..p {
                    out.push(((PassKind::OutputF, mb, 0, src), EdgeKind::InterlacedSync));
                }
            }
            PassKind::InputF => {}
            PassKind::InputB => {
                let (fd, fc) = self.device_of_virtual_stage(0);
                out.push(((PassKind::B, mb, fc, fd), EdgeKind::InputGradBroadcast));
            }
        }
        out
    }
}

/// One synchronous (rendezvous) collective instance: every participant's
/// call runs *inline on its device thread* and blocks until all
/// participants arrive — unlike the stream-offloaded barriers of training,
/// whose results are consumed by a later pass.
///
/// The dependency edges of [`DepContext::logical_preds`] model a
/// collective asymmetrically: the consumer waits for the producers, but a
/// producer never waits for its peers. That is faithful for training,
/// where `S` *submits* the `C1` barrier to the comm stream and only the
/// `T`/`B` passes block on its result. It is **not** faithful for the
/// decode engine, whose `S` pass calls the sampling all-gather
/// synchronously: the device sits inside the collective until every shard
/// arrives, so all of its later sends are blocked too. A schedule can be
/// acyclic under the asymmetric model yet deadlock under the blocking one
/// (the PR-8 serving deadlock). [`crate::hb::HbGraph::with_rendezvous`]
/// closes the gap by adding arrival edges for these instances.
#[derive(Debug, Clone)]
pub struct SyncCollective {
    /// The collective class of the instance.
    pub class: crate::facts::CollectiveClass,
    /// The microbatch (request slot) the instance serves.
    pub microbatch: u32,
    /// Participating calls as `(device, slot)`, ascending by device.
    pub sites: Vec<(usize, usize)>,
}

/// The collective instances a schedule executes synchronously on the
/// device threads, i.e. as true rendezvous.
///
/// In training mode (`forward_only == false`) this is empty: the runtime
/// offloads every vocabulary barrier to the comm stream (`S` submits `C1`,
/// `T` consumes it later), so the asymmetric dependency edges are already
/// faithful. In forward-only decode mode, each `S` pass performs the
/// sampling barrier (`C1`, an all-gather of shard top-k stats) inline in
/// the device thread — one rendezvous instance per request slot, entered
/// by every device's `S` of that slot.
///
/// The exception inside decode mode is the *overlapped* family
/// ([`crate::generators::decode_pipeline_overlap`]): a slot that also
/// schedules a `T` pass runs its `S` exactly like training — submit to the
/// comm stream, return immediately — and the deferred `T` merge blocks on
/// the result. For those slots the asymmetric `T ← every S` edges are
/// faithful, so no rendezvous instance is emitted; slots without a `T`
/// keep the inline-barrier semantics. The two styles can in principle
/// coexist in one schedule, which is why the decision is per slot rather
/// than per schedule.
pub fn sync_collectives(schedule: &Schedule, forward_only: bool) -> Vec<SyncCollective> {
    if !forward_only {
        return Vec::new();
    }
    let mut deferred: HashSet<u32> = HashSet::new();
    for (_, _, pass) in schedule.iter_all() {
        if pass.kind == PassKind::T {
            deferred.insert(pass.microbatch);
        }
    }
    let mut by_mb: HashMap<u32, Vec<(usize, usize)>> = HashMap::new();
    for (d, i, pass) in schedule.iter_all() {
        if pass.kind == PassKind::S && !deferred.contains(&pass.microbatch) {
            by_mb.entry(pass.microbatch).or_default().push((d, i));
        }
    }
    let mut out: Vec<SyncCollective> = by_mb
        .into_iter()
        .map(|(microbatch, mut sites)| {
            sites.sort_unstable();
            SyncCollective {
                class: crate::facts::CollectiveClass::C1,
                microbatch,
                sites,
            }
        })
        .collect();
    out.sort_by_key(|c| c.microbatch);
    out
}

fn index_schedule(schedule: &Schedule) -> Result<HashMap<Key, (usize, usize)>, DepError> {
    let mut map = HashMap::with_capacity(schedule.total_passes());
    for (d, i, pass) in schedule.iter_all() {
        let key = (pass.kind, pass.microbatch, pass.chunk, d);
        if map.insert(key, (d, i)).is_some() {
            return Err(DepError::DuplicatePass {
                device: d,
                pass: *pass,
            });
        }
    }
    Ok(map)
}

/// Builds the dependency graph of a schedule according to its
/// [`ScheduleKind`]'s rules.
///
/// # Errors
///
/// Returns [`DepError::MissingPass`] if a rule references a pass the
/// schedule does not contain, or [`DepError::DuplicatePass`] for repeated
/// passes.
pub fn build_deps(schedule: &Schedule) -> Result<DepGraph, DepError> {
    let map = index_schedule(schedule)?;
    let ctx = DepContext::of(schedule);
    let p = schedule.devices();
    let mut preds: Vec<Vec<Vec<Dep>>> = (0..p)
        .map(|d| vec![Vec::new(); schedule.passes(d).len()])
        .collect();
    for (d, i, pass) in schedule.iter_all() {
        for (key, kind) in ctx.logical_preds(pass, d) {
            let (pd, pi) = map
                .get(&key)
                .copied()
                .ok_or_else(|| DepError::MissingPass {
                    what: format!(
                        "{:?} mb={} chunk={} on device {} (needed by {pass} on device {d})",
                        key.0, key.1, key.2, key.3
                    ),
                })?;
            preds[d][i].push(Dep {
                device: pd,
                index: pi,
                kind,
            });
        }
    }
    Ok(DepGraph { preds })
}

/// Validates a schedule: builds its dependency graph and checks that the
/// per-device execution orders can run to completion without deadlock
/// (acyclicity of the happens-before graph, [`crate::hb`]).
///
/// # Errors
///
/// Returns the first [`DepError`] encountered. A deadlock error carries
/// the minimal happens-before cycle extracted by
/// [`crate::hb::HbGraph::minimal_cycle`], naming the exact passes that
/// wait on each other.
pub fn validate(schedule: &Schedule) -> Result<DepGraph, DepError> {
    let graph = build_deps(schedule)?;
    let hb = crate::hb::HbGraph::new(schedule, &graph);
    if let Some(cycle) = hb.minimal_cycle() {
        let head = cycle.first().expect("cycles are non-empty");
        return Err(DepError::Deadlock {
            device: head.device,
            pass: head.pass,
            cycle,
        });
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::generators::{interlaced_1f1b, one_f_one_b, vhalf, vhalf_vocab, vocab_1f1b};

    #[test]
    fn plain_1f1b_validates() {
        let sched = one_f_one_b(4, 8, PassTimes::default());
        let graph = validate(&sched).unwrap();
        assert!(graph.edge_count() > 0);
    }

    #[test]
    fn vocab_schedules_validate_for_all_variants() {
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            for include_input in [false, true] {
                let sched = vocab_1f1b(4, 8, variant, PassTimes::default(), include_input);
                validate(&sched)
                    .unwrap_or_else(|e| panic!("{variant:?} input={include_input}: {e}"));
            }
        }
    }

    #[test]
    fn interlaced_validates() {
        validate(&interlaced_1f1b(6, 12, PassTimes::default())).unwrap();
    }

    #[test]
    fn vhalf_validates() {
        validate(&vhalf(4, 8, PassTimes::default())).unwrap();
        let times = PassTimes {
            w: 1.0,
            b: 1.0,
            ..PassTimes::default()
        };
        validate(&vhalf(4, 8, times)).unwrap();
    }

    #[test]
    fn vhalf_vocab_validates_with_input() {
        let sched = vhalf_vocab(4, 8, VocabVariant::Alg1, PassTimes::default(), true);
        validate(&sched).unwrap();
    }

    #[test]
    fn missing_pass_is_reported() {
        use crate::pass::{Schedule, ScheduledPass};
        // Device 1's F depends on device 0's F, which is absent.
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![], vec![ScheduledPass::new(PassKind::F, 0)]],
        );
        assert!(matches!(
            build_deps(&sched),
            Err(DepError::MissingPass { .. })
        ));
    }

    #[test]
    fn duplicate_pass_is_reported() {
        use crate::pass::{Schedule, ScheduledPass};
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![
                ScheduledPass::new(PassKind::F, 0),
                ScheduledPass::new(PassKind::F, 0),
            ]],
        );
        assert!(matches!(
            build_deps(&sched),
            Err(DepError::DuplicatePass { .. })
        ));
    }

    #[test]
    fn inverted_order_deadlocks() {
        use crate::pass::{Schedule, ScheduledPass};
        // Two devices, each wanting the other's pass first: device 1 has
        // B0 before F0 — its B waits for its own F placed later (via the
        // backward chain through device 0's B, which waits for F on
        // device 1... constructing a real cycle:
        // dev0: [F0, B0]; dev1: [B0, F0]. dev1.B0 needs dev1.F0 (program
        // order violated through the cross-device chain).
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![
                    ScheduledPass::new(PassKind::B, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ],
            ],
        );
        // dev0.B0 depends on dev1.B0 (grad chain); dev1.B0 is first in its
        // order but is the *last* virtual stage backward requiring its own
        // F0 which is behind it → deadlock.
        assert!(matches!(validate(&sched), Err(DepError::Deadlock { .. })));
    }

    #[test]
    fn alg2_backward_does_not_wait_for_t() {
        let sched = vocab_1f1b(3, 4, VocabVariant::Alg2, PassTimes::default(), false);
        let graph = build_deps(&sched).unwrap();
        // Find the last-stage B of microbatch 0 and check its gates are S
        // passes, not T passes.
        let d = 2;
        let (i, _) = sched
            .passes(d)
            .iter()
            .enumerate()
            .find(|(_, p)| p.kind == PassKind::B && p.microbatch == 0)
            .unwrap();
        let kinds: Vec<EdgeKind> = graph.preds(d, i).iter().map(|dep| dep.kind).collect();
        assert!(kinds.contains(&EdgeKind::C1Barrier));
        assert!(!kinds.contains(&EdgeKind::C2Reduce));
    }

    #[test]
    fn alg1_backward_waits_for_t() {
        let sched = vocab_1f1b(3, 4, VocabVariant::Alg1, PassTimes::default(), false);
        let graph = build_deps(&sched).unwrap();
        let d = 2;
        let (i, _) = sched
            .passes(d)
            .iter()
            .enumerate()
            .find(|(_, p)| p.kind == PassKind::B && p.microbatch == 0)
            .unwrap();
        let kinds: Vec<EdgeKind> = graph.preds(d, i).iter().map(|dep| dep.kind).collect();
        assert!(kinds.contains(&EdgeKind::C2Reduce));
    }
}
