#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Pipeline schedules as data: passes, building blocks, generators,
//! dependency validation and a deterministic list-scheduling executor.
//!
//! The paper's §5 integrates vocabulary passes into existing pipeline
//! schedules by modifying their *building blocks* (Qi et al. 2024): a
//! schedule is the uniform repetition of a per-microbatch pattern, and its
//! peak activation memory is `lifespan / interval` of that pattern. This
//! crate implements that framework end to end:
//!
//! * [`pass`] — typed pipeline passes ([`PassKind`]): transformer `F`/`B`/`W`,
//!   the vocabulary passes `S`/`S2`/`T`, sharded input-layer passes and the
//!   interlaced (tensor-parallel style) output passes.
//! * [`block`] — building blocks with per-device pass offsets, repeat
//!   interval, lifespan and the analytic activation-memory bound; uniform
//!   repetition generates a [`Schedule`].
//! * [`generators`] — 1F1B (plain, Vocab-1/Vocab-2/naive, interlaced) and
//!   V-Half (plain, Vocab-1) blocks, parameterized by relative pass times.
//! * [`deps`] — the §5.1 scheduling constraints as an explicit cross-device
//!   dependency relation, plus a validator (completeness and
//!   deadlock-freedom of the per-device orderings).
//! * [`hb`] — the happens-before graph (program order + dependency edges)
//!   with minimal-cycle extraction, so a deadlock names the exact passes
//!   forming the cycle.
//! * [`facts`] — static buffer/communication facts: what each pass reads
//!   and writes, and which collective class each edge realizes. Consumed
//!   by the `vp-check` static analyzer.
//! * [`grid`] — the 2D `pp × tp` device grid ([`grid::DeviceGrid`]) with
//!   explicit process groups and the derived per-pass tensor-parallel
//!   collective table, composing the paper's vocabulary passes with
//!   Megatron-style tensor parallelism (PTD-P).
//! * [`exec`] — a deterministic executor that replays a schedule under a
//!   [`exec::Costs`] provider, yielding per-pass times, iteration time,
//!   bubble fraction and per-device resident-microbatch (activation) peaks.
//! * [`render`] — ASCII timelines (the analogue of the paper's Figures 1,
//!   9, 10, 15 and 16).
//! * [`trace`] — Chrome trace-event (Perfetto) export of executed
//!   schedules.
//! * [`analysis`] — idle-time decomposition (warm-up / stall / drain) and
//!   per-pass-kind time budgets.

pub mod analysis;
pub mod block;
pub mod deps;
pub mod exec;
pub mod facts;
pub mod generators;
pub mod grid;
pub mod hb;
pub mod pass;
pub mod render;
pub mod synth;
pub mod trace;

pub use block::{BuildingBlock, PassTimes};
pub use deps::{validate, DepError};
pub use exec::{ExecReport, Executor, UnitCosts};
pub use generators::{interlaced_1f1b, one_f_one_b, vhalf, vhalf_vocab, vocab_1f1b};
pub use grid::{DeviceGrid, GroupKind, ProcessGroup};
pub use pass::{PassKind, Schedule, ScheduledPass, VocabVariant};
