//! The happens-before graph of a schedule, with minimal-cycle extraction.
//!
//! Nodes are `(device, slot)` pairs — one per scheduled pass. Edges are
//! each device's program order (a device runs its slots strictly in
//! sequence) plus the cross-device dependency edges of [`crate::deps`].
//! Acyclicity of this graph is exactly deadlock freedom of the
//! thread-per-stage runtime; a cycle is a set of passes that all wait on
//! each other. The minimal-cycle extractor turns "the schedule is stuck"
//! into a witness naming the exact passes that form the smallest such
//! loop, which is what `vp-check` reports as diagnostic `VP0001`.
//!
//! [`HbGraph::with_rendezvous`] additionally models *blocking sends*: for
//! collectives a schedule executes synchronously on the device thread
//! (the decode engine's sampling barrier — [`crate::deps::sync_collectives`]),
//! each participant's call also waits for every peer's device to *reach*
//! its matching call. Cycles that appear only in this graph are real
//! runtime deadlocks the asymmetric model misses (`vp-check`'s `VP0017`).

use crate::deps::{DepGraph, EdgeKind, SyncCollective};
use crate::facts::CollectiveClass;
use crate::pass::{Schedule, ScheduledPass};

/// Why one pass must precede another in the happens-before graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbEdge {
    /// Same-device program order: a device runs its slots in sequence.
    Program,
    /// A cross-device dependency edge of [`crate::deps`].
    Dep(EdgeKind),
    /// A rendezvous arrival: the source pass is the program-order
    /// predecessor of one participant's entry into a synchronous
    /// collective, and the target is another participant's call into the
    /// *same* instance. The target cannot return — and hence nothing after
    /// it on its device can run, including its later sends — until every
    /// participant's device reaches its matching call, which requires the
    /// source to finish first. Only present in graphs built by
    /// [`HbGraph::with_rendezvous`].
    Rendezvous(CollectiveClass),
}

impl HbEdge {
    /// Short human label used in cycle reports.
    pub fn describe(self) -> &'static str {
        match self {
            HbEdge::Program => "program order",
            HbEdge::Dep(EdgeKind::ActivationP2p) => "activation send/recv",
            HbEdge::Dep(EdgeKind::GradP2p) => "gradient send/recv",
            HbEdge::Dep(EdgeKind::C0Broadcast) => "C0 broadcast",
            HbEdge::Dep(EdgeKind::C1Barrier) => "C1 barrier",
            HbEdge::Dep(EdgeKind::C2Reduce) => "C2 reduce",
            HbEdge::Dep(EdgeKind::NaiveBarrier) => "naive S/S2 barrier",
            HbEdge::Dep(EdgeKind::InterlacedSync) => "interlaced sync",
            HbEdge::Dep(EdgeKind::InputAllReduce) => "input all-reduce",
            HbEdge::Dep(EdgeKind::InputGradBroadcast) => "input grad broadcast",
            HbEdge::Dep(EdgeKind::Local) => "local data dependency",
            HbEdge::Rendezvous(CollectiveClass::C0) => "C0 rendezvous arrival",
            HbEdge::Rendezvous(CollectiveClass::C1) => "C1 rendezvous arrival",
            HbEdge::Rendezvous(CollectiveClass::C2) => "C2 rendezvous arrival",
            HbEdge::Rendezvous(CollectiveClass::Naive) => "naive rendezvous arrival",
            HbEdge::Rendezvous(CollectiveClass::InputAllReduce) => {
                "input all-reduce rendezvous arrival"
            }
            HbEdge::Rendezvous(CollectiveClass::InputGradBroadcast) => {
                "input grad broadcast rendezvous arrival"
            }
            HbEdge::Rendezvous(CollectiveClass::InterlacedSync) => "interlaced rendezvous arrival",
        }
    }

    /// Whether this is a rendezvous arrival edge (present only under
    /// blocking-send semantics).
    pub fn is_rendezvous(self) -> bool {
        matches!(self, HbEdge::Rendezvous(_))
    }
}

/// One step of a deadlock cycle: the pass at `(device, slot)` must finish
/// before the *next* step's pass can run (the last step precedes the
/// first), yet program order or the dependency rules place it after.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStep {
    /// Device of this step's pass.
    pub device: usize,
    /// Slot of this step's pass in its device's execution order.
    pub slot: usize,
    /// The pass itself.
    pub pass: ScheduledPass,
    /// Why this pass must precede the next step's pass.
    pub edge: HbEdge,
}

/// The happens-before graph over every scheduled pass.
#[derive(Debug, Clone)]
pub struct HbGraph {
    /// `offsets[d]` is the node id of `(d, 0)`; node ids are contiguous
    /// per device.
    offsets: Vec<usize>,
    nodes: Vec<(usize, usize, ScheduledPass)>,
    /// Forward adjacency: `succs[v]` lists `(w, edge)` with `v` before `w`.
    succs: Vec<Vec<(usize, HbEdge)>>,
    /// Number of happens-before predecessors per node (for Kahn peeling).
    pred_count: Vec<usize>,
}

impl HbGraph {
    /// Builds the happens-before graph from a schedule and its dependency
    /// graph (as produced by [`crate::deps::build_deps`]).
    pub fn new(schedule: &Schedule, deps: &DepGraph) -> HbGraph {
        let p = schedule.devices();
        let mut offsets = Vec::with_capacity(p);
        let mut nodes = Vec::new();
        for d in 0..p {
            offsets.push(nodes.len());
            for (i, pass) in schedule.passes(d).iter().enumerate() {
                nodes.push((d, i, *pass));
            }
        }
        let n = nodes.len();
        let mut succs: Vec<Vec<(usize, HbEdge)>> = vec![Vec::new(); n];
        let mut pred_count = vec![0usize; n];
        for d in 0..p {
            let len = schedule.passes(d).len();
            for i in 0..len {
                let v = offsets[d] + i;
                if i + 1 < len {
                    succs[v].push((v + 1, HbEdge::Program));
                    pred_count[v + 1] += 1;
                }
            }
            for i in 0..len {
                let v = offsets[d] + i;
                for dep in deps.preds(d, i) {
                    let u = offsets[dep.device] + dep.index;
                    succs[u].push((v, HbEdge::Dep(dep.kind)));
                    pred_count[v] += 1;
                }
            }
        }
        HbGraph {
            offsets,
            nodes,
            succs,
            pred_count,
        }
    }

    /// Builds the rendezvous-faithful happens-before graph: the base graph
    /// of [`HbGraph::new`] plus one *arrival edge* per ordered participant
    /// pair of every synchronous collective instance.
    ///
    /// A participant's call into a rendezvous collective only returns once
    /// every other participant's device *reaches* its matching call. So
    /// for participants `A` and `B` of one instance, `A`'s call must
    /// happen-after `B`'s program-order predecessor (the pass `B`'s device
    /// must finish to arrive). No edge is added when `B`'s call is its
    /// device's first slot — that device arrives unconditionally. The
    /// arrival edges never connect two calls of the same instance
    /// directly, so a well-formed instance adds no trivial cycle; a cycle
    /// that exists in this graph but not in the base graph is a deadlock
    /// only blocking-send semantics exposes (`vp-check`'s `VP0017`).
    pub fn with_rendezvous(
        schedule: &Schedule,
        deps: &DepGraph,
        sync: &[SyncCollective],
    ) -> HbGraph {
        let mut g = HbGraph::new(schedule, deps);
        for inst in sync {
            for &(ad, aslot) in &inst.sites {
                for &(bd, bslot) in &inst.sites {
                    if (bd, bslot) == (ad, aslot) || bslot == 0 {
                        continue;
                    }
                    let u = g.offsets[bd] + bslot - 1;
                    let v = g.offsets[ad] + aslot;
                    g.succs[u].push((v, HbEdge::Rendezvous(inst.class)));
                    g.pred_count[v] += 1;
                }
            }
        }
        g
    }

    /// Number of nodes (scheduled passes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node id of pass `slot` on `device`.
    pub fn id(&self, device: usize, slot: usize) -> usize {
        self.offsets[device] + slot
    }

    /// The `(device, slot, pass)` of a node id.
    pub fn node(&self, id: usize) -> (usize, usize, ScheduledPass) {
        self.nodes[id]
    }

    /// Happens-before successors of a node.
    pub fn succs(&self, id: usize) -> &[(usize, HbEdge)] {
        &self.succs[id]
    }

    /// A topological order of the graph, or `None` if it contains a cycle
    /// (the schedule deadlocks).
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let (order, _) = self.kahn();
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Kahn peeling: returns the peeled order plus the residual in-degree
    /// vector (nonzero entries mark the cyclic core).
    fn kahn(&self) -> (Vec<usize>, Vec<usize>) {
        let mut indeg = self.pred_count.clone();
        let mut order: Vec<usize> = (0..self.nodes.len()).filter(|&v| indeg[v] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &(w, _) in &self.succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    order.push(w);
                }
            }
        }
        (order, indeg)
    }

    /// Extracts a minimal happens-before cycle, or `None` if the graph is
    /// acyclic.
    ///
    /// The cycle is minimal in the number of passes involved: among all
    /// cycles of the graph, a shortest one is returned (breaking ties
    /// towards lower device/slot ids), so a deadlock report names only the
    /// passes that actually form the loop, not everything transitively
    /// stuck behind it.
    pub fn minimal_cycle(&self) -> Option<Vec<CycleStep>> {
        let (_, indeg) = self.kahn();
        // The cyclic core: nodes Kahn could not peel.
        let core: Vec<usize> = (0..self.nodes.len()).filter(|&v| indeg[v] > 0).collect();
        if core.is_empty() {
            return None;
        }
        let mut in_core = vec![false; self.nodes.len()];
        for &v in &core {
            in_core[v] = true;
        }
        // Shortest cycle through any core node: BFS within the core from
        // each start, looking for the start itself.
        let mut best: Option<Vec<(usize, HbEdge)>> = None;
        for &start in &core {
            if let Some(cycle) = self.shortest_cycle_through(start, &in_core) {
                let better = match &best {
                    None => true,
                    Some(b) => cycle.len() < b.len(),
                };
                if better {
                    best = Some(cycle);
                }
            }
        }
        best.map(|steps| {
            steps
                .into_iter()
                .map(|(v, edge)| {
                    let (device, slot, pass) = self.nodes[v];
                    CycleStep {
                        device,
                        slot,
                        pass,
                        edge,
                    }
                })
                .collect()
        })
    }

    /// BFS from `start` (restricted to core nodes) back to `start`; returns
    /// the cycle as `(node, edge-to-next)` steps, or `None` if `start` is
    /// not on a cycle.
    fn shortest_cycle_through(
        &self,
        start: usize,
        in_core: &[bool],
    ) -> Option<Vec<(usize, HbEdge)>> {
        let n = self.nodes.len();
        let mut parent: Vec<Option<(usize, HbEdge)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &(w, edge) in &self.succs[v] {
                if !in_core[w] {
                    continue;
                }
                if w == start {
                    // Reconstruct start -> ... -> v, then close with edge.
                    let mut rev = vec![(v, edge)];
                    let mut cur = v;
                    while cur != start {
                        let (prev, e) = parent[cur].expect("BFS parent chain");
                        rev.push((prev, e));
                        cur = prev;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some((v, edge));
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::deps::build_deps;
    use crate::generators::{one_f_one_b, vocab_1f1b};
    use crate::pass::{PassKind, Schedule, ScheduleKind, VocabVariant};

    #[test]
    fn valid_schedule_has_topo_order_and_no_cycle() {
        let sched = vocab_1f1b(4, 6, VocabVariant::Alg2, PassTimes::default(), true);
        let deps = build_deps(&sched).unwrap();
        let hb = HbGraph::new(&sched, &deps);
        assert_eq!(hb.len(), sched.total_passes());
        let topo = hb.topo_order().expect("acyclic");
        assert_eq!(topo.len(), hb.len());
        assert!(hb.minimal_cycle().is_none());
        // Topo order respects every edge.
        let mut rank = vec![0usize; hb.len()];
        for (r, &v) in topo.iter().enumerate() {
            rank[v] = r;
        }
        for v in 0..hb.len() {
            for &(w, _) in hb.succs(v) {
                assert!(rank[v] < rank[w]);
            }
        }
    }

    #[test]
    fn inverted_order_yields_minimal_cycle() {
        // dev0: [F0, B0]; dev1: [B0, F0] — device 1's backward (last
        // virtual stage) needs its own forward, which program order puts
        // after it: a 2-node cycle.
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![
                    ScheduledPass::new(PassKind::B, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ],
            ],
        );
        let deps = build_deps(&sched).unwrap();
        let hb = HbGraph::new(&sched, &deps);
        assert!(hb.topo_order().is_none());
        let cycle = hb.minimal_cycle().expect("deadlocked schedule");
        assert_eq!(cycle.len(), 2, "{cycle:?}");
        assert!(cycle.iter().all(|s| s.device == 1));
        let kinds: Vec<PassKind> = cycle.iter().map(|s| s.pass.kind).collect();
        assert!(kinds.contains(&PassKind::F) && kinds.contains(&PassKind::B));
    }

    #[test]
    fn cycle_is_minimal_not_everything_stuck() {
        // A long valid 1F1B prefix plus one swapped F/B pair on the last
        // device: the cycle must involve only the swapped neighborhood,
        // not all m microbatches.
        let sched = one_f_one_b(4, 8, PassTimes::default());
        let mut passes: Vec<Vec<_>> = (0..4).map(|d| sched.passes(d).to_vec()).collect();
        let d = 3;
        let fi = passes[d]
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 5)
            .unwrap();
        let bi = passes[d]
            .iter()
            .position(|p| p.kind == PassKind::B && p.microbatch == 5)
            .unwrap();
        passes[d].swap(fi, bi);
        let mutated = Schedule::new(ScheduleKind::Plain, 8, 1, passes);
        let deps = build_deps(&mutated).unwrap();
        let hb = HbGraph::new(&mutated, &deps);
        let cycle = hb.minimal_cycle().expect("swap deadlocks");
        assert!(
            cycle.len() <= 4,
            "cycle should be local to the swap: {cycle:?}"
        );
        assert!(cycle.iter().any(|s| s.pass.microbatch == 5));
    }

    #[test]
    fn hoisted_decode_stays_acyclic_under_rendezvous_edges() {
        use crate::deps::sync_collectives;
        use crate::generators::decode_pipeline;
        for p in [1usize, 2, 4] {
            for m in [1u32, 2, 3, 8] {
                let sched = decode_pipeline(p, m);
                let deps = build_deps(&sched).unwrap();
                let sync = sync_collectives(&sched, true);
                assert_eq!(sync.len(), m as usize);
                let hb = HbGraph::with_rendezvous(&sched, &deps, &sync);
                assert!(
                    hb.topo_order().is_some(),
                    "p={p} m={m}: {:?}",
                    hb.minimal_cycle()
                );
            }
        }
    }

    #[test]
    fn natural_decode_cycles_only_under_rendezvous_edges() {
        use crate::deps::sync_collectives;
        use crate::generators::decode_pipeline_natural;
        // The PR-8 serving deadlock: the base (asymmetric) model is
        // acyclic — the false clean — while the arrival edges expose the
        // cycle through the S barrier and the unsent InputF row.
        let sched = decode_pipeline_natural(2, 2);
        let deps = build_deps(&sched).unwrap();
        let base = HbGraph::new(&sched, &deps);
        assert!(base.topo_order().is_some(), "base model must be acyclic");
        let sync = sync_collectives(&sched, true);
        let hb = HbGraph::with_rendezvous(&sched, &deps, &sync);
        assert!(hb.topo_order().is_none());
        let cycle = hb.minimal_cycle().expect("rendezvous deadlock");
        assert!(cycle.iter().any(|s| s.edge.is_rendezvous()), "{cycle:?}");
        assert!(
            cycle.iter().any(|s| s.pass.kind == PassKind::S),
            "{cycle:?}"
        );
        assert!(
            cycle.iter().any(|s| s.pass.kind == PassKind::InputF),
            "{cycle:?}"
        );
    }

    #[test]
    fn training_mode_has_no_sync_collectives() {
        use crate::deps::sync_collectives;
        let sched = vocab_1f1b(4, 6, VocabVariant::Alg2, PassTimes::default(), false);
        assert!(sync_collectives(&sched, false).is_empty());
        // Even under forward-only classification the training schedule has
        // no rendezvous: every slot schedules a T, so its S passes are
        // stream-offloaded submissions whose results the T passes consume.
        assert!(sync_collectives(&sched, true).is_empty());
    }

    #[test]
    fn overlap_decode_slots_are_stream_offloaded_not_rendezvous() {
        use crate::deps::sync_collectives;
        use crate::generators::{decode_pipeline, decode_pipeline_overlap};
        // The inline-barrier decode family keeps one rendezvous per slot…
        let inline = decode_pipeline(4, 6);
        assert_eq!(sync_collectives(&inline, true).len(), 6);
        // …while the overlapped family defers every merge to a T pass, so
        // no S is a rendezvous and the asymmetric T ← S edges are faithful.
        let overlap = decode_pipeline_overlap(4, 6);
        assert!(sync_collectives(&overlap, true).is_empty());
        // The arrival-edge closure is a no-op there — the base graph
        // already models the waits — and stays acyclic.
        let deps = build_deps(&overlap).unwrap();
        let sync = sync_collectives(&overlap, true);
        assert!(HbGraph::with_rendezvous(&overlap, &deps, &sync)
            .topo_order()
            .is_some());
    }
}
