//! Static buffer and communication facts about passes.
//!
//! The dependency rules of [`crate::deps`] say *when* passes may run; this
//! module says *what they touch*: which logical buffers each pass reads or
//! writes (activation slots, vocabulary-shard accumulators, sharded
//! input-embedding stashes) and which collective class each dependency
//! edge realizes (the `C0`/`C1`/`C2` barriers of the paper's Algorithms
//! 1/2). `vp-check` consumes these facts for its communication-protocol
//! lint and its static race analysis; they are deliberately independent of
//! the dependency edges so the race pass can *verify* that every
//! conflicting access pair is ordered rather than assume it.

use crate::deps::{DepContext, EdgeKind};
use crate::pass::{PassKind, ScheduleKind, ScheduledPass, VocabVariant};
use std::fmt;

/// The collective-communication classes of the paper (§4, Appendix B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveClass {
    /// `C0`: broadcast of the last transformer output `X` to all shards.
    C0,
    /// `C1`: all-reduce of softmax statistics (Algorithm 2 folds the `∇X`
    /// reduce into the same barrier).
    C1,
    /// `C2`: reduce of `∇X` after the `T` passes (Algorithm 1 / naive).
    C2,
    /// The extra barrier of the naive 3-barrier grouping.
    Naive,
    /// All-reduce of sharded input-layer outputs (Appendix C).
    InputAllReduce,
    /// Broadcast of the embedding gradient to all input shards.
    InputGradBroadcast,
    /// Synchronous tensor-parallel communication of the interlaced
    /// pipeline.
    InterlacedSync,
}

impl fmt::Display for CollectiveClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollectiveClass::C0 => "C0 broadcast",
            CollectiveClass::C1 => "C1 barrier",
            CollectiveClass::C2 => "C2 reduce",
            CollectiveClass::Naive => "naive S/S2 barrier",
            CollectiveClass::InputAllReduce => "input all-reduce",
            CollectiveClass::InputGradBroadcast => "input grad broadcast",
            CollectiveClass::InterlacedSync => "interlaced sync",
        };
        write!(f, "{name}")
    }
}

impl EdgeKind {
    /// The collective class this edge realizes, if it is a collective
    /// (`None` for point-to-point and same-device edges).
    pub fn collective_class(self) -> Option<CollectiveClass> {
        match self {
            EdgeKind::C0Broadcast => Some(CollectiveClass::C0),
            EdgeKind::C1Barrier => Some(CollectiveClass::C1),
            EdgeKind::C2Reduce => Some(CollectiveClass::C2),
            EdgeKind::NaiveBarrier => Some(CollectiveClass::Naive),
            EdgeKind::InputAllReduce => Some(CollectiveClass::InputAllReduce),
            EdgeKind::InputGradBroadcast => Some(CollectiveClass::InputGradBroadcast),
            EdgeKind::InterlacedSync => Some(CollectiveClass::InterlacedSync),
            EdgeKind::ActivationP2p | EdgeKind::GradP2p | EdgeKind::Local => None,
        }
    }

    /// Whether this edge is a point-to-point transfer between adjacent
    /// pipeline stages (stash-backed in the runtime, so reordering across
    /// microbatches is tolerated — unlike collectives).
    pub fn is_p2p(self) -> bool {
        matches!(self, EdgeKind::ActivationP2p | EdgeKind::GradP2p)
    }
}

/// A logical buffer a pass touches. All state the pass-VM keeps between
/// passes is one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffer {
    /// Resident transformer activations of one microbatch-chunk
    /// (allocated by `F`, consumed and freed by `B`).
    Activation {
        /// Owning device.
        device: usize,
        /// Model chunk on the device.
        chunk: u8,
        /// Microbatch.
        microbatch: u32,
    },
    /// The per-chunk stash a `B` pass leaves for its deferred `W` pass
    /// (zero-bubble split).
    GradStash {
        /// Owning device.
        device: usize,
        /// Model chunk.
        chunk: u8,
        /// Microbatch.
        microbatch: u32,
    },
    /// A device's vocabulary-shard state for one microbatch: shard logits
    /// and online-softmax statistics, written by `S`, refined by `S2`
    /// (naive grouping) and consumed by `T`.
    VocabShard {
        /// Owning device (vocabulary shard).
        device: usize,
        /// Microbatch.
        microbatch: u32,
    },
    /// A device's shard contribution to `∇X` for one microbatch, produced
    /// by `S` (Algorithm 2) or `T` (Algorithm 1 / naive) and consumed by
    /// the last transformer stage's backward after the reduce.
    GradXShard {
        /// Producing device (vocabulary shard).
        device: usize,
        /// Microbatch.
        microbatch: u32,
    },
    /// A device's sharded input-embedding output for one microbatch
    /// (Appendix C), written by `InputF` and read back by `InputB`.
    InputShard {
        /// Owning device (input shard).
        device: usize,
        /// Microbatch.
        microbatch: u32,
    },
    /// The interlaced pipeline's output-layer stash between `OutputF` and
    /// `OutputB`.
    OutputStash {
        /// Owning device.
        device: usize,
        /// Microbatch.
        microbatch: u32,
    },
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Buffer::Activation {
                device,
                chunk,
                microbatch,
            } => write!(
                f,
                "activation slot (device {device}, chunk {chunk}, mb {microbatch})"
            ),
            Buffer::GradStash {
                device,
                chunk,
                microbatch,
            } => write!(
                f,
                "B→W grad stash (device {device}, chunk {chunk}, mb {microbatch})"
            ),
            Buffer::VocabShard { device, microbatch } => {
                write!(f, "vocab shard state (device {device}, mb {microbatch})")
            }
            Buffer::GradXShard { device, microbatch } => {
                write!(f, "∇X shard (device {device}, mb {microbatch})")
            }
            Buffer::InputShard { device, microbatch } => {
                write!(
                    f,
                    "input-embedding shard (device {device}, mb {microbatch})"
                )
            }
            Buffer::OutputStash { device, microbatch } => {
                write!(
                    f,
                    "interlaced output stash (device {device}, mb {microbatch})"
                )
            }
        }
    }
}

/// How a pass touches a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// The pass reads the buffer (it must be ordered after the write).
    Read,
    /// The pass writes (or allocates) the buffer.
    Write,
}

/// The logical buffers `pass` (running on `device`) reads and writes,
/// under the schedule family described by `ctx`.
///
/// Cross-device entries appear where a pass consumes another shard's
/// contribution through a collective: the last stage's `B` reads every
/// device's [`Buffer::GradXShard`] (the reduced `∇X`).
pub fn buffer_accesses(
    ctx: &DepContext,
    device: usize,
    pass: &ScheduledPass,
) -> Vec<(Buffer, Access)> {
    let mb = pass.microbatch;
    let mut out = Vec::new();
    let last_vs = ctx.devices * ctx.chunks.max(1) as usize - 1;
    match pass.kind {
        PassKind::F => {
            out.push((
                Buffer::Activation {
                    device,
                    chunk: pass.chunk,
                    microbatch: mb,
                },
                Access::Write,
            ));
        }
        PassKind::B => {
            out.push((
                Buffer::Activation {
                    device,
                    chunk: pass.chunk,
                    microbatch: mb,
                },
                Access::Read,
            ));
            out.push((
                Buffer::GradStash {
                    device,
                    chunk: pass.chunk,
                    microbatch: mb,
                },
                Access::Write,
            ));
            let vs =
                crate::pass::placement_stage_of(ctx.placement, ctx.devices, device, pass.chunk);
            if vs == last_vs {
                match ctx.kind {
                    ScheduleKind::Vocab(_) | ScheduleKind::Interlaced => {
                        for src in 0..ctx.devices {
                            out.push((
                                Buffer::GradXShard {
                                    device: src,
                                    microbatch: mb,
                                },
                                Access::Read,
                            ));
                        }
                    }
                    ScheduleKind::Plain => {}
                }
            }
        }
        PassKind::W => {
            out.push((
                Buffer::GradStash {
                    device,
                    chunk: pass.chunk,
                    microbatch: mb,
                },
                Access::Read,
            ));
        }
        PassKind::S => {
            out.push((
                Buffer::VocabShard {
                    device,
                    microbatch: mb,
                },
                Access::Write,
            ));
            if ctx.kind == ScheduleKind::Vocab(VocabVariant::Alg2) {
                // Algorithm 2 assembles ∇X̂ inside the single C1 barrier.
                out.push((
                    Buffer::GradXShard {
                        device,
                        microbatch: mb,
                    },
                    Access::Write,
                ));
            }
        }
        PassKind::S2 => {
            out.push((
                Buffer::VocabShard {
                    device,
                    microbatch: mb,
                },
                Access::Read,
            ));
            out.push((
                Buffer::VocabShard {
                    device,
                    microbatch: mb,
                },
                Access::Write,
            ));
        }
        PassKind::T => {
            out.push((
                Buffer::VocabShard {
                    device,
                    microbatch: mb,
                },
                Access::Read,
            ));
            match ctx.kind {
                ScheduleKind::Vocab(VocabVariant::Alg1)
                | ScheduleKind::Vocab(VocabVariant::Naive) => {
                    // T produces the ∇X′ shard the C2 reduce combines.
                    out.push((
                        Buffer::GradXShard {
                            device,
                            microbatch: mb,
                        },
                        Access::Write,
                    ));
                }
                _ => {}
            }
        }
        PassKind::InputF => {
            out.push((
                Buffer::InputShard {
                    device,
                    microbatch: mb,
                },
                Access::Write,
            ));
        }
        PassKind::InputB => {
            out.push((
                Buffer::InputShard {
                    device,
                    microbatch: mb,
                },
                Access::Read,
            ));
        }
        PassKind::OutputF => {
            out.push((
                Buffer::OutputStash {
                    device,
                    microbatch: mb,
                },
                Access::Write,
            ));
        }
        PassKind::OutputB => {
            out.push((
                Buffer::OutputStash {
                    device,
                    microbatch: mb,
                },
                Access::Read,
            ));
            out.push((
                Buffer::GradXShard {
                    device,
                    microbatch: mb,
                },
                Access::Write,
            ));
        }
    }
    out
}

/// The collective classes whose barrier `pass` *enters* (issues its shard
/// contribution to) under the family `ctx` — the participation sets the
/// protocol lint compares across vocabulary shards.
pub fn collective_entries(ctx: &DepContext, pass: &ScheduledPass) -> Vec<CollectiveClass> {
    match (pass.kind, ctx.kind) {
        (PassKind::S, ScheduleKind::Vocab(VocabVariant::Naive)) => {
            vec![CollectiveClass::C0, CollectiveClass::Naive]
        }
        (PassKind::S, _) => vec![CollectiveClass::C0, CollectiveClass::C1],
        (PassKind::S2, _) => vec![CollectiveClass::Naive],
        (PassKind::T, ScheduleKind::Vocab(VocabVariant::Alg1))
        | (PassKind::T, ScheduleKind::Vocab(VocabVariant::Naive)) => {
            vec![CollectiveClass::C2]
        }
        (PassKind::T, _) => Vec::new(),
        (PassKind::InputF, _) => vec![CollectiveClass::InputAllReduce],
        (PassKind::InputB, _) => vec![CollectiveClass::InputGradBroadcast],
        (PassKind::OutputF, _) | (PassKind::OutputB, _) => {
            vec![CollectiveClass::InterlacedSync]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::generators::vocab_1f1b;
    use crate::pass::ChunkPlacement;

    fn ctx(kind: ScheduleKind, devices: usize) -> DepContext {
        DepContext {
            kind,
            devices,
            chunks: 1,
            placement: ChunkPlacement::VShape,
            has_input: false,
        }
    }

    #[test]
    fn alg2_t_does_not_touch_grad_x() {
        // The paper's §4.4 deferral argument, as a buffer fact: under
        // Algorithm 2 the T pass reads only its shard's stats, so nothing
        // on the backward chain conflicts with an arbitrarily delayed T.
        let c = ctx(ScheduleKind::Vocab(VocabVariant::Alg2), 4);
        let t = ScheduledPass::new(PassKind::T, 0);
        let accesses = buffer_accesses(&c, 1, &t);
        assert!(accesses
            .iter()
            .all(|(b, _)| !matches!(b, Buffer::GradXShard { .. })));
        // While under Algorithm 1 it writes the ∇X′ shard the backward
        // reads after the C2 reduce.
        let c1 = ctx(ScheduleKind::Vocab(VocabVariant::Alg1), 4);
        let accesses = buffer_accesses(&c1, 1, &t);
        assert!(accesses
            .iter()
            .any(|(b, a)| matches!(b, Buffer::GradXShard { .. }) && *a == Access::Write));
    }

    #[test]
    fn last_stage_backward_reads_every_grad_x_shard() {
        let c = ctx(ScheduleKind::Vocab(VocabVariant::Alg2), 3);
        let b = ScheduledPass::new(PassKind::B, 2);
        let reads: Vec<usize> = buffer_accesses(&c, 2, &b)
            .into_iter()
            .filter_map(|(buf, _)| match buf {
                Buffer::GradXShard { device, .. } => Some(device),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![0, 1, 2]);
    }

    #[test]
    fn edge_collective_classes_are_consistent_with_deps() {
        use crate::deps::build_deps;
        let sched = vocab_1f1b(3, 4, VocabVariant::Naive, PassTimes::default(), true);
        let deps = build_deps(&sched).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (d, i, _) in sched.iter_all() {
            for dep in deps.preds(d, i) {
                if let Some(class) = dep.kind.collective_class() {
                    seen.insert(class);
                }
            }
        }
        for class in [
            CollectiveClass::C0,
            CollectiveClass::C2,
            CollectiveClass::Naive,
            CollectiveClass::InputAllReduce,
            CollectiveClass::InputGradBroadcast,
        ] {
            assert!(seen.contains(&class), "missing {class}");
        }
    }
}
