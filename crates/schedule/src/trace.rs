//! Chrome trace-event export: render an executed schedule as a JSON file
//! loadable in `chrome://tracing` / Perfetto, one row per device, one
//! duration event per pass. The schedule figures of the paper are exactly
//! this view.

use crate::exec::ExecReport;
use crate::pass::{PassKind, Schedule};

/// Category label (and hence color grouping) for a pass kind.
fn category(kind: PassKind) -> &'static str {
    match kind {
        PassKind::F => "forward",
        PassKind::B => "backward",
        PassKind::W => "wgrad",
        PassKind::S | PassKind::S2 => "vocab-s",
        PassKind::T => "vocab-t",
        PassKind::InputF | PassKind::InputB => "vocab-input",
        PassKind::OutputF | PassKind::OutputB => "interlaced-output",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the executed schedule as Chrome trace-event JSON.
///
/// Times are scaled by `us_per_unit` into microseconds (pass 1e6 if the
/// report's times are already in seconds).
pub fn to_chrome_trace(schedule: &Schedule, report: &ExecReport, us_per_unit: f64) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for d in 0..schedule.devices() {
        // Process-name metadata row.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{d},\"args\":{{\"name\":\"device {d}\"}}}}"
        ));
        for (i, pass) in schedule.passes(d).iter().enumerate() {
            let ts = report.start[d][i] * us_per_unit;
            let dur = (report.end[d][i] - report.start[d][i]) * us_per_unit;
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":0,\"args\":{{\"microbatch\":{},\"chunk\":{}}}}}",
                escape(&pass.to_string()),
                category(pass.kind),
                ts,
                dur,
                d,
                pass.microbatch,
                pass.chunk
            ));
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::exec::{Executor, UnitCosts};
    use crate::generators::{one_f_one_b, vocab_1f1b};
    use crate::pass::VocabVariant;

    #[test]
    fn trace_is_wellformed_and_complete() {
        let times = PassTimes::default();
        let sched = vocab_1f1b(3, 4, VocabVariant::Alg2, times, true);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        let json = to_chrome_trace(&sched, &report, 1000.0);
        // One event per pass + one metadata row per device.
        let events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(events, sched.total_passes());
        assert_eq!(json.matches("process_name").count(), 3);
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"cat\":\"vocab-s\""));
    }

    #[test]
    fn durations_are_positive() {
        let times = PassTimes::default();
        let sched = one_f_one_b(2, 3, times);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        let json = to_chrome_trace(&sched, &report, 1.0);
        assert!(!json.contains("\"dur\":-"));
    }
}
