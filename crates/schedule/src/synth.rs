//! Greedy schedule synthesis.
//!
//! Generators describe *what* must run (pass sets per device) and *roughly
//! when* (nominal priorities from the building-block offsets, §5.2); this
//! module decides the actual per-device execution order with a global
//! list-scheduling pass: whenever a device is free it runs the ready pass
//! with the smallest nominal priority, never exceeding its activation
//! budget (the in-flight microbatch cap from the building-block analysis).
//!
//! This mirrors how the paper integrates vocabulary passes: the building
//! block fixes the repeating structure and the memory budget, while the
//! exact slot each `S`/`T` pass lands in is "arbitrary within the repeating
//! interval" — the synthesizer picks slots that keep every device busy.

use crate::block::PassTimes;
use crate::deps::{DepContext, EdgeKind, Key};
use crate::pass::{ChunkPlacement, PassKind, Schedule, ScheduleKind, ScheduledPass};
use std::collections::HashMap;

/// A pass with its nominal (building-block) start time, used as the
/// synthesizer's priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NominalPass {
    /// The pass to schedule.
    pub pass: ScheduledPass,
    /// Nominal start time from the building block; lower runs first.
    pub priority: f64,
}

/// Inputs to [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthInput {
    /// Schedule family (fixes the dependency rules).
    pub kind: ScheduleKind,
    /// Microbatches per iteration.
    pub num_microbatches: u32,
    /// Virtual chunks per device.
    pub chunks: u8,
    /// Virtual-stage placement for multi-chunk schedules.
    pub placement: ChunkPlacement,
    /// Per-device pass sets with nominal priorities.
    pub passes: Vec<Vec<NominalPass>>,
    /// Per-device, per-chunk cap on in-flight microbatches; `None` leaves
    /// memory unbounded. Indexed `[device][chunk]`.
    pub activation_caps: Option<Vec<Vec<usize>>>,
    /// Relative pass durations used for the greedy timing decisions.
    pub times: PassTimes,
}

/// Greedily synthesizes a concrete [`Schedule`] from nominal passes.
///
/// The result is returned together with the synthesized start times (useful
/// for diagnostics); re-executing the schedule with
/// [`crate::exec::Executor`] under the same costs reproduces the same
/// timeline.
///
/// # Panics
///
/// Panics if the pass set is internally inconsistent (a dependency
/// references a pass that does not exist), which indicates a generator bug
/// rather than a data condition.
pub fn synthesize(input: &SynthInput) -> Schedule {
    let p = input.passes.len();
    let ctx = DepContext {
        kind: input.kind,
        devices: p,
        chunks: input.chunks,
        placement: input.placement,
        has_input: input
            .passes
            .iter()
            .flatten()
            .any(|np| np.pass.kind == PassKind::InputF),
    };

    // Index passes and dependencies by identity.
    let mut id_of: HashMap<Key, usize> = HashMap::new();
    let mut flat: Vec<(usize, NominalPass)> = Vec::new(); // (device, pass)
    for (d, list) in input.passes.iter().enumerate() {
        for np in list {
            let key = (np.pass.kind, np.pass.microbatch, np.pass.chunk, d);
            let id = flat.len();
            assert!(id_of.insert(key, id).is_none(), "duplicate pass {:?}", key);
            flat.push((d, *np));
        }
    }
    let n = flat.len();
    let preds: Vec<Vec<(usize, EdgeKind)>> = flat
        .iter()
        .map(|(d, np)| {
            ctx.logical_preds(&np.pass, *d)
                .into_iter()
                .map(|(key, kind)| {
                    let id = *id_of
                        .get(&key)
                        .unwrap_or_else(|| panic!("dependency on missing pass {key:?}"));
                    (id, kind)
                })
                .collect()
        })
        .collect();
    let mut pending_preds: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, ps) in preds.iter().enumerate() {
        for (pid, _) in ps {
            succs[*pid].push(id);
        }
    }

    let comm = input.times.comm;
    let edge_cost = |kind: EdgeKind, from: usize, to: usize| -> f64 {
        if kind == EdgeKind::Local || from == to {
            0.0
        } else {
            comm
        }
    };

    let chunk_count = input.chunks.max(1) as usize;
    let mut scheduled_end: Vec<f64> = vec![0.0; n];
    let mut free_at = vec![0.0f64; p];
    let mut resident = vec![vec![0usize; chunk_count]; p];
    let caps: Vec<Vec<usize>> = match &input.activation_caps {
        Some(c) => c.clone(),
        None => vec![vec![usize::MAX; chunk_count]; p],
    };
    // Ready set: passes whose dependencies are all scheduled.
    let mut ready: Vec<Vec<usize>> = vec![Vec::new(); p];
    for id in 0..n {
        if pending_preds[id] == 0 {
            ready[flat[id].0].push(id);
        }
    }
    let mut order: Vec<Vec<ScheduledPass>> = vec![Vec::new(); p];
    let mut scheduled_count = 0usize;
    let mut stall_guard = 0usize;

    while scheduled_count < n {
        // Pick, across devices, the (device, pass) whose feasible start is
        // earliest; break ties by nominal priority. F passes over the
        // activation cap are skipped (the device prefers other work).
        let mut best: Option<(f64, f64, usize, usize)> = None; // (start, prio, device, slot)
        let mut best_capped: Option<(f64, f64, usize, usize)> = None;
        for d in 0..p {
            for (slot, &id) in ready[d].iter().enumerate() {
                let (_, np) = &flat[id];
                let mut start = free_at[d];
                for &(pid, kind) in &preds[id] {
                    start = start.max(scheduled_end[pid] + edge_cost(kind, flat[pid].0, d));
                }
                let cand = (start, np.priority, d, slot);
                let chunk = np.pass.chunk as usize;
                let capped = np.pass.kind == PassKind::F && resident[d][chunk] >= caps[d][chunk];
                let target = if capped { &mut best_capped } else { &mut best };
                let better = match target {
                    None => true,
                    Some((bs, bp, _, _)) => {
                        start < *bs - 1e-12 || (start < *bs + 1e-12 && np.priority < *bp)
                    }
                };
                if better {
                    *target = Some(cand);
                }
            }
        }
        let chosen = match best {
            Some(c) => c,
            None => {
                // Every ready pass is an over-cap F: relax the cap once (a
                // safety valve; the analytic caps normally never bind here).
                stall_guard += 1;
                assert!(stall_guard < 1000, "synthesizer livelock");
                match best_capped {
                    Some(c) => c,
                    None => unreachable!("acyclic dependency graph always has a ready pass"),
                }
            }
        };
        let (start, _prio, d, slot) = chosen;
        let id = ready[d].swap_remove(slot);
        let (_, np) = flat[id];
        let dur = input.times.duration(np.pass.kind);
        scheduled_end[id] = start + dur;
        free_at[d] = start + dur;
        order[d].push(np.pass);
        scheduled_count += 1;
        let chunk = np.pass.chunk as usize;
        match np.pass.kind {
            PassKind::F => resident[d][chunk] += 1,
            PassKind::B => resident[d][chunk] = resident[d][chunk].saturating_sub(1),
            _ => {}
        }
        for &sid in &succs[id] {
            pending_preds[sid] -= 1;
            if pending_preds[sid] == 0 {
                ready[flat[sid].0].push(sid);
            }
        }
    }
    Schedule::new(input.kind, input.num_microbatches, input.chunks, order)
        .with_placement(input.placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PassTimes;
    use crate::exec::{Executor, UnitCosts};
    use crate::pass::VocabVariant;

    /// Nominal 1F1B input for the synthesizer.
    fn input_1f1b(p: usize, m: u32, times: PassTimes) -> SynthInput {
        let interval = times.f + times.b;
        let mut passes = Vec::new();
        for d in 0..p {
            let mut v = Vec::new();
            for k in 0..m {
                v.push(NominalPass {
                    pass: ScheduledPass::new(PassKind::F, k),
                    priority: d as f64 * times.f + k as f64 * interval,
                });
                v.push(NominalPass {
                    pass: ScheduledPass::new(PassKind::B, k),
                    priority: p as f64 * times.f
                        + (p - 1 - d) as f64 * times.b
                        + k as f64 * interval,
                });
            }
            passes.push(v);
        }
        SynthInput {
            kind: ScheduleKind::Plain,
            num_microbatches: m,
            chunks: 1,
            placement: ChunkPlacement::VShape,
            passes,
            activation_caps: Some((0..p).map(|d| vec![p - d]).collect()),
            times,
        }
    }

    #[test]
    fn synthesized_1f1b_matches_classic_shape() {
        let times = PassTimes::default();
        let sched = synthesize(&input_1f1b(4, 8, times));
        let seq: String = sched.passes(0).iter().map(|p| p.kind.glyph()).collect();
        assert!(seq.starts_with("FFFF"), "{seq}");
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        // Throughput within 6% of the work bound m·(f+b) + pipeline fill.
        let bound = 8.0 * 3.0 + 3.0 * 3.0;
        assert!(
            report.makespan < bound * 1.06,
            "makespan {}",
            report.makespan
        );
        for d in 0..4 {
            assert!(report.peak_resident_microbatches[d] <= 4 - d);
        }
    }

    #[test]
    fn caps_bound_memory_even_with_skewed_priorities() {
        let times = PassTimes::default();
        let mut input = input_1f1b(4, 16, times);
        // Sabotage priorities so all F's want to run first.
        for list in &mut input.passes {
            for np in list {
                if np.pass.kind == PassKind::F {
                    np.priority = -1.0;
                }
            }
        }
        let sched = synthesize(&input);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        for d in 0..4 {
            assert!(
                report.peak_resident_microbatches[d] <= 4 - d,
                "device {d}: {}",
                report.peak_resident_microbatches[d]
            );
        }
    }

    #[test]
    fn unbounded_caps_allow_eager_forwards() {
        let times = PassTimes::default();
        let mut input = input_1f1b(3, 6, times);
        input.activation_caps = None;
        for list in &mut input.passes {
            for np in list {
                if np.pass.kind == PassKind::F {
                    np.priority = -1.0;
                }
            }
        }
        let sched = synthesize(&input);
        let costs = UnitCosts::new(times, 1);
        let report = Executor::new(&costs).run(&sched).unwrap();
        assert_eq!(report.peak_resident_microbatches[0], 6);
    }

    #[test]
    #[should_panic(expected = "duplicate pass")]
    fn duplicate_passes_panic() {
        let times = PassTimes::default();
        let mut input = input_1f1b(2, 2, times);
        let dup = input.passes[0][0];
        input.passes[0].push(dup);
        let _ = synthesize(&input);
    }

    /// The key regression test: the vocab variants must sustain full
    /// throughput (this previously jammed at ~1.7× the work bound with
    /// naive offset-sorted orders).
    #[test]
    fn vocab_variants_sustain_throughput() {
        for (s, t) in [(0.1, 0.1), (0.3, 0.3), (0.75, 0.75), (0.4, 0.2)] {
            let times = PassTimes {
                s,
                t,
                ..PassTimes::default()
            };
            for variant in [VocabVariant::Alg1, VocabVariant::Alg2, VocabVariant::Naive] {
                let p = 4;
                let m = 64u32;
                let sched = crate::generators::vocab_1f1b(p, m, variant, times, false);
                let costs = UnitCosts::new(times, 1);
                let report = Executor::new(&costs).run(&sched).unwrap();
                let out_time: f64 = variant
                    .output_passes()
                    .iter()
                    .map(|&k| times.duration(k))
                    .sum();
                let interval = times.f + times.b + out_time;
                let work = interval * m as f64;
                // Pipeline fill/drain plus the inserted barrier intervals.
                let fill = (p as f64 + variant.barriers() as f64 + 1.0) * interval;
                assert!(
                    report.makespan < work + fill + 3.0,
                    "{variant:?} s={s} t={t}: makespan {} vs work {work}",
                    report.makespan
                );
            }
        }
    }
}
