//! Schedule generators: 1F1B (plain, with Vocabulary Parallelism, and the
//! interlaced baseline) and V-Half (plain and with Vocabulary Parallelism).
//!
//! Every generator derives a *building block* — per-device pass offsets for
//! one microbatch plus a repeat interval (§5.2) — whose offsets become
//! nominal priorities for the greedy synthesizer ([`crate::synth`]), and
//! whose lifespan analysis becomes the per-device activation cap. The
//! sharded input-layer passes of Appendix C are added with irregular
//! priorities (warm-up / cool-down handling), exactly as the paper
//! describes.

use crate::block::{BlockEntry, BuildingBlock, PassTimes};
use crate::pass::{ChunkPlacement, PassKind, Schedule, ScheduleKind, ScheduledPass, VocabVariant};
use crate::synth::{synthesize, NominalPass, SynthInput};

/// Small epsilon used to order a pass strictly before/after another at the
/// same nominal time.
const EPS: f64 = 1e-6;

/// Nominal priorities for the sharded input-layer passes of Appendix C,
/// shared by every vocabulary-parallel generator.
///
/// `interval` is the block's repeat interval, `s0` the offset of the first
/// `S` pass, `t_offset` the offset of the (possibly deferred) `T` pass and
/// `b0_end` the finish time of the first virtual stage's backward for
/// microbatch 0.
fn input_pass_priorities(
    m: u32,
    times: &PassTimes,
    interval: f64,
    s0: f64,
    t_offset: f64,
    b0_end: f64,
) -> Vec<(f64, ScheduledPass)> {
    let mut v = Vec::new();
    for k in 0..m {
        // Warm-up: one microbatch ahead of the first stage's F_k
        // (which runs at k·f during warm-up); steady state:
        // piggybacked one interval before the S pass (Appendix C).
        let warmup = k as f64 * times.f - times.input_f - times.comm - EPS;
        let steady = s0 + k as f64 * interval - interval;
        v.push((warmup.min(steady), ScheduledPass::new(PassKind::InputF, k)));
        // Backward: piggybacked one interval after T, but never before
        // the first stage's backward has produced the gradient
        // (cool-down handling).
        let grad_ready = b0_end + k as f64 * interval + EPS;
        let b_time = (t_offset + k as f64 * interval + interval).max(grad_ready);
        v.push((b_time, ScheduledPass::new(PassKind::InputB, k)));
    }
    v
}

fn synthesize_block(
    block: &BuildingBlock,
    m: u32,
    caps: Vec<Vec<usize>>,
    extra: impl Fn(usize) -> Vec<(f64, ScheduledPass)>,
) -> Schedule {
    synthesize_block_placed(block, m, caps, ChunkPlacement::VShape, extra)
}

fn synthesize_block_placed(
    block: &BuildingBlock,
    m: u32,
    caps: Vec<Vec<usize>>,
    placement: ChunkPlacement,
    extra: impl Fn(usize) -> Vec<(f64, ScheduledPass)>,
) -> Schedule {
    let passes = (0..block.devices())
        .map(|d| {
            let mut v: Vec<NominalPass> = block
                .timed_passes(d, m)
                .into_iter()
                .map(|(priority, pass)| NominalPass { pass, priority })
                .collect();
            v.extend(
                extra(d)
                    .into_iter()
                    .map(|(priority, pass)| NominalPass { pass, priority }),
            );
            v
        })
        .collect();
    synthesize(&SynthInput {
        kind: block.kind(),
        num_microbatches: m,
        chunks: block.chunks(),
        placement,
        passes,
        activation_caps: Some(caps),
        times: *block.times(),
    })
}

// ---------------------------------------------------------------------------
// 1F1B
// ---------------------------------------------------------------------------

/// Building block of the classic 1F1B schedule (Harlap et al. 2018):
/// forward at `d·f`, backward at `p·f + (p−1−d)·b`; interval `f + b`.
pub fn one_f_one_b_block(p: usize, times: PassTimes) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    let entries = (0..p)
        .map(|d| {
            vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: p as f64 * times.f + (p - 1 - d) as f64 * times.b + times.comm,
                },
            ]
        })
        .collect();
    BuildingBlock::new(ScheduleKind::Plain, entries, times.f + times.b, times, 1)
}

/// The classic 1F1B schedule for `p` devices and `m` microbatches
/// (activation memory: `p − d` microbatches on device `d`).
pub fn one_f_one_b(p: usize, m: u32, times: PassTimes) -> Schedule {
    let block = one_f_one_b_block(p, times);
    let caps = (0..p).map(|d| vec![p - d]).collect();
    synthesize_block(&block, m, caps, |_| Vec::new())
}

// ---------------------------------------------------------------------------
// 1F1B + Vocabulary Parallelism (the paper's Figures 9 and 10)
// ---------------------------------------------------------------------------

/// Building block of 1F1B with Vocabulary Parallelism.
///
/// The output-layer passes are inserted between the forward and backward of
/// the last transformer stage, pushing the backward chain later by one
/// interval per communication barrier (3 for naive, 2 for Algorithm 1,
/// 1 for Algorithm 2) — which is exactly the schedule's activation-memory
/// overhead in microbatches (§5.2).
pub fn vocab_1f1b_block(p: usize, variant: VocabVariant, times: PassTimes) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    let out_time: f64 = variant
        .output_passes()
        .iter()
        .map(|&k| times.duration(k))
        .sum();
    let interval = times.f + times.b + out_time;
    let n = variant.barriers() as f64;
    let s0 = p as f64 * times.f + times.comm;
    let entries = (0..p)
        .map(|d| {
            let mut v = vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: p as f64 * times.f
                        + n * interval
                        + (p - 1 - d) as f64 * times.b
                        + times.comm,
                },
            ];
            for (i, &kind) in variant.output_passes().iter().enumerate() {
                v.push(BlockEntry {
                    kind,
                    chunk: 0,
                    offset: s0 + i as f64 * interval,
                });
            }
            v
        })
        .collect();
    BuildingBlock::new(ScheduleKind::Vocab(variant), entries, interval, times, 1)
}

/// 1F1B with Vocabulary Parallelism (the paper's *Vocab-1* / *Vocab-2* and
/// the naive 3-barrier grouping), optionally including the sharded
/// input-layer passes of Appendix C.
///
/// # Example
///
/// ```
/// use vp_schedule::block::PassTimes;
/// use vp_schedule::generators::vocab_1f1b;
/// use vp_schedule::pass::{PassKind, VocabVariant};
///
/// let schedule = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), true);
/// vp_schedule::deps::validate(&schedule).expect("obeys the §5.1 constraints");
/// assert_eq!(schedule.count_kind(0, PassKind::S), 8); // one S per microbatch
/// ```
pub fn vocab_1f1b(
    p: usize,
    m: u32,
    variant: VocabVariant,
    times: PassTimes,
    include_input: bool,
) -> Schedule {
    let block = vocab_1f1b_block(p, variant, times);
    let interval = block.interval();
    let s0 = p as f64 * times.f + times.comm;
    let t_offset = s0 + (variant.output_passes().len() - 1) as f64 * interval;
    // First-stage backward finish time (for InputB placement).
    let b0_end = p as f64 * times.f
        + variant.barriers() as f64 * interval
        + (p - 1) as f64 * times.b
        + times.comm
        + times.b;
    let caps = (0..p).map(|d| vec![p - d + variant.barriers()]).collect();
    synthesize_block(&block, m, caps, |_d| {
        if !include_input {
            return Vec::new();
        }
        input_pass_priorities(m, &times, interval, s0, t_offset, b0_end)
    })
}

// ---------------------------------------------------------------------------
// Zero-bubble 1F1B (ZB-H1, Qi et al. 2023) — an extension demonstrating the
// paper's §4.4 remark: Algorithm 2's T pass "can be arbitrarily delayed",
// exactly like the zero-bubble W pass.
// ---------------------------------------------------------------------------

/// Building block of zero-bubble 1F1B (ZB-H1): the backward is split into
/// `B` (activation gradients, on the critical chain) and `W` (weight
/// gradients, freely deferrable). `W` passes are given late nominal
/// priorities so the synthesizer uses them to fill warm-up and drain
/// bubbles.
pub fn zb_1f1b_block(p: usize, times: PassTimes) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    assert!(
        times.w > 0.0,
        "zero-bubble schedules require a split W pass time"
    );
    let interval = times.f + times.b + times.w;
    let entries = (0..p)
        .map(|d| {
            let b_off = p as f64 * times.f + (p - 1 - d) as f64 * times.b + times.comm;
            vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: b_off,
                },
                // Deferred by one interval: a pure filler.
                BlockEntry {
                    kind: PassKind::W,
                    chunk: 0,
                    offset: b_off + interval,
                },
            ]
        })
        .collect();
    BuildingBlock::new(ScheduleKind::Plain, entries, interval, times, 1)
}

/// Zero-bubble 1F1B for `p` devices and `m` microbatches.
pub fn zb_1f1b(p: usize, m: u32, times: PassTimes) -> Schedule {
    let block = zb_1f1b_block(p, times);
    let caps = (0..p).map(|d| vec![p - d]).collect();
    synthesize_block(&block, m, caps, |_| Vec::new())
}

/// Building block of zero-bubble 1F1B with Vocabulary Parallelism. With
/// Algorithm 2, both `W` and `T` are deferrable fillers, realizing the
/// zero-bubble affinity the paper points out in §4.4.
pub fn zb_vocab_1f1b_block(p: usize, variant: VocabVariant, times: PassTimes) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    assert!(
        times.w > 0.0,
        "zero-bubble schedules require a split W pass time"
    );
    let out_time: f64 = variant
        .output_passes()
        .iter()
        .map(|&k| times.duration(k))
        .sum();
    let interval = times.f + times.b + times.w + out_time;
    let n = variant.barriers() as f64;
    let s0 = p as f64 * times.f + times.comm;
    let entries = (0..p)
        .map(|d| {
            let b_off =
                p as f64 * times.f + n * interval + (p - 1 - d) as f64 * times.b + times.comm;
            let mut v = vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: b_off,
                },
                BlockEntry {
                    kind: PassKind::W,
                    chunk: 0,
                    offset: b_off + interval,
                },
            ];
            for (i, &kind) in variant.output_passes().iter().enumerate() {
                let defer = if kind == PassKind::T && variant == VocabVariant::Alg2 {
                    // Algorithm 2's T is a pure filler like W.
                    2.0 * interval
                } else {
                    i as f64 * interval
                };
                v.push(BlockEntry {
                    kind,
                    chunk: 0,
                    offset: s0 + defer,
                });
            }
            v
        })
        .collect();
    BuildingBlock::new(ScheduleKind::Vocab(variant), entries, interval, times, 1)
}

/// Zero-bubble 1F1B with Vocabulary Parallelism, optionally including the
/// sharded input-layer passes of Appendix C (required when the schedule is
/// executed numerically by `vp-runtime`).
pub fn zb_vocab_1f1b(
    p: usize,
    m: u32,
    variant: VocabVariant,
    times: PassTimes,
    include_input: bool,
) -> Schedule {
    let block = zb_vocab_1f1b_block(p, variant, times);
    let interval = block.interval();
    let s0 = p as f64 * times.f + times.comm;
    // Algorithm 2's T is deferred two intervals in the block above; the
    // InputB piggyback must track the deferred offset.
    let t_offset = if variant == VocabVariant::Alg2 {
        s0 + 2.0 * interval
    } else {
        s0 + (variant.output_passes().len() - 1) as f64 * interval
    };
    let b0_end = p as f64 * times.f
        + variant.barriers() as f64 * interval
        + (p - 1) as f64 * times.b
        + times.comm
        + times.b;
    let caps = (0..p).map(|d| vec![p - d + variant.barriers()]).collect();
    synthesize_block(&block, m, caps, |_d| {
        if !include_input {
            return Vec::new();
        }
        input_pass_priorities(m, &times, interval, s0, t_offset, b0_end)
    })
}

// ---------------------------------------------------------------------------
// Interlaced pipeline (Lin et al.'s nnScaler baseline, §2 and Appendix B)
// ---------------------------------------------------------------------------

/// Building block of the interlaced pipeline: the vocabulary layers run
/// tensor-parallel style, synchronously on all devices, once per
/// microbatch.
///
/// Per Appendix B.1 (Figure 15b), the synchronization stretches the
/// 1F1B lifespan from `3p` to ≈`4.5p`, i.e. 1.5× the activation memory; we
/// encode that stretch directly in the backward offsets, matching the
/// paper's analysis.
pub fn interlaced_block(p: usize, times: PassTimes) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    let interval = times.f + times.b + times.s + times.t;
    let out_f = p as f64 * times.f + times.comm;
    let out_b = out_f + times.s + times.comm;
    let entries = (0..p)
        .map(|d| {
            // Target lifespan 1.5× of plain 1F1B on every device.
            let plain_lifespan = (p - d) as f64 * (times.f + times.b);
            let b_offset = d as f64 * times.f + 1.5 * plain_lifespan - times.b;
            vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::OutputF,
                    chunk: 0,
                    offset: out_f,
                },
                BlockEntry {
                    kind: PassKind::OutputB,
                    chunk: 0,
                    offset: out_b,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: b_offset.max(out_b + times.t + times.comm),
                },
            ]
        })
        .collect();
    BuildingBlock::new(ScheduleKind::Interlaced, entries, interval, times, 1)
}

/// The interlaced 1F1B schedule for `p` devices and `m` microbatches.
pub fn interlaced_1f1b(p: usize, m: u32, times: PassTimes) -> Schedule {
    let block = interlaced_block(p, times);
    let caps = (0..p)
        .map(|d| vec![((1.5 * (p - d) as f64).ceil() as usize).max(1) + 1])
        .collect();
    synthesize_block(&block, m, caps, |_| Vec::new())
}

// ---------------------------------------------------------------------------
// Interleaved 1F1B (Narayanan et al. 2021) — a third schedule family,
// demonstrating that the §5.2 building-block insertion generalizes beyond
// 1F1B and V-Half.
// ---------------------------------------------------------------------------

/// Building block of interleaved 1F1B: each device hosts `chunks` model
/// chunks placed round-robin (virtual stage `c·p + d` on device `d`),
/// shrinking the pipeline-fill bubble by `1/chunks` at the cost of more
/// in-flight microbatches.
pub fn interleaved_block(p: usize, chunks: u8, times: PassTimes) -> BuildingBlock {
    interleaved_block_inner(p, chunks, times, None)
}

/// Building block of interleaved 1F1B with Vocabulary Parallelism output
/// passes inserted after the last virtual stage's forward — the same §5.2
/// construction applied to a third schedule.
pub fn interleaved_vocab_block(
    p: usize,
    chunks: u8,
    variant: VocabVariant,
    times: PassTimes,
) -> BuildingBlock {
    interleaved_block_inner(p, chunks, times, Some(variant))
}

fn interleaved_block_inner(
    p: usize,
    chunks: u8,
    times: PassTimes,
    variant: Option<VocabVariant>,
) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    assert!(chunks >= 1, "need at least one chunk");
    let v = p * chunks as usize; // virtual stages
    let out_time: f64 = variant
        .map(|var| var.output_passes().iter().map(|&k| times.duration(k)).sum())
        .unwrap_or(0.0);
    let interval = chunks as f64 * (times.f + times.b) + out_time;
    let n = variant.map(|var| var.barriers()).unwrap_or(0) as f64;
    let f_last_end = v as f64 * times.f;
    let s0 = f_last_end + times.comm;
    let entries = (0..p)
        .map(|d| {
            let mut list = Vec::new();
            for c in 0..chunks {
                let vs = c as usize * p + d;
                list.push(BlockEntry {
                    kind: PassKind::F,
                    chunk: c,
                    offset: vs as f64 * times.f,
                });
                list.push(BlockEntry {
                    kind: PassKind::B,
                    chunk: c,
                    offset: f_last_end + n * interval + (v - 1 - vs) as f64 * times.b + times.comm,
                });
            }
            if let Some(var) = variant {
                for (i, &kind) in var.output_passes().iter().enumerate() {
                    list.push(BlockEntry {
                        kind,
                        chunk: 0,
                        offset: s0 + i as f64 * interval,
                    });
                }
            }
            list
        })
        .collect();
    let kind = match variant {
        None => ScheduleKind::Plain,
        Some(var) => ScheduleKind::Vocab(var),
    };
    BuildingBlock::new(kind, entries, interval, times, chunks)
}

fn interleaved_caps(block: &BuildingBlock, extra: usize) -> Vec<Vec<usize>> {
    (0..block.devices())
        .map(|d| {
            (0..block.chunks())
                .map(|c| {
                    let lifespan = block.lifespan(d, c).unwrap_or(0.0);
                    (lifespan / block.interval()).ceil() as usize + extra + 1
                })
                .collect()
        })
        .collect()
}

/// Interleaved 1F1B (Narayanan et al.) for `p` devices, `chunks` model
/// chunks per device and `m` microbatches.
pub fn interleaved_1f1b(p: usize, chunks: u8, m: u32, times: PassTimes) -> Schedule {
    let block = interleaved_block(p, chunks, times);
    let caps = interleaved_caps(&block, 0);
    synthesize_block_placed(&block, m, caps, ChunkPlacement::RoundRobin, |_| Vec::new())
}

/// Interleaved 1F1B with Vocabulary Parallelism: the last virtual stage
/// lives on device `p−1`, so `C0` broadcasts from there exactly as in the
/// plain 1F1B integration; everything else is the same building-block
/// insertion. `include_input` adds the sharded input-layer passes of
/// Appendix C (required for numeric execution by `vp-runtime`).
pub fn interleaved_vocab_1f1b(
    p: usize,
    chunks: u8,
    m: u32,
    variant: VocabVariant,
    times: PassTimes,
    include_input: bool,
) -> Schedule {
    let block = interleaved_vocab_block(p, chunks, variant, times);
    let interval = block.interval();
    let v = p * chunks as usize;
    let f_last_end = v as f64 * times.f;
    let s0 = f_last_end + times.comm;
    let t_offset = s0 + (variant.output_passes().len() - 1) as f64 * interval;
    // First virtual stage (device 0, chunk 0) backward finish time.
    let b0_end = f_last_end
        + variant.barriers() as f64 * interval
        + (v - 1) as f64 * times.b
        + times.comm
        + times.b;
    let caps = interleaved_caps(&block, variant.barriers());
    synthesize_block_placed(&block, m, caps, ChunkPlacement::RoundRobin, |_d| {
        if !include_input {
            return Vec::new();
        }
        input_pass_priorities(m, &times, interval, s0, t_offset, b0_end)
    })
}

// ---------------------------------------------------------------------------
// V-Half (Qi et al. 2024), plain and with Vocabulary Parallelism
// ---------------------------------------------------------------------------

/// Building block of the V-Half schedule: two model chunks per device in a
/// V-shape placement (chunk 0 descends devices `0..p`, chunk 1 ascends), so
/// each resident microbatch-chunk holds half a device's layers — halving
/// and balancing activation memory relative to 1F1B.
pub fn vhalf_block(p: usize, times: PassTimes) -> BuildingBlock {
    vhalf_block_inner(p, times, None)
}

/// Building block of V-Half with Vocabulary Parallelism output passes
/// inserted after the last virtual stage's forward (Appendix D, Figure 16).
pub fn vhalf_vocab_block(p: usize, variant: VocabVariant, times: PassTimes) -> BuildingBlock {
    vhalf_block_inner(p, times, Some(variant))
}

fn vhalf_block_inner(p: usize, times: PassTimes, variant: Option<VocabVariant>) -> BuildingBlock {
    assert!(p > 0, "need at least one device");
    let out_time: f64 = variant
        .map(|v| v.output_passes().iter().map(|&k| times.duration(k)).sum())
        .unwrap_or(0.0);
    let interval = 2.0 * (times.f + times.b + times.w) + out_time;
    let n = variant.map(|v| v.barriers()).unwrap_or(0) as f64;
    // Forward: chunk 0 descends (virtual stage d), chunk 1 ascends
    // (virtual stage 2p−1−d). The last virtual stage (2p−1) lives on
    // device 0, which therefore also hosts the full vocabulary layers in
    // the *baseline* V-Half — the memory imbalance the paper measures.
    let f1_last_end = 2.0 * p as f64 * times.f; // F of virtual stage 2p−1 ends
    let s0 = f1_last_end + times.comm;
    // Backward: B of chunk 1 starts at device 0 and descends; B of chunk 0
    // then ascends. Vocabulary barriers push the whole backward wave by
    // n intervals (§5.2 applied to the V-Half block).
    let b_start = f1_last_end + n * interval + times.comm;
    let entries = (0..p)
        .map(|d| {
            let mut v = vec![
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 0,
                    offset: d as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::F,
                    chunk: 1,
                    offset: (2 * p - 1 - d) as f64 * times.f,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 1,
                    offset: b_start + d as f64 * times.b,
                },
                BlockEntry {
                    kind: PassKind::B,
                    chunk: 0,
                    offset: b_start + p as f64 * times.b + (p - 1 - d) as f64 * times.b,
                },
            ];
            if times.w > 0.0 {
                // Weight-gradient passes directly after each backward; the
                // synthesizer may slide them later since nothing depends on
                // them within the iteration.
                v.push(BlockEntry {
                    kind: PassKind::W,
                    chunk: 1,
                    offset: b_start + d as f64 * times.b + times.b + EPS,
                });
                v.push(BlockEntry {
                    kind: PassKind::W,
                    chunk: 0,
                    offset: b_start + (2 * p - 1 - d) as f64 * times.b + times.b + EPS,
                });
            }
            if let Some(var) = variant {
                for (i, &kind) in var.output_passes().iter().enumerate() {
                    v.push(BlockEntry {
                        kind,
                        chunk: 0,
                        offset: s0 + i as f64 * interval,
                    });
                }
            }
            v
        })
        .collect();
    let kind = match variant {
        None => ScheduleKind::Plain,
        Some(v) => ScheduleKind::Vocab(v),
    };
    BuildingBlock::new(kind, entries, interval, times, 2)
}

fn vhalf_caps(block: &BuildingBlock, extra: usize) -> Vec<Vec<usize>> {
    // One unit of slack beyond the analytic bound per chunk trades a small,
    // bounded amount of activation memory for sustained throughput (our
    // uniformly-repeated V-Half block reaches ≈0.65–0.7× of 1F1B's device-0
    // activation bytes rather than the ideal 0.5×; the *balance* across
    // devices — the property §6.4 evaluates — is preserved exactly).
    (0..block.devices())
        .map(|d| {
            (0..block.chunks())
                .map(|c| {
                    let lifespan = block.lifespan(d, c).unwrap_or(0.0);
                    (lifespan / block.interval()).ceil() as usize + extra + 2
                })
                .collect()
        })
        .collect()
}

/// The plain V-Half schedule.
pub fn vhalf(p: usize, m: u32, times: PassTimes) -> Schedule {
    let block = vhalf_block(p, times);
    let caps = vhalf_caps(&block, 0);
    synthesize_block(&block, m, caps, |_| Vec::new())
}

/// V-Half with Vocabulary Parallelism (the paper's §6.4 configuration),
/// optionally including the sharded input-layer passes.
pub fn vhalf_vocab(
    p: usize,
    m: u32,
    variant: VocabVariant,
    times: PassTimes,
    include_input: bool,
) -> Schedule {
    let block = vhalf_vocab_block(p, variant, times);
    let interval = block.interval();
    let s0 = 2.0 * p as f64 * times.f + times.comm;
    let t_offset = s0 + (variant.output_passes().len() - 1) as f64 * interval;
    // First virtual stage (chunk 0, device 0) backward finish time.
    let b0_end = 2.0 * p as f64 * times.f
        + variant.barriers() as f64 * interval
        + times.comm
        + (2 * p - 1) as f64 * times.b
        + times.b;
    let caps = vhalf_caps(&block, variant.barriers());
    synthesize_block(&block, m, caps, |_d| {
        if !include_input {
            return Vec::new();
        }
        input_pass_priorities(m, &times, interval, s0, t_offset, b0_end)
    })
}

// ---------------------------------------------------------------------------
// Forward-only decode pipeline (inference serving)
// ---------------------------------------------------------------------------

/// Forward-only decode schedule: the pass list one decode step of the
/// serving engine walks.
///
/// Each "microbatch" is one active request slot's next token. Per slot the
/// pipeline runs the sharded input embedding (`InputF`, Appendix C), the
/// transformer forwards (`F`, stage by stage), and the Algorithm-2 `S` pass
/// (sharded logits + local softmax stats + local top-k) whose **single**
/// `C1` barrier merges the shards; sampling happens identically on every
/// device after the barrier, so no `T` pass (and no backward of any kind)
/// exists. The structure is the §4.2 schedule with everything after the
/// output layer's only barrier deleted.
///
/// Devices warm up exactly like 1F1B — device `d` runs `p − d` forwards
/// before its first `S` — then alternate `S`/`F` in steady state, so `m`
/// slots keep all `p` devices busy once `m ≥ p`.
///
/// All `InputF` passes are hoisted to the head of every device's list.
/// `InputF` only *sends* (the owning shard pushes its embedding row to
/// stage 0 over an asynchronous, stashing channel), so issuing the sends
/// up front costs nothing — whereas interleaving them into the steady
/// state deadlocks the real rendezvous runtime: the token owner can sit
/// inside an `S` collective (waiting on stage 0) while stage 0's next `F`
/// waits on the owner's not-yet-sent embedding row.
///
/// The hoist is no longer just a convention: `vp-check`'s
/// rendezvous-faithful deadlock analysis rejects the un-hoisted layout
/// ([`decode_pipeline_natural`]) with `VP0017`, and the exhaustive model
/// checker (`vp_check::model`) confirms the blocked interleaving — so a
/// regression to natural-position sends cannot pass CI.
///
/// # Panics
///
/// Panics if `p == 0` or `m == 0`.
pub fn decode_pipeline(p: usize, m: u32) -> Schedule {
    assert!(p > 0, "need at least one device");
    assert!(m > 0, "need at least one slot");
    let device_passes = (0..p)
        .map(|d| {
            // 1F1B-style warmup depth with S in place of B: device d may
            // run `p − d` forwards ahead of its first S.
            let warm = (p - d) as u32;
            let mut v = Vec::new();
            for k in 0..m {
                v.push(ScheduledPass::new(PassKind::InputF, k));
            }
            for k in 0..m.min(warm) {
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in warm..m {
                v.push(ScheduledPass::new(PassKind::S, k - warm));
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in m.saturating_sub(warm)..m {
                v.push(ScheduledPass::new(PassKind::S, k));
            }
            v
        })
        .collect();
    Schedule::new(ScheduleKind::Vocab(VocabVariant::Alg2), m, 1, device_passes)
}

/// The *un-hoisted* decode layout: each `InputF` send sits in its natural
/// position, immediately before the device's own `F` of the same slot.
///
/// This is the schedule the serving engine originally walked, kept as the
/// regression fixture for the rendezvous deadlock it causes: for `p ≥ 2`
/// and `m ≥ 2`, a device enters its sampling barrier (`S`, a synchronous
/// all-gather) *before* issuing a later slot's embedding row, while stage
/// 0 needs that row to finish the forward the barrier is waiting on. The
/// asymmetric happens-before model is acyclic here — only the
/// blocking-send analysis (`VP0017`) and the execution model checker see
/// the cycle. Never execute this on the rendezvous runtime.
///
/// # Panics
///
/// Panics if `p == 0` or `m == 0`.
pub fn decode_pipeline_natural(p: usize, m: u32) -> Schedule {
    assert!(p > 0, "need at least one device");
    assert!(m > 0, "need at least one slot");
    let device_passes = (0..p)
        .map(|d| {
            let warm = (p - d) as u32;
            let mut v = Vec::new();
            for k in 0..m.min(warm) {
                v.push(ScheduledPass::new(PassKind::InputF, k));
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in warm..m {
                v.push(ScheduledPass::new(PassKind::S, k - warm));
                v.push(ScheduledPass::new(PassKind::InputF, k));
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in m.saturating_sub(warm)..m {
                v.push(ScheduledPass::new(PassKind::S, k));
            }
            v
        })
        .collect();
    Schedule::new(ScheduleKind::Vocab(VocabVariant::Alg2), m, 1, device_passes)
}

/// Overlapped decode schedule: split-batch software pipelining of
/// transformer compute against the sampling all-gather.
///
/// [`decode_pipeline`] executes the `S` sampling barrier *inline*: the
/// device thread sits inside the collective while every other slot's
/// transformer compute waits behind it. This family splits the merge off
/// into a `T` pass, TokenWeave-style: `S` computes the shard's logits,
/// softmax stats and local top-k, then *submits* the `2+2k`-float
/// all-gather to the device's communication stream and returns
/// immediately; the matching `T` pass — scheduled after the *next* slot's
/// forward — waits on the stream handle and runs the identical merge +
/// sample on every rank. While slot `k`'s gather is in flight, slot
/// `k+1`'s forward runs on the device thread, so compute and
/// communication overlap instead of serializing.
///
/// The shape mirrors [`decode_pipeline`] exactly (same hoisted `InputF`
/// head, same 1F1B-style warmup `warm = p − d`), with every steady-state
/// `S` followed by the next slot's `F` *before* the matching `T`:
///
/// ```text
/// InputF*, F(0..warm), [S(k−warm) F(k) T(k−warm)].., [S(k) T(k)]..
/// ```
///
/// `S` and `T` orders are ascending on every device, and each device's
/// `T(k)` sits after its own `S(k)` — the protocol lints (`VP0006`,
/// `VP0007`) hold by construction. Because every microbatch schedules a
/// `T`, `vp_schedule::deps::sync_collectives` treats its `S` passes as
/// stream-offloaded (non-rendezvous) and the deadlock analyses model the
/// *wait* at `T` instead — see [`decode_pipeline_overlap_missplit`] for
/// the layout those analyses exist to reject.
///
/// # Panics
///
/// Panics if `p == 0` or `m == 0`.
pub fn decode_pipeline_overlap(p: usize, m: u32) -> Schedule {
    assert!(p > 0, "need at least one device");
    assert!(m > 0, "need at least one slot");
    let device_passes = (0..p)
        .map(|d| {
            let warm = (p - d) as u32;
            let mut v = Vec::new();
            for k in 0..m {
                v.push(ScheduledPass::new(PassKind::InputF, k));
            }
            for k in 0..m.min(warm) {
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in warm..m {
                v.push(ScheduledPass::new(PassKind::S, k - warm));
                v.push(ScheduledPass::new(PassKind::F, k));
                v.push(ScheduledPass::new(PassKind::T, k - warm));
            }
            for k in m.saturating_sub(warm)..m {
                v.push(ScheduledPass::new(PassKind::S, k));
                v.push(ScheduledPass::new(PassKind::T, k));
            }
            v
        })
        .collect();
    Schedule::new(ScheduleKind::Vocab(VocabVariant::Alg2), m, 1, device_passes)
}

/// A deliberately *mis-split* overlap layout: the half-batch assignment is
/// inconsistent across devices, kept as the regression fixture the
/// overlap-aware deadlock analyses must reject.
///
/// Device 0 merges immediately (`F(k) S(k) T(k)`, zero lag — as if its
/// half of the batch were empty), while every other device defers its
/// merge by two slots (`F(0) F(1)` before `S(0)`). For `p ≥ 2`, `m ≥ 2`
/// this cycles: device 0's `T(0)` waits on device 1's `S(0)` contribution,
/// which sits behind device 1's `F(1)`, which needs the activation of
/// device 0's `F(1)` — scheduled *after* its `T(0)`. The asymmetric
/// happens-before graph contains the cycle (`VP0001`), and the execution
/// model checker reaches the same stuck state dynamically. Never execute
/// this on the runtime.
///
/// # Panics
///
/// Panics if `p == 0` or `m == 0`.
pub fn decode_pipeline_overlap_missplit(p: usize, m: u32) -> Schedule {
    assert!(p > 0, "need at least one device");
    assert!(m > 0, "need at least one slot");
    let device_passes = (0..p)
        .map(|d| {
            let mut v = Vec::new();
            for k in 0..m {
                v.push(ScheduledPass::new(PassKind::InputF, k));
            }
            if d == 0 {
                // Zero lag: merge immediately after every forward, as if
                // this device's overlapped half-batch were empty.
                for k in 0..m {
                    v.push(ScheduledPass::new(PassKind::F, k));
                    v.push(ScheduledPass::new(PassKind::S, k));
                    v.push(ScheduledPass::new(PassKind::T, k));
                }
            } else {
                // Lag 2: the merge defers behind the next *two* forwards.
                let lag = 2u32;
                for k in 0..m.min(lag) {
                    v.push(ScheduledPass::new(PassKind::F, k));
                }
                for k in lag..m {
                    v.push(ScheduledPass::new(PassKind::S, k - lag));
                    v.push(ScheduledPass::new(PassKind::F, k));
                    v.push(ScheduledPass::new(PassKind::T, k - lag));
                }
                for k in m.saturating_sub(lag)..m {
                    v.push(ScheduledPass::new(PassKind::S, k));
                    v.push(ScheduledPass::new(PassKind::T, k));
                }
            }
            v
        })
        .collect();
    Schedule::new(ScheduleKind::Vocab(VocabVariant::Alg2), m, 1, device_passes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_block_memory_overhead_equals_barriers() {
        // §5.2: the activation-memory overhead (in microbatches) equals the
        // number of communication barriers. Use zero comm and tiny vocab
        // pass times so the analytic bound is tight: the vocab block's
        // lifespan is exactly `plain lifespan + barriers·interval`.
        let times = PassTimes {
            s: 0.01,
            t: 0.01,
            comm: 0.0,
            ..PassTimes::default()
        };
        let p = 8;
        let plain = one_f_one_b_block(p, times);
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            let block = vocab_1f1b_block(p, variant, times);
            for d in 0..p {
                let plain_lifespan = plain.lifespan(d, 0).unwrap();
                let expected =
                    (plain_lifespan / block.interval()).ceil() + variant.barriers() as f64;
                let got = block.peak_activation_microbatches(d);
                assert_eq!(got, expected, "{variant:?} device {d}");
                // And the overhead never exceeds the barrier count.
                assert!(got <= plain.peak_activation_microbatches(d) + variant.barriers() as f64);
            }
        }
    }

    #[test]
    fn vocab_schedule_contains_all_passes() {
        let sched = vocab_1f1b(4, 6, VocabVariant::Alg1, PassTimes::default(), true);
        for d in 0..4 {
            for kind in [
                PassKind::F,
                PassKind::B,
                PassKind::S,
                PassKind::T,
                PassKind::InputF,
                PassKind::InputB,
            ] {
                assert_eq!(sched.count_kind(d, kind), 6, "kind {kind:?} device {d}");
            }
        }
    }

    #[test]
    fn input_forward_precedes_first_forward_on_device_zero() {
        let sched = vocab_1f1b(4, 4, VocabVariant::Alg2, PassTimes::default(), true);
        for k in 0..4u32 {
            let passes = sched.passes(0);
            let input_pos = passes
                .iter()
                .position(|p| p.kind == PassKind::InputF && p.microbatch == k)
                .unwrap();
            let f0_pos = passes
                .iter()
                .position(|p| p.kind == PassKind::F && p.microbatch == k)
                .unwrap();
            assert!(
                input_pos < f0_pos,
                "mb {k}: input at {input_pos}, F at {f0_pos}"
            );
        }
    }

    #[test]
    fn interlaced_lifespan_is_1_5x_of_1f1b() {
        let times = PassTimes::default();
        let p = 8;
        let plain = one_f_one_b_block(p, times);
        let inter = interlaced_block(p, times);
        for d in 0..p - 1 {
            let ratio = inter.lifespan(d, 0).unwrap() / plain.lifespan(d, 0).unwrap();
            assert!((1.45..1.6).contains(&ratio), "device {d}: ratio {ratio}");
        }
    }

    #[test]
    fn vhalf_activation_is_balanced_and_halved() {
        let times = PassTimes {
            w: 1.0,
            b: 1.0,
            ..PassTimes::default()
        };
        let p = 8;
        let block = vhalf_block(p, times);
        // Per-device resident microbatch-chunks must be (near) identical
        // across devices — the balance property.
        let peaks: Vec<f64> = (0..p)
            .map(|d| block.peak_activation_microbatches(d))
            .collect();
        let max = peaks.iter().cloned().fold(0.0f64, f64::max);
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min <= 1.0, "peaks {peaks:?}");
        // Each chunk holds half a device's layers, so the byte peak is
        // peak/2 in 1F1B microbatch units: must be ≈ half of 1F1B's p.
        let device0_units = peaks[0] / 2.0;
        assert!(device0_units <= 0.75 * p as f64, "units {device0_units}");
    }

    #[test]
    fn vhalf_chunks_form_a_v() {
        let sched = vhalf(4, 4, PassTimes::default());
        assert_eq!(sched.chunks(), 2);
        for d in 0..4 {
            assert_eq!(sched.count_kind(d, PassKind::F), 8); // 2 chunks × 4 mbs
            assert_eq!(sched.count_kind(d, PassKind::B), 8);
        }
        // Device p−1 hosts consecutive virtual stages: its chunk-1 F comes
        // right after its chunk-0 F for the same microbatch.
        let last = sched.passes(3);
        let f0 = last
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 0 && p.chunk == 0)
            .unwrap();
        let f1 = last
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 0 && p.chunk == 1)
            .unwrap();
        assert!(f1 > f0);
        assert!(
            f1 - f0 <= 2,
            "chunk-1 forward should closely follow chunk-0"
        );
    }

    #[test]
    fn vhalf_vocab_adds_output_passes_on_every_device() {
        let sched = vhalf_vocab(4, 5, VocabVariant::Alg1, PassTimes::default(), false);
        for d in 0..4 {
            assert_eq!(sched.count_kind(d, PassKind::S), 5);
            assert_eq!(sched.count_kind(d, PassKind::T), 5);
        }
    }

    #[test]
    fn interleaved_shortens_last_device_warmup() {
        use crate::exec::{Executor, UnitCosts};
        // Per-device work is equal: each of the 2 chunks holds half the
        // layers, so its passes take half the time.
        let plain_times = PassTimes::default();
        let chunk_times = PassTimes {
            f: 0.5,
            b: 1.0,
            ..PassTimes::default()
        };
        let (p, m) = (4usize, 16);
        let plain = one_f_one_b(p, m, plain_times);
        let inter = interleaved_1f1b(p, 2, m, chunk_times);
        let rp = Executor::new(&UnitCosts::new(plain_times, 1))
            .run(&plain)
            .unwrap();
        let ri = Executor::new(&UnitCosts::new(chunk_times, 2))
            .run(&inter)
            .unwrap();
        // The last device starts computing after (p−1)·f/chunks instead of
        // (p−1)·f — the fill-bubble reduction interleaving buys.
        assert!(
            ri.start[p - 1][0] < 0.6 * rp.start[p - 1][0],
            "interleaved first start {} vs plain {}",
            ri.start[p - 1][0],
            rp.start[p - 1][0]
        );
        // End-to-end the uniformly-repeated block is within a few percent
        // of plain 1F1B (Megatron's hand-tuned warmup pattern would
        // convert the earlier start into a net win; our synthesized order
        // trades part of it back — documented limitation).
        assert!(
            ri.makespan < 1.05 * rp.makespan,
            "interleaved {} vs plain {}",
            ri.makespan,
            rp.makespan
        );
        // More resident microbatch-chunks on device 0 (each holding half
        // the activations) — the known memory cost of interleaving.
        assert!(ri.peak_resident_microbatches[0] > rp.peak_resident_microbatches[0]);
    }

    #[test]
    fn interleaved_vocab_validates_and_flows() {
        use crate::deps::validate;
        use crate::exec::{Executor, UnitCosts};
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let chunk_times = PassTimes {
                f: 0.5,
                b: 1.0,
                ..PassTimes::default()
            };
            let sched = interleaved_vocab_1f1b(4, 2, 24, variant, chunk_times, false);
            validate(&sched).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            let costs = UnitCosts::new(chunk_times, 2);
            let report = Executor::new(&costs).run(&sched).unwrap();
            let interval = 2.0 * 1.5 + 0.6;
            let work = interval * 24.0;
            assert!(
                report.makespan < work + 10.0 * interval,
                "{variant:?}: makespan {}",
                report.makespan
            );
            for d in 0..4 {
                assert_eq!(sched.count_kind(d, PassKind::S), 24);
                assert_eq!(sched.count_kind(d, PassKind::T), 24);
            }
        }
    }

    #[test]
    fn zero_bubble_fills_warmup_with_w_passes() {
        use crate::exec::{Executor, UnitCosts};
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        let p = 6;
        let m = 48;
        let plain_times = PassTimes {
            f: 1.0,
            b: 2.0,
            w: 0.0,
            ..PassTimes::default()
        };
        let plain = one_f_one_b(p, m, plain_times);
        let zb = zb_1f1b(p, m, times);
        let costs_plain = UnitCosts::new(plain_times, 1);
        let costs_zb = UnitCosts::new(times, 1);
        let rp = Executor::new(&costs_plain).run(&plain).unwrap();
        let rz = Executor::new(&costs_zb).run(&zb).unwrap();
        // Same total work per device (f+b == f+b'+w); ZB fills bubbles.
        assert!(
            rz.mean_bubble_fraction() < rp.mean_bubble_fraction(),
            "zb {} vs plain {}",
            rz.mean_bubble_fraction(),
            rp.mean_bubble_fraction()
        );
        assert!(rz.makespan < rp.makespan);
    }

    #[test]
    fn zb_vocab_schedules_validate_and_sustain_throughput() {
        use crate::exec::{Executor, UnitCosts};
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            s: 0.3,
            t: 0.3,
            ..PassTimes::default()
        };
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let sched = zb_vocab_1f1b(4, 48, variant, times, false);
            let costs = UnitCosts::new(times, 1);
            let report = Executor::new(&costs).run(&sched).unwrap();
            let interval = 3.0 + 0.6;
            let work = interval * 48.0;
            assert!(
                report.makespan < work + 10.0 * interval,
                "{variant:?}: makespan {}",
                report.makespan
            );
            for d in 0..4 {
                assert_eq!(sched.count_kind(d, PassKind::W), 48);
                assert_eq!(sched.count_kind(d, PassKind::T), 48);
            }
        }
    }

    #[test]
    fn zb_and_interleaved_vocab_input_passes_validate() {
        use crate::deps::validate;
        let zb_times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            s: 0.3,
            t: 0.3,
            ..PassTimes::default()
        };
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let sched = zb_vocab_1f1b(4, 12, variant, zb_times, true);
            validate(&sched).unwrap_or_else(|e| panic!("zb {variant:?}: {e}"));
            for d in 0..4 {
                assert_eq!(
                    sched.count_kind(d, PassKind::InputF),
                    12,
                    "zb {variant:?} device {d}"
                );
                assert_eq!(
                    sched.count_kind(d, PassKind::InputB),
                    12,
                    "zb {variant:?} device {d}"
                );
            }
            let chunk_times = PassTimes {
                f: 0.5,
                b: 1.0,
                ..PassTimes::default()
            };
            let sched = interleaved_vocab_1f1b(4, 2, 12, variant, chunk_times, true);
            validate(&sched).unwrap_or_else(|e| panic!("interleaved {variant:?}: {e}"));
            for d in 0..4 {
                assert_eq!(
                    sched.count_kind(d, PassKind::InputF),
                    12,
                    "il {variant:?} device {d}"
                );
                assert_eq!(
                    sched.count_kind(d, PassKind::InputB),
                    12,
                    "il {variant:?} device {d}"
                );
            }
        }
    }

    #[test]
    fn generators_reject_zero_devices() {
        let result = std::panic::catch_unwind(|| one_f_one_b(0, 1, PassTimes::default()));
        assert!(result.is_err());
    }

    #[test]
    fn decode_pipeline_validates_across_shapes() {
        use crate::deps::validate;
        for p in [1, 2, 3, 4, 8] {
            for m in [1u32, 2, 4, 7, 16] {
                let sched = decode_pipeline(p, m);
                validate(&sched).unwrap_or_else(|e| panic!("p={p} m={m}: {e}"));
            }
        }
    }

    #[test]
    fn decode_pipeline_is_forward_only_and_covers_all_slots() {
        let sched = decode_pipeline(4, 6);
        for d in 0..4 {
            assert_eq!(sched.count_kind(d, PassKind::F), 6, "device {d}");
            assert_eq!(sched.count_kind(d, PassKind::S), 6, "device {d}");
            assert_eq!(sched.count_kind(d, PassKind::InputF), 6, "device {d}");
            for kind in [
                PassKind::B,
                PassKind::W,
                PassKind::T,
                PassKind::S2,
                PassKind::InputB,
            ] {
                assert_eq!(sched.count_kind(d, kind), 0, "kind {kind:?} device {d}");
            }
        }
    }

    #[test]
    fn decode_pipeline_enters_collectives_in_identical_order() {
        // Every device must hit S_0, S_1, ... in the same relative order —
        // the C1 barrier is a collective over all shards.
        let sched = decode_pipeline(4, 8);
        for d in 0..4 {
            let s_order: Vec<u32> = sched
                .passes(d)
                .iter()
                .filter(|p| p.kind == PassKind::S)
                .map(|p| p.microbatch)
                .collect();
            assert_eq!(s_order, (0..8).collect::<Vec<_>>(), "device {d}");
        }
    }

    #[test]
    fn decode_pipeline_hoists_all_input_sends_to_the_head() {
        // Regression: an InputF interleaved after an S pass deadlocks the
        // rendezvous runtime — the token's owning shard can sit inside the
        // S collective while stage 0 waits on the unsent embedding row.
        for p in [1, 2, 4] {
            let sched = decode_pipeline(p, 8);
            for d in 0..p {
                assert!(
                    sched.passes(d)[..8]
                        .iter()
                        .all(|x| x.kind == PassKind::InputF),
                    "device {d} of {p}"
                );
            }
        }
    }

    #[test]
    fn decode_pipeline_overlap_validates_and_pairs_every_s_with_a_t() {
        use crate::deps::validate;
        for p in [1, 2, 3, 4, 8] {
            for m in [1u32, 2, 4, 7, 16] {
                let sched = decode_pipeline_overlap(p, m);
                validate(&sched).unwrap_or_else(|e| panic!("p={p} m={m}: {e}"));
                for d in 0..p {
                    assert_eq!(sched.count_kind(d, PassKind::F), m as usize);
                    assert_eq!(sched.count_kind(d, PassKind::S), m as usize);
                    assert_eq!(sched.count_kind(d, PassKind::T), m as usize);
                    assert_eq!(sched.count_kind(d, PassKind::InputF), m as usize);
                    // Same hoisted InputF head as decode_pipeline.
                    assert!(sched.passes(d)[..m as usize]
                        .iter()
                        .all(|x| x.kind == PassKind::InputF));
                    // Ascending S and T orders, and each T after its own S
                    // (the stream handle exists before anything waits on it).
                    for kind in [PassKind::S, PassKind::T] {
                        let order: Vec<u32> = sched
                            .passes(d)
                            .iter()
                            .filter(|x| x.kind == kind)
                            .map(|x| x.microbatch)
                            .collect();
                        assert_eq!(order, (0..m).collect::<Vec<_>>(), "device {d}");
                    }
                    for k in 0..m {
                        let pos = |kind| {
                            sched
                                .passes(d)
                                .iter()
                                .position(|x| x.kind == kind && x.microbatch == k)
                                .unwrap()
                        };
                        assert!(pos(PassKind::S) < pos(PassKind::T), "slot {k} device {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn decode_pipeline_overlap_runs_a_forward_between_s_and_t_in_steady_state() {
        // The point of the family: while slot k's all-gather is in flight
        // (between S(k) and T(k)), the *next* slot's transformer forward
        // runs on the device thread.
        let (p, m) = (4, 8u32);
        let sched = decode_pipeline_overlap(p, m);
        for d in 0..p {
            let warm = (p - d) as u32;
            let passes = sched.passes(d);
            for k in 0..m.saturating_sub(warm) {
                let s = passes
                    .iter()
                    .position(|x| x.kind == PassKind::S && x.microbatch == k)
                    .unwrap();
                let t = passes
                    .iter()
                    .position(|x| x.kind == PassKind::T && x.microbatch == k)
                    .unwrap();
                let overlapped = passes[s + 1..t]
                    .iter()
                    .filter(|x| x.kind == PassKind::F)
                    .count();
                assert_eq!(overlapped, 1, "slot {k} device {d} has no overlap window");
            }
        }
    }

    #[test]
    fn missplit_overlap_defers_merges_inconsistently_across_devices() {
        // The fixture's defining property: device 0 schedules T(0) before
        // its F(1), every other device schedules S(0) after its F(1) — the
        // inconsistent half-batch assignment the checkers must reject.
        let sched = decode_pipeline_overlap_missplit(3, 4);
        let pos = |d: usize, kind, k| {
            sched
                .passes(d)
                .iter()
                .position(|x| x.kind == kind && x.microbatch == k)
                .unwrap()
        };
        assert!(pos(0, PassKind::T, 0) < pos(0, PassKind::F, 1));
        for d in 1..3 {
            assert!(
                pos(d, PassKind::F, 1) < pos(d, PassKind::S, 0),
                "device {d}"
            );
        }
    }

    #[test]
    fn decode_pipeline_warms_up_like_1f1b() {
        // Device d should run p − d forwards before its first S so the
        // steady state pipelines.
        let p = 4;
        let sched = decode_pipeline(p, 8);
        for d in 0..p {
            let first_s = sched
                .passes(d)
                .iter()
                .position(|x| x.kind == PassKind::S)
                .unwrap();
            let fwd_before = sched.passes(d)[..first_s]
                .iter()
                .filter(|x| x.kind == PassKind::F)
                .count();
            assert_eq!(fwd_before, p - d, "device {d}");
        }
    }
}
