//! Chrome trace-event export of measured runs: the same
//! `chrome://tracing` / Perfetto JSON the simulator emits, so measured and
//! simulated timelines open side by side. Each device renders as one
//! process; its pass, blocking-wait and communication-stream rows render
//! as threads 0/1/2 within it.

use crate::{TraceEvent, Track, NO_MICROBATCH};
use std::collections::BTreeSet;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes measured events as Chrome trace-event JSON. Timestamps are
/// nanoseconds since the log epoch, rendered in microseconds as the format
/// requires. Events are emitted sorted by `(device, track, start)`, so
/// per-row timestamps are monotonic — the property the CI schema check
/// verifies.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.device, e.track as u8, e.start_ns, e.end_ns));
    let rows: BTreeSet<(u32, Track)> = sorted.iter().map(|e| (e.device, e.track)).collect();
    let devices: BTreeSet<u32> = sorted.iter().map(|e| e.device).collect();
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for d in &devices {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{d},\"args\":{{\"name\":\"device {d}\"}}}}"
            ),
        );
    }
    for (d, track) in &rows {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                d,
                *track as u8,
                track.label()
            ),
        );
    }
    for e in &sorted {
        let ts = e.start_ns as f64 / 1e3;
        let dur = e.duration_ns() as f64 / 1e3;
        let args = if e.microbatch == NO_MICROBATCH {
            String::new()
        } else {
            format!("\"microbatch\":{},\"chunk\":{},", e.microbatch, e.chunk)
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{{}\"track\":\"{}\"}}}}",
                escape(e.name),
                track_category(e.track),
                ts,
                dur,
                e.device,
                e.track as u8,
                args,
                e.track.label()
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Category label (color grouping) for a track.
fn track_category(track: Track) -> &'static str {
    match track {
        Track::Compute => "pass",
        Track::Wait => "comm-wait",
        Track::Stream => "comm-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        device: u32,
        track: Track,
        name: &'static str,
        mb: u32,
        start: u64,
        end: u64,
    ) -> TraceEvent {
        TraceEvent {
            device,
            track,
            name,
            microbatch: mb,
            chunk: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn trace_is_wellformed_and_complete() {
        let events = vec![
            ev(0, Track::Compute, "F", 0, 0, 1_000),
            ev(0, Track::Wait, "p2p.recv", NO_MICROBATCH, 1_000, 1_500),
            ev(1, Track::Compute, "B", 0, 2_000, 4_000),
            ev(1, Track::Stream, "stream.job", NO_MICROBATCH, 2_100, 2_900),
        ];
        let json = to_chrome_trace(&events);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(json.matches("process_name").count(), 2);
        assert_eq!(json.matches("thread_name").count(), 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // ns render as µs with 3 decimals.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"microbatch\":0"));
        assert!(json.contains("comm-stream"));
        assert!(!json.contains("\"dur\":-"));
    }

    #[test]
    fn untagged_events_carry_no_microbatch_arg() {
        let json = to_chrome_trace(&[ev(0, Track::Wait, "p2p.recv", NO_MICROBATCH, 0, 5)]);
        assert!(!json.contains("microbatch"));
        assert!(json.contains("\"track\":\"comm-wait\""));
    }

    #[test]
    fn events_are_emitted_in_row_major_monotonic_order() {
        let events = vec![
            ev(1, Track::Compute, "B", 1, 50_000, 60_000),
            ev(0, Track::Compute, "F", 0, 10_000, 20_000),
            ev(1, Track::Compute, "F", 0, 5_000, 15_000),
            ev(0, Track::Compute, "B", 0, 30_000, 40_000),
        ];
        let json = to_chrome_trace(&events);
        let ts_positions: Vec<usize> = [
            "\"ts\":10.000",
            "\"ts\":30.000",
            "\"ts\":5.000",
            "\"ts\":50.000",
        ]
        .iter()
        .map(|needle| json.find(needle).expect(needle))
        .collect();
        let mut sorted = ts_positions.clone();
        sorted.sort_unstable();
        assert_eq!(ts_positions, sorted);
    }
}
