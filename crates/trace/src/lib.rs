#![warn(missing_docs)]

//! Measured-run tracing for the schedule interpreter (`vp-trace`).
//!
//! The simulator has always produced timelines; this crate gives the
//! *numeric* runtime the same visibility. Every executed pass (`F`/`B`/`W`,
//! the vocabulary `S`/`T` passes, sharded input passes), every blocking
//! point-to-point wait and every communication-stream job can record a
//! `{device, name, microbatch, chunk, start_ns, end_ns}` event into a
//! per-device **lock-free** buffer ([`EventBuffer`]): appenders reserve a
//! slot with one atomic `fetch_add` and never take a lock, so tracing adds
//! nanoseconds per pass — and when tracing is off it adds nothing at all.
//!
//! The zero-overhead-when-disabled guarantee is structural, not a runtime
//! check against global state: a disabled [`Tracer`] holds no buffer
//! (`inner: None`), so every hook reduces to one branch on an `Option`
//! that is always taken the same way — the event-free fast path of the
//! interpreter is byte-for-byte the code that runs with no tracer
//! attached. There are no global registries and no environment variables;
//! whoever wants a trace builds a [`TraceLog`], hands per-device
//! [`Tracer`] handles down the stack, and collects the events when the
//! run finishes.
//!
//! On top of the raw events:
//!
//! * [`TimelineReport`] computes per-device bubble rate, communication
//!   wait/overlap fractions and the critical-path length;
//! * [`chrome::to_chrome_trace`] renders the events as Chrome trace-event
//!   JSON (`chrome://tracing` / Perfetto), the same format the simulator
//!   emits for its analytical timelines.

mod buffer;
pub mod chrome;
pub mod report;

pub use buffer::EventBuffer;
pub use report::{DeviceTimeline, TimelineReport};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sentinel microbatch for events not tied to a microbatch (stream sync,
/// untagged waits).
pub const NO_MICROBATCH: u32 = u32::MAX;

/// Which timeline row of a device an event belongs to.
///
/// Tracks map to Chrome-trace thread ids, so each device renders as one
/// process with up to three rows: its pass timeline, its blocking
/// communication waits, and the jobs its communication stream executes
/// concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Track {
    /// Passes executed by the device thread (`F`, `B`, `W`, `S`, `T`, …).
    Compute = 0,
    /// Time the device thread spends *blocked* on communication (p2p
    /// receives, waiting on an in-flight stream job).
    Wait = 1,
    /// Work executed on the device's communication stream (the `C1`
    /// barrier collectives that overlap with compute).
    Stream = 2,
}

impl Track {
    /// Human-readable row label used by the Chrome exporter.
    pub fn label(self) -> &'static str {
        match self {
            Track::Compute => "passes",
            Track::Wait => "comm-wait",
            Track::Stream => "comm-stream",
        }
    }
}

/// One recorded span: a half-open `[start_ns, end_ns)` interval on a
/// `(device, track)` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Pipeline device (thread) the event belongs to.
    pub device: u32,
    /// Timeline row within the device.
    pub track: Track,
    /// Event label — pass kinds use `PassKind` names (`"F"`, `"B"`, …),
    /// communication hooks use dotted names (`"p2p.recv"`, `"stream.job"`).
    pub name: &'static str,
    /// Microbatch index, or [`NO_MICROBATCH`].
    pub microbatch: u32,
    /// Model chunk on the device (0 for single-chunk schedules).
    pub chunk: u8,
    /// Start, nanoseconds since the owning [`TraceLog`]'s epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the owning [`TraceLog`]'s epoch.
    pub end_ns: u64,
}

impl TraceEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Default per-device event capacity (events past it are counted, not
/// stored — see [`TraceLog::dropped`]).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct TracerInner {
    device: u32,
    epoch: Instant,
    /// Whether this device's hooks currently record. The runtime disarms
    /// warm-up iterations and arms the final one, so a trace captures one
    /// steady iteration exactly like the simulator's reports.
    armed: AtomicBool,
    buf: Arc<EventBuffer>,
}

/// A cheap, cloneable per-device recording handle.
///
/// All clones for one device share the same buffer and arm state, so the
/// device thread, its p2p endpoint and its communication stream write one
/// coherent timeline. [`Tracer::off`] is the disabled handle: every
/// operation on it is a no-op behind a single `Option` branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => f
                .debug_struct("Tracer")
                .field("device", &i.device)
                .field("armed", &i.armed.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Tracer(off)"),
        }
    }
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch per hook.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans started now would be recorded.
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            Some(i) => i.armed.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Starts recording (no-op on a disabled tracer).
    pub fn arm(&self) {
        if let Some(i) = &self.inner {
            i.armed.store(true, Ordering::Relaxed);
        }
    }

    /// Stops recording without detaching the buffer.
    pub fn disarm(&self) {
        if let Some(i) = &self.inner {
            i.armed.store(false, Ordering::Relaxed);
        }
    }

    /// Nanoseconds since the owning log's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Opens a span that records itself when dropped (or [`Span::end`]ed).
    /// On a disabled or disarmed tracer this is a no-op handle.
    pub fn span(&self, track: Track, name: &'static str, microbatch: u32, chunk: u8) -> Span {
        match &self.inner {
            Some(i) if i.armed.load(Ordering::Relaxed) => Span {
                inner: Some(SpanInner {
                    tracer: Arc::clone(i),
                    track,
                    name,
                    microbatch,
                    chunk,
                    start_ns: i.epoch.elapsed().as_nanos() as u64,
                }),
            },
            _ => Span { inner: None },
        }
    }

    /// Records a fully-formed span (used when start/end were measured by
    /// the caller).
    pub fn record(
        &self,
        track: Track,
        name: &'static str,
        microbatch: u32,
        chunk: u8,
        start_ns: u64,
        end_ns: u64,
    ) {
        if let Some(i) = &self.inner {
            if i.armed.load(Ordering::Relaxed) {
                i.buf.push(TraceEvent {
                    device: i.device,
                    track,
                    name,
                    microbatch,
                    chunk,
                    start_ns,
                    end_ns,
                });
            }
        }
    }
}

struct SpanInner {
    tracer: Arc<TracerInner>,
    track: Track,
    name: &'static str,
    microbatch: u32,
    chunk: u8,
    start_ns: u64,
}

/// An open span tied to a [`Tracer`]; records `[start, now)` when dropped.
#[must_use = "a span records its interval when dropped; binding it to _ ends it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            let end_ns = s.tracer.epoch.elapsed().as_nanos() as u64;
            s.tracer.buf.push(TraceEvent {
                device: s.tracer.device,
                track: s.track,
                name: s.name,
                microbatch: s.microbatch,
                chunk: s.chunk,
                start_ns: s.start_ns,
                end_ns,
            });
        }
    }
}

/// The collector behind a traced run: one lock-free [`EventBuffer`] per
/// device, all sharing a single wall-clock epoch.
pub struct TraceLog {
    epoch: Instant,
    buffers: Vec<Arc<EventBuffer>>,
    tracers: Vec<Arc<TracerInner>>,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("devices", &self.buffers.len())
            .field("events", &self.len())
            .finish()
    }
}

impl TraceLog {
    /// A log for `devices` devices with the default per-device capacity.
    pub fn new(devices: usize) -> TraceLog {
        TraceLog::with_capacity(devices, DEFAULT_CAPACITY)
    }

    /// A log with an explicit per-device event capacity.
    pub fn with_capacity(devices: usize, capacity: usize) -> TraceLog {
        let epoch = Instant::now();
        let buffers: Vec<Arc<EventBuffer>> = (0..devices)
            .map(|_| Arc::new(EventBuffer::new(capacity)))
            .collect();
        let tracers = buffers
            .iter()
            .enumerate()
            .map(|(d, buf)| {
                Arc::new(TracerInner {
                    device: d as u32,
                    epoch,
                    armed: AtomicBool::new(true),
                    buf: Arc::clone(buf),
                })
            })
            .collect();
        TraceLog {
            epoch,
            buffers,
            tracers,
        }
    }

    /// Number of devices the log collects for.
    pub fn devices(&self) -> usize {
        self.buffers.len()
    }

    /// The shared epoch all events are measured against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The recording handle for one device (armed by default; the runtime
    /// disarms warm-up iterations itself).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn tracer(&self, device: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::clone(&self.tracers[device])),
        }
    }

    /// Total recorded events across devices.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because a device buffer filled up.
    pub fn dropped(&self) -> usize {
        self.buffers.iter().map(|b| b.dropped()).sum()
    }

    /// Snapshots all events, merged and sorted by `(device, track,
    /// start_ns)` — the order the Chrome exporter and the schema checks
    /// expect.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self.buffers.iter().flat_map(|b| b.snapshot()).collect();
        events.sort_by_key(|e| (e.device, e.track as u8, e.start_ns, e.end_ns));
        events
    }

    /// Analyzes the recorded events into a [`TimelineReport`].
    pub fn report(&self) -> TimelineReport {
        TimelineReport::new(&self.events())
    }

    /// Renders the recorded events as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        chrome::to_chrome_trace(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing_and_reports_disabled() {
        let t = Tracer::off();
        assert!(!t.is_enabled());
        t.arm();
        assert!(!t.is_enabled());
        t.record(Track::Compute, "F", 0, 0, 0, 10);
        let _ = t.span(Track::Compute, "F", 0, 0);
        // Nothing observable happened; now_ns is the fixed fast-path zero.
        assert_eq!(t.now_ns(), 0);
    }

    #[test]
    fn spans_record_on_drop_with_device_attribution() {
        let log = TraceLog::new(2);
        let t1 = log.tracer(1);
        {
            let _span = t1.span(Track::Compute, "F", 3, 1);
        }
        t1.record(Track::Wait, "p2p.recv", NO_MICROBATCH, 0, 5, 9);
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.device == 1));
        let f = events.iter().find(|e| e.name == "F").unwrap();
        assert_eq!((f.microbatch, f.chunk, f.track), (3, 1, Track::Compute));
        assert!(f.end_ns >= f.start_ns);
        let w = events.iter().find(|e| e.name == "p2p.recv").unwrap();
        assert_eq!(w.duration_ns(), 4);
    }

    #[test]
    fn disarmed_tracer_skips_events_until_rearmed() {
        let log = TraceLog::new(1);
        let t = log.tracer(0);
        t.disarm();
        t.record(Track::Compute, "F", 0, 0, 0, 1);
        assert!(log.is_empty());
        t.arm();
        t.record(Track::Compute, "B", 0, 0, 1, 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.events()[0].name, "B");
    }

    #[test]
    fn clones_share_the_buffer_and_arm_state() {
        let log = TraceLog::new(1);
        let a = log.tracer(0);
        let b = a.clone();
        b.disarm();
        assert!(!a.is_enabled());
        a.arm();
        b.record(Track::Stream, "stream.job", NO_MICROBATCH, 0, 0, 7);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn events_are_sorted_by_device_track_start() {
        let log = TraceLog::new(2);
        log.tracer(1).record(Track::Compute, "B", 1, 0, 10, 20);
        log.tracer(0).record(Track::Wait, "p2p.recv", 0, 0, 5, 6);
        log.tracer(0).record(Track::Compute, "F", 0, 0, 7, 9);
        log.tracer(0).record(Track::Compute, "F", 1, 0, 2, 4);
        let ev = log.events();
        let key: Vec<(u32, u8, u64)> = ev
            .iter()
            .map(|e| (e.device, e.track as u8, e.start_ns))
            .collect();
        let mut sorted = key.clone();
        sorted.sort();
        assert_eq!(key, sorted);
        assert_eq!(ev[0].name, "F");
        assert_eq!(ev[0].start_ns, 2);
    }
}
