//! Timeline analysis of a measured run: per-device bubble rates,
//! communication wait/overlap accounting and the critical-path length —
//! the measured counterpart of the simulator's `ScheduleAnalysis`.

use crate::{TraceEvent, Track};
use std::collections::BTreeMap;

/// Merges `[start, end)` intervals and returns their total covered length.
fn union_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Total length of `intervals` that falls inside the merged `cover` set.
fn overlap_ns(intervals: &[(u64, u64)], cover: &[(u64, u64)]) -> u64 {
    let mut total = 0u64;
    for &(s, e) in intervals {
        for &(cs, ce) in cover {
            let lo = s.max(cs);
            let hi = e.min(ce);
            if lo < hi {
                total += hi - lo;
            }
        }
    }
    total
}

/// Merged, sorted interval set.
fn merged(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (s, e) in intervals {
        match out.last_mut() {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Per-pass-kind aggregate over the compute track.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStat {
    /// Number of events with this name.
    pub count: usize,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
}

/// One device's measured timeline summary.
#[derive(Debug, Clone, Default)]
pub struct DeviceTimeline {
    /// Device index.
    pub device: u32,
    /// Union of the device's compute (pass) intervals, nanoseconds.
    pub busy_ns: u64,
    /// Union of the device's blocking communication waits.
    pub wait_ns: u64,
    /// Union of the work executed on the device's communication stream.
    pub stream_ns: u64,
    /// Portion of `stream_ns` that ran while the device was computing —
    /// communication hidden inside passes, the paper's §6.1 overlap.
    pub overlapped_stream_ns: u64,
    /// Start of the device's first compute pass.
    pub first_start_ns: u64,
    /// End of the device's last compute pass.
    pub last_end_ns: u64,
    /// Number of compute (pass) events.
    pub passes: usize,
}

impl DeviceTimeline {
    /// Idle fraction of the device within the global `makespan_ns`.
    pub fn bubble_fraction(&self, makespan_ns: u64) -> f64 {
        if makespan_ns == 0 {
            0.0
        } else {
            1.0 - self.busy_ns as f64 / makespan_ns as f64
        }
    }

    /// Fraction of the device's stream (collective) time hidden under
    /// compute. `1.0` when the device ran no stream work (nothing to
    /// hide).
    pub fn comm_overlap_fraction(&self) -> f64 {
        if self.stream_ns == 0 {
            1.0
        } else {
            self.overlapped_stream_ns as f64 / self.stream_ns as f64
        }
    }
}

/// Aggregate analysis of a measured event stream.
#[derive(Debug, Clone, Default)]
pub struct TimelineReport {
    /// Per-device summaries, indexed by device (dense `0..devices`).
    pub devices: Vec<DeviceTimeline>,
    /// Global `[min start, max end)` span over all events, nanoseconds.
    pub makespan_ns: u64,
    /// Lower bound on the achievable makespan: the busiest device's
    /// compute time. (Without dependency edges a measured trace cannot
    /// name the exact critical chain; no pipeline can beat its busiest
    /// stage, so this is the classic per-stage critical-path bound.)
    pub critical_path_ns: u64,
    /// Summed duration and count per pass name, compute track only.
    pub time_by_name: BTreeMap<&'static str, KindStat>,
}

impl TimelineReport {
    /// Computes the report from a (not necessarily sorted) event stream.
    pub fn new(events: &[TraceEvent]) -> TimelineReport {
        let devices = events
            .iter()
            .map(|e| e.device as usize + 1)
            .max()
            .unwrap_or(0);
        let mut per_device = vec![DeviceTimeline::default(); devices];
        let mut compute: Vec<Vec<(u64, u64)>> = vec![Vec::new(); devices];
        let mut waits: Vec<Vec<(u64, u64)>> = vec![Vec::new(); devices];
        let mut stream: Vec<Vec<(u64, u64)>> = vec![Vec::new(); devices];
        let mut time_by_name: BTreeMap<&'static str, KindStat> = BTreeMap::new();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for e in events {
            let d = e.device as usize;
            t_min = t_min.min(e.start_ns);
            t_max = t_max.max(e.end_ns);
            match e.track {
                Track::Compute => {
                    compute[d].push((e.start_ns, e.end_ns));
                    let dt = &mut per_device[d];
                    if dt.passes == 0 {
                        dt.first_start_ns = e.start_ns;
                        dt.last_end_ns = e.end_ns;
                    } else {
                        dt.first_start_ns = dt.first_start_ns.min(e.start_ns);
                        dt.last_end_ns = dt.last_end_ns.max(e.end_ns);
                    }
                    dt.passes += 1;
                    let stat = time_by_name.entry(e.name).or_default();
                    stat.count += 1;
                    stat.total_ns += e.duration_ns();
                }
                Track::Wait => waits[d].push((e.start_ns, e.end_ns)),
                Track::Stream => stream[d].push((e.start_ns, e.end_ns)),
            }
        }
        let makespan_ns = if t_min == u64::MAX { 0 } else { t_max - t_min };
        let mut critical_path_ns = 0u64;
        for d in 0..devices {
            let cover = merged(std::mem::take(&mut compute[d]));
            let dt = &mut per_device[d];
            dt.device = d as u32;
            dt.busy_ns = cover.iter().map(|(s, e)| e - s).sum();
            dt.wait_ns = union_ns(std::mem::take(&mut waits[d]));
            let stream_intervals = merged(std::mem::take(&mut stream[d]));
            dt.stream_ns = stream_intervals.iter().map(|(s, e)| e - s).sum();
            dt.overlapped_stream_ns = overlap_ns(&stream_intervals, &cover);
            critical_path_ns = critical_path_ns.max(dt.busy_ns);
        }
        TimelineReport {
            devices: per_device,
            makespan_ns,
            critical_path_ns,
            time_by_name,
        }
    }

    /// Mean idle fraction across devices.
    pub fn mean_bubble(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices
            .iter()
            .map(|d| d.bubble_fraction(self.makespan_ns))
            .sum::<f64>()
            / self.devices.len() as f64
    }

    /// Mean stream-overlap fraction across devices that ran stream work.
    pub fn mean_comm_overlap(&self) -> f64 {
        let with_stream: Vec<&DeviceTimeline> =
            self.devices.iter().filter(|d| d.stream_ns > 0).collect();
        if with_stream.is_empty() {
            return 1.0;
        }
        with_stream
            .iter()
            .map(|d| d.comm_overlap_fraction())
            .sum::<f64>()
            / with_stream.len() as f64
    }

    /// Total compute time across devices, nanoseconds.
    pub fn total_busy_ns(&self) -> u64 {
        self.devices.iter().map(|d| d.busy_ns).sum()
    }

    /// Share of total compute time spent in events named `name` (0 when
    /// nothing was recorded).
    pub fn share_of(&self, name: &str) -> f64 {
        let total = self.total_busy_ns();
        if total == 0 {
            return 0.0;
        }
        self.time_by_name
            .get(name)
            .map(|s| s.total_ns as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Renders a compact text report.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = format!(
            "makespan {:.3} ms, critical path {:.3} ms, mean bubble {:.1}%, comm overlap {:.1}%\n",
            ms(self.makespan_ns),
            ms(self.critical_path_ns),
            100.0 * self.mean_bubble(),
            100.0 * self.mean_comm_overlap()
        );
        for d in &self.devices {
            out.push_str(&format!(
                "dev {:>2}: busy {:>9.3} ms  bubble {:>5.1}%  wait {:>9.3} ms  stream {:>9.3} ms ({:>5.1}% overlapped)\n",
                d.device,
                ms(d.busy_ns),
                100.0 * d.bubble_fraction(self.makespan_ns),
                ms(d.wait_ns),
                ms(d.stream_ns),
                100.0 * d.comm_overlap_fraction(),
            ));
        }
        for (name, stat) in &self.time_by_name {
            out.push_str(&format!(
                "pass {:>7}: {:>4} events, {:>9.3} ms total ({:>5.1}% of busy)\n",
                name,
                stat.count,
                ms(stat.total_ns),
                100.0 * self.share_of(name),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_MICROBATCH;

    fn ev(device: u32, track: Track, name: &'static str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            device,
            track,
            name,
            microbatch: NO_MICROBATCH,
            chunk: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn empty_pipeline_yields_a_zeroed_report() {
        let r = TimelineReport::new(&[]);
        assert!(r.devices.is_empty());
        assert_eq!(r.makespan_ns, 0);
        assert_eq!(r.critical_path_ns, 0);
        assert_eq!(r.mean_bubble(), 0.0);
        assert_eq!(r.mean_comm_overlap(), 1.0);
        assert_eq!(r.share_of("F"), 0.0);
    }

    #[test]
    fn perfect_fill_has_zero_bubble() {
        // Two devices, back-to-back passes covering the full makespan.
        let events = vec![
            ev(0, Track::Compute, "F", 0, 50),
            ev(0, Track::Compute, "B", 50, 100),
            ev(1, Track::Compute, "F", 0, 30),
            ev(1, Track::Compute, "B", 30, 100),
        ];
        let r = TimelineReport::new(&events);
        assert_eq!(r.makespan_ns, 100);
        assert_eq!(r.critical_path_ns, 100);
        for d in &r.devices {
            assert_eq!(d.bubble_fraction(r.makespan_ns), 0.0, "device {}", d.device);
        }
        assert_eq!(r.mean_bubble(), 0.0);
        assert_eq!(r.time_by_name["F"].count, 2);
        assert_eq!(r.time_by_name["F"].total_ns, 80);
        assert!((r.share_of("F") - 0.4).abs() < 1e-12);
    }

    #[test]
    fn known_1f1b_fill_reports_the_textbook_bubble() {
        // 2-device 1F1B with unit passes (f = b = 10, m = 2): device 1
        // starts one f late and ends one b early — bubble 2·10/60 = 1/3 on
        // device 1, 1/3 on device 0 (idle while dev 1 computes the first
        // backward).
        let events = vec![
            ev(0, Track::Compute, "F", 0, 10),
            ev(0, Track::Compute, "F", 10, 20),
            ev(0, Track::Compute, "B", 30, 40),
            ev(0, Track::Compute, "B", 50, 60),
            ev(1, Track::Compute, "F", 10, 20),
            ev(1, Track::Compute, "B", 20, 30),
            ev(1, Track::Compute, "F", 30, 40),
            ev(1, Track::Compute, "B", 40, 50),
        ];
        let r = TimelineReport::new(&events);
        assert_eq!(r.makespan_ns, 60);
        let b0 = r.devices[0].bubble_fraction(r.makespan_ns);
        let b1 = r.devices[1].bubble_fraction(r.makespan_ns);
        assert!((b0 - 1.0 / 3.0).abs() < 1e-12, "{b0}");
        assert!((b1 - 1.0 / 3.0).abs() < 1e-12, "{b1}");
        assert!((r.mean_bubble() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.critical_path_ns, 40);
    }

    #[test]
    fn one_straggler_stage_dominates_the_critical_path() {
        // Device 1 computes the whole time; devices 0 and 2 mostly idle.
        let events = vec![
            ev(0, Track::Compute, "F", 0, 10),
            ev(1, Track::Compute, "F", 0, 100),
            ev(2, Track::Compute, "F", 90, 100),
        ];
        let r = TimelineReport::new(&events);
        assert_eq!(r.makespan_ns, 100);
        assert_eq!(r.critical_path_ns, 100);
        assert_eq!(r.devices[1].bubble_fraction(r.makespan_ns), 0.0);
        assert!((r.devices[0].bubble_fraction(r.makespan_ns) - 0.9).abs() < 1e-12);
        assert!((r.mean_bubble() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn stream_overlap_is_measured_against_compute_cover() {
        let events = vec![
            ev(0, Track::Compute, "F", 0, 40),
            // 30 ns of stream work: 20 under the pass, 10 in the open.
            ev(0, Track::Stream, "stream.job", 20, 50),
            // Waits do not count as busy time.
            ev(0, Track::Wait, "p2p.recv", 40, 50),
        ];
        let r = TimelineReport::new(&events);
        let d = &r.devices[0];
        assert_eq!(d.busy_ns, 40);
        assert_eq!(d.stream_ns, 30);
        assert_eq!(d.overlapped_stream_ns, 20);
        assert_eq!(d.wait_ns, 10);
        assert!((d.comm_overlap_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_comm_overlap() - 2.0 / 3.0).abs() < 1e-12);
        // Makespan spans all tracks.
        assert_eq!(r.makespan_ns, 50);
    }

    #[test]
    fn overlapping_compute_intervals_are_not_double_counted() {
        // Defensive: a malformed stream with overlapping passes still
        // yields busy <= makespan.
        let events = vec![
            ev(0, Track::Compute, "F", 0, 30),
            ev(0, Track::Compute, "B", 20, 40),
        ];
        let r = TimelineReport::new(&events);
        assert_eq!(r.devices[0].busy_ns, 40);
        assert_eq!(r.makespan_ns, 40);
    }

    #[test]
    fn render_mentions_devices_and_kinds() {
        let events = vec![
            ev(0, Track::Compute, "F", 0, 10),
            ev(1, Track::Compute, "B", 10, 30),
        ];
        let r = TimelineReport::new(&events);
        let text = r.render();
        assert!(text.contains("mean bubble"));
        assert!(text.contains("dev  0"));
        assert!(text.contains("dev  1"));
        assert!(text.contains("pass       F"));
    }
}
