//! The per-device lock-free event buffer.
//!
//! Appending is wait-free for practical purposes: a writer claims a slot
//! with one `fetch_add`, writes the event, and publishes it with a
//! release store on the slot's ready flag. There are no locks anywhere on
//! the write path, so the device thread, its p2p endpoint and its
//! communication-stream worker can all record concurrently without ever
//! blocking each other (or perturbing the timings they are measuring).
//! The buffer is bounded: events past the capacity are counted as dropped
//! rather than stored, keeping the write path allocation-free.

use crate::TraceEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Slot {
    ready: AtomicBool,
    event: UnsafeCell<MaybeUninit<TraceEvent>>,
}

/// Fixed-capacity, lock-free, multi-producer append buffer of
/// [`TraceEvent`]s.
pub struct EventBuffer {
    slots: Box<[Slot]>,
    next: AtomicUsize,
    dropped: AtomicUsize,
}

// Safety: slots are only written by the unique claimant of their index
// (the `fetch_add` hands each index to exactly one writer) and only read
// after the `ready` release-store is observed with an acquire-load.
unsafe impl Sync for EventBuffer {}
unsafe impl Send for EventBuffer {}

impl std::fmt::Debug for EventBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBuffer")
            .field("len", &self.len())
            .field("capacity", &self.slots.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventBuffer {
    /// A buffer holding up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EventBuffer {
        assert!(capacity > 0, "event buffer capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                event: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventBuffer {
            slots,
            next: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Appends an event; lock-free. Returns `false` (and counts the drop)
    /// if the buffer is full.
    pub fn push(&self, event: TraceEvent) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[idx];
        // Safety: `fetch_add` made us the unique writer of this index, and
        // readers only look after observing `ready == true`.
        unsafe { (*slot.event.get()).write(event) };
        slot.ready.store(true, Ordering::Release);
        true
    }

    /// Number of published events.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out every published event, in claim order. Skips slots whose
    /// writer claimed an index but has not published yet (possible only
    /// while writers are still running).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            if slot.ready.load(Ordering::Acquire) {
                // Safety: the release/acquire pair on `ready` makes the
                // claimant's write visible, and events are `Copy`.
                out.push(unsafe { (*slot.event.get()).assume_init() });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Track;

    fn ev(start_ns: u64) -> TraceEvent {
        TraceEvent {
            device: 0,
            track: Track::Compute,
            name: "F",
            microbatch: 0,
            chunk: 0,
            start_ns,
            end_ns: start_ns + 1,
        }
    }

    #[test]
    fn push_and_snapshot_round_trip() {
        let buf = EventBuffer::new(8);
        assert!(buf.is_empty());
        for i in 0..5 {
            assert!(buf.push(ev(i)));
        }
        let got = buf.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(got[3].start_ns, 3);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_instead_of_storing() {
        let buf = EventBuffer::new(2);
        assert!(buf.push(ev(0)));
        assert!(buf.push(ev(1)));
        assert!(!buf.push(ev(2)));
        assert!(!buf.push(ev(3)));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_pushes_from_many_threads_all_land() {
        let buf = EventBuffer::new(4096);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let buf = &buf;
                scope.spawn(move || {
                    for i in 0..512 {
                        buf.push(ev((t * 1000 + i) as u64));
                    }
                });
            }
        });
        let got = buf.snapshot();
        assert_eq!(got.len(), 4096);
        assert_eq!(buf.dropped(), 0);
        // Every thread's every event is present exactly once.
        let mut starts: Vec<u64> = got.iter().map(|e| e.start_ns).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 4096);
    }
}
