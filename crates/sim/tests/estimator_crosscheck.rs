//! Cross-check: the closed-form §5.2 memory estimator in `vp-model` must
//! agree with the discrete-event simulator's measured peaks — two
//! independent derivations of the same quantity.

use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_model::memory::{estimate_1f1b, PlacementKind};
use vp_model::partition::StageLayout;
use vp_sim::{run_1f1b, Method};

fn check(method: Method, placement: PlacementKind, vocab_k: usize, tol_gb: f64) {
    let cfg = ModelPreset::Gpt4B
        .config()
        .with_vocab(vocab_k * 1024)
        .with_num_microbatches(32);
    let hw = Hardware::default();
    let layout = match method {
        Method::Baseline => StageLayout::baseline(&cfg, 8),
        _ => StageLayout::vocab_parallel(&cfg, 8),
    };
    let analytic = estimate_1f1b(&cfg, &hw, &layout, placement);
    let simulated = run_1f1b(method, &cfg, 8, hw);
    #[allow(clippy::needless_range_loop)] // d indexes two parallel reports
    for d in 0..8 {
        let a = analytic[d].total_gb();
        let s = simulated.peak_memory_bytes[d] / 1e9;
        assert!(
            (a - s).abs() < tol_gb,
            "{method:?} {vocab_k}k device {d}: analytic {a:.2} GB vs simulated {s:.2} GB"
        );
    }
}

#[test]
fn baseline_estimates_match_simulation() {
    for vocab_k in [32usize, 256] {
        check(Method::Baseline, PlacementKind::EndToEnd, vocab_k, 1.0);
    }
}

#[test]
fn vocab1_estimates_match_simulation() {
    for vocab_k in [32usize, 256] {
        check(
            Method::Vocab1,
            PlacementKind::VocabParallel { barriers: 2 },
            vocab_k,
            1.5,
        );
    }
}

#[test]
fn vocab2_estimates_match_simulation() {
    for vocab_k in [32usize, 256] {
        check(
            Method::Vocab2,
            PlacementKind::VocabParallel { barriers: 1 },
            vocab_k,
            1.5,
        );
    }
}

#[test]
fn interlaced_estimates_match_simulation() {
    check(Method::Interlaced, PlacementKind::Interlaced, 128, 2.5);
}
