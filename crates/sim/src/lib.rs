#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Discrete-event pipeline simulator.
//!
//! Binds the analytical cost model of `vp-model` (Appendix A FLOPs,
//! calibrated A100-like hardware) to the schedules of `vp-schedule` and
//! replays them with the deterministic executor, producing the quantities
//! the paper's evaluation reports: iteration time, MFU, bubble fractions
//! and per-device peak memory. This is the engine behind the Table 5/6 and
//! Figure 11–14 reproductions, the interlaced-sync ablation (Appendix B.2)
//! and the schedule visualizations.
//!
//! The simulator does not try to match the paper's absolute numbers — its
//! substrate is a model, not an A100 cluster — but the *shape* of the
//! results (who wins, where memory balances, where OOMs appear) follows
//! from the same structure the paper analyses. The [`timeline`] module
//! closes the loop the other way: it diffs a simulated schedule's
//! per-pass-kind busy shares against a measured `vp-trace` timeline of
//! the same schedule, the comparison behind `repro timeline`.

pub mod costs;
pub mod method;
pub mod report;
pub mod sweep;
pub mod timeline;

pub use costs::SimCosts;
pub use method::{
    run_1f1b, run_1f1b_grid, run_barrier_ablation, run_interlaced_ablation, run_interleaved_vocab,
    run_vhalf, run_vocab_variant, run_zero_bubble, Method, VHalfMethod,
};
pub use report::SimReport;
pub use sweep::{
    microbatch_sweep, to_csv, tp_crossover_sweep, vocab_sweep, vocab_sweep_vhalf, GridSweepPoint,
    SweepPoint,
};
pub use timeline::{compare_timelines, DivergenceReport, KindDrift};
