//! Parameter sweeps over the simulator, with CSV export — the data series
//! behind the paper's figures (and any new ones a user wants to plot).

use crate::method::{run_1f1b, run_1f1b_grid, run_vhalf, Method, VHalfMethod};
use crate::report::SimReport;
use vp_model::config::ModelConfig;
use vp_model::cost::Hardware;
use vp_model::TpSyncStyle;
use vp_schedule::grid::DeviceGrid;

/// One point of a sweep: the varied value and the simulation result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value (vocabulary size, microbatches, …).
    pub x: f64,
    /// The simulation report at that value.
    pub report: SimReport,
}

/// Sweeps vocabulary size for one 1F1B method (a Figure 11/12 series).
pub fn vocab_sweep(
    method: Method,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    vocabs: &[usize],
) -> Vec<SweepPoint> {
    vocabs
        .iter()
        .map(|&v| SweepPoint {
            x: v as f64,
            report: run_1f1b(
                method,
                &config.clone().with_vocab(v),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// Sweeps vocabulary size for one V-Half method (a Figure 13/14 series).
pub fn vocab_sweep_vhalf(
    method: VHalfMethod,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    vocabs: &[usize],
) -> Vec<SweepPoint> {
    vocabs
        .iter()
        .map(|&v| SweepPoint {
            x: v as f64,
            report: run_vhalf(
                method,
                &config.clone().with_vocab(v),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// Sweeps the microbatch count (pipeline fill amortization study).
pub fn microbatch_sweep(
    method: Method,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    microbatches: &[usize],
) -> Vec<SweepPoint> {
    microbatches
        .iter()
        .map(|&m| SweepPoint {
            x: m as f64,
            report: run_1f1b(
                method,
                &config.clone().with_num_microbatches(m),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// One point of a PP × TP crossover sweep: the grid shape and its report.
#[derive(Debug, Clone)]
pub struct GridSweepPoint {
    /// The device grid the point was simulated on.
    pub grid: DeviceGrid,
    /// The simulation report for that factorization.
    pub report: SimReport,
}

/// Sweeps every `pp × tp` factorization of a fixed device count — the
/// PTD-style composition study (Narayanan et al. 2021, §5.4): at the same
/// device budget, when does widening the tensor axis beat deepening the
/// pipeline? Shallow pipelines amortize their fill/drain bubble over fewer
/// stages but pay exposed TP collectives and narrower (less efficient)
/// matmul shards; with few microbatches the bubble dominates and TP wins,
/// with many the flat pipeline does.
///
/// Factorizations keep at least two pipeline stages (`pp ≥ 2`), ordered by
/// increasing `tp`. The `tp = 1` point is bitwise the 1D [`run_1f1b`]
/// report.
pub fn tp_crossover_sweep(
    method: Method,
    config: &ModelConfig,
    total_devices: usize,
    hardware: &Hardware,
    sync: TpSyncStyle,
) -> Vec<GridSweepPoint> {
    (1..=total_devices)
        .filter(|tp| total_devices.is_multiple_of(*tp) && total_devices / tp >= 2)
        .map(|tp| {
            let grid = DeviceGrid::new(total_devices / tp, tp);
            GridSweepPoint {
                grid,
                report: run_1f1b_grid(method, config, grid, sync, hardware.clone()),
            }
        })
        .collect()
}

/// Renders sweep series as CSV: one row per x value, one column pair
/// (`<name>_mfu`, `<name>_gb`) per series.
///
/// # Panics
///
/// Panics if the series have mismatched lengths or x values (caller bug).
pub fn to_csv(x_name: &str, series: &[(&str, &[SweepPoint])]) -> String {
    let mut out = String::from(x_name);
    for (name, _) in series {
        out.push_str(&format!(",{name}_mfu_pct,{name}_peak_gb"));
    }
    out.push('\n');
    let rows = series.first().map(|(_, s)| s.len()).unwrap_or(0);
    for i in 0..rows {
        let x = series[0].1[i].x;
        out.push_str(&format!("{x}"));
        for (name, s) in series {
            assert_eq!(s.len(), rows, "series {name} has a different length");
            assert!(
                (s[i].x - x).abs() < 1e-9,
                "series {name} has mismatched x values"
            );
            out.push_str(&format!(
                ",{:.3},{:.3}",
                s[i].report.mfu_pct(),
                s[i].report.max_memory_gb()
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_model::config::ModelPreset;

    fn cfg() -> ModelConfig {
        ModelPreset::Gpt4B.config().with_num_microbatches(16)
    }

    #[test]
    fn vocab_sweep_shows_baseline_collapse() {
        let hw = Hardware::default();
        let vocabs = [32 * 1024, 256 * 1024];
        let base = vocab_sweep(Method::Baseline, &cfg(), 8, &hw, &vocabs);
        let vocab = vocab_sweep(Method::Vocab2, &cfg(), 8, &hw, &vocabs);
        assert!(base[1].report.mfu < base[0].report.mfu * 0.8);
        assert!((vocab[1].report.mfu - vocab[0].report.mfu).abs() < 0.05 * vocab[0].report.mfu);
    }

    #[test]
    fn microbatch_sweep_amortizes_the_fill() {
        let hw = Hardware::default();
        let ms = [8usize, 64];
        let pts = microbatch_sweep(Method::Vocab2, &cfg(), 8, &hw, &ms);
        assert!(pts[1].report.mfu > pts[0].report.mfu);
    }

    #[test]
    fn vhalf_sweep_runs() {
        let hw = Hardware::default();
        let cfg = ModelPreset::Gpt7B.config().with_num_microbatches(16);
        let pts = vocab_sweep_vhalf(VHalfMethod::Vocab1, &cfg, 16, &hw, &[32 * 1024]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].report.mfu > 0.2);
    }

    #[test]
    fn csv_is_rectangular() {
        let hw = Hardware::default();
        let vocabs = [32 * 1024, 64 * 1024];
        let a = vocab_sweep(Method::Baseline, &cfg(), 8, &hw, &vocabs);
        let b = vocab_sweep(Method::Vocab2, &cfg(), 8, &hw, &vocabs);
        let csv = to_csv("vocab", &[("baseline", &a), ("vocab2", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "vocab,baseline_mfu_pct,baseline_peak_gb,vocab2_mfu_pct,vocab2_peak_gb"
        );
        assert_eq!(lines[1].split(',').count(), 5);
    }

    #[test]
    fn tp_crossover_covers_factorizations_and_tp1_is_bitwise_flat() {
        let hw = Hardware::default();
        let config = cfg();
        let pts = tp_crossover_sweep(Method::Vocab2, &config, 16, &hw, TpSyncStyle::AllReduce);
        let shapes: Vec<(usize, usize)> = pts.iter().map(|p| (p.grid.pp(), p.grid.tp())).collect();
        assert_eq!(shapes, vec![(16, 1), (8, 2), (4, 4), (2, 8)]);
        let flat = run_1f1b(Method::Vocab2, &config, 16, hw);
        assert_eq!(
            pts[0].report.iteration_seconds.to_bits(),
            flat.iteration_seconds.to_bits()
        );
        assert_eq!(pts[0].report.mfu.to_bits(), flat.mfu.to_bits());
    }

    /// The PTD-style crossover: with few microbatches the pipeline bubble
    /// dominates and a wider tensor axis wins; with many microbatches the
    /// fill amortizes and the flat pipeline's full-width kernels win.
    #[test]
    fn tp_crossover_flips_with_microbatch_count() {
        let hw = Hardware::default();
        let best = |m: usize| {
            let config = cfg().with_num_microbatches(m);
            tp_crossover_sweep(Method::Vocab2, &config, 16, &hw, TpSyncStyle::AllReduce)
                .into_iter()
                .min_by(|a, b| {
                    a.report
                        .iteration_seconds
                        .total_cmp(&b.report.iteration_seconds)
                })
                .expect("non-empty sweep")
        };
        assert!(best(4).grid.tp() > 1, "bubble-bound: TP must win");
        assert_eq!(best(128).grid.tp(), 1, "compute-bound: deep PP must win");
    }

    #[test]
    fn memory_breakdown_components_sum() {
        let hw = Hardware::default();
        let r = run_1f1b(Method::Vocab2, &cfg(), 8, hw);
        for d in 0..8 {
            let sum = r.param_bytes[d] + r.activation_bytes[d];
            assert!((sum - r.peak_memory_bytes[d]).abs() < 1.0);
        }
        assert!(r.activation_fraction() > 0.0 && r.activation_fraction() < 1.0);
    }
}
