//! Parameter sweeps over the simulator, with CSV export — the data series
//! behind the paper's figures (and any new ones a user wants to plot).

use crate::method::{run_1f1b, run_vhalf, Method, VHalfMethod};
use crate::report::SimReport;
use vp_model::config::ModelConfig;
use vp_model::cost::Hardware;

/// One point of a sweep: the varied value and the simulation result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value (vocabulary size, microbatches, …).
    pub x: f64,
    /// The simulation report at that value.
    pub report: SimReport,
}

/// Sweeps vocabulary size for one 1F1B method (a Figure 11/12 series).
pub fn vocab_sweep(
    method: Method,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    vocabs: &[usize],
) -> Vec<SweepPoint> {
    vocabs
        .iter()
        .map(|&v| SweepPoint {
            x: v as f64,
            report: run_1f1b(
                method,
                &config.clone().with_vocab(v),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// Sweeps vocabulary size for one V-Half method (a Figure 13/14 series).
pub fn vocab_sweep_vhalf(
    method: VHalfMethod,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    vocabs: &[usize],
) -> Vec<SweepPoint> {
    vocabs
        .iter()
        .map(|&v| SweepPoint {
            x: v as f64,
            report: run_vhalf(
                method,
                &config.clone().with_vocab(v),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// Sweeps the microbatch count (pipeline fill amortization study).
pub fn microbatch_sweep(
    method: Method,
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
    microbatches: &[usize],
) -> Vec<SweepPoint> {
    microbatches
        .iter()
        .map(|&m| SweepPoint {
            x: m as f64,
            report: run_1f1b(
                method,
                &config.clone().with_num_microbatches(m),
                devices,
                hardware.clone(),
            ),
        })
        .collect()
}

/// Renders sweep series as CSV: one row per x value, one column pair
/// (`<name>_mfu`, `<name>_gb`) per series.
///
/// # Panics
///
/// Panics if the series have mismatched lengths or x values (caller bug).
pub fn to_csv(x_name: &str, series: &[(&str, &[SweepPoint])]) -> String {
    let mut out = String::from(x_name);
    for (name, _) in series {
        out.push_str(&format!(",{name}_mfu_pct,{name}_peak_gb"));
    }
    out.push('\n');
    let rows = series.first().map(|(_, s)| s.len()).unwrap_or(0);
    for i in 0..rows {
        let x = series[0].1[i].x;
        out.push_str(&format!("{x}"));
        for (name, s) in series {
            assert_eq!(s.len(), rows, "series {name} has a different length");
            assert!(
                (s[i].x - x).abs() < 1e-9,
                "series {name} has mismatched x values"
            );
            out.push_str(&format!(
                ",{:.3},{:.3}",
                s[i].report.mfu_pct(),
                s[i].report.max_memory_gb()
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_model::config::ModelPreset;

    fn cfg() -> ModelConfig {
        ModelPreset::Gpt4B.config().with_num_microbatches(16)
    }

    #[test]
    fn vocab_sweep_shows_baseline_collapse() {
        let hw = Hardware::default();
        let vocabs = [32 * 1024, 256 * 1024];
        let base = vocab_sweep(Method::Baseline, &cfg(), 8, &hw, &vocabs);
        let vocab = vocab_sweep(Method::Vocab2, &cfg(), 8, &hw, &vocabs);
        assert!(base[1].report.mfu < base[0].report.mfu * 0.8);
        assert!((vocab[1].report.mfu - vocab[0].report.mfu).abs() < 0.05 * vocab[0].report.mfu);
    }

    #[test]
    fn microbatch_sweep_amortizes_the_fill() {
        let hw = Hardware::default();
        let ms = [8usize, 64];
        let pts = microbatch_sweep(Method::Vocab2, &cfg(), 8, &hw, &ms);
        assert!(pts[1].report.mfu > pts[0].report.mfu);
    }

    #[test]
    fn vhalf_sweep_runs() {
        let hw = Hardware::default();
        let cfg = ModelPreset::Gpt7B.config().with_num_microbatches(16);
        let pts = vocab_sweep_vhalf(VHalfMethod::Vocab1, &cfg, 16, &hw, &[32 * 1024]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].report.mfu > 0.2);
    }

    #[test]
    fn csv_is_rectangular() {
        let hw = Hardware::default();
        let vocabs = [32 * 1024, 64 * 1024];
        let a = vocab_sweep(Method::Baseline, &cfg(), 8, &hw, &vocabs);
        let b = vocab_sweep(Method::Vocab2, &cfg(), 8, &hw, &vocabs);
        let csv = to_csv("vocab", &[("baseline", &a), ("vocab2", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "vocab,baseline_mfu_pct,baseline_peak_gb,vocab2_mfu_pct,vocab2_peak_gb"
        );
        assert_eq!(lines[1].split(',').count(), 5);
    }

    #[test]
    fn memory_breakdown_components_sum() {
        let hw = Hardware::default();
        let r = run_1f1b(Method::Vocab2, &cfg(), 8, hw);
        for d in 0..8 {
            let sum = r.param_bytes[d] + r.activation_bytes[d];
            assert!((sum - r.peak_memory_bytes[d]).abs() < 1.0);
        }
        assert!(r.activation_fraction() > 0.0 && r.activation_fraction() < 1.0);
    }
}
