//! Sim-vs-measured timeline comparison.
//!
//! The simulator predicts a schedule's timeline from unit pass costs; the
//! numeric runtime measures the same schedule's real execution into a
//! `vp-trace` [`TimelineReport`]. This module quantifies how far the two
//! drift apart: for every pass kind it compares the *share of total busy
//! time* the kind occupies on each side, plus the mean bubble fraction.
//! Shares are scale-free — the simulator runs one abstract iteration in
//! unit time while the runtime measures nanoseconds of real CPU work — so
//! the comparison isolates *structural* drift (a pass kind costing
//! relatively more or less than the model assumes) from absolute speed.
//!
//! CI gates on [`DivergenceReport::max_divergence`]: a schedule whose
//! measured per-kind time budget wanders away from the simulated one means
//! either the cost model or the runtime changed behaviour.

use vp_schedule::analysis::ScheduleAnalysis;
use vp_schedule::pass::PassKind;
use vp_trace::TimelineReport;

/// All pass kinds a schedule can contain, in display order.
const ALL_KINDS: [PassKind; 10] = [
    PassKind::F,
    PassKind::B,
    PassKind::W,
    PassKind::S,
    PassKind::S2,
    PassKind::T,
    PassKind::InputF,
    PassKind::InputB,
    PassKind::OutputF,
    PassKind::OutputB,
];

/// One pass kind's share of total busy time on each side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindDrift {
    /// Pass-kind label (`"F"`, `"B"`, `"S"`, …), shared with the tracer.
    pub name: &'static str,
    /// Fraction of total simulated busy time spent in this kind.
    pub sim_share: f64,
    /// Fraction of total measured busy time spent in this kind.
    pub measured_share: f64,
}

impl KindDrift {
    /// Absolute share difference, in `[0, 1]`.
    pub fn divergence(&self) -> f64 {
        (self.sim_share - self.measured_share).abs()
    }
}

/// Per-pass-kind divergence between a simulated and a measured run of the
/// same schedule.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Kinds present on either side, in canonical pass order.
    pub kinds: Vec<KindDrift>,
    /// Simulated mean idle fraction across devices.
    pub sim_bubble: f64,
    /// Measured mean idle fraction across devices.
    pub measured_bubble: f64,
}

impl DivergenceReport {
    /// Largest per-kind share divergence (0 when no kind is present).
    pub fn max_divergence(&self) -> f64 {
        self.kinds
            .iter()
            .map(KindDrift::divergence)
            .fold(0.0, f64::max)
    }

    /// Absolute difference of the mean bubble fractions.
    pub fn bubble_divergence(&self) -> f64 {
        (self.sim_bubble - self.measured_bubble).abs()
    }

    /// Renders a compact text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bubble: sim {:>5.1}%  measured {:>5.1}%  (Δ {:.1}pp)\n",
            100.0 * self.sim_bubble,
            100.0 * self.measured_bubble,
            100.0 * self.bubble_divergence()
        );
        for k in &self.kinds {
            out.push_str(&format!(
                "{:>7}: sim {:>5.1}%  measured {:>5.1}%  (Δ {:.1}pp)\n",
                k.name,
                100.0 * k.sim_share,
                100.0 * k.measured_share,
                100.0 * k.divergence()
            ));
        }
        out
    }
}

/// Compares a simulated execution of a schedule against a measured trace
/// of the same schedule, pass kind by pass kind.
pub fn compare_timelines(sim: &ScheduleAnalysis, measured: &TimelineReport) -> DivergenceReport {
    let sim_total: f64 = sim.time_by_kind.values().sum();
    let kinds = ALL_KINDS
        .iter()
        .filter_map(|&kind| {
            let sim_share = if sim_total > 0.0 {
                sim.time_by_kind.get(&kind).copied().unwrap_or(0.0) / sim_total
            } else {
                0.0
            };
            let measured_share = measured.share_of(kind.name());
            (sim_share > 0.0 || measured_share > 0.0).then_some(KindDrift {
                name: kind.name(),
                sim_share,
                measured_share,
            })
        })
        .collect();
    DivergenceReport {
        kinds,
        sim_bubble: sim.mean_bubble(),
        measured_bubble: measured.mean_bubble(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::exec::{Executor, UnitCosts};
    use vp_schedule::generators;
    use vp_schedule::pass::VocabVariant;
    use vp_trace::{TraceEvent, Track, NO_MICROBATCH};

    fn analyze(schedule: &vp_schedule::pass::Schedule, times: PassTimes) -> ScheduleAnalysis {
        let costs = UnitCosts::new(times, schedule.chunks());
        let report = Executor::new(&costs).run(schedule).unwrap();
        ScheduleAnalysis::new(schedule, &report)
    }

    fn ev(name: &'static str, device: u32, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            device,
            track: Track::Compute,
            name,
            microbatch: NO_MICROBATCH,
            chunk: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn identical_shares_yield_zero_divergence() {
        // Simulated 1F1B with f = 1, b = 2 spends 1/3 of busy time in F;
        // a measured trace with the same proportions diverges by ~0.
        let times = PassTimes::default(); // f = 1, b = 2
        let sched = generators::one_f_one_b(2, 4, times);
        let sim = analyze(&sched, times);
        let events = vec![
            ev("F", 0, 0, 100),
            ev("B", 0, 100, 300),
            ev("F", 1, 0, 100),
            ev("B", 1, 100, 300),
        ];
        let measured = TimelineReport::new(&events);
        let d = compare_timelines(&sim, &measured);
        assert!(d.max_divergence() < 1e-9, "{}", d.render());
        assert_eq!(d.kinds.len(), 2);
        assert_eq!(d.kinds[0].name, "F");
    }

    #[test]
    fn skewed_measurement_is_flagged() {
        // The model says B is twice F; the "measurement" spends 90% in F.
        let times = PassTimes::default();
        let sched = generators::one_f_one_b(2, 4, times);
        let sim = analyze(&sched, times);
        let measured = TimelineReport::new(&[ev("F", 0, 0, 900), ev("B", 0, 900, 1000)]);
        let d = compare_timelines(&sim, &measured);
        // Sim F share = 1/3; measured F share = 0.9.
        let f = d.kinds.iter().find(|k| k.name == "F").unwrap();
        assert!((f.divergence() - (0.9 - 1.0 / 3.0)).abs() < 1e-9);
        assert!(d.max_divergence() > 0.5);
    }

    #[test]
    fn kind_missing_on_one_side_still_appears() {
        let times = PassTimes::default();
        let sched = generators::vocab_1f1b(2, 4, VocabVariant::Alg2, times, true);
        let sim = analyze(&sched, times);
        // Measured trace without any S events: the S row must still show,
        // with measured share 0.
        let measured = TimelineReport::new(&[ev("F", 0, 0, 10), ev("B", 0, 10, 30)]);
        let d = compare_timelines(&sim, &measured);
        let s = d.kinds.iter().find(|k| k.name == "S").unwrap();
        assert!(s.sim_share > 0.0);
        assert_eq!(s.measured_share, 0.0);
    }

    #[test]
    fn empty_measurement_compares_cleanly() {
        let times = PassTimes::default();
        let sched = generators::one_f_one_b(2, 4, times);
        let sim = analyze(&sched, times);
        let d = compare_timelines(&sim, &TimelineReport::new(&[]));
        assert_eq!(d.measured_bubble, 0.0);
        assert!(d.max_divergence() > 0.0); // sim shares unmatched
        assert!(d.render().contains("bubble"));
    }
}
