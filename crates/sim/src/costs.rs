//! The cost provider binding `vp-model`'s analytical model to
//! `vp-schedule`'s executor.

use vp_model::config::ModelConfig;
use vp_model::cost::{CostModel, VocabAlgo};
use vp_model::partition::{StageLayout, VocabPlacement};
use vp_model::TpSyncStyle;
use vp_schedule::deps::EdgeKind;
use vp_schedule::exec::Costs;
use vp_schedule::pass::{PassKind, ScheduledPass};

/// What a device's chunk computes, for duration/memory purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSpec {
    /// Transformer layers in this chunk.
    pub layers: usize,
    /// Full input layer folded into this chunk's F/B (baseline layouts).
    pub full_input: bool,
    /// Full output layer folded into this chunk's F/B (baseline layouts).
    pub full_output: bool,
}

/// Cost provider for one simulated configuration.
#[derive(Debug, Clone)]
pub struct SimCosts {
    model: CostModel,
    /// `[device][chunk]` specification.
    chunks: Vec<Vec<ChunkSpec>>,
    /// Vocabulary algorithm for `S`/`T`/interlaced passes, if any.
    algo: Option<VocabAlgo>,
    /// Shard width of the vocabulary partition (padded / p).
    shard_width: usize,
    /// Zero the synchronous collective costs (the Appendix B.2 ablation).
    pub disable_sync_collectives: bool,
    /// Whether the schedule splits W out of B (zero-bubble style; V-Half).
    split_w: bool,
    /// Tensor-parallel width of each stage's grid row (1 = flat pipeline).
    tp: usize,
    /// How the grid row synchronizes sharded blocks (all-reduce vs. PSA).
    tp_sync: TpSyncStyle,
}

impl SimCosts {
    /// Builds costs for a single-chunk (1F1B-family) layout.
    pub fn for_layout(model: CostModel, layout: &StageLayout, algo: Option<VocabAlgo>) -> Self {
        let shard_width = layout.vocab_partition().shard_width();
        let chunks = (0..layout.devices())
            .map(|d| {
                let spec = layout.stage(d);
                vec![ChunkSpec {
                    layers: spec.transformer_layers,
                    full_input: spec.input == Some(VocabPlacement::Full),
                    full_output: spec.output == Some(VocabPlacement::Full),
                }]
            })
            .collect();
        SimCosts {
            model,
            chunks,
            algo,
            shard_width,
            disable_sync_collectives: false,
            split_w: false,
            tp: 1,
            tp_sync: TpSyncStyle::AllReduce,
        }
    }

    /// Builds costs for a V-Half layout: `2p` virtual stages of
    /// `layers / 2p` transformer layers; in the baseline, device 0 hosts
    /// the full input layer (virtual stage 0, chunk 0) *and* the full
    /// output layer (virtual stage `2p−1`, chunk 1).
    pub fn for_vhalf(
        model: CostModel,
        devices: usize,
        vocab_parallel: bool,
        algo: Option<VocabAlgo>,
    ) -> Self {
        let config = model.config.clone();
        let per_chunk = config.layers / (2 * devices);
        let remainder = config.layers % (2 * devices);
        let part = vp_model::partition::VocabPartition::new(config.vocab, devices);
        let chunks = (0..devices)
            .map(|d| {
                // Distribute any remainder over the first virtual stages.
                let vs0 = d;
                let vs1 = 2 * devices - 1 - d;
                let layers_of = |vs: usize| per_chunk + usize::from(vs < remainder);
                vec![
                    ChunkSpec {
                        layers: layers_of(vs0),
                        full_input: !vocab_parallel && d == 0,
                        full_output: false,
                    },
                    ChunkSpec {
                        layers: layers_of(vs1),
                        full_input: false,
                        full_output: !vocab_parallel && d == 0,
                    },
                ]
            })
            .collect();
        SimCosts {
            model,
            chunks,
            algo,
            shard_width: part.shard_width(),
            disable_sync_collectives: false,
            split_w: true,
            tp: 1,
            tp_sync: TpSyncStyle::AllReduce,
        }
    }

    /// Builds costs for an interleaved (round-robin) layout: `chunks`
    /// model chunks per device of `layers / (devices·chunks)` transformer
    /// layers, with vocabulary shards on every device.
    pub fn for_interleaved(
        model: CostModel,
        devices: usize,
        chunks: u8,
        algo: Option<VocabAlgo>,
    ) -> Self {
        let config = model.config.clone();
        let stages = devices * chunks as usize;
        let per_chunk = config.layers / stages;
        let remainder = config.layers % stages;
        let part = vp_model::partition::VocabPartition::new(config.vocab, devices);
        let chunk_table = (0..devices)
            .map(|d| {
                (0..chunks)
                    .map(|c| {
                        let vs = c as usize * devices + d;
                        ChunkSpec {
                            layers: per_chunk + usize::from(vs < remainder),
                            full_input: false,
                            full_output: false,
                        }
                    })
                    .collect()
            })
            .collect();
        SimCosts {
            model,
            chunks: chunk_table,
            algo,
            shard_width: part.shard_width(),
            disable_sync_collectives: false,
            split_w: false,
            tp: 1,
            tp_sync: TpSyncStyle::AllReduce,
        }
    }

    /// Enables the zero-bubble B/W split for 1F1B-family layouts.
    pub fn with_split_w(mut self) -> Self {
        self.split_w = true;
        self
    }

    /// Shards every transformer chunk over a grid row of `tp` tensor
    /// ranks synchronized with `sync`: matmul time divides by `tp` (at the
    /// narrower shard's kernel efficiency) and each sharded layer pays the
    /// exposed Megatron `f`/`g` collective time per direction. `tp = 1`
    /// leaves every cost bitwise unchanged. Vocabulary and full input /
    /// output layers are *not* sharded — as in the runtime grid, each
    /// pipeline column replicates them.
    pub fn with_tp(mut self, tp: usize, sync: TpSyncStyle) -> Self {
        assert!(tp > 0, "tensor-parallel width must be positive");
        self.tp = tp;
        self.tp_sync = sync;
        self
    }

    /// The tensor-parallel width the costs are priced for.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Exposed TP collective seconds per sharded layer in one direction
    /// (zero at `tp = 1`; PSA keeps only its exposed fraction on the
    /// critical path).
    fn tp_comm_layer_seconds(&self) -> f64 {
        if self.tp <= 1 {
            return 0.0;
        }
        let base = self.model.tp_comm_seconds_per_layer(self.tp);
        match self.tp_sync {
            TpSyncStyle::AllReduce => base,
            TpSyncStyle::Psa => base * self.model.psa_exposed_fraction(),
        }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.model.config
    }

    /// The chunk spec for `(device, chunk)`.
    pub fn chunk(&self, device: usize, chunk: u8) -> ChunkSpec {
        self.chunks[device][chunk as usize]
    }

    fn devices(&self) -> usize {
        self.chunks.len()
    }

    fn crosses_node(&self, a: usize, b: usize) -> bool {
        let dpn = self.model.hardware.devices_per_node;
        a / dpn != b / dpn
    }

    fn collective_seconds(&self, bytes: f64) -> f64 {
        self.model
            .hardware
            .all_reduce_seconds(bytes, self.devices())
    }

    /// Average relative pass times, used by generators for nominal
    /// priorities (absolute seconds work fine as relative units).
    pub fn pass_times(&self) -> vp_schedule::block::PassTimes {
        let m = &self.model;
        let p = self.devices();
        let mean_layers = (0..p)
            .flat_map(|d| self.chunks[d].iter().map(|c| c.layers))
            .sum::<usize>() as f64
            / self.chunks.iter().map(Vec::len).sum::<usize>() as f64;
        let algo = self.algo.unwrap_or(VocabAlgo::Alg1);
        let comm = self.tp_comm_layer_seconds();
        vp_schedule::block::PassTimes {
            f: (m.transformer_f_seconds_tp(1, self.tp) + comm) * mean_layers,
            b: if self.split_w {
                (m.transformer_b_only_seconds_tp(1, self.tp) + comm) * mean_layers
            } else {
                (m.transformer_bw_seconds_tp(1, self.tp) + comm) * mean_layers
            },
            w: if self.split_w {
                m.transformer_w_seconds_tp(1, self.tp) * mean_layers
            } else {
                0.0
            },
            s: m.vocab_s_seconds(algo, self.shard_width),
            t: m.vocab_t_seconds(algo, self.shard_width),
            input_f: m.vocab_input_f_seconds(p),
            input_b: m.vocab_input_b_seconds(p),
            comm: m.hardware.p2p_seconds(m.boundary_activation_bytes(), false),
        }
    }
}

impl Costs for SimCosts {
    fn pass_seconds(&self, device: usize, pass: &ScheduledPass) -> f64 {
        let m = &self.model;
        let spec = self.chunk(device, pass.chunk);
        let algo = self.algo.unwrap_or(VocabAlgo::Alg1);
        match pass.kind {
            PassKind::F => {
                let mut t = m.transformer_f_seconds_tp(spec.layers, self.tp)
                    + spec.layers as f64 * self.tp_comm_layer_seconds();
                if spec.full_output {
                    t += m.output_full_f_seconds();
                }
                if spec.full_input {
                    t += m.input_full_f_seconds();
                }
                t
            }
            PassKind::B => {
                let mut t = if self.split_w {
                    m.transformer_b_only_seconds_tp(spec.layers, self.tp)
                } else {
                    m.transformer_bw_seconds_tp(spec.layers, self.tp)
                };
                t += spec.layers as f64 * self.tp_comm_layer_seconds();
                if spec.full_output {
                    t += m.output_full_bw_seconds();
                }
                if spec.full_input {
                    t += m.input_full_b_seconds();
                }
                t
            }
            // Weight gradients are rank-local under TP (Megatron folds no
            // collective into wgrad), so `W` pays compute only.
            PassKind::W => {
                if self.split_w {
                    m.transformer_w_seconds_tp(spec.layers, self.tp)
                } else {
                    0.0
                }
            }
            PassKind::S | PassKind::S2 => m.vocab_s_seconds(algo, self.shard_width),
            PassKind::T => m.vocab_t_seconds(algo, self.shard_width),
            // Interlaced TP-style output passes compute the same shard
            // matmuls (forward 2bshV′; backward 4bshV′).
            PassKind::OutputF => m.vocab_s_seconds(VocabAlgo::Alg1, self.shard_width),
            PassKind::OutputB => m.vocab_t_seconds(VocabAlgo::Alg1, self.shard_width),
            PassKind::InputF => m.vocab_input_f_seconds(self.devices()),
            PassKind::InputB => m.vocab_input_b_seconds(self.devices()),
        }
    }

    fn edge_seconds(&self, kind: EdgeKind, from_device: usize, to_device: usize) -> f64 {
        let m = &self.model;
        match kind {
            EdgeKind::Local => 0.0,
            EdgeKind::ActivationP2p | EdgeKind::GradP2p => {
                if from_device == to_device {
                    0.0
                } else {
                    m.hardware.p2p_seconds(
                        m.boundary_activation_bytes(),
                        self.crosses_node(from_device, to_device),
                    )
                }
            }
            EdgeKind::C0Broadcast => self.collective_seconds(m.boundary_activation_bytes()),
            EdgeKind::C1Barrier => {
                // Two stats all-reduces; Algorithm 2 folds the ∇X reduce
                // into the same barrier.
                let mut bytes = 2.0 * m.stats_bytes();
                if self.algo == Some(VocabAlgo::Alg2) {
                    bytes += m.dx_bytes();
                }
                self.collective_seconds(bytes)
            }
            EdgeKind::C2Reduce => self.collective_seconds(m.dx_bytes()),
            EdgeKind::NaiveBarrier => self.collective_seconds(2.0 * m.stats_bytes()),
            EdgeKind::InterlacedSync => {
                if self.disable_sync_collectives {
                    0.0
                } else {
                    // Broadcast of X / stats all-reduce / ∇X reduce — the
                    // synchronous communications of Appendix B.2.
                    self.collective_seconds(
                        m.boundary_activation_bytes().max(2.0 * m.stats_bytes()),
                    )
                }
            }
            EdgeKind::InputAllReduce | EdgeKind::InputGradBroadcast => {
                self.collective_seconds(m.boundary_activation_bytes())
            }
        }
    }

    fn activation_units(&self, device: usize, chunk: u8) -> f64 {
        let spec = self.chunk(device, chunk);
        // Sharded layers stash smaller activations (§5.2's estimator
        // extended to the grid); the scale is exactly 1 at tp = 1.
        spec.layers as f64
            * self.model.act_bytes_per_layer()
            * self.tp_sync.activation_scale(self.tp)
    }

    fn vocab_buffer_units(&self, _device: usize) -> f64 {
        let algo = self.algo.unwrap_or(VocabAlgo::Alg1);
        let mut bytes = self.model.vocab_transient_bytes(self.shard_width);
        if algo == VocabAlgo::Alg2 {
            // Algorithm 2 additionally holds A = softmax'(Y)·W and B = G·W
            // ([N, h] each) between S and the barrier.
            bytes += 2.0 * self.model.dx_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_model::config::ModelPreset;
    use vp_model::cost::Hardware;
    use vp_model::partition::StageLayout;
    use vp_schedule::pass::ScheduledPass;

    fn model(vocab: usize) -> CostModel {
        CostModel::new(
            ModelPreset::Gpt4B.config().with_vocab(vocab),
            Hardware::default(),
        )
    }

    #[test]
    fn baseline_last_stage_is_much_slower_at_large_vocab() {
        let m = model(256 * 1024);
        let layout = StageLayout::baseline(&m.config, 8);
        let costs = SimCosts::for_layout(m, &layout, None);
        let f_mid = costs.pass_seconds(3, &ScheduledPass::new(PassKind::F, 0));
        let f_last = costs.pass_seconds(7, &ScheduledPass::new(PassKind::F, 0));
        assert!(f_last > 2.0 * f_mid, "mid {f_mid}, last {f_last}");
    }

    #[test]
    fn vocab_stages_are_balanced() {
        let m = model(256 * 1024);
        let layout = StageLayout::vocab_parallel(&m.config, 8);
        let costs = SimCosts::for_layout(m, &layout, Some(VocabAlgo::Alg2));
        let per_device: Vec<f64> = (0..8)
            .map(|d| {
                [PassKind::F, PassKind::B, PassKind::S, PassKind::T]
                    .into_iter()
                    .map(|k| costs.pass_seconds(d, &ScheduledPass::new(k, 0)))
                    .sum()
            })
            .collect();
        let max = per_device.iter().cloned().fold(0.0f64, f64::max);
        let min = per_device.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - min) / max < 1e-9);
    }

    #[test]
    fn vhalf_baseline_puts_both_vocab_layers_on_device_zero() {
        let m = model(128 * 1024);
        let costs = SimCosts::for_vhalf(m, 16, false, None);
        assert!(costs.chunk(0, 0).full_input);
        assert!(costs.chunk(0, 1).full_output);
        assert!(!costs.chunk(1, 0).full_input);
        assert!(!costs.chunk(1, 1).full_output);
    }

    #[test]
    fn cross_node_p2p_costs_more() {
        let m = model(32 * 1024);
        let layout = StageLayout::baseline(&m.config, 16);
        let costs = SimCosts::for_layout(m, &layout, None);
        let intra = costs.edge_seconds(EdgeKind::ActivationP2p, 3, 4);
        let inter = costs.edge_seconds(EdgeKind::ActivationP2p, 7, 8);
        assert!(inter > intra);
    }

    #[test]
    fn tp1_costs_are_bitwise_the_flat_costs() {
        let m = model(64 * 1024);
        let layout = StageLayout::vocab_parallel(&m.config, 8);
        let flat = SimCosts::for_layout(m, &layout, Some(VocabAlgo::Alg2));
        for sync in [TpSyncStyle::AllReduce, TpSyncStyle::Psa] {
            let grid = flat.clone().with_tp(1, sync);
            for kind in [
                PassKind::F,
                PassKind::B,
                PassKind::W,
                PassKind::S,
                PassKind::T,
            ] {
                assert_eq!(
                    grid.pass_seconds(3, &ScheduledPass::new(kind, 0)).to_bits(),
                    flat.pass_seconds(3, &ScheduledPass::new(kind, 0)).to_bits(),
                    "{kind:?}"
                );
            }
            let (a, b) = (flat.pass_times(), grid.pass_times());
            assert_eq!(a.f.to_bits(), b.f.to_bits());
            assert_eq!(a.b.to_bits(), b.b.to_bits());
            assert_eq!(a.w.to_bits(), b.w.to_bits());
            assert_eq!(
                flat.activation_units(3, 0).to_bits(),
                grid.activation_units(3, 0).to_bits()
            );
        }
    }

    #[test]
    fn tp_shards_compute_sublinearly_and_pays_comm() {
        let m = model(64 * 1024);
        let layout = StageLayout::vocab_parallel(&m.config, 8);
        let flat = SimCosts::for_layout(m, &layout, Some(VocabAlgo::Alg1));
        let tp4 = flat.clone().with_tp(4, TpSyncStyle::AllReduce);
        let psa4 = flat.clone().with_tp(4, TpSyncStyle::Psa);
        let f = |c: &SimCosts| c.pass_seconds(3, &ScheduledPass::new(PassKind::F, 0));
        assert!(f(&tp4) < f(&flat), "sharding must pay off");
        assert!(
            f(&tp4) > f(&flat) / 4.0,
            "narrower shards and exposed collectives make it sublinear"
        );
        assert!(f(&psa4) < f(&tp4), "PSA hides part of the collective");
        // W pays no collective: exactly the sharded compute.
        let w = |c: &SimCosts| c.pass_seconds(3, &ScheduledPass::new(PassKind::W, 0));
        let w_flat = flat.clone().with_split_w();
        let w_tp = w_flat.clone().with_tp(4, TpSyncStyle::AllReduce);
        assert!(w(&w_tp) < w(&w_flat));
        // Sharded layers stash smaller activations; PSA shards more.
        assert!(tp4.activation_units(3, 0) < flat.activation_units(3, 0));
        assert!(psa4.activation_units(3, 0) < tp4.activation_units(3, 0));
        // Vocabulary passes replicate per column: unchanged under TP.
        let s = |c: &SimCosts| c.pass_seconds(3, &ScheduledPass::new(PassKind::S, 0));
        assert_eq!(s(&tp4).to_bits(), s(&flat).to_bits());
    }

    #[test]
    fn ablation_flag_zeroes_sync_cost() {
        let m = model(32 * 1024);
        let layout = StageLayout::vocab_parallel(&m.config, 8);
        let mut costs = SimCosts::for_layout(m, &layout, Some(VocabAlgo::Alg1));
        assert!(costs.edge_seconds(EdgeKind::InterlacedSync, 0, 1) > 0.0);
        costs.disable_sync_collectives = true;
        assert_eq!(costs.edge_seconds(EdgeKind::InterlacedSync, 0, 1), 0.0);
    }
}
