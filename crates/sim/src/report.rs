//! Simulation reports: the quantities the paper's tables record.

/// Result of simulating one (method, model, devices, vocabulary) cell.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Human-readable method name ("baseline", "vocab-2", …).
    pub method: String,
    /// Pipeline devices.
    pub devices: usize,
    /// End-to-end iteration time, seconds.
    pub iteration_seconds: f64,
    /// Model FLOPs utilization (Narayanan et al. accounting).
    pub mfu: f64,
    /// Peak memory per device, bytes (parameters + optimizer state +
    /// activations + transients).
    pub peak_memory_bytes: Vec<f64>,
    /// Static (parameter + optimizer state) bytes per device.
    pub param_bytes: Vec<f64>,
    /// Peak activation (+ vocabulary transient) bytes per device.
    pub activation_bytes: Vec<f64>,
    /// Idle fraction per device.
    pub bubble_fraction: Vec<f64>,
    /// Peak resident microbatches per device (activation counting).
    pub peak_microbatches: Vec<usize>,
}

impl SimReport {
    /// Maximum peak memory across devices, in GB (the paper's Figure 12 /
    /// Table 5 "peak memory" metric).
    pub fn max_memory_gb(&self) -> f64 {
        self.peak_memory_bytes.iter().cloned().fold(0.0, f64::max) / 1e9
    }

    /// Minimum peak memory across devices, in GB (Figure 14 plots the
    /// min–max band to show memory balance).
    pub fn min_memory_gb(&self) -> f64 {
        self.peak_memory_bytes
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            / 1e9
    }

    /// Memory imbalance: max − min across devices, GB.
    pub fn memory_spread_gb(&self) -> f64 {
        self.max_memory_gb() - self.min_memory_gb()
    }

    /// Whether the configuration exceeds an 80 GB device (the paper's
    /// A100-80GB OOM criterion).
    pub fn would_oom(&self) -> bool {
        self.max_memory_gb() > 80.0
    }

    /// MFU as a percentage.
    pub fn mfu_pct(&self) -> f64 {
        100.0 * self.mfu
    }

    /// Activation share of the peak on the most loaded device.
    pub fn activation_fraction(&self) -> f64 {
        let (mut best, mut frac) = (0.0f64, 0.0f64);
        for d in 0..self.peak_memory_bytes.len() {
            if self.peak_memory_bytes[d] > best {
                best = self.peak_memory_bytes[d];
                frac = self.activation_bytes[d] / self.peak_memory_bytes[d].max(1.0);
            }
        }
        frac
    }
}
