//! Experiment runners for the methods compared in the paper's evaluation
//! (§6.2): Baseline, Redis, Vocab-1, Vocab-2 and Interlaced on 1F1B, and
//! Baseline / Vocab-1 on V-Half.

use crate::costs::SimCosts;
use crate::report::SimReport;
use vp_model::config::ModelConfig;
use vp_model::cost::{CostModel, Hardware, VocabAlgo};
use vp_model::partition::{StageLayout, VocabPartition};
use vp_model::TpSyncStyle;
use vp_schedule::exec::{ExecReport, Executor};
use vp_schedule::generators;
use vp_schedule::grid::DeviceGrid;
use vp_schedule::pass::{Schedule, VocabVariant};

/// The five methods compared on the 1F1B schedule (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Megatron's naive layout: vocabulary layers on the first/last stage.
    Baseline,
    /// Greedy transformer-layer redistribution.
    Redis,
    /// Vocabulary Parallelism with Algorithm 1 (2 barriers).
    Vocab1,
    /// Vocabulary Parallelism with Algorithm 2 (1 barrier).
    Vocab2,
    /// nnScaler-style interlaced pipeline (synchronous TP vocabulary).
    Interlaced,
}

impl Method {
    /// Lower-case name used in reports and by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Method::Baseline => "baseline",
            Method::Redis => "redis",
            Method::Vocab1 => "vocab-1",
            Method::Vocab2 => "vocab-2",
            Method::Interlaced => "interlaced",
        }
    }

    /// All methods, in the paper's comparison order.
    pub fn all() -> [Method; 5] {
        [
            Method::Baseline,
            Method::Redis,
            Method::Vocab1,
            Method::Vocab2,
            Method::Interlaced,
        ]
    }
}

/// The two methods compared on the V-Half schedule (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VHalfMethod {
    /// Plain V-Half: both vocabulary layers land on device 0.
    Baseline,
    /// V-Half with Vocabulary Parallelism (Algorithm 1).
    Vocab1,
}

impl VHalfMethod {
    /// Lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            VHalfMethod::Baseline => "vhalf-baseline",
            VHalfMethod::Vocab1 => "vhalf-vocab-1",
        }
    }
}

fn finish(
    method: &str,
    costs: &SimCosts,
    schedule: &Schedule,
    report: &ExecReport,
    static_bytes: Vec<f64>,
    extra_transient: &[f64],
) -> SimReport {
    let p = schedule.devices();
    let m = costs.model();
    let activation_bytes: Vec<f64> = (0..p)
        .map(|d| report.peak_activation_units[d] + extra_transient[d])
        .collect();
    let peak_memory_bytes: Vec<f64> = (0..p)
        .map(|d| static_bytes[d] + activation_bytes[d])
        .collect();
    SimReport {
        method: method.to_string(),
        devices: p,
        iteration_seconds: report.makespan,
        mfu: m.mfu(report.makespan, p),
        peak_memory_bytes,
        param_bytes: static_bytes,
        activation_bytes,
        bubble_fraction: (0..p).map(|d| report.bubble_fraction(d)).collect(),
        peak_microbatches: report.peak_resident_microbatches.clone(),
    }
}

/// Simulates one method on the 1F1B schedule.
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_1f1b(
    method: Method,
    config: &ModelConfig,
    devices: usize,
    hardware: Hardware,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let m = config.num_microbatches as u32;
    let (costs, schedule) = match method {
        Method::Baseline | Method::Redis => {
            let layout = if method == Method::Baseline {
                StageLayout::baseline(config, devices)
            } else {
                StageLayout::redistributed(config, devices)
            };
            let costs = SimCosts::for_layout(model, &layout, None);
            let schedule = generators::one_f_one_b(devices, m, costs.pass_times());
            (costs, schedule)
        }
        Method::Vocab1 | Method::Vocab2 => {
            let variant = if method == Method::Vocab1 {
                VocabVariant::Alg1
            } else {
                VocabVariant::Alg2
            };
            return run_vocab_variant(variant, config, devices, model.hardware);
        }
        Method::Interlaced => {
            let layout = StageLayout::vocab_parallel(config, devices);
            let costs = SimCosts::for_layout(model, &layout, Some(VocabAlgo::Alg1));
            let schedule = generators::interlaced_1f1b(devices, m, costs.pass_times());
            (costs, schedule)
        }
    };
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    let (static_bytes, extra) = memory_1f1b(method, &costs, config, devices);
    finish(
        method.name(),
        &costs,
        &schedule,
        &report,
        static_bytes,
        &extra,
    )
}

/// Simulates one method on the 1F1B schedule over a `pp × tp` device
/// grid: the schedule's device axis is the grid's pipeline axis, and each
/// stage's transformer layers shard across its row of `tp` tensor ranks
/// (Megatron `f`/`g`, or the PSA variant, per `sync`). Vocabulary shards
/// and full input/output layers replicate per column, exactly as the
/// runtime grid executes them. At `tp = 1` the report is bitwise
/// identical to [`run_1f1b`].
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_1f1b_grid(
    method: Method,
    config: &ModelConfig,
    grid: DeviceGrid,
    sync: TpSyncStyle,
    hardware: Hardware,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let pp = grid.pp();
    let m = config.num_microbatches as u32;
    let (costs, schedule) = match method {
        Method::Baseline | Method::Redis => {
            let layout = if method == Method::Baseline {
                StageLayout::baseline(config, pp)
            } else {
                StageLayout::redistributed(config, pp)
            };
            let costs = SimCosts::for_layout(model, &layout, None).with_tp(grid.tp(), sync);
            let schedule = generators::one_f_one_b(pp, m, costs.pass_times());
            (costs, schedule)
        }
        Method::Vocab1 | Method::Vocab2 => {
            let (variant, algo) = if method == Method::Vocab1 {
                (VocabVariant::Alg1, VocabAlgo::Alg1)
            } else {
                (VocabVariant::Alg2, VocabAlgo::Alg2)
            };
            let layout = StageLayout::vocab_parallel(config, pp);
            let costs = SimCosts::for_layout(model, &layout, Some(algo)).with_tp(grid.tp(), sync);
            let schedule = generators::vocab_1f1b(pp, m, variant, costs.pass_times(), true);
            (costs, schedule)
        }
        Method::Interlaced => {
            let layout = StageLayout::vocab_parallel(config, pp);
            let costs = SimCosts::for_layout(model, &layout, Some(VocabAlgo::Alg1))
                .with_tp(grid.tp(), sync);
            let schedule = generators::interlaced_1f1b(pp, m, costs.pass_times());
            (costs, schedule)
        }
    };
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    let (static_bytes, extra) = memory_1f1b_grid(method, &costs, config, grid, sync);
    let mut out = finish(
        method.name(),
        &costs,
        &schedule,
        &report,
        static_bytes,
        &extra,
    );
    // MFU and the device count account for the whole grid, not just one
    // column; per-device vectors stay per pipeline stage (columns are
    // replicas). Bitwise unchanged at tp = 1.
    out.devices = grid.devices();
    out.mfu = costs.model().mfu(report.makespan, grid.devices());
    out
}

/// Per-stage static/transient memory for [`run_1f1b_grid`]: as
/// [`memory_1f1b`], but each tensor rank holds `1/tp` of the transformer
/// matmul weights, while vocabulary shards and full vocabulary layers
/// replicate across the row.
fn memory_1f1b_grid(
    method: Method,
    costs: &SimCosts,
    config: &ModelConfig,
    grid: DeviceGrid,
    sync: TpSyncStyle,
) -> (Vec<f64>, Vec<f64>) {
    let m = costs.model();
    let pp = grid.pp();
    let tp = grid.tp() as u64;
    let part = VocabPartition::new(config.vocab, pp);
    let tokens = (config.microbatch * config.seq_len) as f64;
    let mut static_bytes = Vec::with_capacity(pp);
    let mut extra = vec![0.0; pp];
    #[allow(clippy::needless_range_loop)] // d also indexes the chunk table
    for d in 0..pp {
        let spec = costs.chunk(d, 0);
        let mut params = spec.layers as u64 * config.transformer_layer_params() / tp;
        if spec.full_input {
            params += config.vocab_layer_params();
        }
        if spec.full_output {
            params += config.vocab_layer_params();
            // Full-vocabulary logits + softmax held transiently (fp32);
            // PSA shards even this transient across the row.
            extra[d] += 4.0
                * tokens
                * config.vocab as f64
                * match sync {
                    TpSyncStyle::AllReduce => 1.0,
                    TpSyncStyle::Psa => 1.0 / tp as f64,
                };
        }
        if matches!(method, Method::Vocab1 | Method::Vocab2 | Method::Interlaced) {
            params += 2 * (part.shard_width() * config.hidden) as u64;
        }
        static_bytes.push(m.param_state_bytes(params));
    }
    (static_bytes, extra)
}

fn memory_1f1b(
    method: Method,
    costs: &SimCosts,
    config: &ModelConfig,
    devices: usize,
) -> (Vec<f64>, Vec<f64>) {
    let m = costs.model();
    let part = VocabPartition::new(config.vocab, devices);
    let tokens = (config.microbatch * config.seq_len) as f64;
    let mut static_bytes = Vec::with_capacity(devices);
    let mut extra = vec![0.0; devices];
    #[allow(clippy::needless_range_loop)] // d also indexes the chunk table
    for d in 0..devices {
        let spec = costs.chunk(d, 0);
        let mut params = spec.layers as u64 * config.transformer_layer_params();
        if spec.full_input {
            params += config.vocab_layer_params();
        }
        if spec.full_output {
            params += config.vocab_layer_params();
            // Full-vocabulary logits + softmax held transiently during the
            // last stage's combined F/B (fp32).
            extra[d] += 4.0 * tokens * config.vocab as f64;
        }
        if matches!(method, Method::Vocab1 | Method::Vocab2 | Method::Interlaced) {
            params += 2 * (part.shard_width() * config.hidden) as u64;
        }
        static_bytes.push(m.param_state_bytes(params));
    }
    (static_bytes, extra)
}

/// Simulates one method on the V-Half schedule.
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_vhalf(
    method: VHalfMethod,
    config: &ModelConfig,
    devices: usize,
    hardware: Hardware,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let m = config.num_microbatches as u32;
    let vocab_parallel = method == VHalfMethod::Vocab1;
    let algo = vocab_parallel.then_some(VocabAlgo::Alg1);
    let costs = SimCosts::for_vhalf(model, devices, vocab_parallel, algo);
    let schedule = if vocab_parallel {
        generators::vhalf_vocab(devices, m, VocabVariant::Alg1, costs.pass_times(), true)
    } else {
        generators::vhalf(devices, m, costs.pass_times())
    };
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    // Static memory.
    let part = VocabPartition::new(config.vocab, devices);
    let tokens = (config.microbatch * config.seq_len) as f64;
    let mut static_bytes = Vec::with_capacity(devices);
    let mut extra = vec![0.0; devices];
    #[allow(clippy::needless_range_loop)] // d also indexes the chunk table
    for d in 0..devices {
        let mut params = (costs.chunk(d, 0).layers + costs.chunk(d, 1).layers) as u64
            * config.transformer_layer_params();
        if vocab_parallel {
            params += 2 * (part.shard_width() * config.hidden) as u64;
        } else if d == 0 {
            params += 2 * config.vocab_layer_params();
            extra[d] += 4.0 * tokens * config.vocab as f64;
        }
        static_bytes.push(costs.model().param_state_bytes(params));
    }
    finish(
        method.name(),
        &costs,
        &schedule,
        &report,
        static_bytes,
        &extra,
    )
}

/// Simulates Vocabulary Parallelism on 1F1B with an explicit output-layer
/// grouping — including the *naive* 3-barrier grouping of §4.1, which the
/// paper motivates but does not carry into Table 5. Used by the
/// barrier-count ablation.
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_vocab_variant(
    variant: VocabVariant,
    config: &ModelConfig,
    devices: usize,
    hardware: Hardware,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let algo = match variant {
        VocabVariant::Naive => VocabAlgo::Naive,
        VocabVariant::Alg1 => VocabAlgo::Alg1,
        VocabVariant::Alg2 => VocabAlgo::Alg2,
    };
    let method = match variant {
        VocabVariant::Naive => "vocab-naive",
        VocabVariant::Alg1 => "vocab-1",
        VocabVariant::Alg2 => "vocab-2",
    };
    let m = config.num_microbatches as u32;
    let layout = StageLayout::vocab_parallel(config, devices);
    let costs = SimCosts::for_layout(model, &layout, Some(algo));
    let schedule = generators::vocab_1f1b(devices, m, variant, costs.pass_times(), true);
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    let part = VocabPartition::new(config.vocab, devices);
    let static_bytes: Vec<f64> = (0..devices)
        .map(|d| {
            let params = costs.chunk(d, 0).layers as u64 * config.transformer_layer_params()
                + 2 * (part.shard_width() * config.hidden) as u64;
            costs.model().param_state_bytes(params)
        })
        .collect();
    finish(
        method,
        &costs,
        &schedule,
        &report,
        static_bytes,
        &vec![0.0; devices],
    )
}

/// The barrier-count ablation (§4/§5.2): how the number of communication
/// barriers in the output-layer grouping (3 naive, 2 Algorithm 1,
/// 1 Algorithm 2) trades activation memory for computation overhead.
/// Returns one report per grouping, naive first.
pub fn run_barrier_ablation(
    config: &ModelConfig,
    devices: usize,
    hardware: &Hardware,
) -> Vec<SimReport> {
    [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2]
        .into_iter()
        .map(|v| run_vocab_variant(v, config, devices, hardware.clone()))
        .collect()
}

/// Extension experiment: zero-bubble 1F1B (ZB-H1, Qi et al. 2023) with an
/// optional Vocabulary Parallelism variant. Demonstrates the §4.4 remark
/// that Algorithm 2's `T` pass is deferrable exactly like the zero-bubble
/// `W` pass: with both used as fillers, warm-up/drain bubbles shrink
/// relative to plain 1F1B at the same activation budget.
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_zero_bubble(
    config: &ModelConfig,
    devices: usize,
    hardware: Hardware,
    variant: Option<VocabVariant>,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let m = config.num_microbatches as u32;
    let part = VocabPartition::new(config.vocab, devices);
    let (costs, schedule, name) = match variant {
        None => {
            let layout = StageLayout::baseline(config, devices);
            let costs = SimCosts::for_layout(model, &layout, None).with_split_w();
            let schedule = generators::zb_1f1b(devices, m, costs.pass_times());
            (costs, schedule, "zb-baseline".to_string())
        }
        Some(v) => {
            let algo = match v {
                VocabVariant::Naive => VocabAlgo::Naive,
                VocabVariant::Alg1 => VocabAlgo::Alg1,
                VocabVariant::Alg2 => VocabAlgo::Alg2,
            };
            let layout = StageLayout::vocab_parallel(config, devices);
            let costs = SimCosts::for_layout(model, &layout, Some(algo)).with_split_w();
            let schedule = generators::zb_vocab_1f1b(devices, m, v, costs.pass_times(), false);
            let name = match v {
                VocabVariant::Naive => "zb-vocab-naive",
                VocabVariant::Alg1 => "zb-vocab-1",
                VocabVariant::Alg2 => "zb-vocab-2",
            };
            (costs, schedule, name.to_string())
        }
    };
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    let static_bytes: Vec<f64> = (0..devices)
        .map(|d| {
            let spec = costs.chunk(d, 0);
            let mut params = spec.layers as u64 * config.transformer_layer_params();
            if spec.full_input {
                params += config.vocab_layer_params();
            }
            if spec.full_output {
                params += config.vocab_layer_params();
            }
            if variant.is_some() {
                params += 2 * (part.shard_width() * config.hidden) as u64;
            }
            costs.model().param_state_bytes(params)
        })
        .collect();
    finish(
        &name,
        &costs,
        &schedule,
        &report,
        static_bytes,
        &vec![0.0; devices],
    )
}

/// Extension experiment: Vocabulary Parallelism on *interleaved* 1F1B
/// (Narayanan et al.'s multi-chunk schedule) — the third schedule family,
/// demonstrating §5's claim that the building-block insertion generalizes.
///
/// # Panics
///
/// Panics if the generated schedule fails validation (a generator bug).
pub fn run_interleaved_vocab(
    config: &ModelConfig,
    devices: usize,
    chunks: u8,
    variant: VocabVariant,
    hardware: Hardware,
) -> SimReport {
    let model = CostModel::new(config.clone(), hardware);
    let algo = match variant {
        VocabVariant::Naive => VocabAlgo::Naive,
        VocabVariant::Alg1 => VocabAlgo::Alg1,
        VocabVariant::Alg2 => VocabAlgo::Alg2,
    };
    let m = config.num_microbatches as u32;
    let costs = SimCosts::for_interleaved(model, devices, chunks, Some(algo));
    let schedule =
        generators::interleaved_vocab_1f1b(devices, chunks, m, variant, costs.pass_times(), false);
    let report = Executor::new(&costs)
        .run(&schedule)
        .expect("generated schedule must validate");
    let part = VocabPartition::new(config.vocab, devices);
    let static_bytes: Vec<f64> = (0..devices)
        .map(|d| {
            let layers: usize = (0..chunks).map(|c| costs.chunk(d, c).layers).sum();
            let params = layers as u64 * config.transformer_layer_params()
                + 2 * (part.shard_width() * config.hidden) as u64;
            costs.model().param_state_bytes(params)
        })
        .collect();
    finish(
        &format!(
            "interleaved{chunks}-vocab-{}",
            if variant == VocabVariant::Alg1 { 1 } else { 2 }
        ),
        &costs,
        &schedule,
        &report,
        static_bytes,
        &vec![0.0; devices],
    )
}

/// The Appendix B.2 ablation: iteration time of the interlaced pipeline
/// with and without its synchronous collectives. Returns
/// `(with_sync_seconds, without_sync_seconds)`.
///
/// # Panics
///
/// Panics if the generated schedule fails validation.
pub fn run_interlaced_ablation(
    config: &ModelConfig,
    devices: usize,
    hardware: Hardware,
) -> (f64, f64) {
    let model = CostModel::new(config.clone(), hardware);
    let layout = StageLayout::vocab_parallel(config, devices);
    let m = config.num_microbatches as u32;
    let mut costs = SimCosts::for_layout(model, &layout, Some(VocabAlgo::Alg1));
    let schedule = generators::interlaced_1f1b(devices, m, costs.pass_times());
    let with_sync = Executor::new(&costs)
        .run(&schedule)
        .expect("schedule must validate")
        .makespan;
    costs.disable_sync_collectives = true;
    let without = Executor::new(&costs)
        .run(&schedule)
        .expect("schedule must validate")
        .makespan;
    (with_sync, without)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_model::config::ModelPreset;

    fn cfg(preset: ModelPreset, vocab_k: usize, seq: usize) -> ModelConfig {
        preset.config().with_vocab(vocab_k * 1024).with_seq_len(seq)
    }

    /// Table 5's headline: baseline MFU collapses as V grows; Vocab stays
    /// flat and wins big at 256k.
    #[test]
    fn baseline_collapses_with_vocab_size_vocab_methods_do_not() {
        let hw = Hardware::default();
        let mfu =
            |method, v| run_1f1b(method, &cfg(ModelPreset::Gpt4B, v, 2048), 8, hw.clone()).mfu;
        let base_32k = mfu(Method::Baseline, 32);
        let base_256k = mfu(Method::Baseline, 256);
        assert!(
            base_256k < 0.7 * base_32k,
            "baseline {base_32k} -> {base_256k}"
        );
        let v2_32k = mfu(Method::Vocab2, 32);
        let v2_256k = mfu(Method::Vocab2, 256);
        assert!(
            (v2_256k - v2_32k).abs() < 0.05 * v2_32k,
            "vocab-2 {v2_32k} -> {v2_256k}"
        );
        assert!(
            v2_256k > 1.5 * base_256k,
            "vocab-2 {v2_256k} vs baseline {base_256k}"
        );
    }

    /// Redis sits between baseline and vocab at large vocabularies.
    #[test]
    fn redis_partially_recovers() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 256, 2048);
        let base = run_1f1b(Method::Baseline, &config, 8, hw.clone()).mfu;
        let redis = run_1f1b(Method::Redis, &config, 8, hw.clone()).mfu;
        let vocab = run_1f1b(Method::Vocab1, &config, 8, hw).mfu;
        assert!(redis > base, "redis {redis} vs baseline {base}");
        assert!(vocab > redis, "vocab {vocab} vs redis {redis}");
    }

    /// Figure 12: vocab methods keep peak memory nearly flat in V; the
    /// baseline's peak grows steeply.
    #[test]
    fn vocab_memory_stays_flat() {
        let hw = Hardware::default();
        let mem = |method, v: usize| {
            run_1f1b(method, &cfg(ModelPreset::Gpt4B, v, 2048), 8, hw.clone()).max_memory_gb()
        };
        let base_growth = mem(Method::Baseline, 256) - mem(Method::Baseline, 32);
        let vocab_growth = mem(Method::Vocab2, 256) - mem(Method::Vocab2, 32);
        assert!(base_growth > 5.0, "baseline growth {base_growth} GB");
        assert!(vocab_growth < 4.0, "vocab growth {vocab_growth} GB");
        assert!(mem(Method::Vocab2, 256) < mem(Method::Baseline, 256));
    }

    /// Vocab-2 uses one fewer in-flight microbatch than Vocab-1 (§5.2).
    #[test]
    fn vocab2_holds_fewer_microbatches_than_vocab1() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 128, 2048);
        let v1 = run_1f1b(Method::Vocab1, &config, 8, hw.clone());
        let v2 = run_1f1b(Method::Vocab2, &config, 8, hw);
        assert!(v2.peak_microbatches[0] < v1.peak_microbatches[0]);
        assert!(v2.max_memory_gb() < v1.max_memory_gb());
    }

    /// The interlaced pipeline OOMs on the 21B / seq 4096 configuration
    /// (Table 5) while Vocab-2 does not.
    #[test]
    fn interlaced_ooms_on_21b_4096() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt21B, 256, 4096);
        let inter = run_1f1b(Method::Interlaced, &config, 32, hw.clone());
        let vocab = run_1f1b(Method::Vocab2, &config, 32, hw);
        assert!(
            inter.would_oom(),
            "interlaced peak {} GB",
            inter.max_memory_gb()
        );
        assert!(
            !vocab.would_oom(),
            "vocab-2 peak {} GB",
            vocab.max_memory_gb()
        );
    }

    /// Vocabulary Parallelism beats interlaced on multi-node setups
    /// (Table 5, 16–32 GPUs) thanks to overlapped communication.
    #[test]
    fn vocab_beats_interlaced_multi_node() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt21B, 256, 2048);
        let inter = run_1f1b(Method::Interlaced, &config, 32, hw.clone());
        let vocab = run_1f1b(Method::Vocab1, &config, 32, hw);
        assert!(
            vocab.mfu > inter.mfu,
            "vocab {} vs interlaced {}",
            vocab.mfu,
            inter.mfu
        );
    }

    /// Appendix B.2: the synchronous all-reduces cost roughly 10% of the
    /// interlaced iteration on 32 GPUs.
    #[test]
    fn interlaced_sync_ablation() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt21B, 256, 2048);
        let (with_sync, without) = run_interlaced_ablation(&config, 32, hw);
        let saving = (with_sync - without) / with_sync;
        assert!((0.03..0.25).contains(&saving), "saving {saving}");
    }

    /// Table 6 / Figure 14: V-Half baseline is massively memory-imbalanced
    /// at 256k; Vocab-1 balances it.
    #[test]
    fn vhalf_vocab_balances_memory() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt7B, 256, 2048);
        let base = run_vhalf(VHalfMethod::Baseline, &config, 16, hw.clone());
        let vocab = run_vhalf(VHalfMethod::Vocab1, &config, 16, hw);
        assert!(
            base.memory_spread_gb() > 10.0,
            "baseline spread {}",
            base.memory_spread_gb()
        );
        assert!(
            vocab.memory_spread_gb() < 3.0,
            "vocab spread {}",
            vocab.memory_spread_gb()
        );
        assert!(vocab.mfu > base.mfu);
    }

    /// Interleaved 1F1B accepts the same vocabulary integration: a third
    /// schedule family sustains flat MFU across vocabulary sizes at higher
    /// (known) activation cost.
    #[test]
    fn interleaved_vocab_is_flat_in_vocab_size() {
        let hw = Hardware::default();
        let mfu = |vk: usize| {
            let cfg = cfg(ModelPreset::Gpt4B, vk, 2048).with_num_microbatches(32);
            run_interleaved_vocab(&cfg, 8, 2, VocabVariant::Alg2, hw.clone()).mfu
        };
        let small = mfu(32);
        let large = mfu(256);
        assert!((large - small).abs() < 0.06 * small, "{small} vs {large}");
        // And it must beat the naive baseline at 256k.
        let cfg = cfg(ModelPreset::Gpt4B, 256, 2048).with_num_microbatches(32);
        let base = run_1f1b(Method::Baseline, &cfg, 8, hw).mfu;
        assert!(large > 1.3 * base, "interleaved {large} vs baseline {base}");
    }

    /// Zero-bubble 1F1B fills warm-up/drain bubbles with W (and, for
    /// Algorithm 2, T) passes: higher MFU than plain 1F1B at the same
    /// in-flight budget.
    #[test]
    fn zero_bubble_improves_mfu() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 128, 2048).with_num_microbatches(32);
        let plain = run_1f1b(Method::Vocab2, &config, 8, hw.clone());
        let zb = run_zero_bubble(&config, 8, hw, Some(VocabVariant::Alg2));
        assert!(zb.mfu > plain.mfu, "zb {} vs plain {}", zb.mfu, plain.mfu);
        assert!(zb.peak_microbatches[0] <= plain.peak_microbatches[0] + 1);
    }

    /// The barrier-count ablation: activation memory tracks the barrier
    /// count (naive > Alg-1 > Alg-2) while all three sustain comparable
    /// throughput (the naive grouping pays slightly more).
    #[test]
    fn barrier_ablation_orders_memory_by_barriers() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 128, 2048);
        let reports = run_barrier_ablation(&config, 8, &hw);
        assert_eq!(reports.len(), 3);
        let naive = &reports[0];
        let alg1 = &reports[1];
        let alg2 = &reports[2];
        assert!(naive.peak_microbatches[0] >= alg1.peak_microbatches[0]);
        assert!(alg1.peak_microbatches[0] > alg2.peak_microbatches[0]);
        assert!(naive.max_memory_gb() > alg2.max_memory_gb());
        // Throughputs within a few percent of each other.
        assert!((naive.mfu - alg2.mfu).abs() < 0.05 * alg2.mfu);
    }

    /// A `pp × 1` grid is the flat pipeline, bitwise — every method.
    #[test]
    fn grid_tp1_is_bitwise_the_flat_run() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 128, 2048);
        for method in Method::all() {
            let flat = run_1f1b(method, &config, 8, hw.clone());
            let grid = run_1f1b_grid(
                method,
                &config,
                DeviceGrid::new(8, 1),
                TpSyncStyle::AllReduce,
                hw.clone(),
            );
            assert_eq!(
                grid.iteration_seconds.to_bits(),
                flat.iteration_seconds.to_bits(),
                "{method:?}"
            );
            assert_eq!(grid.mfu.to_bits(), flat.mfu.to_bits(), "{method:?}");
            assert_eq!(grid.devices, flat.devices);
            for d in 0..8 {
                assert_eq!(
                    grid.peak_memory_bytes[d].to_bits(),
                    flat.peak_memory_bytes[d].to_bits(),
                    "{method:?} device {d}"
                );
                assert_eq!(
                    grid.bubble_fraction[d].to_bits(),
                    flat.bubble_fraction[d].to_bits()
                );
            }
        }
    }

    /// Widening the tensor axis shards parameters and shortens stage
    /// passes; PSA exposes less collective time than all-reduce.
    #[test]
    fn grid_tp_shards_memory_and_psa_is_faster() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt4B, 128, 2048);
        let grid = DeviceGrid::new(4, 4);
        let ar = run_1f1b_grid(
            Method::Vocab2,
            &config,
            grid,
            TpSyncStyle::AllReduce,
            hw.clone(),
        );
        let psa = run_1f1b_grid(Method::Vocab2, &config, grid, TpSyncStyle::Psa, hw.clone());
        assert!(psa.iteration_seconds < ar.iteration_seconds);
        assert!(psa.max_memory_gb() < ar.max_memory_gb());
        // Both hold far less static state per device than the 4-deep
        // flat pipeline (transformer weights divide by tp).
        let flat = run_1f1b(Method::Vocab2, &config, 4, hw);
        assert!(ar.param_bytes[1] < 0.5 * flat.param_bytes[1]);
        assert_eq!(ar.devices, 16);
    }

    /// V-Half's activation memory is balanced and lower than 1F1B's
    /// worst device.
    #[test]
    fn vhalf_activations_are_balanced() {
        let hw = Hardware::default();
        let config = cfg(ModelPreset::Gpt7B, 32, 2048);
        let v = run_vhalf(VHalfMethod::Vocab1, &config, 16, hw);
        let spread = v.memory_spread_gb();
        assert!(spread < 3.0, "spread {spread}");
    }
}
