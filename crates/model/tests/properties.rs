//! Randomized tests for partitioning and the cost model, driven by a
//! deterministic seed sweep.

use vp_model::config::ModelConfig;
use vp_model::cost::{CostModel, Hardware, VocabAlgo};
use vp_model::partition::{StageLayout, VocabPartition};
use vp_tensor::init::seeded_rng;
use vp_tensor::rng::Rng;

fn random_config(rng: &mut impl Rng) -> ModelConfig {
    ModelConfig {
        layers: rng.gen_range(2..8usize) * 8,
        hidden: rng.gen_range(1..6usize) * 128,
        heads: 4,
        ffn_mult: 4,
        seq_len: rng.gen_range(1..6usize) * 256,
        vocab: rng.gen_range(1..9usize) * 1024,
        microbatch: 1,
        num_microbatches: 32,
    }
}

/// Shards tile the padded vocabulary exactly; real widths sum to the
/// unpadded size; the padded size is the smallest multiple of 2p ≥ V.
#[test]
fn partition_invariants() {
    for seed in 0..64u64 {
        let mut rng = seeded_rng(seed);
        let vocab = rng.gen_range(1..500_000usize);
        let p = rng.gen_range(1..64usize);
        let part = VocabPartition::new(vocab, p);
        assert_eq!(part.padded() % (2 * p), 0, "seed {seed}");
        assert!(part.padded() >= vocab);
        assert!(part.padded() < vocab + 2 * p);
        let mut end_prev = 0;
        let mut real_total = 0;
        for rank in 0..p {
            let (start, end) = part.shard_range(rank);
            assert_eq!(start, end_prev, "seed {seed}");
            assert_eq!(end - start, part.shard_width(), "seed {seed}");
            end_prev = end;
            real_total += part.real_width(rank);
        }
        assert_eq!(end_prev, part.padded(), "seed {seed}");
        assert_eq!(real_total, vocab, "seed {seed}");
    }
}

/// Every token is owned by exactly the shard whose range contains it.
#[test]
fn owner_is_consistent_with_ranges() {
    for seed in 100..164u64 {
        let mut rng = seeded_rng(seed);
        let vocab = rng.gen_range(1..10_000usize);
        let p = rng.gen_range(1..32usize);
        let probe = rng.gen_range(0..10_000usize);
        let part = VocabPartition::new(vocab, p);
        if probe < vocab {
            let owner = part.owner_of(probe).unwrap();
            let (start, end) = part.shard_range(owner);
            assert!((start..end).contains(&probe), "seed {seed}");
        } else {
            assert_eq!(part.owner_of(probe), None, "seed {seed}");
        }
    }
}

/// Layouts conserve layers, and redistribution never increases the
/// compute imbalance.
#[test]
fn layouts_conserve_layers_and_redis_helps() {
    for seed in 200..264u64 {
        let mut rng = seeded_rng(seed);
        let cfg = random_config(&mut rng);
        let p = rng.gen_range(2..8usize);
        if cfg.layers < p {
            continue;
        }
        let baseline = StageLayout::baseline(&cfg, p);
        let redis = StageLayout::redistributed(&cfg, p);
        let vocab = StageLayout::vocab_parallel(&cfg, p);
        assert_eq!(baseline.total_layers(), cfg.layers, "seed {seed}");
        assert_eq!(redis.total_layers(), cfg.layers, "seed {seed}");
        assert_eq!(vocab.total_layers(), cfg.layers, "seed {seed}");
        assert!(
            redis.compute_imbalance(&cfg) <= baseline.compute_imbalance(&cfg) + 1e-9,
            "seed {seed}"
        );
        // Vocabulary Parallelism balances perfectly only when the
        // transformer layers divide evenly (the paper's configurations);
        // with a ragged split its imbalance is the layer raggedness itself.
        if cfg.layers.is_multiple_of(p) {
            assert!(
                vocab.compute_imbalance(&cfg) <= redis.compute_imbalance(&cfg) + 1e-9,
                "seed {seed}"
            );
            assert!(vocab.compute_imbalance(&cfg) < 1.05, "seed {seed}");
        }
    }
}

/// Output-layer scaling factors are in (0, 1] and decrease with the
/// device count; Algorithm 2 never scales better than Algorithm 1.
#[test]
fn scaling_factors_behave() {
    for seed in 300..364u64 {
        let mut rng = seeded_rng(seed);
        let m = CostModel::new(random_config(&mut rng), Hardware::default());
        let mut prev1 = f64::INFINITY;
        for p in [2usize, 4, 8, 16, 32] {
            let f1 = m.output_scaling_factor(VocabAlgo::Alg1, p);
            let f2 = m.output_scaling_factor(VocabAlgo::Alg2, p);
            assert!(f1 > 0.0 && f1 <= 1.0 + 1e-9, "seed {seed}: f1 {f1}");
            assert!(f2 <= f1 + 1e-9, "seed {seed}: f2 {f2} vs f1 {f1}");
            assert!(f1 <= prev1 + 1e-9, "seed {seed}");
            prev1 = f1;
        }
    }
}

/// The FLOPs split sums to the paper's totals for any configuration.
#[test]
fn flops_split_sums() {
    for seed in 400..464u64 {
        let mut rng = seeded_rng(seed);
        let cfg = random_config(&mut rng);
        let m = CostModel::new(cfg.clone(), Hardware::default());
        let total = m.transformer_f_flops() + m.transformer_b_flops() + m.transformer_w_flops();
        let bsh = (cfg.microbatch * cfg.seq_len * cfg.hidden) as f64;
        let expected = bsh * (72.0 * cfg.hidden as f64 + 12.0 * cfg.seq_len as f64);
        assert!((total - expected).abs() < 1e-6 * expected, "seed {seed}");
        assert!(
            (m.output_total_flops(cfg.vocab) - 6.0 * bsh * cfg.vocab as f64).abs() < 1.0,
            "seed {seed}"
        );
    }
}

/// MFU is inversely proportional to iteration time.
#[test]
fn mfu_scales_inversely_with_time() {
    for seed in 500..564u64 {
        let mut rng = seeded_rng(seed);
        let m = CostModel::new(random_config(&mut rng), Hardware::default());
        let p = rng.gen_range(2..16usize);
        let t = 10.0;
        let a = m.mfu(t, p);
        let b = m.mfu(2.0 * t, p);
        assert!(
            (a - 2.0 * b).abs() < 1e-9 * a.max(1e-12),
            "seed {seed} p {p}"
        );
    }
}
