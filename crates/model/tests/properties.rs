//! Property-based tests for partitioning and the cost model.

use proptest::prelude::*;
use vp_model::config::ModelConfig;
use vp_model::cost::{CostModel, Hardware, VocabAlgo};
use vp_model::partition::{StageLayout, VocabPartition};

fn any_config() -> impl Strategy<Value = ModelConfig> {
    (2usize..8, 1usize..6, 1usize..6, 1usize..9).prop_map(|(lp, h128, s256, v1k)| ModelConfig {
        layers: lp * 8,
        hidden: h128 * 128,
        heads: 4,
        ffn_mult: 4,
        seq_len: s256 * 256,
        vocab: v1k * 1024,
        microbatch: 1,
        num_microbatches: 32,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shards tile the padded vocabulary exactly; real widths sum to the
    /// unpadded size; the padded size is the smallest multiple of 2p ≥ V.
    #[test]
    fn partition_invariants(vocab in 1usize..500_000, p in 1usize..64) {
        let part = VocabPartition::new(vocab, p);
        prop_assert_eq!(part.padded() % (2 * p), 0);
        prop_assert!(part.padded() >= vocab);
        prop_assert!(part.padded() < vocab + 2 * p);
        let mut end_prev = 0;
        let mut real_total = 0;
        for rank in 0..p {
            let (start, end) = part.shard_range(rank);
            prop_assert_eq!(start, end_prev);
            prop_assert_eq!(end - start, part.shard_width());
            end_prev = end;
            real_total += part.real_width(rank);
        }
        prop_assert_eq!(end_prev, part.padded());
        prop_assert_eq!(real_total, vocab);
    }

    /// Every token is owned by exactly the shard whose range contains it.
    #[test]
    fn owner_is_consistent_with_ranges(vocab in 1usize..10_000, p in 1usize..32, probe in 0usize..10_000) {
        let part = VocabPartition::new(vocab, p);
        if probe < vocab {
            let owner = part.owner_of(probe).unwrap();
            let (start, end) = part.shard_range(owner);
            prop_assert!((start..end).contains(&probe));
        } else {
            prop_assert_eq!(part.owner_of(probe), None);
        }
    }

    /// Layouts conserve layers, and redistribution never increases the
    /// compute imbalance.
    #[test]
    fn layouts_conserve_layers_and_redis_helps(cfg in any_config(), p in 2usize..8) {
        prop_assume!(cfg.layers >= p);
        let baseline = StageLayout::baseline(&cfg, p);
        let redis = StageLayout::redistributed(&cfg, p);
        let vocab = StageLayout::vocab_parallel(&cfg, p);
        prop_assert_eq!(baseline.total_layers(), cfg.layers);
        prop_assert_eq!(redis.total_layers(), cfg.layers);
        prop_assert_eq!(vocab.total_layers(), cfg.layers);
        prop_assert!(redis.compute_imbalance(&cfg) <= baseline.compute_imbalance(&cfg) + 1e-9);
        // Vocabulary Parallelism balances perfectly only when the
        // transformer layers divide evenly (the paper's configurations);
        // with a ragged split its imbalance is the layer raggedness itself.
        if cfg.layers % p == 0 {
            prop_assert!(vocab.compute_imbalance(&cfg) <= redis.compute_imbalance(&cfg) + 1e-9);
            prop_assert!(vocab.compute_imbalance(&cfg) < 1.05);
        }
    }

    /// Output-layer scaling factors are in (0, 1] and decrease with the
    /// device count; Algorithm 2 never scales better than Algorithm 1.
    #[test]
    fn scaling_factors_behave(cfg in any_config()) {
        let m = CostModel::new(cfg, Hardware::default());
        let mut prev1 = f64::INFINITY;
        for p in [2usize, 4, 8, 16, 32] {
            let f1 = m.output_scaling_factor(VocabAlgo::Alg1, p);
            let f2 = m.output_scaling_factor(VocabAlgo::Alg2, p);
            prop_assert!(f1 > 0.0 && f1 <= 1.0 + 1e-9, "f1 {f1}");
            prop_assert!(f2 <= f1 + 1e-9, "f2 {f2} vs f1 {f1}");
            prop_assert!(f1 <= prev1 + 1e-9);
            prev1 = f1;
        }
    }

    /// The FLOPs split sums to the paper's totals for any configuration.
    #[test]
    fn flops_split_sums(cfg in any_config()) {
        let m = CostModel::new(cfg.clone(), Hardware::default());
        let total = m.transformer_f_flops() + m.transformer_b_flops() + m.transformer_w_flops();
        let bsh = (cfg.microbatch * cfg.seq_len * cfg.hidden) as f64;
        let expected = bsh * (72.0 * cfg.hidden as f64 + 12.0 * cfg.seq_len as f64);
        prop_assert!((total - expected).abs() < 1e-6 * expected);
        prop_assert!((m.output_total_flops(cfg.vocab) - 6.0 * bsh * cfg.vocab as f64).abs() < 1.0);
    }

    /// MFU is inversely proportional to iteration time.
    #[test]
    fn mfu_scales_inversely_with_time(cfg in any_config(), p in 2usize..16) {
        let m = CostModel::new(cfg, Hardware::default());
        let t = 10.0;
        let a = m.mfu(t, p);
        let b = m.mfu(2.0 * t, p);
        prop_assert!((a - 2.0 * b).abs() < 1e-9 * a.max(1e-12));
    }
}
