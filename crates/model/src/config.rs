/// Hyper-parameters of a GPT-style decoder-only transformer, plus the
/// training-batch geometry the paper's schedules operate on.
///
/// Matches the quantities in the paper's notation: microbatch size `b`,
/// sequence length `s`, hidden dimension `h` and vocabulary size `V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of transformer layers (`L`).
    pub layers: usize,
    /// Hidden dimension (`h`).
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward expansion factor (4 for all paper models).
    pub ffn_mult: usize,
    /// Sequence length (`s`).
    pub seq_len: usize,
    /// Unpadded vocabulary size (`V`).
    pub vocab: usize,
    /// Microbatch size (`b`); 1 in all paper experiments.
    pub microbatch: usize,
    /// Number of microbatches per iteration (`m`); 128 in the paper.
    pub num_microbatches: usize,
}

impl ModelConfig {
    /// Tokens per microbatch (`b·s`).
    pub fn tokens_per_microbatch(&self) -> usize {
        self.microbatch * self.seq_len
    }

    /// Parameters of one transformer layer: `12h²` (attention `4h²` +
    /// MLP `8h²`), following the paper's Appendix A (which reports the
    /// fp16 byte cost `24h²`).
    pub fn transformer_layer_params(&self) -> u64 {
        12 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// Parameters of one vocabulary layer (input *or* output): `hV`.
    pub fn vocab_layer_params(&self) -> u64 {
        (self.hidden as u64) * (self.vocab as u64)
    }

    /// Total model parameters (untied input + output embeddings, as in all
    /// paper experiments).
    pub fn total_params(&self) -> u64 {
        self.layers as u64 * self.transformer_layer_params() + 2 * self.vocab_layer_params()
    }

    /// Returns a copy with a different vocabulary size (the paper sweeps
    /// `V ∈ {32k, 64k, 128k, 256k}` for each model).
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Returns a copy with a different sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Returns a copy with a different microbatch count.
    pub fn with_num_microbatches(mut self, m: usize) -> Self {
        self.num_microbatches = m;
        self
    }
}

/// The named model presets used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// ≈4B model of Table 1 (8 pipeline devices).
    Gpt4B,
    /// ≈10B model of Table 1 (16 pipeline devices).
    Gpt10B,
    /// ≈21B model of Table 1 (32 pipeline devices).
    Gpt21B,
    /// ≈7B model of Table 2 (16 devices, V-Half).
    Gpt7B,
    /// ≈16B model of Table 2 (24 devices, V-Half).
    Gpt16B,
    /// ≈30B model of Table 2 (32 devices, V-Half).
    Gpt30B,
    /// Gemma2-9B, used in Figure 2's ratio analysis.
    Gemma2_9B,
    /// A tiny model for numeric correctness runs (Appendix E analogue).
    Tiny,
}

impl ModelPreset {
    /// Instantiates the preset with the paper's default batch geometry
    /// (`b = 1`, `m = 128`, `s = 2048`, `V = 32k`); sweep dimensions are
    /// overridden with [`ModelConfig::with_vocab`] /
    /// [`ModelConfig::with_seq_len`].
    pub fn config(self) -> ModelConfig {
        let (layers, hidden, heads) = match self {
            ModelPreset::Gpt4B => (32, 3072, 24),
            ModelPreset::Gpt10B => (48, 4096, 32),
            ModelPreset::Gpt21B => (64, 5120, 40),
            ModelPreset::Gpt7B => (32, 4096, 32),
            ModelPreset::Gpt16B => (48, 5120, 40),
            ModelPreset::Gpt30B => (64, 6144, 48),
            ModelPreset::Gemma2_9B => (42, 3584, 16),
            ModelPreset::Tiny => (8, 64, 4),
        };
        let (seq_len, vocab, microbatches) = match self {
            ModelPreset::Tiny => (16, 512, 8),
            _ => (2048, 32 * 1024, 128),
        };
        ModelConfig {
            layers,
            hidden,
            heads,
            ffn_mult: 4,
            seq_len,
            vocab,
            microbatch: 1,
            num_microbatches: microbatches,
        }
    }

    /// The pipeline-parallel degree the paper pairs with this preset.
    pub fn paper_devices(self) -> usize {
        match self {
            ModelPreset::Gpt4B => 8,
            ModelPreset::Gpt10B | ModelPreset::Gpt7B => 16,
            ModelPreset::Gpt16B => 24,
            ModelPreset::Gpt21B | ModelPreset::Gpt30B => 32,
            ModelPreset::Gemma2_9B => 8,
            ModelPreset::Tiny => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_models_have_expected_sizes() {
        // The paper describes them as ≈4B / ≈10B / ≈21B with V≈32k..256k;
        // check the transformer trunk alone lands near the nominal size.
        let trunk = |p: ModelPreset| {
            let c = p.config();
            c.layers as u64 * c.transformer_layer_params()
        };
        let b = 1_000_000_000u64;
        assert!(
            (3 * b..5 * b).contains(&trunk(ModelPreset::Gpt4B)),
            "{}",
            trunk(ModelPreset::Gpt4B)
        );
        assert!((9 * b..11 * b).contains(&trunk(ModelPreset::Gpt10B)));
        assert!((19 * b..22 * b).contains(&trunk(ModelPreset::Gpt21B)));
        assert!((6 * b..8 * b).contains(&trunk(ModelPreset::Gpt7B)));
        assert!((14 * b..17 * b).contains(&trunk(ModelPreset::Gpt16B)));
        assert!((28 * b..31 * b).contains(&trunk(ModelPreset::Gpt30B)));
    }

    #[test]
    fn heads_divide_hidden() {
        for p in [
            ModelPreset::Gpt4B,
            ModelPreset::Gpt10B,
            ModelPreset::Gpt21B,
            ModelPreset::Gpt7B,
            ModelPreset::Gpt16B,
            ModelPreset::Gpt30B,
            ModelPreset::Gemma2_9B,
            ModelPreset::Tiny,
        ] {
            let c = p.config();
            assert_eq!(c.hidden % c.heads, 0, "{p:?}");
        }
    }

    #[test]
    fn vocab_params_formula() {
        let c = ModelPreset::Gpt4B.config().with_vocab(128 * 1024);
        assert_eq!(c.vocab_layer_params(), 3072 * 128 * 1024);
        assert_eq!(
            c.total_params(),
            32 * c.transformer_layer_params() + 2 * c.vocab_layer_params()
        );
    }

    #[test]
    fn with_overrides_compose() {
        let c = ModelPreset::Gpt4B
            .config()
            .with_vocab(7)
            .with_seq_len(4096)
            .with_num_microbatches(3);
        assert_eq!(c.vocab, 7);
        assert_eq!(c.seq_len, 4096);
        assert_eq!(c.num_microbatches, 3);
        assert_eq!(c.tokens_per_microbatch(), 4096);
    }
}
