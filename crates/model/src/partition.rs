//! Vocabulary sharding and pipeline-stage layouts.
//!
//! Implements the three ways of placing model layers onto pipeline devices
//! that the paper compares (§6.2):
//!
//! * [`StageLayout::baseline`] — Megatron's naive layout: transformer
//!   layers spread evenly, the input layer on the first stage and the
//!   output layer on the last.
//! * [`StageLayout::redistributed`] — *Redis*: transformer layers
//!   re-balanced so the longest stage's estimated FLOPs are minimized
//!   (DeepSpeed-style greedy re-balancing).
//! * [`StageLayout::vocab_parallel`] — the paper's method: transformer
//!   layers spread evenly and *every* stage holding a `V/p` shard of both
//!   vocabulary layers. Also used by the interlaced baseline, which shares
//!   the layout but synchronizes differently.

use crate::config::ModelConfig;

/// An even partition of the vocabulary across `p` devices, padded to a
/// multiple of `2p` for memory alignment as in §6.1 of the paper.
///
/// # Example
///
/// The paper's own example: 256008 entries on 24 devices pad to 256032.
///
/// ```
/// use vp_model::partition::VocabPartition;
///
/// let part = VocabPartition::new(256_008, 24);
/// assert_eq!(part.padded(), 256_032);
/// assert_eq!(part.shard_width(), 256_032 / 24);
/// assert_eq!(part.owner_of(0), Some(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabPartition {
    vocab: usize,
    padded: usize,
    devices: usize,
}

impl VocabPartition {
    /// Creates a partition of `vocab` entries over `devices` shards.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(vocab: usize, devices: usize) -> Self {
        assert!(devices > 0, "device count must be positive");
        let align = 2 * devices;
        let padded = vocab.div_ceil(align) * align;
        VocabPartition {
            vocab,
            padded,
            devices,
        }
    }

    /// The unpadded vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The padded vocabulary size (a multiple of `2·devices`).
    pub fn padded(&self) -> usize {
        self.padded
    }

    /// Number of shards.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Width of every shard (`padded / devices`).
    pub fn shard_width(&self) -> usize {
        self.padded / self.devices
    }

    /// Half-open padded range `[start, end)` owned by `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= devices`.
    pub fn shard_range(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.devices, "rank {rank} out of range");
        let w = self.shard_width();
        (rank * w, (rank + 1) * w)
    }

    /// Number of *real* (unpadded) vocabulary entries owned by `rank`.
    pub fn real_width(&self, rank: usize) -> usize {
        let (start, end) = self.shard_range(rank);
        end.min(self.vocab).saturating_sub(start.min(self.vocab))
    }

    /// The rank owning vocabulary entry `token`, if it is in range.
    pub fn owner_of(&self, token: usize) -> Option<usize> {
        (token < self.vocab).then(|| token / self.shard_width())
    }
}

/// Placement of a vocabulary layer on a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VocabPlacement {
    /// The stage holds the entire vocabulary layer.
    Full,
    /// The stage holds a `V/p` shard (Vocabulary Parallelism / interlaced).
    Shard,
}

/// What one pipeline stage holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Number of transformer layers on this stage.
    pub transformer_layers: usize,
    /// Input (embedding) layer placement, if any.
    pub input: Option<VocabPlacement>,
    /// Output (unembedding + softmax) layer placement, if any.
    pub output: Option<VocabPlacement>,
}

/// A full pipeline layout: one [`StageSpec`] per device.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLayout {
    stages: Vec<StageSpec>,
    vocab_partition: VocabPartition,
}

impl StageLayout {
    /// Megatron's naive layout (the paper's *Baseline*).
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `config.layers < devices`.
    pub fn baseline(config: &ModelConfig, devices: usize) -> Self {
        let layers = Self::spread_evenly(config.layers, devices);
        let stages = layers
            .into_iter()
            .enumerate()
            .map(|(i, transformer_layers)| StageSpec {
                transformer_layers,
                input: (i == 0).then_some(VocabPlacement::Full),
                output: (i == devices - 1).then_some(VocabPlacement::Full),
            })
            .collect();
        StageLayout {
            stages,
            vocab_partition: VocabPartition::new(config.vocab, devices),
        }
    }

    /// *Redis*: re-balances transformer layers so that the most loaded
    /// stage's estimated compute is minimal, with vocabulary layers pinned
    /// to the first/last stages (the paper follows Narayanan et al.'s FLOPs
    /// estimates, as we do here).
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or the model has fewer layers than devices.
    pub fn redistributed(config: &ModelConfig, devices: usize) -> Self {
        assert!(devices > 0, "device count must be positive");
        let (s, h, v) = (
            config.seq_len as f64,
            config.hidden as f64,
            config.vocab as f64,
        );
        // Relative FLOPs (fwd+bwd), constants factored out of bsh.
        let layer_cost = 72.0 * h + 12.0 * s;
        let output_cost = 6.0 * v;
        let input_cost = 3.0;
        let mut extras = vec![0.0f64; devices];
        extras[0] += input_cost;
        extras[devices - 1] += output_cost;

        // Minimize T = max_i (n_i · layer_cost + extras_i) subject to
        // Σ n_i = L, n_i ≥ 1: binary search on T over the count of layers
        // that fit under it.
        let total_layers = config.layers;
        assert!(total_layers >= devices, "need at least one layer per stage");
        let fits = |t: f64| -> Option<Vec<usize>> {
            let mut layers = Vec::with_capacity(devices);
            let mut sum = 0usize;
            for &e in &extras {
                let cap = ((t - e) / layer_cost).floor();
                let n = if cap < 1.0 { 1 } else { cap as usize };
                layers.push(n);
                sum += n;
            }
            (sum >= total_layers).then_some(layers)
        };
        let mut lo = layer_cost; // at least one layer somewhere
        let mut hi = total_layers as f64 * layer_cost + output_cost + input_cost;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if fits(mid).is_some() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let capacities = fits(hi).expect("upper bound is always feasible");
        // Distribute the layers within the per-stage capacities, preferring
        // *later* stages: in 1F1B, stage `d` holds `p − d` in-flight
        // microbatches of activations, so pushing layers toward the back
        // keeps the compute balance of the capacities while minimizing the
        // activation-memory impact (this is why the paper's Redis peak
        // memory stays at the baseline's level, Table 5).
        let mut assigned = vec![1usize; devices];
        let mut remaining = total_layers - devices;
        for idx in (0..devices).rev() {
            let take = remaining.min(capacities[idx] - assigned[idx]);
            assigned[idx] += take;
            remaining -= take;
        }
        assert_eq!(remaining, 0, "binary search guarantees total capacity");
        let stages = assigned
            .into_iter()
            .enumerate()
            .map(|(i, transformer_layers)| StageSpec {
                transformer_layers,
                input: (i == 0).then_some(VocabPlacement::Full),
                output: (i == devices - 1).then_some(VocabPlacement::Full),
            })
            .collect();
        StageLayout {
            stages,
            vocab_partition: VocabPartition::new(config.vocab, devices),
        }
    }

    /// The paper's Vocabulary Parallelism layout: even transformer layers,
    /// a vocabulary shard of both layers on every stage. The interlaced
    /// baseline shares this layout.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `config.layers < devices`.
    pub fn vocab_parallel(config: &ModelConfig, devices: usize) -> Self {
        let layers = Self::spread_evenly(config.layers, devices);
        let stages = layers
            .into_iter()
            .map(|transformer_layers| StageSpec {
                transformer_layers,
                input: Some(VocabPlacement::Shard),
                output: Some(VocabPlacement::Shard),
            })
            .collect();
        StageLayout {
            stages,
            vocab_partition: VocabPartition::new(config.vocab, devices),
        }
    }

    fn spread_evenly(layers: usize, devices: usize) -> Vec<usize> {
        assert!(devices > 0, "device count must be positive");
        assert!(layers >= devices, "need at least one layer per stage");
        let base = layers / devices;
        let extra = layers % devices;
        (0..devices)
            .map(|i| base + usize::from(i < extra))
            .collect()
    }

    /// Number of pipeline stages.
    pub fn devices(&self) -> usize {
        self.stages.len()
    }

    /// The spec for stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> &StageSpec {
        &self.stages[i]
    }

    /// Iterates over all stage specs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = &StageSpec> {
        self.stages.iter()
    }

    /// The vocabulary partition associated with this layout.
    pub fn vocab_partition(&self) -> VocabPartition {
        self.vocab_partition
    }

    /// Parameters held by stage `i` (transformer + any vocabulary layers).
    pub fn stage_params(&self, config: &ModelConfig, i: usize) -> u64 {
        let spec = &self.stages[i];
        let mut params = spec.transformer_layers as u64 * config.transformer_layer_params();
        let vocab_rows = |placement: Option<VocabPlacement>| -> u64 {
            match placement {
                None => 0,
                Some(VocabPlacement::Full) => config.vocab as u64,
                Some(VocabPlacement::Shard) => self.vocab_partition.shard_width() as u64,
            }
        };
        params += (vocab_rows(spec.input) + vocab_rows(spec.output)) * config.hidden as u64;
        params
    }

    /// Relative per-microbatch compute (fwd+bwd, arbitrary units) of stage
    /// `i`, using the Appendix A FLOPs ratios. Used for imbalance analysis
    /// (Figure 3) and by the *Redis* construction test.
    pub fn stage_relative_compute(&self, config: &ModelConfig, i: usize) -> f64 {
        let spec = &self.stages[i];
        let (s, h, v) = (
            config.seq_len as f64,
            config.hidden as f64,
            config.vocab as f64,
        );
        let mut cost = spec.transformer_layers as f64 * (72.0 * h + 12.0 * s);
        let vocab_cols = |placement: Option<VocabPlacement>| -> f64 {
            match placement {
                None => 0.0,
                Some(VocabPlacement::Full) => v,
                Some(VocabPlacement::Shard) => self.vocab_partition.shard_width() as f64,
            }
        };
        cost += 6.0 * vocab_cols(spec.output);
        cost += 3.0 * f64::from(spec.input.is_some() as u8) * vocab_cols(spec.input) / v.max(1.0);
        cost
    }

    /// Compute imbalance: the most loaded stage's relative compute divided
    /// by the mean (1.0 = perfectly balanced).
    pub fn compute_imbalance(&self, config: &ModelConfig) -> f64 {
        let loads: Vec<f64> = (0..self.devices())
            .map(|i| self.stage_relative_compute(config, i))
            .collect();
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        max / mean
    }

    /// Total transformer layers across all stages (sanity invariant).
    pub fn total_layers(&self) -> usize {
        self.stages.iter().map(|s| s.transformer_layers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    #[test]
    fn partition_pads_to_multiple_of_2p() {
        // The paper's example: 256008 padded to 256032 on 24 devices.
        let part = VocabPartition::new(256_008, 24);
        assert_eq!(part.padded(), 256_032);
        assert_eq!(part.padded() % 48, 0);
        assert_eq!(part.shard_width(), 256_032 / 24);
    }

    #[test]
    fn shards_tile_the_padded_range() {
        let part = VocabPartition::new(1000, 7);
        let mut covered = 0;
        for rank in 0..7 {
            let (start, end) = part.shard_range(rank);
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, part.padded());
        let real: usize = (0..7).map(|r| part.real_width(r)).sum();
        assert_eq!(real, 1000);
    }

    #[test]
    fn owner_of_maps_tokens_to_shards() {
        let part = VocabPartition::new(100, 4);
        for token in 0..100 {
            let owner = part.owner_of(token).unwrap();
            let (start, end) = part.shard_range(owner);
            assert!((start..end).contains(&token));
        }
        assert_eq!(part.owner_of(100), None);
    }

    #[test]
    fn baseline_places_vocab_at_the_ends() {
        let cfg = ModelPreset::Gpt4B.config();
        let layout = StageLayout::baseline(&cfg, 8);
        assert_eq!(layout.total_layers(), 32);
        assert_eq!(layout.stage(0).input, Some(VocabPlacement::Full));
        assert_eq!(layout.stage(7).output, Some(VocabPlacement::Full));
        assert_eq!(layout.stage(3).input, None);
        assert_eq!(layout.stage(3).output, None);
        assert!(layout.iter().all(|s| s.transformer_layers == 4));
    }

    #[test]
    fn redistribution_moves_layers_off_the_last_stage() {
        let cfg = ModelPreset::Gpt4B.config().with_vocab(256 * 1024);
        let layout = StageLayout::redistributed(&cfg, 8);
        assert_eq!(layout.total_layers(), 32);
        // With a 256k vocabulary the output layer outweighs several
        // transformer layers, so the last stage must shed layers.
        assert!(layout.stage(7).transformer_layers < 4);
        assert!(
            layout.compute_imbalance(&cfg) < StageLayout::baseline(&cfg, 8).compute_imbalance(&cfg)
        );
    }

    #[test]
    fn redistribution_cannot_fully_balance_large_vocab() {
        // Figure 3's point: when the output layer alone exceeds the average
        // stage load, redistribution still leaves imbalance.
        let cfg = ModelPreset::Gpt4B.config().with_vocab(256 * 1024);
        let layout = StageLayout::redistributed(&cfg, 8);
        assert!(
            layout.compute_imbalance(&cfg) > 1.15,
            "imbalance {}",
            layout.compute_imbalance(&cfg)
        );
    }

    #[test]
    fn vocab_parallel_is_balanced() {
        let cfg = ModelPreset::Gpt4B.config().with_vocab(256 * 1024);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        assert!(layout.compute_imbalance(&cfg) < 1.02);
        // Every stage holds both shards.
        for spec in layout.iter() {
            assert_eq!(spec.input, Some(VocabPlacement::Shard));
            assert_eq!(spec.output, Some(VocabPlacement::Shard));
        }
    }

    #[test]
    fn vocab_parallel_balances_params_too() {
        let cfg = ModelPreset::Gpt4B.config().with_vocab(256 * 1024);
        let vp = StageLayout::vocab_parallel(&cfg, 8);
        let base = StageLayout::baseline(&cfg, 8);
        let spread = |l: &StageLayout| {
            let p: Vec<u64> = (0..8).map(|i| l.stage_params(&cfg, i)).collect();
            *p.iter().max().unwrap() as f64 / *p.iter().min().unwrap() as f64
        };
        assert!(spread(&vp) < 1.01);
        assert!(spread(&base) > 2.0);
    }

    #[test]
    fn uneven_layers_spread_by_at_most_one() {
        let mut cfg = ModelPreset::Gpt4B.config();
        cfg.layers = 30;
        let layout = StageLayout::baseline(&cfg, 8);
        assert_eq!(layout.total_layers(), 30);
        let (min, max) = layout.iter().fold((usize::MAX, 0), |(lo, hi), s| {
            (lo.min(s.transformer_layers), hi.max(s.transformer_layers))
        });
        assert!(max - min <= 1);
    }
}
