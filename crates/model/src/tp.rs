//! Megatron-style tensor-parallel sharding of the transformer block.
//!
//! Implements the classic column/row split of Shoeybi et al. on the repo's
//! real-numerics [`TransformerBlock`]: the QKV projections and the MLP
//! up-projection are split column-wise (head-aligned for attention), the
//! attention output projection and MLP down-projection row-wise, so each
//! tensor rank computes a *partial* block output that a single all-reduce
//! per branch completes — the `f`/`g` conjugate pattern (two rendezvous in
//! forward, two in backward).
//!
//! This crate stays collective-agnostic: [`TpTransformerBlock::forward`]
//! and [`TpTransformerBlock::backward`] take a *reducer* closure that the
//! runtime binds to its tensor-group all-reduce (or the PSA
//! reduce-scatter + all-gather variant). With `tp = 1` and an identity
//! reducer the TP block is **bitwise identical** to the full block —
//! pinned by tests here and relied on by the `tp = 1` equivalence gates
//! downstream.
//!
//! Layer norms and the MLP output bias are replicated: their inputs (and
//! hence gradients) are identical on every tensor rank, so no gradient
//! synchronization is needed as long as every rank applies the same
//! deterministic update — the same argument Megatron-LM makes for its
//! duplicated layer-norm parameters.

use crate::block::TransformerBlock;
use vp_tensor::nn::{Gelu, GeluCache, LayerNorm, LayerNormCache, Linear, LinearCache};
use vp_tensor::ops::softmax_rows;
use vp_tensor::optim::Param;
use vp_tensor::{Result, Tensor, TensorError};

/// A reducer completing partial TP results: the runtime binds this to its
/// tensor-group collective. Must leave the tensor's shape unchanged.
pub type TpReduce<'a> = dyn FnMut(&mut Tensor) -> Result<()> + 'a;

/// How one stage's layers are split across the tensor axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpPartition {
    tp: usize,
    rank: usize,
    heads: usize,
    hidden: usize,
    ffn: usize,
}

impl TpPartition {
    /// Creates the shard description for `rank` of `tp` tensor ranks.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= tp`, if the head count is not divisible by `tp`
    /// (shards must be head-aligned) or if the FFN width is not divisible
    /// by `tp`.
    pub fn new(tp: usize, rank: usize, heads: usize, hidden: usize, ffn: usize) -> Self {
        assert!(tp > 0, "tensor-parallel width must be positive");
        assert!(rank < tp, "tp rank {rank} out of range for width {tp}");
        assert!(
            heads.is_multiple_of(tp),
            "heads {heads} must be divisible by tp {tp} (head-aligned shards)"
        );
        assert!(
            ffn.is_multiple_of(tp),
            "ffn width {ffn} must be divisible by tp {tp}"
        );
        assert!(
            hidden.is_multiple_of(heads),
            "hidden {hidden} must be divisible by heads {heads}"
        );
        TpPartition {
            tp,
            rank,
            heads,
            hidden,
            ffn,
        }
    }

    /// Tensor-parallel width.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// This shard's tensor rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Attention heads on this shard.
    pub fn local_heads(&self) -> usize {
        self.heads / self.tp
    }

    /// Hidden columns `[start, end)` of this shard's attention slice.
    pub fn attn_cols(&self) -> (usize, usize) {
        let w = self.hidden / self.tp;
        (self.rank * w, (self.rank + 1) * w)
    }

    /// FFN columns `[start, end)` of this shard's MLP slice.
    pub fn ffn_cols(&self) -> (usize, usize) {
        let w = self.ffn / self.tp;
        (self.rank * w, (self.rank + 1) * w)
    }
}

/// Head-aligned tensor-parallel shard of the causal multi-head attention:
/// `W_q/W_k/W_v` column slices `[h, h/tp]`, `W_o` row slice `[h/tp, h]`.
#[derive(Debug, Clone)]
pub struct TpAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    local_heads: usize,
    hidden: usize,
}

/// Activations cached by the attention shard's forward (shard-local).
#[derive(Debug, Clone)]
pub struct TpAttentionCache {
    input: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>,
    context: Tensor,
}

impl TpAttention {
    /// Forward over one sequence `x: [s, h]`; returns the *partial* output
    /// `[s, h]` (complete after the group all-reduce).
    fn forward(&self, x: &Tensor) -> Result<(Tensor, TpAttentionCache)> {
        let h = self.hidden;
        if x.cols() != h {
            return Err(TensorError::ShapeMismatch {
                op: "tp_attention",
                lhs: x.shape(),
                rhs: (x.rows(), h),
            });
        }
        let s = x.rows();
        let local_cols = self.wq.value().cols();
        let hd = local_cols / self.local_heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let q = x.matmul(self.wq.value())?;
        let k = x.matmul(self.wk.value())?;
        let v = x.matmul(self.wv.value())?;
        let mut context = Tensor::zeros(s, local_cols);
        let mut probs = Vec::with_capacity(self.local_heads);
        for head in 0..self.local_heads {
            let c0 = head * hd;
            let c1 = c0 + hd;
            let qh = q.slice_cols(c0, c1)?;
            let kh = k.slice_cols(c0, c1)?;
            let vh = v.slice_cols(c0, c1)?;
            let mut scores = qh.matmul_nt(&kh)?;
            scores.scale_in_place(scale);
            for i in 0..s {
                for j in (i + 1)..s {
                    *scores.at_mut(i, j) = f32::NEG_INFINITY;
                }
            }
            let p = softmax_rows(&scores);
            let ctx_h = p.matmul(&vh)?;
            for i in 0..s {
                context.row_mut(i)[c0..c1].copy_from_slice(ctx_h.row(i));
            }
            probs.push(p);
        }
        let y = context.matmul(self.wo.value())?;
        Ok((
            y,
            TpAttentionCache {
                input: x.clone(),
                q,
                k,
                v,
                probs,
                context,
            },
        ))
    }

    /// Backward: accumulates the shard's weight gradients and returns the
    /// *partial* input gradient `[s, h]` (complete after the all-reduce).
    fn backward(&mut self, cache: &TpAttentionCache, dy: &Tensor) -> Result<Tensor> {
        let h = self.hidden;
        let s = cache.input.rows();
        if dy.shape() != (s, h) {
            return Err(TensorError::ShapeMismatch {
                op: "tp_attention_bwd",
                lhs: dy.shape(),
                rhs: (s, h),
            });
        }
        let local_cols = self.wq.value().cols();
        let hd = local_cols / self.local_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let d_context = dy.matmul_nt(self.wo.value())?;
        let dwo = cache.context.matmul_tn(dy)?;
        self.wo.accumulate(&dwo)?;

        let mut dq = Tensor::zeros(s, local_cols);
        let mut dk = Tensor::zeros(s, local_cols);
        let mut dv = Tensor::zeros(s, local_cols);
        for head in 0..self.local_heads {
            let c0 = head * hd;
            let c1 = c0 + hd;
            let qh = cache.q.slice_cols(c0, c1)?;
            let kh = cache.k.slice_cols(c0, c1)?;
            let vh = cache.v.slice_cols(c0, c1)?;
            let p = &cache.probs[head];
            let d_ctx_h = d_context.slice_cols(c0, c1)?;
            let dp = d_ctx_h.matmul_nt(&vh)?;
            let dvh = p.matmul_tn(&d_ctx_h)?;
            let mut ds = Tensor::zeros(s, s);
            for i in 0..s {
                let p_row = p.row(i);
                let dp_row = dp.row(i);
                let dot: f32 = p_row.iter().zip(dp_row).map(|(&a, &b)| a * b).sum();
                for ((o, &pv), &dpv) in ds.row_mut(i).iter_mut().zip(p_row).zip(dp_row) {
                    *o = pv * (dpv - dot);
                }
            }
            let mut dqh = ds.matmul(&kh)?;
            dqh.scale_in_place(scale);
            let mut dkh = ds.matmul_tn(&qh)?;
            dkh.scale_in_place(scale);
            for i in 0..s {
                dq.row_mut(i)[c0..c1].copy_from_slice(dqh.row(i));
                dk.row_mut(i)[c0..c1].copy_from_slice(dkh.row(i));
                dv.row_mut(i)[c0..c1].copy_from_slice(dvh.row(i));
            }
        }

        let dwq = cache.input.matmul_tn(&dq)?;
        let dwk = cache.input.matmul_tn(&dk)?;
        let dwv = cache.input.matmul_tn(&dv)?;
        self.wq.accumulate(&dwq)?;
        self.wk.accumulate(&dwk)?;
        self.wv.accumulate(&dwv)?;
        let mut dx = dq.matmul_nt(self.wq.value())?;
        dx.add_assign(&dk.matmul_nt(self.wk.value())?)?;
        dx.add_assign(&dv.matmul_nt(self.wv.value())?)?;
        Ok(dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

/// One tensor rank's shard of a pre-norm transformer block.
///
/// Parameter layout (and [`Self::params_mut`] order) mirrors the full
/// block's 12 tensors: `ln1` (2), attention (4), `ln2` (2), `fc1`
/// weight + bias shard (2), `fc2` weight shard (1), replicated `fc2`
/// bias (1) — so runtime machinery that walks parameters positionally
/// (weight stashes, checkpointing) works unchanged.
#[derive(Debug, Clone)]
pub struct TpTransformerBlock {
    ln1: LayerNorm,
    attn: TpAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
    /// Replicated down-projection bias, added *after* the reduce (the sum
    /// of per-rank partials must see the bias exactly once).
    fc2_bias: Param,
}

/// Activations cached by [`TpTransformerBlock::forward`].
#[derive(Debug, Clone)]
pub struct TpBlockCache {
    ln1: LayerNormCache,
    attn: TpAttentionCache,
    ln2: LayerNormCache,
    fc1: LinearCache,
    gelu: GeluCache,
    fc2: LinearCache,
}

impl TpTransformerBlock {
    /// Shards `full` according to `part`. Every rank calls this with the
    /// same full block (replicated initialization), so the shards are
    /// consistent by construction.
    ///
    /// # Panics
    ///
    /// Panics if `part` does not match the block's dimensions.
    pub fn from_full(full: &TransformerBlock, part: &TpPartition) -> Self {
        let h = full.hidden();
        assert_eq!(part.hidden, h, "partition hidden must match the block");
        assert_eq!(
            part.heads,
            full.attn().heads(),
            "partition heads must match the block"
        );
        assert_eq!(
            part.ffn,
            full.fc1().out_dim(),
            "partition ffn width must match the block"
        );
        let (a0, a1) = part.attn_cols();
        let (f0, f1) = part.ffn_cols();
        let slice = |t: &Tensor| t.slice_cols(a0, a1).expect("attn column slice");
        let attn = TpAttention {
            wq: Param::new(slice(full.attn().wq())),
            wk: Param::new(slice(full.attn().wk())),
            wv: Param::new(slice(full.attn().wv())),
            wo: Param::new(full.attn().wo().slice_rows(a0, a1).expect("wo row slice")),
            local_heads: part.local_heads(),
            hidden: h,
        };
        let fc1 = Linear::from_parts(
            full.fc1().weight().slice_cols(f0, f1).expect("fc1 slice"),
            full.fc1()
                .bias()
                .map(|b| b.slice_cols(f0, f1).expect("fc1 bias slice")),
        );
        let fc2 = Linear::from_parts(
            full.fc2().weight().slice_rows(f0, f1).expect("fc2 slice"),
            None,
        );
        let fc2_bias = Param::new(
            full.fc2()
                .bias()
                .expect("full block's fc2 carries a bias")
                .clone(),
        );
        TpTransformerBlock {
            ln1: full.ln1().clone(),
            attn,
            ln2: full.ln2().clone(),
            fc1,
            fc2,
            fc2_bias,
        }
    }

    /// Hidden width of the (full) block.
    pub fn hidden(&self) -> usize {
        self.ln1.dim()
    }

    /// Forward pass over one sequence `x: [s, h]`.
    ///
    /// `reduce` is called twice — on the partial attention output and on
    /// the partial MLP output — and must complete them across the tensor
    /// group (identity at `tp = 1`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers or the reducer.
    pub fn forward(&self, x: &Tensor, reduce: &mut TpReduce<'_>) -> Result<(Tensor, TpBlockCache)> {
        let (n1, ln1_cache) = self.ln1.forward(x)?;
        let (mut attn_out, attn_cache) = self.attn.forward(&n1)?;
        reduce(&mut attn_out)?;
        let mid = x.add(&attn_out)?;
        let (n2, ln2_cache) = self.ln2.forward(&mid)?;
        let (h1, fc1_cache) = self.fc1.forward(&n2)?;
        let gelu = Gelu::new();
        let (h2, gelu_cache) = gelu.forward(&h1);
        let (mut mlp_out, fc2_cache) = self.fc2.forward(&h2)?;
        reduce(&mut mlp_out)?;
        // Replicated bias applied once, after the reduce. Bitwise equal to
        // the full block's fused bias at tp = 1 (fused == unfused is a
        // tensor-crate contract).
        for r in 0..mlp_out.rows() {
            for (v, &b) in mlp_out
                .row_mut(r)
                .iter_mut()
                .zip(self.fc2_bias.value().row(0))
            {
                *v += b;
            }
        }
        let y = mid.add(&mlp_out)?;
        Ok((
            y,
            TpBlockCache {
                ln1: ln1_cache,
                attn: attn_cache,
                ln2: ln2_cache,
                fc1: fc1_cache,
                gelu: gelu_cache,
                fc2: fc2_cache,
            },
        ))
    }

    /// Backward pass: accumulates all shard gradients, returns `dx`.
    ///
    /// `reduce` is called twice — on the partial MLP input gradient and on
    /// the partial attention input gradient (the `f`-conjugate
    /// all-reduces, in reverse block order).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers or the reducer.
    pub fn backward(
        &mut self,
        cache: &TpBlockCache,
        dy: &Tensor,
        reduce: &mut TpReduce<'_>,
    ) -> Result<Tensor> {
        // Replicated bias gradient: the column sum of dy, identical on
        // every rank (dy is replicated).
        let mut db = Tensor::zeros(1, dy.cols());
        for r in 0..dy.rows() {
            for (d, &g) in db.row_mut(0).iter_mut().zip(dy.row(r)) {
                *d += g;
            }
        }
        self.fc2_bias.accumulate(&db)?;
        let d_h2 = self.fc2.backward(&cache.fc2, dy)?;
        let d_h1 = Gelu::new().backward(&cache.gelu, &d_h2)?;
        let mut d_n2 = self.fc1.backward(&cache.fc1, &d_h1)?;
        reduce(&mut d_n2)?;
        let mut d_mid = self.ln2.backward(&cache.ln2, &d_n2)?;
        d_mid.add_assign(dy)?;
        let mut d_n1 = self.attn.backward(&cache.attn, &d_mid)?;
        reduce(&mut d_n1)?;
        let mut dx = self.ln1.backward(&cache.ln1, &d_n1)?;
        dx.add_assign(&d_mid)?;
        Ok(dx)
    }

    /// Mutable references to all trainable parameters, in the documented
    /// deterministic order (12 tensors, mirroring the full block).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.ln1.params_mut();
        params.extend(self.attn.params_mut());
        params.extend(self.ln2.params_mut());
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params.push(&mut self.fc2_bias);
        params
    }
}

/// An identity reducer for `tp = 1` (and tests).
pub fn identity_reduce(_t: &mut Tensor) -> Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_tensor::init::{normal, seeded_rng};

    fn full_block(hidden: usize, heads: usize, ffn_mult: usize) -> TransformerBlock {
        let mut rng = seeded_rng(71);
        TransformerBlock::new(&mut rng, hidden, heads, ffn_mult)
    }

    #[test]
    fn tp1_is_bitwise_identical_to_the_full_block() {
        let full = full_block(8, 2, 4);
        let part = TpPartition::new(1, 0, 2, 8, 32);
        let mut shard = TpTransformerBlock::from_full(&full, &part);
        let mut rng = seeded_rng(72);
        let x = normal(&mut rng, 5, 8, 0.8);
        let (y_full, cache_full) = full.forward(&x).unwrap();
        let (y_tp, cache_tp) = shard.forward(&x, &mut identity_reduce).unwrap();
        for (a, b) in y_full.data().iter().zip(y_tp.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "forward diverged");
        }
        let dy = normal(&mut rng, 5, 8, 1.0);
        let mut full2 = full;
        let dx_full = full2.backward(&cache_full, &dy).unwrap();
        let dx_tp = shard
            .backward(&cache_tp, &dy, &mut identity_reduce)
            .unwrap();
        for (a, b) in dx_full.data().iter().zip(dx_tp.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "backward diverged");
        }
        // Gradients of every parameter are bitwise identical too.
        let mut full_params = full2.params_mut();
        let mut tp_params = shard.params_mut();
        assert_eq!(full_params.len(), tp_params.len());
        for (i, (fp, tp)) in full_params.iter_mut().zip(tp_params.iter_mut()).enumerate() {
            assert_eq!(fp.grad().shape(), tp.grad().shape(), "param {i}");
            for (a, b) in fp.grad().data().iter().zip(tp.grad().data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "param {i} grad diverged");
            }
        }
    }

    /// Simulates a `tp`-wide group in-process: runs all shards and sums
    /// partials at each reduce point, exactly as the runtime's all-reduce
    /// does.
    ///
    /// Reduce points are resolved *sequentially*: the partial at reduce
    /// point `k` depends on the summed result of points `< k`, so each
    /// round replays the pass with known sums substituted and collects the
    /// next unresolved partial across all ranks.
    fn run_sharded_forward_backward(
        full: &TransformerBlock,
        tp: usize,
        x: &Tensor,
        dy: &Tensor,
    ) -> (Tensor, Tensor, Vec<TpTransformerBlock>) {
        let heads = full.attn().heads();
        let h = full.hidden();
        let ffn = full.fc1().out_dim();
        let mut shards: Vec<TpTransformerBlock> = (0..tp)
            .map(|r| TpTransformerBlock::from_full(full, &TpPartition::new(tp, r, heads, h, ffn)))
            .collect();
        let sum_all = |parts: Vec<Tensor>| -> Tensor {
            let mut acc = parts[0].clone();
            for p in &parts[1..] {
                acc.add_assign(p).unwrap();
            }
            acc
        };

        // Forward: resolve the two reduce points in order.
        let mut fwd_sums: Vec<Tensor> = Vec::new();
        while fwd_sums.len() < 2 {
            let mut partials = Vec::new();
            for shard in &shards {
                let mut i = 0;
                shard
                    .forward(x, &mut |t: &mut Tensor| {
                        if i < fwd_sums.len() {
                            *t = fwd_sums[i].clone();
                        } else if i == fwd_sums.len() {
                            partials.push(t.clone());
                        }
                        i += 1;
                        Ok(())
                    })
                    .unwrap();
            }
            fwd_sums.push(sum_all(partials));
        }
        // Final replay with both sums known: real output + caches.
        let mut caches = Vec::new();
        let mut y = None;
        for shard in &shards {
            let mut i = 0;
            let (yr, cache) = shard
                .forward(x, &mut |t: &mut Tensor| {
                    *t = fwd_sums[i].clone();
                    i += 1;
                    Ok(())
                })
                .unwrap();
            caches.push(cache);
            y = Some(yr);
        }

        // Backward: same sequential resolution, probing on clones so
        // gradients accumulate exactly once (in the final pass below).
        let mut bwd_sums: Vec<Tensor> = Vec::new();
        while bwd_sums.len() < 2 {
            let mut partials = Vec::new();
            for (r, shard) in shards.iter().enumerate() {
                let mut probe = shard.clone();
                let mut i = 0;
                probe
                    .backward(&caches[r], dy, &mut |t: &mut Tensor| {
                        if i < bwd_sums.len() {
                            *t = bwd_sums[i].clone();
                        } else if i == bwd_sums.len() {
                            partials.push(t.clone());
                        }
                        i += 1;
                        Ok(())
                    })
                    .unwrap();
            }
            bwd_sums.push(sum_all(partials));
        }
        let mut dx = None;
        for (r, shard) in shards.iter_mut().enumerate() {
            let mut i = 0;
            let d = shard
                .backward(&caches[r], dy, &mut |t: &mut Tensor| {
                    *t = bwd_sums[i].clone();
                    i += 1;
                    Ok(())
                })
                .unwrap();
            dx = Some(d);
        }
        (y.unwrap(), dx.unwrap(), shards)
    }

    #[test]
    fn tp_sharded_block_matches_full_numerics() {
        let full = full_block(8, 4, 4);
        let mut rng = seeded_rng(73);
        let x = normal(&mut rng, 6, 8, 0.6);
        let dy = normal(&mut rng, 6, 8, 1.0);
        let (y_full, cache) = full.forward(&x).unwrap();
        let mut full2 = full.clone();
        let dx_full = full2.backward(&cache, &dy).unwrap();
        for tp in [2usize, 4] {
            let (y, dx, _) = run_sharded_forward_backward(&full, tp, &x, &dy);
            for (a, b) in y_full.data().iter().zip(y.data()) {
                assert!((a - b).abs() < 1e-4, "tp {tp} forward: {a} vs {b}");
            }
            for (a, b) in dx_full.data().iter().zip(dx.data()) {
                assert!((a - b).abs() < 1e-4, "tp {tp} backward: {a} vs {b}");
            }
        }
    }

    #[test]
    fn tp_weight_gradients_reassemble_to_full() {
        let full = full_block(8, 2, 2);
        let mut rng = seeded_rng(74);
        let x = normal(&mut rng, 4, 8, 0.7);
        let dy = normal(&mut rng, 4, 8, 1.0);
        let (_, cache) = full.forward(&x).unwrap();
        let mut full2 = full.clone();
        full2.backward(&cache, &dy).unwrap();
        let (_, _, mut shards) = run_sharded_forward_backward(&full, 2, &x, &dy);
        // fc1 weight grad: column-concatenation of the shard grads.
        let full_fc1_grad = full2.params_mut()[8].grad().clone();
        let s0 = shards[0].params_mut()[8].grad().clone();
        let s1 = shards[1].params_mut()[8].grad().clone();
        for r in 0..full_fc1_grad.rows() {
            for c in 0..full_fc1_grad.cols() {
                let shard_val = if c < s0.cols() {
                    s0.at(r, c)
                } else {
                    s1.at(r, c - s0.cols())
                };
                let diff = (full_fc1_grad.at(r, c) - shard_val).abs();
                assert!(diff < 1e-4, "fc1 grad ({r},{c}) diff {diff}");
            }
        }
        // Replicated fc2 bias grad: identical on both shards, equal to the
        // full block's.
        let full_bias_grad = full2.params_mut()[11].grad().clone();
        for shard in &mut shards {
            let g = shard.params_mut()[11].grad().clone();
            for (a, b) in full_bias_grad.data().iter().zip(g.data()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn params_mut_order_mirrors_the_full_block() {
        let full = full_block(8, 2, 4);
        let part = TpPartition::new(2, 1, 2, 8, 32);
        let mut shard = TpTransformerBlock::from_full(&full, &part);
        // 12 tensors, same count as the full block.
        assert_eq!(shard.params_mut().len(), 12);
        // Shard shapes: attention columns halve, wo rows halve, fc1/fc2
        // shard the ffn axis, norms and fc2 bias stay full.
        let shapes: Vec<(usize, usize)> = shard
            .params_mut()
            .iter()
            .map(|p| p.value().shape())
            .collect();
        assert_eq!(shapes[2], (8, 4)); // wq
        assert_eq!(shapes[5], (4, 8)); // wo
        assert_eq!(shapes[8], (8, 16)); // fc1 w
        assert_eq!(shapes[9], (1, 16)); // fc1 b
        assert_eq!(shapes[10], (16, 8)); // fc2 w
        assert_eq!(shapes[11], (1, 8)); // fc2 bias (replicated)
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn partition_rejects_unaligned_heads() {
        let _ = TpPartition::new(3, 0, 2, 8, 32);
    }

    #[test]
    fn partition_ranges_tile_the_axes() {
        let mut attn_cov = 0;
        let mut ffn_cov = 0;
        for r in 0..4 {
            let p = TpPartition::new(4, r, 8, 32, 128);
            let (a0, a1) = p.attn_cols();
            let (f0, f1) = p.ffn_cols();
            assert_eq!(a0, attn_cov);
            assert_eq!(f0, ffn_cov);
            attn_cov = a1;
            ffn_cov = f1;
            assert_eq!(p.local_heads(), 2);
        }
        assert_eq!(attn_cov, 32);
        assert_eq!(ffn_cov, 128);
    }
}
