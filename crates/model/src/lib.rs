#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Model configuration, analytical cost model and stage partitioning for
//! the Vocabulary Parallelism reproduction.
//!
//! This crate owns everything the paper derives *about* the model rather
//! than the training numerics themselves:
//!
//! * [`ModelConfig`] — GPT-style hyper-parameters plus the presets used in
//!   the paper's evaluation (Tables 1 and 2, Gemma2-9B for Figure 2).
//! * [`cost`] — the Appendix A FLOPs / parameter-memory formulas, the
//!   activation-memory model and a calibrated A100-like [`cost::Hardware`]
//!   description used by the discrete-event simulator.
//! * [`partition`] — vocabulary sharding with the paper's `2p` padding rule
//!   and the three stage-layout strategies compared in §6.2: the naive
//!   Megatron layout, greedy transformer-layer redistribution (*Redis*) and
//!   Vocabulary Parallelism.
//! * [`block`] — a real transformer block (attention + MLP with manual
//!   backprop) assembled from `vp-tensor`, used by the numeric runtime.

/// Real transformer blocks (attention + MLP with manual backprop).
pub mod block;
/// Model hyper-parameters and the paper's evaluation presets.
pub mod config;
/// The Appendix A analytical cost model and hardware description.
pub mod cost;
/// Closed-form per-device memory estimation (§5.2 arithmetic).
pub mod memory;
/// Vocabulary sharding and pipeline-stage layouts.
pub mod partition;
/// Megatron-style tensor-parallel sharding of the transformer block.
pub mod tp;

pub use block::{BlockCache, TransformerBlock};
pub use config::{ModelConfig, ModelPreset};
pub use cost::Hardware;
pub use memory::{estimate_1f1b, estimate_1f1b_grid, MemoryEstimate, PlacementKind, TpSyncStyle};
pub use partition::{StageLayout, VocabPartition};
pub use tp::{TpBlockCache, TpPartition, TpTransformerBlock};
