//! The analytical cost model (paper Appendix A) plus an A100-like hardware
//! description calibrated against the paper's measurements.
//!
//! FLOPs per microbatch, following Narayanan et al. as the paper does
//! (`b` microbatch, `s` sequence, `h` hidden, `V` vocabulary):
//!
//! | pass                    | FLOPs            |
//! |-------------------------|------------------|
//! | transformer forward `F` | `bsh(24h + 4s)`  |
//! | transformer backward `B`| `bsh(24h + 8s)`  |
//! | transformer wgrad `W`   | `24bsh²`         |
//! | output layer (total)    | `6bshV`          |
//! | input layer (total)     | `3bsh`           |
//!
//! Parameter memory: `12h²` parameters per transformer layer, `hV` per
//! vocabulary layer, at [`Hardware::bytes_per_param`] bytes each (weights +
//! gradients + fp32 master weights + Adam moments, Megatron mixed
//! precision). Activations: [`Hardware::act_bytes_coeff`]`·s·b·h` bytes per
//! transformer layer per resident microbatch (selective recomputation, after
//! Korthikanti et al.).
//!
//! # Calibration
//!
//! Three constants are fitted to the paper's own measurements rather than
//! derived: the kernel-efficiency curve `e(h) = e∞ / (1 + c_h/h)` (fitted to
//! the per-setup MFU of the balanced Vocab methods in Table 5), the fixed
//! per-pass overhead of partitioned vocabulary kernels (fitted to Table 3's
//! scaling factors) and Algorithm 2's extra elementwise work (Table 3's
//! Vocab-1 → Vocab-2 gap). They are documented at the field definitions and
//! exercised by the `table3` reproduction.

use crate::config::ModelConfig;
use crate::partition::VocabPartition;

/// Which variant of the partitioned output layer a pass belongs to
/// (§4: the naive 3-barrier grouping, Algorithm 1 with 2 barriers, or
/// Algorithm 2 with 1 barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VocabAlgo {
    /// §4.1: all-reduce max, then all-reduce sum, then reduce ∇X.
    Naive,
    /// §4.3 Algorithm 1: local softmax first; barriers `C1` (stats) and
    /// `C2` (∇X reduce).
    Alg1,
    /// §4.4 Algorithm 2: single barrier `C1`; ∇X assembled from
    /// pre-computed matmuls; `T` is freely deferrable.
    Alg2,
}

/// Machine description: an A100-SXM-80GB-like device with RoCE inter-node
/// links, as used in the paper's testbed (§6.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Hardware {
    /// Peak dense throughput per device, FLOP/s (A100 bf16: 312 TFLOP/s).
    pub peak_flops: f64,
    /// Asymptotic kernel efficiency `e∞` of large matmuls.
    ///
    /// Calibrated: with `eff_hidden_scale` this reproduces the MFU of the
    /// balanced Vocab methods across the 4B/10B/21B setups of Table 5.
    pub eff_asymptote: f64,
    /// Hidden-size scale `c_h` of the efficiency curve `e∞ / (1 + c_h/h)`.
    pub eff_hidden_scale: f64,
    /// Fixed overhead (seconds) per partitioned-vocabulary `S` or `T` pass:
    /// kernel-launch plus the `[b·s]`-sized statistics work that does not
    /// shrink with the shard. Calibrated to Table 3.
    pub vocab_pass_overhead: f64,
    /// Extra time (seconds) Algorithm 2 spends per microbatch on the
    /// rescale-recompute of `softmax(Y)` and the `GW` gather (§4.4,
    /// "a bit more computation overhead"). Calibrated to Table 3's
    /// Vocab-1 → Vocab-2 gap.
    pub alg2_extra_overhead: f64,
    /// Device HBM bandwidth, bytes/s (A100: ~2 TB/s; we use an effective
    /// 1.3 TB/s for memory-bound kernels).
    pub mem_bandwidth: f64,
    /// Effective per-device bandwidth of intra-node links, bytes/s.
    pub intra_node_bandwidth: f64,
    /// Effective per-device bandwidth of inter-node (RoCE) links, bytes/s.
    pub inter_node_bandwidth: f64,
    /// Per-hop latency of intra-node transfers, seconds.
    pub intra_node_latency: f64,
    /// Per-hop latency of inter-node transfers, seconds.
    pub inter_node_latency: f64,
    /// GPUs per node (the paper's nodes hold 8 A100s).
    pub devices_per_node: usize,
    /// Bytes of persistent state per parameter: bf16 weight (2) + fp32
    /// master weight (4) + Adam moments (8) + amortized gradient buffers
    /// ≈ 17, Megatron-style mixed precision with a distributed-optimizer
    /// style gradient store. Calibrated so the baseline's 73 GB cell
    /// (Table 5, 32 GPU / seq 4096 / 256k) stays under the 80 GB budget
    /// while the interlaced pipeline's 1.5× activations exceed it.
    pub bytes_per_param: f64,
    /// Activation bytes per transformer layer per token, divided by `h`
    /// (Korthikanti et al.'s `34·s·b·h` with selective recomputation).
    pub act_bytes_coeff: f64,
    /// Base constant of the partitioned input layer's per-device fixed
    /// cost, in units of `b·s·h / mem_bandwidth` (every device constructs
    /// the full-size output tensor regardless of its shard — the cause of
    /// Table 3's poor input scaling). Calibrated to Table 3.
    pub input_const_base: f64,
    /// Sequence-length exponent of the input-layer fixed cost (Table 3
    /// shows the input scaling factor *worsens* with sequence length).
    pub input_const_exp: f64,
}

impl Default for Hardware {
    fn default() -> Self {
        Hardware {
            peak_flops: 312e12,
            eff_asymptote: 0.69,
            eff_hidden_scale: 936.0,
            vocab_pass_overhead: 0.35e-3,
            alg2_extra_overhead: 0.40e-3,
            mem_bandwidth: 1.3e12,
            intra_node_bandwidth: 150e9,
            inter_node_bandwidth: 20e9,
            intra_node_latency: 10e-6,
            inter_node_latency: 30e-6,
            devices_per_node: 8,
            bytes_per_param: 17.0,
            act_bytes_coeff: 34.0,
            input_const_base: 3.0,
            input_const_exp: 0.65,
        }
    }
}

impl Hardware {
    /// Kernel efficiency for dense matmuls at hidden size `h`.
    pub fn kernel_efficiency(&self, hidden: usize) -> f64 {
        self.eff_asymptote / (1.0 + self.eff_hidden_scale / hidden as f64)
    }

    /// Seconds to execute `flops` of dense compute at hidden size `h`.
    pub fn compute_seconds(&self, flops: f64, hidden: usize) -> f64 {
        flops / (self.peak_flops * self.kernel_efficiency(hidden))
    }

    /// Ring all-reduce time for `bytes` over `p` devices.
    ///
    /// Uses the inter-node bandwidth/latency when the group spans nodes,
    /// since the slowest link bounds the ring.
    pub fn all_reduce_seconds(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let (bw, lat) = if p > self.devices_per_node {
            (self.inter_node_bandwidth, self.inter_node_latency)
        } else {
            (self.intra_node_bandwidth, self.intra_node_latency)
        };
        let steps = (p - 1) as f64;
        2.0 * bytes * steps / (p as f64) / bw + 2.0 * steps * lat
    }

    /// Point-to-point transfer time for `bytes`, optionally crossing nodes.
    pub fn p2p_seconds(&self, bytes: f64, crosses_node: bool) -> f64 {
        let (bw, lat) = if crosses_node {
            (self.inter_node_bandwidth, self.inter_node_latency)
        } else {
            (self.intra_node_bandwidth, self.intra_node_latency)
        };
        bytes / bw + lat
    }
}

/// Per-microbatch cost model binding a [`ModelConfig`] to a [`Hardware`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Model configuration the costs are computed for.
    pub config: ModelConfig,
    /// Hardware description.
    pub hardware: Hardware,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(config: ModelConfig, hardware: Hardware) -> Self {
        CostModel { config, hardware }
    }

    fn bsh(&self) -> f64 {
        let c = &self.config;
        (c.microbatch * c.seq_len * c.hidden) as f64
    }

    // ---- FLOPs (per microbatch) -----------------------------------------

    /// Transformer forward FLOPs: `bsh(24h + 4s)`.
    pub fn transformer_f_flops(&self) -> f64 {
        let c = &self.config;
        self.bsh() * (24.0 * c.hidden as f64 + 4.0 * c.seq_len as f64)
    }

    /// Transformer activation-gradient FLOPs: `bsh(24h + 8s)`.
    pub fn transformer_b_flops(&self) -> f64 {
        let c = &self.config;
        self.bsh() * (24.0 * c.hidden as f64 + 8.0 * c.seq_len as f64)
    }

    /// Transformer weight-gradient FLOPs: `24bsh²`.
    pub fn transformer_w_flops(&self) -> f64 {
        self.bsh() * 24.0 * self.config.hidden as f64
    }

    /// Output-layer total FLOPs over `vocab_cols` vocabulary columns:
    /// `6·bsh·vocab_cols` (forward `2bshV'`, ∇X `2bshV'`, ∇W `2bshV'`).
    pub fn output_total_flops(&self, vocab_cols: usize) -> f64 {
        6.0 * self.bsh() * vocab_cols as f64
    }

    /// Input-layer total FLOPs: `3bsh` (lookup forward + scatter-add
    /// backward); independent of the shard size.
    pub fn input_total_flops(&self) -> f64 {
        3.0 * self.bsh()
    }

    /// End-to-end model FLOPs per iteration (all microbatches), the
    /// numerator of MFU, following Narayanan et al.'s derivation.
    pub fn model_flops_per_iteration(&self) -> f64 {
        let c = &self.config;
        let per_layer = self.bsh() * (72.0 * c.hidden as f64 + 12.0 * c.seq_len as f64);
        let per_microbatch = c.layers as f64 * per_layer
            + self.output_total_flops(c.vocab)
            + self.input_total_flops();
        per_microbatch * c.num_microbatches as f64
    }

    /// Model FLOPs utilization for an iteration that took `seconds` on `p`
    /// devices.
    pub fn mfu(&self, seconds: f64, p: usize) -> f64 {
        self.model_flops_per_iteration() / (seconds * p as f64 * self.hardware.peak_flops)
    }

    // ---- Pass times (seconds, per microbatch) ---------------------------

    /// Transformer-layer forward time for `layers` layers on a stage.
    pub fn transformer_f_seconds(&self, layers: usize) -> f64 {
        layers as f64
            * self
                .hardware
                .compute_seconds(self.transformer_f_flops(), self.config.hidden)
    }

    /// Transformer-layer activation-gradient (`B`-only) time for `layers`
    /// layers (zero-bubble split).
    pub fn transformer_b_only_seconds(&self, layers: usize) -> f64 {
        layers as f64
            * self
                .hardware
                .compute_seconds(self.transformer_b_flops(), self.config.hidden)
    }

    /// Transformer-layer weight-gradient (`W`) time for `layers` layers
    /// (zero-bubble split).
    pub fn transformer_w_seconds(&self, layers: usize) -> f64 {
        layers as f64
            * self
                .hardware
                .compute_seconds(self.transformer_w_flops(), self.config.hidden)
    }

    /// Transformer-layer combined backward (B + W) time for `layers` layers.
    pub fn transformer_bw_seconds(&self, layers: usize) -> f64 {
        layers as f64
            * self.hardware.compute_seconds(
                self.transformer_b_flops() + self.transformer_w_flops(),
                self.config.hidden,
            )
    }

    /// Full (unpartitioned) output-layer forward time, including loss.
    pub fn output_full_f_seconds(&self) -> f64 {
        self.hardware.compute_seconds(
            2.0 * self.bsh() * self.config.vocab as f64,
            self.config.hidden,
        )
    }

    /// Full (unpartitioned) output-layer backward time (∇X and ∇W).
    pub fn output_full_bw_seconds(&self) -> f64 {
        self.hardware.compute_seconds(
            4.0 * self.bsh() * self.config.vocab as f64,
            self.config.hidden,
        )
    }

    /// Full (unpartitioned) input-layer forward time (memory bound).
    pub fn input_full_f_seconds(&self) -> f64 {
        // Gather read + write of the [b·s, h] activations, fp16.
        4.0 * self.bsh() / self.hardware.mem_bandwidth
    }

    /// Full (unpartitioned) input-layer backward time (scatter-add).
    pub fn input_full_b_seconds(&self) -> f64 {
        8.0 * self.bsh() / self.hardware.mem_bandwidth
    }

    /// `S`-pass time of the partitioned output layer for the given
    /// algorithm and shard width.
    ///
    /// Algorithm 1's `S` holds the logits matmul and local softmax
    /// (`2bshV'`); Algorithm 2 additionally pre-computes `A = softmax'(Y)W`
    /// and `B = GW` before the barrier (`+2bshV'` plus the calibrated
    /// elementwise overhead).
    pub fn vocab_s_seconds(&self, algo: VocabAlgo, shard_cols: usize) -> f64 {
        let hw = &self.hardware;
        let matmul = 2.0 * self.bsh() * shard_cols as f64;
        let base = match algo {
            VocabAlgo::Naive | VocabAlgo::Alg1 => hw.compute_seconds(matmul, self.config.hidden),
            VocabAlgo::Alg2 => {
                hw.compute_seconds(2.0 * matmul, self.config.hidden) + hw.alg2_extra_overhead
            }
        };
        base + hw.vocab_pass_overhead
    }

    /// `T`-pass time of the partitioned output layer.
    ///
    /// Algorithm 1's `T` computes both `∇X'` and `∇W` (`4bshV'`);
    /// Algorithm 2's `T` only computes `∇W` (`2bshV'`).
    pub fn vocab_t_seconds(&self, algo: VocabAlgo, shard_cols: usize) -> f64 {
        let hw = &self.hardware;
        let matmul = 2.0 * self.bsh() * shard_cols as f64;
        let flops = match algo {
            VocabAlgo::Naive | VocabAlgo::Alg1 => 2.0 * matmul,
            VocabAlgo::Alg2 => matmul,
        };
        hw.compute_seconds(flops, self.config.hidden) + hw.vocab_pass_overhead
    }

    /// The sequence-length-dependent fixed cost of a partitioned
    /// input-layer pass pair, in `b·s·h / mem_bandwidth` units.
    fn input_const_units(&self) -> f64 {
        self.hardware.input_const_base
            * (self.config.seq_len as f64 / 2048.0).powf(self.hardware.input_const_exp)
    }

    /// Partitioned input-layer forward time on one device.
    ///
    /// Every device constructs the full `[b·s, h]` output tensor regardless
    /// of its shard (the cause of the poor input scaling in Table 3), but
    /// only gathers its own rows.
    pub fn vocab_input_f_seconds(&self, p: usize) -> f64 {
        let const_part = self.input_const_units() / 3.0 * self.bsh() / self.hardware.mem_bandwidth;
        const_part + self.input_full_f_seconds() / (2.0 * p as f64)
    }

    /// Partitioned input-layer backward time on one device.
    pub fn vocab_input_b_seconds(&self, p: usize) -> f64 {
        let const_part =
            2.0 * self.input_const_units() / 3.0 * self.bsh() / self.hardware.mem_bandwidth;
        const_part + self.input_full_b_seconds() / (2.0 * p as f64)
    }

    // ---- Tensor parallelism (2D grid) ------------------------------------

    /// Transformer forward time for `layers` layers with the matmuls
    /// sharded `tp` ways.
    ///
    /// FLOPs divide by `tp`, but kernel efficiency is evaluated at the
    /// *shard* width `hidden / tp`: the per-device GEMMs shrink, so each
    /// rank runs at lower utilization. This sub-linear speedup is the
    /// efficiency half of the PTD-P tension between TP and deeper PP; the
    /// communication half is [`Self::tp_comm_seconds_per_layer`]. At
    /// `tp = 1` this is exactly [`Self::transformer_f_seconds`].
    pub fn transformer_f_seconds_tp(&self, layers: usize, tp: usize) -> f64 {
        if tp <= 1 {
            return self.transformer_f_seconds(layers);
        }
        layers as f64
            * self.hardware.compute_seconds(
                self.transformer_f_flops() / tp as f64,
                self.config.hidden / tp,
            )
    }

    /// TP-sharded activation-gradient (`B`-only) time for `layers` layers.
    pub fn transformer_b_only_seconds_tp(&self, layers: usize, tp: usize) -> f64 {
        if tp <= 1 {
            return self.transformer_b_only_seconds(layers);
        }
        layers as f64
            * self.hardware.compute_seconds(
                self.transformer_b_flops() / tp as f64,
                self.config.hidden / tp,
            )
    }

    /// TP-sharded weight-gradient (`W`) time for `layers` layers.
    pub fn transformer_w_seconds_tp(&self, layers: usize, tp: usize) -> f64 {
        if tp <= 1 {
            return self.transformer_w_seconds(layers);
        }
        layers as f64
            * self.hardware.compute_seconds(
                self.transformer_w_flops() / tp as f64,
                self.config.hidden / tp,
            )
    }

    /// TP-sharded combined backward (B + W) time for `layers` layers.
    pub fn transformer_bw_seconds_tp(&self, layers: usize, tp: usize) -> f64 {
        if tp <= 1 {
            return self.transformer_bw_seconds(layers);
        }
        layers as f64
            * self.hardware.compute_seconds(
                (self.transformer_b_flops() + self.transformer_w_flops()) / tp as f64,
                self.config.hidden / tp,
            )
    }

    /// Exposed tensor-parallel communication per transformer layer in one
    /// direction (forward *or* backward): the two Megatron `f`/`g`
    /// all-reduces of the boundary activation (`[b·s, h]` bf16) over the
    /// `tp`-wide group. Zero at `tp = 1`.
    ///
    /// The PSA variant replaces each all-reduce with a reduce-scatter +
    /// all-gather of the same total ring volume but exposes only about
    /// half of it (the gather half overlaps the next GEMM); callers apply
    /// that factor via `psa_exposed_fraction`.
    pub fn tp_comm_seconds_per_layer(&self, tp: usize) -> f64 {
        2.0 * self
            .hardware
            .all_reduce_seconds(self.boundary_activation_bytes(), tp)
    }

    /// Fraction of [`Self::tp_comm_seconds_per_layer`] left on the
    /// critical path under the PSA (reduce-scatter + all-gather) variant.
    pub fn psa_exposed_fraction(&self) -> f64 {
        0.5
    }

    // ---- Communication volumes ------------------------------------------

    /// Bytes of the boundary activation tensor passed between stages
    /// (`[b·s, h]` bf16).
    pub fn boundary_activation_bytes(&self) -> f64 {
        2.0 * self.bsh()
    }

    /// Bytes of one softmax statistics vector (`[b·s]` fp32).
    pub fn stats_bytes(&self) -> f64 {
        4.0 * (self.config.microbatch * self.config.seq_len) as f64
    }

    /// Bytes of the ∇X tensor reduced across devices (`[b·s, h]` fp32).
    pub fn dx_bytes(&self) -> f64 {
        4.0 * self.bsh()
    }

    // ---- Memory ----------------------------------------------------------

    /// Persistent bytes for `params` parameters (weights + grads + master +
    /// Adam state).
    pub fn param_state_bytes(&self, params: u64) -> f64 {
        params as f64 * self.hardware.bytes_per_param
    }

    /// Activation bytes held per resident microbatch per transformer layer.
    pub fn act_bytes_per_layer(&self) -> f64 {
        self.hardware.act_bytes_coeff * self.bsh()
    }

    /// Transient buffer bytes a vocabulary shard holds between its `S` and
    /// `T` passes: `softmax'(Y)` in fp32 plus bookkeeping vectors.
    pub fn vocab_transient_bytes(&self, shard_cols: usize) -> f64 {
        let tokens = (self.config.microbatch * self.config.seq_len) as f64;
        4.0 * tokens * shard_cols as f64 + 3.0 * self.stats_bytes()
    }

    // ---- Table 3: scaling factors ----------------------------------------

    /// Scaling factor of the partitioned output layer relative to linear
    /// scaling (Table 3): ideal per-device time divided by actual.
    pub fn output_scaling_factor(&self, algo: VocabAlgo, p: usize) -> f64 {
        let part = VocabPartition::new(self.config.vocab, p);
        let shard = part.shard_width();
        let ideal = self.hardware.compute_seconds(
            self.output_total_flops(self.config.vocab),
            self.config.hidden,
        ) / p as f64;
        let actual = self.vocab_s_seconds(algo, shard) + self.vocab_t_seconds(algo, shard);
        ideal / actual
    }

    /// Scaling factor of the partitioned input layer relative to linear
    /// scaling (Table 3).
    pub fn input_scaling_factor(&self, p: usize) -> f64 {
        let ideal = (self.input_full_f_seconds() + self.input_full_b_seconds()) / p as f64;
        let actual = self.vocab_input_f_seconds(p) + self.vocab_input_b_seconds(p);
        ideal / actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    fn model() -> CostModel {
        CostModel::new(
            ModelPreset::Gpt4B.config().with_vocab(256 * 1024),
            Hardware::default(),
        )
    }

    #[test]
    fn flops_split_matches_appendix_a_totals() {
        let m = model();
        let c = &m.config;
        let total = m.transformer_f_flops() + m.transformer_b_flops() + m.transformer_w_flops();
        let expected = (c.microbatch * c.seq_len * c.hidden) as f64
            * (72.0 * c.hidden as f64 + 12.0 * c.seq_len as f64);
        assert!((total - expected).abs() / expected < 1e-12);
        assert_eq!(
            m.output_total_flops(c.vocab),
            6.0 * (c.seq_len * c.hidden) as f64 * c.vocab as f64
        );
    }

    #[test]
    fn backward_is_roughly_twice_forward() {
        let m = model();
        let ratio = (m.transformer_b_flops() + m.transformer_w_flops()) / m.transformer_f_flops();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gemma2_output_layer_dominates_transformer_layer() {
        // Figure 2: for Gemma2-9B at 256k vocabulary the output layer is
        // ≈5x a transformer layer in compute and in parameter memory.
        let cfg = ModelPreset::Gemma2_9B.config().with_vocab(256 * 1024);
        let m = CostModel::new(cfg.clone(), Hardware::default());
        let compute_ratio = m.output_total_flops(cfg.vocab)
            / ((cfg.seq_len * cfg.hidden) as f64
                * (72.0 * cfg.hidden as f64 + 12.0 * cfg.seq_len as f64));
        let memory_ratio = cfg.vocab_layer_params() as f64 / cfg.transformer_layer_params() as f64;
        assert!(
            (4.5..6.5).contains(&compute_ratio),
            "compute ratio {compute_ratio}"
        );
        assert!(
            (5.0..7.0).contains(&memory_ratio),
            "memory ratio {memory_ratio}"
        );
    }

    #[test]
    fn kernel_efficiency_grows_with_hidden() {
        let hw = Hardware::default();
        assert!(hw.kernel_efficiency(3072) < hw.kernel_efficiency(5120));
        assert!(hw.kernel_efficiency(5120) < hw.eff_asymptote);
    }

    #[test]
    fn output_scaling_factors_match_table3_shape() {
        // Table 3 (seq 2048, 256k vocab): Vocab-1 ≈ 91/84/81 % at 8/16/32
        // devices; Vocab-2 consistently a few points lower; both decrease
        // with device count.
        let presets = [
            (ModelPreset::Gpt4B, 8),
            (ModelPreset::Gpt10B, 16),
            (ModelPreset::Gpt21B, 32),
        ];
        let mut prev = f64::INFINITY;
        for (preset, p) in presets {
            let m = CostModel::new(preset.config().with_vocab(256 * 1024), Hardware::default());
            let f1 = m.output_scaling_factor(VocabAlgo::Alg1, p);
            let f2 = m.output_scaling_factor(VocabAlgo::Alg2, p);
            assert!(f1 < prev, "factor must decrease with p");
            assert!(f2 < f1, "Alg2 pays extra overhead");
            assert!((0.70..0.97).contains(&f1), "p={p}: {f1}");
            prev = f1;
        }
    }

    #[test]
    fn input_scaling_is_much_worse_than_output() {
        let m = model();
        assert!(m.input_scaling_factor(8) < 0.6);
        assert!(m.input_scaling_factor(32) < m.input_scaling_factor(8));
    }

    #[test]
    fn all_reduce_slower_across_nodes() {
        let hw = Hardware::default();
        let bytes = 1e6;
        assert!(hw.all_reduce_seconds(bytes, 16) > hw.all_reduce_seconds(bytes, 8));
        assert_eq!(hw.all_reduce_seconds(bytes, 1), 0.0);
    }

    #[test]
    fn mfu_is_dimensionally_sane() {
        let m = model();
        // A perfectly efficient machine finishing in the compute-bound time
        // would have MFU equal to kernel efficiency.
        let ideal_seconds = m.model_flops_per_iteration()
            / (8.0 * m.hardware.peak_flops * m.hardware.kernel_efficiency(m.config.hidden));
        let mfu = m.mfu(ideal_seconds, 8);
        assert!((mfu - m.hardware.kernel_efficiency(m.config.hidden)).abs() < 1e-9);
    }

    #[test]
    fn param_state_bytes_uses_17_bytes_per_param() {
        let m = model();
        assert_eq!(m.param_state_bytes(1_000), 17_000.0);
    }

    #[test]
    fn tp_pass_times_at_tp1_are_bitwise_the_1d_times() {
        let m = model();
        for layers in [1usize, 3] {
            assert_eq!(
                m.transformer_f_seconds_tp(layers, 1).to_bits(),
                m.transformer_f_seconds(layers).to_bits()
            );
            assert_eq!(
                m.transformer_b_only_seconds_tp(layers, 1).to_bits(),
                m.transformer_b_only_seconds(layers).to_bits()
            );
            assert_eq!(
                m.transformer_w_seconds_tp(layers, 1).to_bits(),
                m.transformer_w_seconds(layers).to_bits()
            );
            assert_eq!(
                m.transformer_bw_seconds_tp(layers, 1).to_bits(),
                m.transformer_bw_seconds(layers).to_bits()
            );
        }
        assert_eq!(m.tp_comm_seconds_per_layer(1), 0.0);
    }

    #[test]
    fn tp_speedup_is_sublinear() {
        // Sharding halves the FLOPs but the narrower per-rank GEMMs run at
        // lower kernel efficiency, so the speedup is strictly < 2x.
        let m = model();
        let full = m.transformer_f_seconds(2);
        let half = m.transformer_f_seconds_tp(2, 2);
        assert!(half < full, "TP must still be faster");
        assert!(half > full / 2.0, "but sub-linearly so");
        // Deeper sharding keeps losing efficiency: 4-way is less than
        // twice as fast as 2-way.
        let quarter = m.transformer_f_seconds_tp(2, 4);
        assert!(quarter < half);
        assert!(quarter > half / 2.0);
    }

    #[test]
    fn tp_comm_grows_with_group_width() {
        let m = model();
        let two = m.tp_comm_seconds_per_layer(2);
        let four = m.tp_comm_seconds_per_layer(4);
        assert!(two > 0.0);
        assert!(four > two);
        assert!(m.psa_exposed_fraction() > 0.0 && m.psa_exposed_fraction() < 1.0);
    }
}
