//! Closed-form per-device memory estimation (§5.2 arithmetic), without
//! running the simulator.
//!
//! For 1F1B-family schedules the analytic peak is:
//!
//! ```text
//! peak(d) = params(d) · bytes_per_param
//!         + in_flight(d) · act_bytes_per_layer · layers(d)
//!         + transients(d)
//! ```
//!
//! with `in_flight(d) = min(m, p − d + barriers)` — the §5.2 lifespan
//! argument. The simulator measures the same quantity from the executed
//! schedule; `vp-sim`'s tests cross-check the two.

use crate::config::ModelConfig;
use crate::cost::{CostModel, Hardware};
use crate::partition::{StageLayout, VocabPartition, VocabPlacement};

/// Per-device memory estimate, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Parameter + optimizer-state bytes.
    pub params: f64,
    /// Peak activation bytes (in-flight microbatches × per-layer cost).
    pub activations: f64,
    /// Transient buffers (full-vocabulary logits, shard softmax, …).
    pub transients: f64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.params + self.activations + self.transients
    }

    /// Total in GB.
    pub fn total_gb(&self) -> f64 {
        self.total() / 1e9
    }
}

/// Vocabulary-parallel barrier count for the estimator (0 = not
/// vocabulary-parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Vocabulary layers on the first/last stage, folded into F/B.
    EndToEnd,
    /// Vocabulary Parallelism with the given §5.2 barrier count (3 naive,
    /// 2 Algorithm 1, 1 Algorithm 2).
    VocabParallel {
        /// Communication barriers between the last F and B.
        barriers: usize,
    },
    /// Interlaced (TP-style) vocabulary: ≈1.5× the 1F1B in-flight count
    /// (Appendix B.1).
    Interlaced,
}

/// How tensor-parallel shards synchronize activations within a layer,
/// which determines how much of the activation footprint TP divides.
///
/// With classic Megatron all-reduces the residual stream (attention and
/// MLP inputs/outputs, 10 of the 34 per-layer activation bytes in the
/// Korthikanti et al. accounting) is fully replicated on every tensor
/// rank, so only the remaining 24 bytes shard: the per-layer scale is
/// `(10 + 24/tp) / 34`. The PSA (reduce-scatter + all-gather) variant
/// keeps even the residual stream sequence-sharded between the two
/// collectives, dividing everything: scale `1/tp`. Both are exactly `1`
/// at `tp = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpSyncStyle {
    /// Classic Megatron `f`/`g` all-reduce pairs.
    AllReduce,
    /// Reduce-scatter + all-gather with sequence-sharded residuals.
    Psa,
}

impl TpSyncStyle {
    /// Fraction of the per-layer activation bytes resident on one tensor
    /// rank.
    pub fn activation_scale(self, tp: usize) -> f64 {
        assert!(tp > 0, "tensor-parallel width must be positive");
        match self {
            TpSyncStyle::AllReduce => (10.0 + 24.0 / tp as f64) / 34.0,
            TpSyncStyle::Psa => 1.0 / tp as f64,
        }
    }
}

/// Estimates per-device peak memory for a 1F1B-family schedule over
/// `layout`.
pub fn estimate_1f1b(
    config: &ModelConfig,
    hardware: &Hardware,
    layout: &StageLayout,
    placement: PlacementKind,
) -> Vec<MemoryEstimate> {
    let model = CostModel::new(config.clone(), hardware.clone());
    let p = layout.devices();
    let m = config.num_microbatches;
    let part = VocabPartition::new(config.vocab, p);
    let tokens = (config.microbatch * config.seq_len) as f64;
    (0..p)
        .map(|d| {
            let spec = layout.stage(d);
            let params = model.param_state_bytes(layout.stage_params(config, d));
            let in_flight = match placement {
                PlacementKind::EndToEnd => (p - d).min(m),
                PlacementKind::VocabParallel { barriers } => (p - d + barriers).min(m),
                PlacementKind::Interlaced => (((1.5 * (p - d) as f64).ceil() as usize) + 1).min(m),
            };
            let activations =
                in_flight as f64 * spec.transformer_layers as f64 * model.act_bytes_per_layer();
            let mut transients = 0.0;
            if spec.output == Some(VocabPlacement::Full) {
                // Full-vocabulary logits + softmax (fp32) during F/B.
                transients += 4.0 * tokens * config.vocab as f64;
            }
            if spec.output == Some(VocabPlacement::Shard) {
                transients += model.vocab_transient_bytes(part.shard_width());
            }
            MemoryEstimate {
                params,
                activations,
                transients,
            }
        })
        .collect()
}

/// Estimates per-device peak memory on a 2D `pp × tp` grid.
///
/// Returns one estimate per *pipeline* stage; every tensor rank in a TP
/// row is symmetric (same shard sizes, same in-flight count), so the row
/// shares one estimate. The TP axis divides the transformer matmul
/// parameters (`12h²` per layer — layer norms and biases are replicated
/// but excluded from the repo's parameter accounting, matching
/// [`crate::config::ModelConfig::transformer_layer_params`]) and scales
/// activations by [`TpSyncStyle::activation_scale`]. Vocabulary shards
/// live on the *pipeline* axis (the paper's scheme) and are replicated
/// across the TP row, as are their transients.
///
/// At `tp = 1` this is exactly [`estimate_1f1b`], bitwise.
pub fn estimate_1f1b_grid(
    config: &ModelConfig,
    hardware: &Hardware,
    layout: &StageLayout,
    placement: PlacementKind,
    tp: usize,
    style: TpSyncStyle,
) -> Vec<MemoryEstimate> {
    assert!(tp > 0, "tensor-parallel width must be positive");
    let model = CostModel::new(config.clone(), hardware.clone());
    let act_scale = style.activation_scale(tp);
    estimate_1f1b(config, hardware, layout, placement)
        .into_iter()
        .enumerate()
        .map(|(d, base)| {
            let spec = layout.stage(d);
            if tp == 1 {
                return base;
            }
            let transformer_params =
                spec.transformer_layers as f64 * config.transformer_layer_params() as f64;
            let vocab_params = layout.stage_params(config, d) as f64 - transformer_params;
            let params =
                model.param_state_bytes((transformer_params / tp as f64 + vocab_params) as u64);
            MemoryEstimate {
                params,
                activations: base.activations * act_scale,
                transients: base.transients,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    fn setup(vocab_k: usize) -> (ModelConfig, Hardware) {
        (
            ModelPreset::Gpt4B.config().with_vocab(vocab_k * 1024),
            Hardware::default(),
        )
    }

    #[test]
    fn baseline_peak_is_first_or_last_stage() {
        let (cfg, hw) = setup(256);
        let layout = StageLayout::baseline(&cfg, 8);
        let est = estimate_1f1b(&cfg, &hw, &layout, PlacementKind::EndToEnd);
        let max_dev = (0..8)
            .max_by(|&a, &b| est[a].total().total_cmp(&est[b].total()))
            .unwrap();
        assert!(max_dev == 0 || max_dev == 7, "peak at {max_dev}");
        // At 256k, the last stage's vocabulary parameters dominate.
        assert!(est[7].params > est[3].params * 1.5);
    }

    #[test]
    fn vocab_parallel_estimate_is_balanced() {
        let (cfg, hw) = setup(256);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        let est = estimate_1f1b(
            &cfg,
            &hw,
            &layout,
            PlacementKind::VocabParallel { barriers: 1 },
        );
        let params: Vec<f64> = est.iter().map(|e| e.params).collect();
        let spread = params.iter().cloned().fold(0.0f64, f64::max)
            - params.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e6, "param spread {spread}");
        // Activations still tilt toward device 0 (1F1B lifespans).
        assert!(est[0].activations > est[7].activations);
    }

    #[test]
    fn barrier_count_orders_activation_estimates() {
        let (cfg, hw) = setup(128);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        let one = estimate_1f1b(
            &cfg,
            &hw,
            &layout,
            PlacementKind::VocabParallel { barriers: 1 },
        );
        let two = estimate_1f1b(
            &cfg,
            &hw,
            &layout,
            PlacementKind::VocabParallel { barriers: 2 },
        );
        let three = estimate_1f1b(
            &cfg,
            &hw,
            &layout,
            PlacementKind::VocabParallel { barriers: 3 },
        );
        assert!(one[0].activations < two[0].activations);
        assert!(two[0].activations < three[0].activations);
    }

    #[test]
    fn interlaced_estimate_exceeds_vocab_parallel() {
        let (cfg, hw) = setup(128);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        let inter = estimate_1f1b(&cfg, &hw, &layout, PlacementKind::Interlaced);
        let vocab = estimate_1f1b(
            &cfg,
            &hw,
            &layout,
            PlacementKind::VocabParallel { barriers: 2 },
        );
        assert!(inter[0].activations > vocab[0].activations);
    }

    #[test]
    fn grid_estimate_at_tp1_is_bitwise_the_1d_estimate() {
        let (cfg, hw) = setup(128);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        let placement = PlacementKind::VocabParallel { barriers: 1 };
        let base = estimate_1f1b(&cfg, &hw, &layout, placement);
        for style in [TpSyncStyle::AllReduce, TpSyncStyle::Psa] {
            let grid = estimate_1f1b_grid(&cfg, &hw, &layout, placement, 1, style);
            for (a, b) in base.iter().zip(&grid) {
                assert_eq!(a.params.to_bits(), b.params.to_bits());
                assert_eq!(a.activations.to_bits(), b.activations.to_bits());
                assert_eq!(a.transients.to_bits(), b.transients.to_bits());
            }
        }
    }

    #[test]
    fn tp_divides_matmul_params_but_not_vocab_shards() {
        let (cfg, hw) = setup(128);
        let layout = StageLayout::vocab_parallel(&cfg, 8);
        let placement = PlacementKind::VocabParallel { barriers: 1 };
        let tp1 = estimate_1f1b_grid(&cfg, &hw, &layout, placement, 1, TpSyncStyle::AllReduce);
        let tp4 = estimate_1f1b_grid(&cfg, &hw, &layout, placement, 4, TpSyncStyle::AllReduce);
        let vocab_bytes =
            CostModel::new(cfg.clone(), hw).param_state_bytes(cfg.vocab_layer_params() / 8 + 1);
        for (a, b) in tp1.iter().zip(&tp4) {
            // Strictly smaller, but never below the replicated vocab shard.
            assert!(b.params < a.params);
            assert!(b.params > vocab_bytes * 0.5);
            // Transients (vocab logits buffers) are replicated across TP.
            assert_eq!(a.transients.to_bits(), b.transients.to_bits());
        }
    }

    #[test]
    fn activation_scale_orders_styles_and_widths() {
        for tp in [1usize, 2, 4, 8] {
            let ar = TpSyncStyle::AllReduce.activation_scale(tp);
            let psa = TpSyncStyle::Psa.activation_scale(tp);
            if tp == 1 {
                assert_eq!(ar, 1.0);
                assert_eq!(psa, 1.0);
            } else {
                // PSA shards the residual stream too, so it is strictly
                // leaner; all-reduce keeps the replicated 10/34 floor.
                assert!(psa < ar);
                assert!(ar > 10.0 / 34.0);
            }
        }
        assert!(
            TpSyncStyle::AllReduce.activation_scale(4) < TpSyncStyle::AllReduce.activation_scale(2)
        );
    }

    #[test]
    fn microbatch_count_caps_in_flight() {
        let (mut cfg, hw) = setup(32);
        cfg.num_microbatches = 2;
        let layout = StageLayout::baseline(&cfg, 8);
        let est = estimate_1f1b(&cfg, &hw, &layout, PlacementKind::EndToEnd);
        // With only 2 microbatches no device holds more than 2.
        let per_layer = CostModel::new(cfg, hw).act_bytes_per_layer();
        assert!(est[0].activations <= 2.0 * 4.0 * per_layer + 1.0);
    }
}
