//! A real (numeric) transformer block used by the pipeline runtime.
//!
//! Pre-norm GPT block: `x + Attn(LN1(x))` followed by `x + MLP(LN2(x))`
//! with a GELU MLP of expansion `ffn_mult`. Forward returns an explicit
//! activation cache — the unit of activation memory the paper's pipeline
//! schedules hold per in-flight microbatch.

use vp_tensor::nn::{
    AttentionCache, Gelu, GeluCache, KvCache, LayerNorm, LayerNormCache, Linear, LinearCache,
    MultiHeadAttention,
};
use vp_tensor::optim::Param;
use vp_tensor::rng::Rng;
use vp_tensor::{Result, Tensor};

/// One pre-norm transformer block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
}

/// Activations cached by [`TransformerBlock::forward`].
#[derive(Debug, Clone)]
pub struct BlockCache {
    ln1: LayerNormCache,
    attn: AttentionCache,
    ln2: LayerNormCache,
    /// Input to the MLP branch (after the first residual), needed by LN2's
    /// backward entry point.
    fc1: LinearCache,
    gelu: GeluCache,
    fc2: LinearCache,
}

impl TransformerBlock {
    /// Creates a block with `hidden` width, `heads` attention heads and an
    /// MLP of `ffn_mult · hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(rng: &mut impl Rng, hidden: usize, heads: usize, ffn_mult: usize) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(hidden),
            attn: MultiHeadAttention::new(rng, hidden, heads),
            ln2: LayerNorm::new(hidden),
            fc1: Linear::new(rng, hidden, ffn_mult * hidden, true),
            fc2: Linear::new(rng, ffn_mult * hidden, hidden, true),
        }
    }

    /// Hidden width of the block.
    pub fn hidden(&self) -> usize {
        self.ln1.dim()
    }

    /// The first (pre-attention) layer norm.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The attention layer.
    pub fn attn(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// The second (pre-MLP) layer norm.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// The MLP up-projection.
    pub fn fc1(&self) -> &Linear {
        &self.fc1
    }

    /// The MLP down-projection.
    pub fn fc2(&self) -> &Linear {
        &self.fc2
    }

    /// Forward pass over one sequence `x: [s, h]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, BlockCache)> {
        let (n1, ln1_cache) = self.ln1.forward(x)?;
        let (attn_out, attn_cache) = self.attn.forward(&n1)?;
        let mid = x.add(&attn_out)?;
        let (n2, ln2_cache) = self.ln2.forward(&mid)?;
        let (h1, fc1_cache) = self.fc1.forward(&n2)?;
        let gelu = Gelu::new();
        let (h2, gelu_cache) = gelu.forward(&h1);
        let (mlp_out, fc2_cache) = self.fc2.forward(&h2)?;
        let y = mid.add(&mlp_out)?;
        Ok((
            y,
            BlockCache {
                ln1: ln1_cache,
                attn: attn_cache,
                ln2: ln2_cache,
                fc1: fc1_cache,
                gelu: gelu_cache,
                fc2: fc2_cache,
            },
        ))
    }

    /// Incremental (decode) forward over `x: [n, h]` — the next `n` tokens
    /// of a sequence whose earlier positions live in `kv`.
    ///
    /// Every sub-layer except attention is row-independent, so the only
    /// state a decode step needs from the past is the attention K/V cache.
    /// Produces output rows bitwise equal to the corresponding rows of
    /// [`Self::forward`] run over the full context (see
    /// [`MultiHeadAttention::forward_decode`] for the argument), without
    /// materialising training activation caches.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers.
    pub fn forward_decode(&self, x: &Tensor, kv: &mut KvCache) -> Result<Tensor> {
        let (n1, _) = self.ln1.forward(x)?;
        let attn_out = self.attn.forward_decode(&n1, kv)?;
        let mid = x.add(&attn_out)?;
        let (n2, _) = self.ln2.forward(&mid)?;
        let (h1, _) = self.fc1.forward(&n2)?;
        let (h2, _) = Gelu::new().forward(&h1);
        let (mlp_out, _) = self.fc2.forward(&h2)?;
        mid.add(&mlp_out)
    }

    /// Backward pass: accumulates all parameter gradients, returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers (indicating the
    /// cache and `dy` do not belong to the same forward call).
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Result<Tensor> {
        // Second residual: y = mid + MLP(LN2(mid)).
        let d_h2 = self.fc2.backward(&cache.fc2, dy)?;
        let d_h1 = Gelu::new().backward(&cache.gelu, &d_h2)?;
        let d_n2 = self.fc1.backward(&cache.fc1, &d_h1)?;
        let mut d_mid = self.ln2.backward(&cache.ln2, &d_n2)?;
        d_mid.add_assign(dy)?;
        // First residual: mid = x + Attn(LN1(x)).
        let d_n1 = self.attn.backward(&cache.attn, &d_mid)?;
        let mut dx = self.ln1.backward(&cache.ln1, &d_n1)?;
        dx.add_assign(&d_mid)?;
        Ok(dx)
    }

    /// Mutable references to all trainable parameters in deterministic
    /// order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.ln1.params_mut();
        params.extend(self.attn.params_mut());
        params.extend(self.ln2.params_mut());
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_tensor::gradcheck::check_scalar_fn;
    use vp_tensor::init::{normal, seeded_rng};

    #[test]
    fn forward_preserves_shape() {
        let mut rng = seeded_rng(41);
        let block = TransformerBlock::new(&mut rng, 8, 2, 4);
        let x = normal(&mut rng, 5, 8, 1.0);
        let (y, _) = block.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 8));
    }

    #[test]
    fn input_gradient_checks() {
        let mut rng = seeded_rng(42);
        let block = TransformerBlock::new(&mut rng, 8, 2, 2);
        let x = normal(&mut rng, 3, 8, 0.5);
        let w = normal(&mut rng, 3, 8, 1.0);
        let (_, cache) = block.forward(&x).unwrap();
        let mut block2 = block.clone();
        let dx = block2.backward(&cache, &w).unwrap();
        let report = check_scalar_fn(&x, &dx, 1e-2, |t| {
            block.forward(t).unwrap().0.mul(&w).unwrap().sum()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn block_is_causal() {
        let mut rng = seeded_rng(43);
        let block = TransformerBlock::new(&mut rng, 8, 2, 4);
        let x1 = normal(&mut rng, 4, 8, 1.0);
        let mut x2 = x1.clone();
        for v in x2.row_mut(3) {
            *v += 0.5;
        }
        let (y1, _) = block.forward(&x1).unwrap();
        let (y2, _) = block.forward(&x2).unwrap();
        for r in 0..3 {
            for c in 0..8 {
                assert!((y1.at(r, c) - y2.at(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn decode_matches_full_forward_bitwise() {
        let mut rng = seeded_rng(46);
        let block = TransformerBlock::new(&mut rng, 8, 2, 4);
        let x = normal(&mut rng, 7, 8, 0.8);
        let (full, _) = block.forward(&x).unwrap();
        let mut kv = KvCache::new(8);
        for i in 0..7 {
            let xi = x.slice_rows(i, i + 1).unwrap();
            let yi = block.forward_decode(&xi, &mut kv).unwrap();
            for (a, b) in full.row(i).iter().zip(yi.row(0)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged");
            }
        }
    }

    #[test]
    fn params_cover_all_layers() {
        let mut rng = seeded_rng(44);
        let mut block = TransformerBlock::new(&mut rng, 8, 2, 4);
        // ln1 (2) + attn (4) + ln2 (2) + fc1 (2) + fc2 (2) = 12 tensors.
        assert_eq!(block.params_mut().len(), 12);
        let total: usize = block.params_mut().iter().map(|p| p.len()).sum();
        // 12h² + 4h (ln) + 4h²+h·4h... just check the dominant 12h² term.
        assert!(total >= 12 * 8 * 8);
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let mut rng = seeded_rng(45);
        let mut block = TransformerBlock::new(&mut rng, 8, 2, 2);
        let x = normal(&mut rng, 3, 8, 0.5);
        let (y, cache) = block.forward(&x).unwrap();
        block
            .backward(&cache, &Tensor::ones(y.rows(), y.cols()))
            .unwrap();
        for (i, p) in block.params_mut().into_iter().enumerate() {
            assert!(p.grad().max_abs() > 0.0, "param {i} has zero gradient");
        }
    }
}
