//! The partitioned input (embedding) layer (Appendix C).
//!
//! Each device holds a `V/p` slice of the embedding table. The forward
//! pass gathers rows for the token ids it owns (zeros elsewhere) and an
//! all-reduce assembles the full `[N, h]` embedding; the backward pass is a
//! purely local scatter-add of the incoming gradient into the owned rows.
//! Both communications overlap with transformer compute in the schedules.

use vp_collectives::{Collective, ReduceOp};
use vp_model::partition::VocabPartition;
use vp_tensor::optim::Param;
use vp_tensor::{Result, Tensor, TensorError};

/// One device's shard of the input embedding table.
#[derive(Debug, Clone)]
pub struct InputShard {
    weight: Param,
    partition: VocabPartition,
    rank: usize,
}

impl InputShard {
    /// Creates a shard from this rank's slice of the full `[V, h]` table.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the slice's row count
    /// does not equal the partition's real width for `rank`.
    pub fn new(weight: Tensor, partition: VocabPartition, rank: usize) -> Result<Self> {
        if weight.rows() != partition.real_width(rank) {
            return Err(TensorError::InvalidArgument(format!(
                "input shard has {} rows, partition expects {}",
                weight.rows(),
                partition.real_width(rank)
            )));
        }
        Ok(InputShard {
            weight: Param::new(weight),
            partition,
            rank,
        })
    }

    /// Slices this rank's shard out of the full `[V, h]` table.
    ///
    /// # Errors
    ///
    /// Propagates slicing errors if `full` has fewer than `V` rows.
    pub fn from_full(full: &Tensor, partition: VocabPartition, rank: usize) -> Result<Self> {
        let (start, end) = partition.shard_range(rank);
        let end = end.min(partition.vocab());
        let start = start.min(end);
        let weight = full.slice_rows(start, end)?;
        InputShard::new(weight, partition, rank)
    }

    /// The shard's weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (optimizer step).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Hidden width of the embedding.
    pub fn hidden(&self) -> usize {
        self.weight.value().cols()
    }

    /// Local (pre-all-reduce) forward: a `[N, h]` tensor with this shard's
    /// rows filled and zeros elsewhere. The paper notes this full-size
    /// output construction is why the input layer scales poorly (Table 3).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] for an out-of-vocabulary id.
    pub fn forward_local(&self, ids: &[usize]) -> Result<Tensor> {
        let (start, _) = self.partition.shard_range(self.rank);
        let width = self.weight.value().rows();
        let mut out = Tensor::zeros(ids.len(), self.hidden());
        for (row, &id) in ids.iter().enumerate() {
            if id >= self.partition.vocab() {
                return Err(TensorError::OutOfBounds {
                    op: "input_forward",
                    index: id,
                    bound: self.partition.vocab(),
                });
            }
            if id >= start && id < start + width {
                out.row_mut(row)
                    .copy_from_slice(self.weight.value().row(id - start));
            }
        }
        Ok(out)
    }

    /// Full forward: local gather followed by the all-reduce that
    /// assembles the complete embedding on every device.
    ///
    /// # Errors
    ///
    /// Propagates gather and collective errors.
    pub fn forward(&self, comm: &Collective, ids: &[usize]) -> Result<Tensor> {
        let mut out = self.forward_local(ids)?;
        comm.all_reduce(out.data_mut(), ReduceOp::Sum)
            .map_err(|e| TensorError::InvalidArgument(format!("collective failed: {e}")))?;
        Ok(out)
    }

    /// Backward: scatter-adds `dy` rows belonging to this shard into the
    /// weight gradient. Purely local — the gradient broadcast to all
    /// devices happens upstream in the schedule.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `dy` does not have one row per id.
    pub fn backward(&mut self, ids: &[usize], dy: &Tensor) -> Result<()> {
        if dy.shape() != (ids.len(), self.hidden()) {
            return Err(TensorError::ShapeMismatch {
                op: "input_backward",
                lhs: dy.shape(),
                rhs: (ids.len(), self.hidden()),
            });
        }
        let (start, _) = self.partition.shard_range(self.rank);
        let width = self.weight.value().rows();
        let mut dw = Tensor::zeros(width, self.hidden());
        for (row, &id) in ids.iter().enumerate() {
            if id >= start && id < start + width {
                for (o, &g) in dw.row_mut(id - start).iter_mut().zip(dy.row(row)) {
                    *o += g;
                }
            }
        }
        self.weight.accumulate(&dw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_collectives::CollectiveGroup;
    use vp_tensor::init::{normal, seeded_rng};
    use vp_tensor::nn::Embedding;

    #[test]
    fn sharded_forward_matches_reference() {
        let (vocab, h, p) = (20, 6, 4);
        let mut rng = seeded_rng(42);
        let full = normal(&mut rng, vocab, h, 1.0);
        let ids = vec![0, 5, 19, 5, 7];
        let reference = Embedding::from_weight(full.clone())
            .forward(&ids)
            .unwrap()
            .0;
        let part = VocabPartition::new(vocab, p);
        let comms = CollectiveGroup::new(p);
        let outputs: Vec<Tensor> = std::thread::scope(|scope| {
            comms
                .into_iter()
                .map(|comm| {
                    let full = &full;
                    let ids = &ids;
                    scope.spawn(move || {
                        let shard = InputShard::from_full(full, part, comm.rank()).unwrap();
                        shard.forward(&comm, ids).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        for out in outputs {
            assert!(out.max_abs_diff(&reference).unwrap() < 1e-6);
        }
    }

    #[test]
    fn sharded_backward_matches_reference() {
        let (vocab, h, p) = (10, 4, 3);
        let mut rng = seeded_rng(7);
        let full = normal(&mut rng, vocab, h, 1.0);
        let ids = vec![1, 9, 1, 4];
        let dy = normal(&mut rng, 4, h, 1.0);
        let mut reference = Embedding::from_weight(full.clone());
        let (_, cache) = reference.forward(&ids).unwrap();
        reference.backward(&cache, &dy).unwrap();
        let ref_grad = reference.params_mut()[0].grad().clone();
        let part = VocabPartition::new(vocab, p);
        for rank in 0..p {
            let mut shard = InputShard::from_full(&full, part, rank).unwrap();
            shard.backward(&ids, &dy).unwrap();
            let (start, _) = part.shard_range(rank);
            let rows = shard.weight().grad().rows();
            let end = (start + rows).min(vocab);
            let expected = ref_grad.slice_rows(start.min(end), end).unwrap();
            assert!(shard.weight().grad().max_abs_diff(&expected).unwrap() < 1e-6);
        }
    }

    #[test]
    fn out_of_vocab_id_is_rejected() {
        let part = VocabPartition::new(8, 2);
        let shard = InputShard::new(Tensor::zeros(4, 3), part, 0).unwrap();
        assert!(shard.forward_local(&[8]).is_err());
        assert!(shard.forward_local(&[7]).is_ok());
    }

    #[test]
    fn backward_validates_shape() {
        let part = VocabPartition::new(8, 2);
        let mut shard = InputShard::new(Tensor::zeros(4, 3), part, 0).unwrap();
        assert!(shard.backward(&[1, 2], &Tensor::zeros(3, 3)).is_err());
    }
}
