//! The partitioned output layer (§4): logits, safe softmax and
//! cross-entropy over one `V/p` vocabulary shard, grouped into pipeline
//! passes with 3 (naive), 2 (Algorithm 1) or 1 (Algorithm 2) communication
//! barriers.
//!
//! Notation follows the paper: `X ∈ [N, h]` is the last transformer
//! layer's output for one microbatch (`N = b·s` tokens), `W ∈ [V, h]` the
//! output embedding, `Y = XWᵀ` the logits, `G` the one-hot labels, and
//!
//! ```text
//! softmax(Y)_ij = softmax'(Y)_ij · sum'_i · e^{m'_i − m_i} / sum_i   (Eq. 5)
//! ∇X = (softmax(Y) − G)·W        ∇W = (softmax(Y) − G)ᵀ·X
//! ```
//!
//! Gradients use *mean* reduction over the `N` tokens, matching the
//! reference [`vp_tensor::nn::softmax_cross_entropy`].

use vp_collectives::{Collective, ReduceOp};
use vp_model::cost::VocabAlgo;
use vp_model::partition::VocabPartition;
use vp_tensor::ops::{local_softmax, softmax_correction, SoftmaxStats};
use vp_tensor::optim::Param;
use vp_tensor::{Result, Tensor, TensorError};

/// One device's shard of the output vocabulary layer.
///
/// The shard stores only its *real* (unpadded) vocabulary rows; the paper's
/// `2p` padding affects memory alignment, not numerics, and is accounted
/// for by the cost model.
///
/// # Example
///
/// A single shard (`p = 1`) degenerates to the full output layer:
///
/// ```
/// use vp_collectives::CollectiveGroup;
/// use vp_core::{OutputShard, VocabAlgo};
/// use vp_model::partition::VocabPartition;
/// use vp_tensor::init::{normal, seeded_rng};
///
/// # fn main() -> vp_tensor::Result<()> {
/// let mut rng = seeded_rng(0);
/// let weight = normal(&mut rng, 16, 4, 0.5); // [V, h]
/// let x = normal(&mut rng, 3, 4, 1.0);       // [b·s, h]
/// let part = VocabPartition::new(16, 1);
/// let mut shard = OutputShard::from_full(&weight, part, 0)?;
/// let comm = CollectiveGroup::new(1).pop().expect("one rank");
/// let (loss, dx) = shard.forward_backward(VocabAlgo::Alg2, &comm, &x, &[1, 5, 9])?;
/// assert!(loss.is_finite() && dx.shape() == (3, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OutputShard {
    weight: Param,
    partition: VocabPartition,
    rank: usize,
}

/// State carried between the `S` pass, the communication barrier(s) and
/// the `T` pass for one microbatch.
///
/// After the barrier, `softmax` holds the *globally rescaled* softmax of
/// the shard's columns and `correction` the per-row factor of Eq. 5.
#[derive(Debug, Clone)]
pub struct SState {
    /// Locally-normalized softmax (`softmax'` before the barrier, the
    /// global softmax after rescaling).
    softmax: Tensor,
    /// Local statistics `(m', sum')`.
    stats: SoftmaxStats,
    /// Labels of the microbatch (global token ids).
    labels: Vec<usize>,
    /// This shard's label logits (`Y_{i,g_i}` for owned rows, 0 elsewhere),
    /// captured exactly in the `S` pass for the loss computation.
    label_logit: Vec<f32>,
    /// Algorithm 2 only: `A = softmax'(Y)·W`, pre-computed before the
    /// barrier.
    a: Option<Tensor>,
    /// Algorithm 2 only: `B = G·W / N` (a row gather of `W`).
    b: Option<Tensor>,
    /// Whether the barrier has run (softmax is globally rescaled).
    rescaled: bool,
    /// Global vocabulary index of this shard's first column.
    shard_start: usize,
}

impl SState {
    /// Approximate bytes held by this state (the transient vocabulary
    /// buffer the schedules budget between `S` and `T`).
    pub fn bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        let mut total = self.softmax.len() * f + 2 * self.stats.max.len() * f;
        if let Some(a) = &self.a {
            total += a.len() * f;
        }
        if let Some(b) = &self.b {
            total += b.len() * f;
        }
        total
    }
}

impl SState {
    /// `(row, local column)` pairs of labels owned by this shard.
    fn local_labels(&self) -> Vec<(usize, usize)> {
        let width = self.softmax.cols();
        let start = self.shard_start;
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_row, &label)| label >= start && label < start + width)
            .map(|(row, &label)| (row, label - start))
            .collect()
    }

    /// All-reduces the softmax statistics (`m`, then `sum`) and computes
    /// the global mean loss. Returns `(global_max, global_sum, loss)`.
    fn reduce_stats(&self, comm: &Collective) -> Result<(Vec<f32>, Vec<f32>, f64)> {
        let n = self.labels.len();
        let mut gmax = self.stats.max.clone();
        comm.all_reduce(&mut gmax, ReduceOp::Max)
            .map_err(|e| comm_err(&e))?;
        let mut gsum: Vec<f32> = (0..n)
            .map(|i| {
                if self.stats.sum[i] == 0.0 {
                    0.0
                } else {
                    self.stats.sum[i] * (self.stats.max[i] - gmax[i]).exp()
                }
            })
            .collect();
        comm.all_reduce(&mut gsum, ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        // Loss: mean_i (m_i + ln(sum_i) − y_{i,label}), with the label
        // logit captured exactly during the S pass.
        let mut label_logit = self.label_logit.clone();
        comm.all_reduce(&mut label_logit, ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        let loss = (0..n)
            .map(|i| (gmax[i] + gsum[i].ln() - label_logit[i]) as f64)
            .sum::<f64>()
            / n as f64;
        Ok((gmax, gsum, loss))
    }

    fn rescale(&mut self, gmax: &[f32], gsum: &[f32]) -> Result<()> {
        vp_tensor::ops::rescale_softmax(&mut self.softmax, &self.stats, gmax, gsum)?;
        self.rescaled = true;
        Ok(())
    }

    /// Algorithm 1's `C1` barrier, self-contained (runs anywhere a
    /// [`Collective`] handle for the barrier group is available — e.g. on a
    /// per-device communication stream, as the paper overlaps it).
    ///
    /// # Errors
    ///
    /// Returns an error if a collective fails.
    pub fn barrier_alg1(&mut self, comm: &Collective) -> Result<BarrierOutput> {
        let (gmax, gsum, loss) = self.reduce_stats(comm)?;
        self.rescale(&gmax, &gsum)?;
        Ok(BarrierOutput { loss, dx: None })
    }

    /// Completes the barrier phase *without* communication, treating the
    /// local statistics as global — correct only on a single shard
    /// (`p = 1`) and used by single-thread kernel benchmarking, where the
    /// collective cost is excluded as the paper excludes overlapped
    /// communication (§6.5).
    pub fn barrier_local(&mut self) {
        let gmax = self.stats.max.clone();
        let gsum = self.stats.sum.clone();
        self.rescale(&gmax, &gsum)
            .expect("matching lengths by construction");
    }

    /// Algorithm 2's single `C1` barrier, self-contained (see
    /// [`Self::barrier_alg1`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the state was not
    /// produced by an Algorithm-2 `S` pass, or a collective error.
    pub fn barrier_alg2(&mut self, comm: &Collective) -> Result<BarrierOutput> {
        if self.a.is_none() || self.b.is_none() {
            return Err(TensorError::InvalidArgument(
                "barrier_alg2 requires an Algorithm-2 S state".into(),
            ));
        }
        let (gmax, gsum, loss) = self.reduce_stats(comm)?;
        let (a, b) = (
            self.a.as_ref().expect("checked"),
            self.b.as_ref().expect("checked"),
        );
        let n = self.labels.len() as f32;
        let mut dx = Tensor::zeros(a.rows(), a.cols());
        for row in 0..a.rows() {
            // ∇X_row = corr·A_row/N − B_row (Eq. 6, with B pre-divided by N).
            let corr = softmax_correction(
                self.stats.max[row],
                self.stats.sum[row],
                gmax[row],
                gsum[row],
            ) / n;
            for ((o, &av), &bv) in dx.row_mut(row).iter_mut().zip(a.row(row)).zip(b.row(row)) {
                *o = corr * av - bv;
            }
        }
        comm.all_reduce(dx.data_mut(), ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        self.rescale(&gmax, &gsum)?;
        Ok(BarrierOutput { loss, dx: Some(dx) })
    }
}

/// Result of completing the barrier phase: the global mean loss and, for
/// Algorithm 2 and the naive path, the fully-reduced input gradient.
#[derive(Debug, Clone)]
pub struct BarrierOutput {
    /// Mean cross-entropy over the microbatch (identical on every rank).
    pub loss: f64,
    /// `∇X`, present when the algorithm produces it in this phase
    /// (Algorithm 2's single barrier; naive's final reduce).
    pub dx: Option<Tensor>,
}

impl OutputShard {
    /// Creates a shard from this rank's slice of the full `[V, h]` weight.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the slice's row count
    /// does not equal the partition's real width for `rank`.
    pub fn new(weight: Tensor, partition: VocabPartition, rank: usize) -> Result<Self> {
        if weight.rows() != partition.real_width(rank) {
            return Err(TensorError::InvalidArgument(format!(
                "shard weight has {} rows, partition expects {}",
                weight.rows(),
                partition.real_width(rank)
            )));
        }
        Ok(OutputShard {
            weight: Param::new(weight),
            partition,
            rank,
        })
    }

    /// Slices this rank's shard out of the full `[V, h]` weight matrix.
    ///
    /// # Errors
    ///
    /// Propagates slicing errors if `full` has fewer than `V` rows.
    pub fn from_full(full: &Tensor, partition: VocabPartition, rank: usize) -> Result<Self> {
        let (start, end) = partition.shard_range(rank);
        let end = end.min(partition.vocab());
        let start = start.min(end);
        let weight = full.slice_rows(start, end)?;
        OutputShard::new(weight, partition, rank)
    }

    /// This rank's shard of the partition.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The vocabulary partition.
    pub fn partition(&self) -> VocabPartition {
        self.partition
    }

    /// The shard's weight parameter (rows = this shard's vocabulary ids).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (for the optimizer step).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Global start index of this shard's vocabulary range.
    fn shard_start(&self) -> usize {
        self.partition.shard_range(self.rank).0
    }

    /// One-hot rows of `G` restricted to this shard, as
    /// `(row, local column)` pairs.
    fn local_labels(&self, labels: &[usize]) -> Vec<(usize, usize)> {
        let start = self.shard_start();
        let width = self.weight.value().rows();
        labels
            .iter()
            .enumerate()
            .filter(|&(_row, &label)| label >= start && label < start + width)
            .map(|(row, &label)| (row, label - start))
            .collect()
    }

    // ---------------------------------------------------------------------
    // S pass
    // ---------------------------------------------------------------------

    /// The `S` pass: logits + local softmax (and, for Algorithm 2, the
    /// pre-barrier matmuls `A = softmax'(Y)·W` and `B = G·W/N`).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the weight's hidden
    /// width, or [`TensorError::OutOfBounds`] for an out-of-vocabulary
    /// label.
    pub fn s_pass(&self, algo: VocabAlgo, x: &Tensor, labels: &[usize]) -> Result<SState> {
        if labels.len() != x.rows() {
            return Err(TensorError::InvalidArgument(format!(
                "{} labels for {} rows",
                labels.len(),
                x.rows()
            )));
        }
        for &l in labels {
            if l >= self.partition.vocab() {
                return Err(TensorError::OutOfBounds {
                    op: "output_s_pass",
                    index: l,
                    bound: self.partition.vocab(),
                });
            }
        }
        let y = x.matmul_nt(self.weight.value())?;
        let mut label_logit = vec![0.0f32; labels.len()];
        for (row, local) in self.local_labels(labels) {
            label_logit[row] = y.at(row, local);
        }
        let (softmax, stats) = local_softmax(&y);
        let (a, b) = match algo {
            VocabAlgo::Naive | VocabAlgo::Alg1 => (None, None),
            VocabAlgo::Alg2 => {
                let a = softmax.matmul(self.weight.value())?;
                let n = labels.len() as f32;
                let mut bg = Tensor::zeros(x.rows(), x.cols());
                for (row, local) in self.local_labels(labels) {
                    let w_row = self.weight.value().row(local).to_vec();
                    for (dst, src) in bg.row_mut(row).iter_mut().zip(w_row) {
                        *dst = src / n;
                    }
                }
                (Some(a), Some(bg))
            }
        };
        Ok(SState {
            softmax,
            stats,
            labels: labels.to_vec(),
            label_logit,
            a,
            b,
            rescaled: false,
            shard_start: self.shard_start(),
        })
    }

    // ---------------------------------------------------------------------
    // Barriers (delegating to [`SState`], which owns all the data the
    // barrier needs so it can run on a communication-stream thread)
    // ---------------------------------------------------------------------

    /// The single barrier of Algorithm 2 (`C1`): all-reduces the softmax
    /// statistics, assembles `∇X` from the pre-computed matmuls
    /// (`∇X = corr·A − B`, Eq. 6) and all-reduces it; rescales the stored
    /// softmax for the deferred `T` pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the state was not
    /// produced by an Algorithm-2 `S` pass or a collective fails.
    pub fn barrier_alg2(&self, comm: &Collective, state: &mut SState) -> Result<BarrierOutput> {
        state.barrier_alg2(comm)
    }

    /// Algorithm 1's first barrier (`C1`): all-reduces the statistics and
    /// rescales the stored softmax to the global softmax.
    ///
    /// # Errors
    ///
    /// Returns an error if a collective fails.
    pub fn barrier_alg1(&self, comm: &Collective, state: &mut SState) -> Result<BarrierOutput> {
        state.barrier_alg1(comm)
    }

    /// Algorithm 1's second barrier (`C2`): all-reduces the partial input
    /// gradients produced by [`Self::t_pass_alg1`].
    ///
    /// # Errors
    ///
    /// Returns an error if the collective fails.
    pub fn barrier_c2(&self, comm: &Collective, mut dx_partial: Tensor) -> Result<Tensor> {
        comm.all_reduce(dx_partial.data_mut(), ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        Ok(dx_partial)
    }

    // ---------------------------------------------------------------------
    // T pass
    // ---------------------------------------------------------------------

    /// Builds `(softmax − G)/N` for this shard from a rescaled state.
    fn dy(&self, state: &SState) -> Result<Tensor> {
        if !state.rescaled {
            return Err(TensorError::InvalidArgument(
                "T pass requires the barrier to have rescaled the softmax".into(),
            ));
        }
        let n = state.labels.len() as f32;
        let mut dy = state.softmax.scale(1.0 / n);
        for (row, local) in state.local_labels() {
            *dy.at_mut(row, local) -= 1.0 / n;
        }
        Ok(dy)
    }

    /// Algorithm 1's `T` pass: computes the partial input gradient
    /// `∇X′ = (softmax − G)/N · W` (to be reduced by `C2`) and accumulates
    /// the weight gradient `∇W = ((softmax − G)/N)ᵀ · X`.
    ///
    /// # Errors
    ///
    /// Returns an error if the barrier has not rescaled the state or `x`
    /// has the wrong shape.
    pub fn t_pass_alg1(&mut self, state: &SState, x: &Tensor) -> Result<Tensor> {
        let dy = self.dy(state)?;
        let dx_partial = dy.matmul(self.weight.value())?;
        let dw = dy.matmul_tn(x)?;
        self.weight.accumulate(&dw)?;
        Ok(dx_partial)
    }

    /// Algorithm 2's deferred `T` pass: only the weight gradient — no
    /// other pass depends on it, so schedules may run it arbitrarily late
    /// (the zero-bubble affinity noted in §4.4).
    ///
    /// # Errors
    ///
    /// Returns an error if the barrier has not rescaled the state or `x`
    /// has the wrong shape.
    pub fn t_pass_alg2(&mut self, state: &SState, x: &Tensor) -> Result<()> {
        let dy = self.dy(state)?;
        let dw = dy.matmul_tn(x)?;
        self.weight.accumulate(&dw)
    }

    // ---------------------------------------------------------------------
    // Naive path and convenience wrapper
    // ---------------------------------------------------------------------

    /// The naive §4.1 grouping with its three inline barriers: all-reduce
    /// of the maxima (`F1`), all-reduce of the exponential sums (`F2`),
    /// then the backward matmuls and the `∇X` reduce (`B`).
    ///
    /// # Errors
    ///
    /// Returns shape/label errors as in [`Self::s_pass`].
    pub fn forward_backward_naive(
        &mut self,
        comm: &Collective,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f64, Tensor)> {
        // F1: logits and global max.
        let y = x.matmul_nt(self.weight.value())?;
        let mut gmax = vp_tensor::ops::row_max(&y);
        comm.all_reduce(&mut gmax, ReduceOp::Max)
            .map_err(|e| comm_err(&e))?;
        // F2: shifted exponentials and global sum.
        let mut softmax = Tensor::zeros(y.rows(), y.cols());
        let mut local_sum = vec![0.0f32; y.rows()];
        for r in 0..y.rows() {
            let mut acc = 0.0f32;
            for (o, &v) in softmax.row_mut(r).iter_mut().zip(y.row(r)) {
                let e = (v - gmax[r]).exp();
                *o = e;
                acc += e;
            }
            local_sum[r] = acc;
        }
        let mut gsum = local_sum.clone();
        comm.all_reduce(&mut gsum, ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        #[allow(clippy::needless_range_loop)] // r indexes softmax rows and gsum together
        for r in 0..y.rows() {
            if gsum[r] > 0.0 {
                let inv = 1.0 / gsum[r];
                for v in softmax.row_mut(r) {
                    *v *= inv;
                }
            }
        }
        // Loss.
        let n = labels.len();
        let mut label_logit = vec![0.0f32; n];
        for (row, local) in self.local_labels(labels) {
            label_logit[row] = y.at(row, local);
        }
        comm.all_reduce(&mut label_logit, ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        let loss = (0..n)
            .map(|i| (gmax[i] + gsum[i].ln() - label_logit[i]) as f64)
            .sum::<f64>()
            / n as f64;
        // B: gradients and the final reduce.
        let mut dy = softmax.scale(1.0 / n as f32);
        for (row, local) in self.local_labels(labels) {
            *dy.at_mut(row, local) -= 1.0 / n as f32;
        }
        let mut dx = dy.matmul(self.weight.value())?;
        let dw = dy.matmul_tn(x)?;
        self.weight.accumulate(&dw)?;
        comm.all_reduce(dx.data_mut(), ReduceOp::Sum)
            .map_err(|e| comm_err(&e))?;
        Ok((loss, dx))
    }

    /// Runs the full forward + backward for one microbatch with the chosen
    /// algorithm, returning the global loss and `∇X`. This is the
    /// pass-fused convenience path used by tests and the verification
    /// harness; the pipeline runtime drives the pass-level API instead.
    ///
    /// # Errors
    ///
    /// Propagates any shape, label or collective error.
    pub fn forward_backward(
        &mut self,
        algo: VocabAlgo,
        comm: &Collective,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f64, Tensor)> {
        match algo {
            VocabAlgo::Naive => self.forward_backward_naive(comm, x, labels),
            VocabAlgo::Alg1 => {
                let mut state = self.s_pass(VocabAlgo::Alg1, x, labels)?;
                let out = self.barrier_alg1(comm, &mut state)?;
                let dx_partial = self.t_pass_alg1(&state, x)?;
                let dx = self.barrier_c2(comm, dx_partial)?;
                Ok((out.loss, dx))
            }
            VocabAlgo::Alg2 => {
                let mut state = self.s_pass(VocabAlgo::Alg2, x, labels)?;
                let out = self.barrier_alg2(comm, &mut state)?;
                self.t_pass_alg2(&state, x)?;
                Ok((out.loss, out.dx.expect("alg2 barrier produces dx")))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forward-only (decode) output layer: sharded logits → local top-k/softmax
// stats → single-barrier merge → sampling
// ---------------------------------------------------------------------------

/// Decode-time `S`-pass state: per row, the shard's local softmax
/// statistics `(m', sum')` and its top-`k` logit candidates. This is
/// Algorithm 2's pre-barrier phase with the gradient matmuls deleted —
/// the single `C1` barrier then merges statistics *and* candidates in one
/// rendezvous ([`OutputShard::barrier_decode`]).
#[derive(Debug, Clone)]
pub struct DecodeSState {
    /// Per-row local max `m'`.
    max: Vec<f32>,
    /// Per-row local `sum' = Σ exp(y − m')`.
    sum: Vec<f32>,
    /// Per-row top-`k` `(logit, global token id)`, best first. Padded with
    /// `(−∞, 0)` when the shard has fewer than `k` columns.
    topk: Vec<Vec<(f32, usize)>>,
    /// Candidates per row (identical on every rank).
    k: usize,
}

impl DecodeSState {
    /// Rows (tokens being sampled) in this state.
    pub fn rows(&self) -> usize {
        self.max.len()
    }

    /// Candidates per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Serializes the state into the flat all-gather payload: per row
    /// `[m', sum', (logit, id)×k]` — `2 + 2k` floats. This is the wire
    /// format [`merge_decode`] consumes; an overlapping engine builds the
    /// payload on the device thread, submits the all-gather to its
    /// communication stream, and merges when the handle resolves.
    pub fn payload(&self) -> Vec<f32> {
        let n = self.max.len();
        let stride = 2 + 2 * self.k;
        let mut payload = Vec::with_capacity(n * stride);
        for r in 0..n {
            payload.push(self.max[r]);
            payload.push(self.sum[r]);
            for &(logit, id) in &self.topk[r] {
                payload.push(logit);
                // Token ids are exact in f32 for any realistic vocabulary
                // (< 2^24); debug-checked below.
                debug_assert!(id < (1 << 24), "token id {id} not exact in f32");
                payload.push(id as f32);
            }
        }
        payload
    }
}

/// One sampled token and its log-probability under the *global* softmax
/// (identical on every rank after the barrier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenChoice {
    /// The sampled (greedy) token id.
    pub token: usize,
    /// `log softmax(Y)[token]` — a serving metric; unlike the token choice
    /// itself it is not bitwise-pinned across shard counts (the global
    /// `Σ sum'·e^{m'−m}` reduction order follows the rank order).
    pub logprob: f32,
}

/// `true` when candidate `(logit_a, id_a)` beats `(logit_b, id_b)` under
/// greedy decoding: strictly larger logit, ties to the lowest token id —
/// exactly [`vp_tensor::ops::argmax_rows`]'s first-maximum rule, so the
/// merged pick is bitwise the single-device argmax.
fn beats(a: (f32, usize), b: (f32, usize)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl OutputShard {
    /// The forward-only `S` pass: sharded logits `y = X·Wᵀ` plus local
    /// softmax statistics and the shard's top-`k` candidates. No labels,
    /// no gradients — this is the decode half of §4.2's `S` pass.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the weight's hidden
    /// width, or [`TensorError::InvalidArgument`] if `k == 0`.
    pub fn s_pass_decode(&self, x: &Tensor, k: usize) -> Result<DecodeSState> {
        if k == 0 {
            return Err(TensorError::InvalidArgument(
                "decode needs at least one candidate per shard".into(),
            ));
        }
        let y = x.matmul_nt(self.weight.value())?;
        let start = self.shard_start();
        let n = y.rows();
        let mut max = Vec::with_capacity(n);
        let mut sum = Vec::with_capacity(n);
        let mut topk = Vec::with_capacity(n);
        for r in 0..n {
            let row = y.row(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            // The stats feed only the logprob metric, so plain `exp` is
            // fine here; the token choice below never touches them.
            let s: f32 = row.iter().map(|&v| (v - m).exp()).sum();
            let mut cands: Vec<(f32, usize)> = row
                .iter()
                .enumerate()
                .map(|(c, &v)| (v, start + c))
                .collect();
            cands.sort_by(|a, b| {
                if beats(*a, *b) {
                    std::cmp::Ordering::Less
                } else if beats(*b, *a) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            });
            cands.truncate(k);
            cands.resize(k, (f32::NEG_INFINITY, 0));
            max.push(m);
            sum.push(s);
            topk.push(cands);
        }
        Ok(DecodeSState { max, sum, topk, k })
    }

    /// Algorithm 2's **single** decode barrier: one `all_gather` carries
    /// every rank's `(m', sum')` statistics *and* top-`k` candidates;
    /// every rank then merges them identically — global max/sum by the
    /// standard safe-softmax combination, the greedy token as the best
    /// candidate under [`vp_tensor::ops::argmax_rows`]'s tie rule — so no
    /// second communication round is needed to agree on the sample.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the gathered payloads
    /// disagree in shape (ranks ran different step plans).
    pub fn barrier_decode(
        &self,
        comm: &Collective,
        state: &DecodeSState,
    ) -> Result<Vec<TokenChoice>> {
        let gathered = comm.all_gather(&state.payload());
        merge_decode(&gathered, state.rows(), state.k)
    }
}

/// The post-gather half of the decode barrier: merges every rank's
/// [`DecodeSState::payload`] identically — global max/sum by the standard
/// safe-softmax combination, the greedy token as the best candidate under
/// [`vp_tensor::ops::argmax_rows`]'s tie rule. Pure function of the
/// gathered shards, so the overlapping engine can run it in a `T` pass
/// long after the `S` pass that submitted the all-gather.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the gathered payloads
/// disagree in shape (ranks ran different step plans) or carry no
/// candidates.
pub fn merge_decode(gathered: &[Vec<f32>], rows: usize, k: usize) -> Result<Vec<TokenChoice>> {
    let stride = 2 + 2 * k;
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut gmax = f32::NEG_INFINITY;
        for shard in gathered {
            if shard.len() != rows * stride {
                return Err(TensorError::InvalidArgument(format!(
                    "decode barrier payload mismatch: {} vs {} floats",
                    shard.len(),
                    rows * stride
                )));
            }
            gmax = gmax.max(shard[r * stride]);
        }
        let mut gsum = 0.0f32;
        let mut best: Option<(f32, usize)> = None;
        for shard in gathered {
            let base = r * stride;
            let (m, s) = (shard[base], shard[base + 1]);
            gsum += s * (m - gmax).exp();
            for c in 0..k {
                let logit = shard[base + 2 + 2 * c];
                if logit == f32::NEG_INFINITY {
                    continue;
                }
                let id = shard[base + 2 + 2 * c + 1] as usize;
                if best.is_none() || beats((logit, id), best.expect("just checked")) {
                    best = Some((logit, id));
                }
            }
        }
        let (logit, token) = best.ok_or_else(|| {
            TensorError::InvalidArgument("decode barrier saw no candidates".into())
        })?;
        out.push(TokenChoice {
            token,
            logprob: logit - gmax - gsum.ln(),
        });
    }
    Ok(out)
}

fn comm_err(e: &vp_collectives::CollectiveError) -> TensorError {
    TensorError::InvalidArgument(format!("collective failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_collectives::CollectiveGroup;
    use vp_tensor::init::{normal, seeded_rng};
    use vp_tensor::nn::softmax_cross_entropy;

    /// Runs `algo` on `p` sharded threads and returns (loss, dx, dw-parts).
    fn run_sharded(
        algo: VocabAlgo,
        p: usize,
        full_w: &Tensor,
        x: &Tensor,
        labels: &[usize],
    ) -> (f64, Tensor, Vec<Tensor>) {
        let part = VocabPartition::new(full_w.rows(), p);
        let comms = CollectiveGroup::new(p);
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for comm in comms {
                let rank = comm.rank();
                joins.push(scope.spawn(move || {
                    let mut shard = OutputShard::from_full(full_w, part, rank).unwrap();
                    let (loss, dx) = shard.forward_backward(algo, &comm, x, labels).unwrap();
                    (rank, loss, dx, shard.weight().grad().clone())
                }));
            }
            let mut results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
            results.sort_by_key(|r| r.0);
            let loss = results[0].1;
            let dx = results[0].2.clone();
            // All ranks agree on loss and dx.
            for r in &results {
                assert!((r.1 - loss).abs() < 1e-5);
                assert!(r.2.max_abs_diff(&dx).unwrap() < 1e-5);
            }
            let dws = results.into_iter().map(|r| r.3).collect();
            (loss, dx, dws)
        })
    }

    fn reference(full_w: &Tensor, x: &Tensor, labels: &[usize]) -> (f64, Tensor, Tensor) {
        let logits = x.matmul_nt(full_w).unwrap();
        let (out, grad) = softmax_cross_entropy(&logits, labels).unwrap();
        let dx = grad.dlogits.matmul(full_w).unwrap();
        let dw = grad.dlogits.matmul_tn(x).unwrap();
        (out.loss, dx, dw)
    }

    fn check_algo(algo: VocabAlgo, p: usize, vocab: usize, seed: u64) {
        let (n, h) = (6, 8);
        let mut rng = seeded_rng(seed);
        let full_w = normal(&mut rng, vocab, h, 0.5);
        let x = normal(&mut rng, n, h, 1.0);
        let labels: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % vocab).collect();
        let (ref_loss, ref_dx, ref_dw) = reference(&full_w, &x, &labels);
        let (loss, dx, dws) = run_sharded(algo, p, &full_w, &x, &labels);
        assert!(
            (loss - ref_loss).abs() < 1e-4,
            "{algo:?}: loss {loss} vs {ref_loss}"
        );
        assert!(
            dx.max_abs_diff(&ref_dx).unwrap() < 1e-4,
            "{algo:?}: dx mismatch"
        );
        // Stitch shard weight gradients back together.
        let part = VocabPartition::new(vocab, p);
        for (rank, dw) in dws.iter().enumerate() {
            let (start, _) = part.shard_range(rank);
            let end = (start + dw.rows()).min(vocab);
            let expected = ref_dw.slice_rows(start.min(end), end).unwrap();
            assert!(
                dw.max_abs_diff(&expected).unwrap() < 1e-4,
                "{algo:?}: dW mismatch on rank {rank}"
            );
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_algo(VocabAlgo::Naive, 4, 32, 1);
    }

    #[test]
    fn alg1_matches_reference() {
        check_algo(VocabAlgo::Alg1, 4, 32, 2);
    }

    #[test]
    fn alg2_matches_reference() {
        check_algo(VocabAlgo::Alg2, 4, 32, 3);
    }

    #[test]
    fn uneven_shards_and_padding() {
        // 33 entries over 4 devices: padded to 40, shard width 10, the last
        // shard holds only 3 real rows.
        for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
            check_algo(algo, 4, 33, 7);
        }
    }

    #[test]
    fn single_device_degenerates_to_reference() {
        for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
            check_algo(algo, 1, 16, 11);
        }
    }

    #[test]
    fn many_devices_small_vocab() {
        // More devices than a comfortable split: some shards are tiny.
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            check_algo(algo, 8, 19, 13);
        }
    }

    #[test]
    fn s_pass_validates_labels() {
        let part = VocabPartition::new(16, 2);
        let w = Tensor::zeros(8, 4);
        let shard = OutputShard::new(w, part, 0).unwrap();
        let x = Tensor::zeros(2, 4);
        assert!(shard.s_pass(VocabAlgo::Alg1, &x, &[0, 16]).is_err());
        assert!(shard.s_pass(VocabAlgo::Alg1, &x, &[0]).is_err());
    }

    #[test]
    fn t_pass_requires_barrier() {
        let part = VocabPartition::new(8, 1);
        let mut rng = seeded_rng(5);
        let w = normal(&mut rng, 8, 4, 1.0);
        let mut shard = OutputShard::new(w, part, 0).unwrap();
        let x = normal(&mut rng, 2, 4, 1.0);
        let state = shard.s_pass(VocabAlgo::Alg1, &x, &[0, 1]).unwrap();
        assert!(shard.t_pass_alg1(&state, &x).is_err());
    }

    #[test]
    fn wrong_shard_shape_is_rejected() {
        let part = VocabPartition::new(16, 2);
        assert!(OutputShard::new(Tensor::zeros(7, 4), part, 0).is_err());
    }

    /// Runs the decode S pass + single barrier on `p` sharded threads and
    /// returns every rank's merged choices (they must agree exactly).
    fn run_decode_sharded(p: usize, full_w: &Tensor, x: &Tensor, k: usize) -> Vec<TokenChoice> {
        let part = VocabPartition::new(full_w.rows(), p);
        let comms = CollectiveGroup::new(p);
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for comm in comms {
                let rank = comm.rank();
                joins.push(scope.spawn(move || {
                    let shard = OutputShard::from_full(full_w, part, rank).unwrap();
                    let state = shard.s_pass_decode(x, k).unwrap();
                    (rank, shard.barrier_decode(&comm, &state).unwrap())
                }));
            }
            let mut results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
            results.sort_by_key(|r| r.0);
            for r in &results[1..] {
                assert_eq!(r.1, results[0].1, "ranks disagree on the merge");
            }
            results.swap_remove(0).1
        })
    }

    #[test]
    fn decode_merge_equals_single_device_argmax() {
        use vp_tensor::ops::{argmax_rows, softmax_rows};
        let (n, h, vocab) = (5, 8, 23);
        let mut rng = seeded_rng(91);
        let full_w = normal(&mut rng, vocab, h, 0.7);
        let x = normal(&mut rng, n, h, 1.0);
        let logits = x.matmul_nt(&full_w).unwrap();
        let expected = argmax_rows(&logits);
        let probs = softmax_rows(&logits);
        for p in [1, 2, 3, 4] {
            for k in [1, 4] {
                let choices = run_decode_sharded(p, &full_w, &x, k);
                let tokens: Vec<usize> = choices.iter().map(|c| c.token).collect();
                assert_eq!(tokens, expected, "p={p} k={k}");
                for (r, c) in choices.iter().enumerate() {
                    let want = probs.at(r, c.token).ln();
                    assert!(
                        (c.logprob - want).abs() < 1e-4,
                        "p={p} row {r}: logprob {} vs {want}",
                        c.logprob
                    );
                }
            }
        }
    }

    #[test]
    fn decode_tie_breaks_to_the_lowest_token_id_like_argmax() {
        // Identical weight rows ⇒ identical logits for several tokens;
        // argmax_rows keeps the first, so must the merge — including when
        // the tied ids live on different shards.
        let h = 4;
        let mut rng = seeded_rng(92);
        let row = normal(&mut rng, 1, h, 1.0);
        let mut w = Tensor::zeros(6, h);
        for r in 0..6 {
            w.row_mut(r).copy_from_slice(row.row(0));
        }
        let x = normal(&mut rng, 3, h, 1.0);
        let expected = vp_tensor::ops::argmax_rows(&x.matmul_nt(&w).unwrap());
        assert!(expected.iter().all(|&t| t == 0));
        for p in [1, 2, 3] {
            let tokens: Vec<usize> = run_decode_sharded(p, &w, &x, 2)
                .iter()
                .map(|c| c.token)
                .collect();
            assert_eq!(tokens, expected, "p={p}");
        }
    }

    #[test]
    fn decode_rejects_zero_candidates() {
        let part = VocabPartition::new(8, 1);
        let mut rng = seeded_rng(93);
        let w = normal(&mut rng, 8, 4, 1.0);
        let shard = OutputShard::new(w, part, 0).unwrap();
        let x = normal(&mut rng, 2, 4, 1.0);
        assert!(shard.s_pass_decode(&x, 0).is_err());
    }
}
