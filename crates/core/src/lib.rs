#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vocabulary Parallelism: the paper's core contribution.
//!
//! The output (unembedding + softmax + cross-entropy) and input (embedding)
//! layers are partitioned across all pipeline devices along the vocabulary
//! dimension, and their computation is grouped into pipeline passes
//! separated by communication barriers (§4):
//!
//! * [`output::OutputShard`] — one device's `V/p` slice of the output
//!   layer, with three interchangeable execution strategies:
//!   the **naive** 3-barrier grouping (§4.1), **Algorithm 1** (forward
//!   optimization via online-softmax rescaling, 2 barriers, §4.3) and
//!   **Algorithm 2** (backward optimization, a single barrier, §4.4).
//! * [`input::InputShard`] — one device's slice of the embedding table
//!   (Appendix C): forward is a partial gather + all-reduce, backward a
//!   local scatter-add.
//! * [`tied::TiedShard`] — tied input/output embeddings (§6.1): with both
//!   shards on the same device, one weight tensor serves both layers and
//!   accumulates both gradients with no extra synchronization.
//! * [`verify`] — harnesses that run all shards on threads against a
//!   single-device reference and compare losses and gradients, the
//!   numerical backbone of the correctness evaluation (Appendix E).
//!
//! All three strategies produce **identical** losses and gradients (up to
//! `f32` rounding) to the unpartitioned reference; the property tests in
//! this crate enforce that for arbitrary shapes and shard counts.

pub mod input;
pub mod output;
pub mod tied;
pub mod verify;

pub use input::InputShard;
pub use output::{merge_decode, DecodeSState, OutputShard, SState, TokenChoice};
pub use tied::TiedShard;
pub use vp_model::cost::VocabAlgo;
