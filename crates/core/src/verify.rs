//! Verification harnesses: run every shard on its own thread against the
//! single-device reference (the numerical core of Appendix E).

use crate::input::InputShard;
use crate::output::OutputShard;
use vp_collectives::CollectiveGroup;
use vp_model::cost::VocabAlgo;
use vp_model::partition::VocabPartition;
use vp_tensor::nn::softmax_cross_entropy;
use vp_tensor::{Result, Tensor};

/// Outcome of comparing a sharded output layer against the reference.
#[derive(Debug, Clone)]
pub struct OutputComparison {
    /// Reference mean loss.
    pub ref_loss: f64,
    /// Sharded mean loss (identical on all ranks).
    pub sharded_loss: f64,
    /// Largest |Δ| between the reference and sharded `∇X`.
    pub dx_max_err: f32,
    /// Largest |Δ| between the reference and stitched sharded `∇W`.
    pub dw_max_err: f32,
}

impl OutputComparison {
    /// Whether every deviation is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        (self.ref_loss - self.sharded_loss).abs() < tol as f64
            && self.dx_max_err < tol
            && self.dw_max_err < tol
    }
}

/// Runs the partitioned output layer with `algo` on `devices` threads and
/// compares loss, `∇X` and `∇W` against the unpartitioned reference.
///
/// # Errors
///
/// Propagates any tensor/collective error from either side.
///
/// # Panics
///
/// Panics if a shard thread panics.
pub fn compare_output_layer(
    algo: VocabAlgo,
    devices: usize,
    full_weight: &Tensor,
    x: &Tensor,
    labels: &[usize],
) -> Result<OutputComparison> {
    // Reference.
    let logits = x.matmul_nt(full_weight)?;
    let (ref_out, ref_grad) = softmax_cross_entropy(&logits, labels)?;
    let ref_dx = ref_grad.dlogits.matmul(full_weight)?;
    let ref_dw = ref_grad.dlogits.matmul_tn(x)?;

    // Sharded.
    let part = VocabPartition::new(full_weight.rows(), devices);
    let comms = CollectiveGroup::new(devices);
    let results: Vec<(usize, f64, Tensor, Tensor)> = std::thread::scope(|scope| {
        comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || -> Result<(usize, f64, Tensor, Tensor)> {
                    let rank = comm.rank();
                    let mut shard = OutputShard::from_full(full_weight, part, rank)?;
                    let (loss, dx) = shard.forward_backward(algo, &comm, x, labels)?;
                    Ok((rank, loss, dx, shard.weight().grad().clone()))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect::<Result<Vec<_>>>()
    })?;

    let sharded_loss = results[0].1;
    let mut dx_max_err = 0.0f32;
    let mut dw_max_err = 0.0f32;
    for (rank, _, dx, dw) in &results {
        dx_max_err = dx_max_err.max(dx.max_abs_diff(&ref_dx)?);
        let (start, _) = part.shard_range(*rank);
        let end = (start + dw.rows()).min(full_weight.rows());
        let expected = ref_dw.slice_rows(start.min(end), end)?;
        dw_max_err = dw_max_err.max(dw.max_abs_diff(&expected)?);
    }
    Ok(OutputComparison {
        ref_loss: ref_out.loss,
        sharded_loss,
        dx_max_err,
        dw_max_err,
    })
}

/// Runs the partitioned input layer on `devices` threads and returns the
/// largest deviation from the reference embedding output.
///
/// # Errors
///
/// Propagates any tensor/collective error.
///
/// # Panics
///
/// Panics if a shard thread panics.
pub fn compare_input_layer(devices: usize, full_weight: &Tensor, ids: &[usize]) -> Result<f32> {
    let reference = vp_tensor::nn::Embedding::from_weight(full_weight.clone())
        .forward(ids)?
        .0;
    let part = VocabPartition::new(full_weight.rows(), devices);
    let comms = CollectiveGroup::new(devices);
    let outputs: Vec<Tensor> = std::thread::scope(|scope| {
        comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || -> Result<Tensor> {
                    let shard = InputShard::from_full(full_weight, part, comm.rank())?;
                    shard.forward(&comm, ids)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect::<Result<Vec<_>>>()
    })?;
    let mut max_err = 0.0f32;
    for out in outputs {
        max_err = max_err.max(out.max_abs_diff(&reference)?);
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_tensor::init::{normal, seeded_rng};

    #[test]
    fn all_algorithms_verify_on_a_moderate_case() {
        let mut rng = seeded_rng(99);
        let full_w = normal(&mut rng, 50, 12, 0.5);
        let x = normal(&mut rng, 9, 12, 1.0);
        let labels: Vec<usize> = (0..9).map(|i| (i * 11) % 50).collect();
        for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let cmp = compare_output_layer(algo, 5, &full_w, &x, &labels).unwrap();
            assert!(cmp.passes(1e-4), "{algo:?}: {cmp:?}");
        }
    }

    #[test]
    fn input_layer_verifies() {
        let mut rng = seeded_rng(100);
        let full_w = normal(&mut rng, 30, 8, 1.0);
        let err = compare_input_layer(6, &full_w, &[0, 29, 3, 3, 15]).unwrap();
        assert!(err < 1e-6);
    }
}
