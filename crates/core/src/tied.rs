//! Tied input/output embeddings under Vocabulary Parallelism (§6.1).
//!
//! The paper notes that partitioning both vocabulary layers across all
//! devices makes weight tying *easier* than in naive pipelines: the input
//! and output shards now live on the same device, so they can share one
//! weight tensor and accumulate both gradients locally — no extra
//! all-reduce to synchronize tied weights across the first and last stage.
//! [`TiedShard`] realizes exactly that: one parameter, used as the
//! embedding table by the input-layer passes and as the unembedding matrix
//! by the output-layer `S`/`T` passes.

use crate::output::{OutputShard, SState};
use vp_collectives::{Collective, ReduceOp};
use vp_model::cost::VocabAlgo;
use vp_model::partition::VocabPartition;
use vp_tensor::optim::Param;
use vp_tensor::{Result, Tensor, TensorError};

/// One device's shard of a *tied* vocabulary weight: the same `[V/p, h]`
/// tensor serves the input embedding and the output unembedding; both
/// backward passes accumulate into its single gradient.
#[derive(Debug, Clone)]
pub struct TiedShard {
    // The output shard owns the parameter; input-layer ops reuse it.
    output: OutputShard,
}

impl TiedShard {
    /// Slices this rank's shard out of the full `[V, h]` tied weight.
    ///
    /// # Errors
    ///
    /// Propagates slicing errors if `full` has fewer than `V` rows.
    pub fn from_full(full: &Tensor, partition: VocabPartition, rank: usize) -> Result<Self> {
        Ok(TiedShard {
            output: OutputShard::from_full(full, partition, rank)?,
        })
    }

    /// The shared weight parameter.
    pub fn weight(&self) -> &Param {
        self.output.weight()
    }

    /// Mutable access to the shared weight (optimizer step).
    pub fn weight_mut(&mut self) -> &mut Param {
        self.output.weight_mut()
    }

    /// The vocabulary partition.
    pub fn partition(&self) -> VocabPartition {
        self.output.partition()
    }

    fn shard_range(&self) -> (usize, usize) {
        let (start, _) = self.partition().shard_range(self.output.rank());
        (start, start + self.weight().value().rows())
    }

    // ---- Input-layer side (Appendix C semantics on the shared weight) ----

    /// Local embedding gather: rows for ids owned by this shard, zeros
    /// elsewhere; all-reduce to assemble (see [`Self::input_forward`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] for an out-of-vocabulary id.
    pub fn input_forward_local(&self, ids: &[usize]) -> Result<Tensor> {
        let (start, end) = self.shard_range();
        let h = self.weight().value().cols();
        let mut out = Tensor::zeros(ids.len(), h);
        for (row, &id) in ids.iter().enumerate() {
            if id >= self.partition().vocab() {
                return Err(TensorError::OutOfBounds {
                    op: "tied_input_forward",
                    index: id,
                    bound: self.partition().vocab(),
                });
            }
            if id >= start && id < end {
                out.row_mut(row)
                    .copy_from_slice(self.weight().value().row(id - start));
            }
        }
        Ok(out)
    }

    /// Full input forward: local gather + all-reduce.
    ///
    /// # Errors
    ///
    /// Propagates gather and collective errors.
    pub fn input_forward(&self, comm: &Collective, ids: &[usize]) -> Result<Tensor> {
        let mut out = self.input_forward_local(ids)?;
        comm.all_reduce(out.data_mut(), ReduceOp::Sum)
            .map_err(|e| TensorError::InvalidArgument(format!("collective failed: {e}")))?;
        Ok(out)
    }

    /// Input backward: scatter-adds `dy` rows for owned ids into the
    /// *shared* gradient.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `dy` does not have one row per id.
    pub fn input_backward(&mut self, ids: &[usize], dy: &Tensor) -> Result<()> {
        let h = self.weight().value().cols();
        if dy.shape() != (ids.len(), h) {
            return Err(TensorError::ShapeMismatch {
                op: "tied_input_backward",
                lhs: dy.shape(),
                rhs: (ids.len(), h),
            });
        }
        let (start, end) = self.shard_range();
        let mut dw = Tensor::zeros(self.weight().value().rows(), h);
        for (row, &id) in ids.iter().enumerate() {
            if id >= start && id < end {
                for (o, &g) in dw.row_mut(id - start).iter_mut().zip(dy.row(row)) {
                    *o += g;
                }
            }
        }
        self.output.weight_mut().accumulate(&dw)
    }

    // ---- Output-layer side (delegates to the shared OutputShard) --------

    /// The output-layer `S` pass on the shared weight (see
    /// [`OutputShard::s_pass`]).
    ///
    /// # Errors
    ///
    /// As in [`OutputShard::s_pass`].
    pub fn s_pass(&self, algo: VocabAlgo, x: &Tensor, labels: &[usize]) -> Result<SState> {
        self.output.s_pass(algo, x, labels)
    }

    /// Algorithm 1's `T` pass (see [`OutputShard::t_pass_alg1`]); the
    /// weight gradient lands in the shared parameter.
    ///
    /// # Errors
    ///
    /// As in [`OutputShard::t_pass_alg1`].
    pub fn t_pass_alg1(&mut self, state: &SState, x: &Tensor) -> Result<Tensor> {
        self.output.t_pass_alg1(state, x)
    }

    /// Algorithm 2's deferred `T` pass (see [`OutputShard::t_pass_alg2`]).
    ///
    /// # Errors
    ///
    /// As in [`OutputShard::t_pass_alg2`].
    pub fn t_pass_alg2(&mut self, state: &SState, x: &Tensor) -> Result<()> {
        self.output.t_pass_alg2(state, x)
    }

    /// Fused forward+backward of the output side (testing convenience).
    ///
    /// # Errors
    ///
    /// As in [`OutputShard::forward_backward`].
    pub fn output_forward_backward(
        &mut self,
        algo: VocabAlgo,
        comm: &Collective,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f64, Tensor)> {
        self.output.forward_backward(algo, comm, x, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_collectives::CollectiveGroup;
    use vp_tensor::init::{normal, seeded_rng};
    use vp_tensor::nn::{softmax_cross_entropy, Embedding};

    /// Reference tied gradients: embedding scatter-grad + output ∇W on the
    /// same full weight.
    fn reference_tied_grad(
        full_w: &Tensor,
        ids: &[usize],
        x_out: &Tensor,
        labels: &[usize],
        d_emb: &Tensor,
    ) -> Tensor {
        // Input side.
        let mut emb = Embedding::from_weight(full_w.clone());
        let (_, cache) = emb.forward(ids).unwrap();
        emb.backward(&cache, d_emb).unwrap();
        let mut grad = emb.params_mut()[0].grad().clone();
        // Output side.
        let logits = x_out.matmul_nt(full_w).unwrap();
        let (_, g) = softmax_cross_entropy(&logits, labels).unwrap();
        let dw_out = g.dlogits.matmul_tn(x_out).unwrap();
        grad.add_assign(&dw_out).unwrap();
        grad
    }

    #[test]
    fn tied_shard_accumulates_both_gradients() {
        let (vocab, h, p, n) = (24usize, 6usize, 3usize, 5usize);
        let mut rng = seeded_rng(17);
        let full_w = normal(&mut rng, vocab, h, 0.5);
        let ids: Vec<usize> = (0..n).map(|i| (i * 7) % vocab).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 5 + 1) % vocab).collect();
        let x_out = normal(&mut rng, n, h, 1.0);
        let d_emb = normal(&mut rng, n, h, 1.0);
        let expected = reference_tied_grad(&full_w, &ids, &x_out, &labels, &d_emb);

        let part = VocabPartition::new(vocab, p);
        let comms = CollectiveGroup::new(p);
        let grads: Vec<(usize, Tensor)> = std::thread::scope(|scope| {
            comms
                .into_iter()
                .map(|comm| {
                    let (full_w, ids, labels, x_out, d_emb) =
                        (&full_w, &ids, &labels, &x_out, &d_emb);
                    scope.spawn(move || {
                        let rank = comm.rank();
                        let mut shard = TiedShard::from_full(full_w, part, rank).unwrap();
                        // Input forward + output fwd/bwd + input backward.
                        let _embedded = shard.input_forward(&comm, ids).unwrap();
                        let (_, _dx) = shard
                            .output_forward_backward(VocabAlgo::Alg2, &comm, x_out, labels)
                            .unwrap();
                        shard.input_backward(ids, d_emb).unwrap();
                        (rank, shard.weight().grad().clone())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        for (rank, grad) in grads {
            let (start, _) = part.shard_range(rank);
            let end = (start + grad.rows()).min(vocab);
            let exp = expected.slice_rows(start.min(end), end).unwrap();
            assert!(grad.max_abs_diff(&exp).unwrap() < 1e-4, "rank {rank}");
        }
    }

    #[test]
    fn tied_forward_matches_untied_embedding() {
        let mut rng = seeded_rng(18);
        let full_w = normal(&mut rng, 16, 4, 1.0);
        let ids = vec![0, 15, 7, 7];
        let part = VocabPartition::new(16, 2);
        let reference = Embedding::from_weight(full_w.clone())
            .forward(&ids)
            .unwrap()
            .0;
        let comms = CollectiveGroup::new(2);
        let outs: Vec<Tensor> = std::thread::scope(|scope| {
            comms
                .into_iter()
                .map(|comm| {
                    let (full_w, ids) = (&full_w, &ids);
                    scope.spawn(move || {
                        let shard = TiedShard::from_full(full_w, part, comm.rank()).unwrap();
                        shard.input_forward(&comm, ids).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        for o in outs {
            assert!(o.max_abs_diff(&reference).unwrap() < 1e-6);
        }
    }

    #[test]
    fn out_of_vocab_rejected() {
        let part = VocabPartition::new(8, 2);
        let shard = TiedShard::from_full(&Tensor::zeros(8, 3), part, 0).unwrap();
        assert!(shard.input_forward_local(&[8]).is_err());
    }
}
