//! Randomized equivalence tests (deterministic seed sweep): for arbitrary
//! shapes, shard counts and label placements, the naive grouping,
//! Algorithm 1 and Algorithm 2 all reproduce the unpartitioned softmax
//! cross-entropy — loss, `∇X` and `∇W` — up to `f32` tolerance. This is the
//! paper's central correctness claim (§4, Appendix E), checked across many
//! random cases rather than on one model.

use vp_core::verify::{compare_input_layer, compare_output_layer};
use vp_core::VocabAlgo;
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::rng::Rng;

/// A random (devices, vocab, hidden, tokens) case.
fn case(rng: &mut impl Rng) -> (usize, usize, usize, usize) {
    (
        rng.gen_range(1..7usize),
        rng.gen_range(8..65usize),
        rng.gen_range(2..13usize),
        rng.gen_range(1..11usize),
    )
}

#[test]
fn output_algorithms_match_reference() {
    for seed in 0..24u64 {
        let mut rng = seeded_rng(seed);
        let (p, vocab, hidden, tokens) = case(&mut rng);
        let full_w = normal(&mut rng, vocab, hidden, 0.7);
        let x = normal(&mut rng, tokens, hidden, 1.2);
        let labels: Vec<usize> = (0..tokens)
            .map(|i| (seed as usize + i * 13) % vocab)
            .collect();
        for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let cmp = compare_output_layer(algo, p, &full_w, &x, &labels).unwrap();
            assert!(cmp.passes(2e-4), "seed {seed} {algo:?}: {cmp:?}");
        }
    }
}

#[test]
fn algorithms_match_each_other_exactly_in_loss() {
    for seed in 0..24u64 {
        let mut rng = seeded_rng(seed.wrapping_add(77));
        let (p, vocab, hidden, tokens) = case(&mut rng);
        let full_w = normal(&mut rng, vocab, hidden, 0.7);
        let x = normal(&mut rng, tokens, hidden, 1.0);
        let labels: Vec<usize> = (0..tokens)
            .map(|i| (seed as usize + i * 7) % vocab)
            .collect();
        let losses: Vec<f64> = [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2]
            .into_iter()
            .map(|algo| {
                compare_output_layer(algo, p, &full_w, &x, &labels)
                    .unwrap()
                    .sharded_loss
            })
            .collect();
        assert!(
            (losses[0] - losses[1]).abs() < 1e-4,
            "seed {seed}: {losses:?}"
        );
        assert!(
            (losses[1] - losses[2]).abs() < 1e-4,
            "seed {seed}: {losses:?}"
        );
    }
}

#[test]
fn input_layer_matches_reference() {
    for seed in 0..24u64 {
        let mut rng = seeded_rng(seed.wrapping_add(1234));
        let (p, vocab, hidden, tokens) = case(&mut rng);
        let full_w = normal(&mut rng, vocab, hidden, 1.0);
        let ids: Vec<usize> = (0..tokens)
            .map(|i| (seed as usize * 3 + i * 5) % vocab)
            .collect();
        let err = compare_input_layer(p, &full_w, &ids).unwrap();
        assert!(err < 1e-5, "seed {seed}: err {err}");
    }
}

/// Extreme logits must not break the online-softmax rescaling.
#[test]
fn numerically_extreme_inputs_stay_finite() {
    for seed in 0..24u64 {
        let mut rng = seeded_rng(seed);
        let scale = rng.gen_range(1.0f32..60.0);
        let full_w = normal(&mut rng, 24, 6, scale);
        let x = normal(&mut rng, 4, 6, 1.0);
        let labels = vec![0, 7, 23, 12];
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let cmp = compare_output_layer(algo, 3, &full_w, &x, &labels).unwrap();
            assert!(cmp.sharded_loss.is_finite(), "seed {seed} {algo:?}");
            assert!(
                (cmp.ref_loss - cmp.sharded_loss).abs() < 1e-2 * (1.0 + cmp.ref_loss.abs()),
                "seed {seed} {algo:?}"
            );
        }
    }
}
