//! Property-based equivalence tests: for arbitrary shapes, shard counts
//! and label placements, the naive grouping, Algorithm 1 and Algorithm 2
//! all reproduce the unpartitioned softmax cross-entropy — loss, `∇X` and
//! `∇W` — up to `f32` tolerance. This is the paper's central correctness
//! claim (§4, Appendix E), checked exhaustively rather than on one model.

use proptest::prelude::*;
use vp_core::verify::{compare_input_layer, compare_output_layer};
use vp_core::VocabAlgo;
use vp_tensor::init::{normal, seeded_rng};

fn case() -> impl Strategy<Value = (usize, usize, usize, usize, u64)> {
    // (devices, vocab, hidden, tokens, seed)
    (1usize..=6, 8usize..=64, 2usize..=12, 1usize..=10, 0u64..10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn output_algorithms_match_reference((p, vocab, hidden, tokens, seed) in case()) {
        let mut rng = seeded_rng(seed);
        let full_w = normal(&mut rng, vocab, hidden, 0.7);
        let x = normal(&mut rng, tokens, hidden, 1.2);
        let labels: Vec<usize> = (0..tokens).map(|i| (seed as usize + i * 13) % vocab).collect();
        for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let cmp = compare_output_layer(algo, p, &full_w, &x, &labels).unwrap();
            prop_assert!(cmp.passes(2e-4), "{algo:?}: {cmp:?}");
        }
    }

    #[test]
    fn algorithms_match_each_other_exactly_in_loss(
        (p, vocab, hidden, tokens, seed) in case()
    ) {
        let mut rng = seeded_rng(seed.wrapping_add(77));
        let full_w = normal(&mut rng, vocab, hidden, 0.7);
        let x = normal(&mut rng, tokens, hidden, 1.0);
        let labels: Vec<usize> = (0..tokens).map(|i| (seed as usize + i * 7) % vocab).collect();
        let losses: Vec<f64> = [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2]
            .into_iter()
            .map(|algo| {
                compare_output_layer(algo, p, &full_w, &x, &labels).unwrap().sharded_loss
            })
            .collect();
        prop_assert!((losses[0] - losses[1]).abs() < 1e-4, "{losses:?}");
        prop_assert!((losses[1] - losses[2]).abs() < 1e-4, "{losses:?}");
    }

    #[test]
    fn input_layer_matches_reference(
        (p, vocab, hidden, tokens, seed) in case()
    ) {
        let mut rng = seeded_rng(seed.wrapping_add(1234));
        let full_w = normal(&mut rng, vocab, hidden, 1.0);
        let ids: Vec<usize> = (0..tokens).map(|i| (seed as usize * 3 + i * 5) % vocab).collect();
        let err = compare_input_layer(p, &full_w, &ids).unwrap();
        prop_assert!(err < 1e-5, "err {err}");
    }

    /// Extreme logits must not break the online-softmax rescaling.
    #[test]
    fn numerically_extreme_inputs_stay_finite(scale in 1.0f32..60.0, seed in 0u64..500) {
        let mut rng = seeded_rng(seed);
        let full_w = normal(&mut rng, 24, 6, scale);
        let x = normal(&mut rng, 4, 6, 1.0);
        let labels = vec![0, 7, 23, 12];
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let cmp = compare_output_layer(algo, 3, &full_w, &x, &labels).unwrap();
            prop_assert!(cmp.sharded_loss.is_finite());
            prop_assert!((cmp.ref_loss - cmp.sharded_loss).abs() < 1e-2 * (1.0 + cmp.ref_loss.abs()));
        }
    }
}
