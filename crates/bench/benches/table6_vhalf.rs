//! Timing bench for the Table 6 V-Half simulations (7B model, 16
//! devices, 256k vocabulary): baseline vs. Vocabulary Parallelism.
//! Plain harness: prints median wall-clock per simulated cell.

use std::hint::black_box;
use std::time::Instant;
use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_sim::{run_vhalf, VHalfMethod};

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.3} ms/iter (median of {} runs)",
        samples[samples.len() / 2] * 1e3,
        samples.len()
    );
}

fn main() {
    let config = ModelPreset::Gpt7B
        .config()
        .with_vocab(256 * 1024)
        .with_num_microbatches(32);
    for method in [VHalfMethod::Baseline, VHalfMethod::Vocab1] {
        bench(&format!("table6_cell/{}", method.name()), 10, || {
            black_box(run_vhalf(method, &config, 16, Hardware::default()).mfu);
        });
    }
}
