//! Criterion bench for the Table 6 V-Half simulations (7B model, 16
//! devices, 256k vocabulary): baseline vs. Vocabulary Parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_sim::{run_vhalf, VHalfMethod};

fn bench_table6(c: &mut Criterion) {
    let config = ModelPreset::Gpt7B.config().with_vocab(256 * 1024).with_num_microbatches(32);
    let mut group = c.benchmark_group("table6_cell");
    group.sample_size(10);
    for method in [VHalfMethod::Baseline, VHalfMethod::Vocab1] {
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, &m| {
            b.iter(|| black_box(run_vhalf(m, &config, 16, Hardware::default()).mfu))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
