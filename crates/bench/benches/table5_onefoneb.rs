//! Criterion bench for the Table 5 pipeline simulations: one end-to-end
//! discrete-event simulation per method (4B model, 8 devices, 256k
//! vocabulary — the paper's headline cell), measuring the cost of
//! regenerating a table cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_sim::{run_1f1b, Method};

fn bench_table5(c: &mut Criterion) {
    let config = ModelPreset::Gpt4B.config().with_vocab(256 * 1024).with_num_microbatches(32);
    let mut group = c.benchmark_group("table5_cell");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, &m| {
            b.iter(|| black_box(run_1f1b(m, &config, 8, Hardware::default()).mfu))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
