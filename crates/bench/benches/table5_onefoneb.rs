//! Timing bench for the Table 5 pipeline simulations: one end-to-end
//! discrete-event simulation per method (4B model, 8 devices, 256k
//! vocabulary — the paper's headline cell), measuring the cost of
//! regenerating a table cell. Plain harness: prints median wall-clock.

use std::hint::black_box;
use std::time::Instant;
use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_sim::{run_1f1b, Method};

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.3} ms/iter (median of {} runs)",
        samples[samples.len() / 2] * 1e3,
        samples.len()
    );
}

fn main() {
    let config = ModelPreset::Gpt4B
        .config()
        .with_vocab(256 * 1024)
        .with_num_microbatches(32);
    for method in Method::all() {
        bench(&format!("table5_cell/{}", method.name()), 10, || {
            black_box(run_1f1b(method, &config, 8, Hardware::default()).mfu);
        });
    }
}
