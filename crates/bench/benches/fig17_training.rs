//! Timing bench for the Figure 17 training comparison: one full tiny
//! training iteration under each implementation (reference, pipelined
//! baseline, pipelined Vocab-1/Vocab-2). Plain harness: prints median
//! wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;
use vp_model::cost::VocabAlgo;
use vp_runtime::{train_pipeline, train_reference, Mode, TinyConfig};

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.3} ms/iter (median of {} runs)",
        samples[samples.len() / 2] * 1e3,
        samples.len()
    );
}

fn main() {
    let config = TinyConfig::default();
    bench("fig17_one_iteration/reference", 3, || {
        black_box(train_reference(&config, 1).expect("trains"));
    });
    let modes = [
        ("pipeline-baseline", Mode::Baseline),
        ("pipeline-vocab-1", Mode::Vocab(VocabAlgo::Alg1)),
        ("pipeline-vocab-2", Mode::Vocab(VocabAlgo::Alg2)),
    ];
    for (name, mode) in modes {
        bench(&format!("fig17_one_iteration/{name}"), 3, || {
            black_box(train_pipeline(&config, 4, mode, 1).expect("trains"));
        });
    }
}
