//! Criterion bench for the Figure 17 training comparison: one full tiny
//! training iteration under each implementation (reference, pipelined
//! baseline, pipelined Vocab-1/Vocab-2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vp_model::cost::VocabAlgo;
use vp_runtime::{train_pipeline, train_reference, Mode, TinyConfig};

fn bench_fig17(c: &mut Criterion) {
    let config = TinyConfig::default();
    let mut group = c.benchmark_group("fig17_one_iteration");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(train_reference(&config, 1).expect("trains")))
    });
    let modes = [
        ("pipeline-baseline", Mode::Baseline),
        ("pipeline-vocab-1", Mode::Vocab(VocabAlgo::Alg1)),
        ("pipeline-vocab-2", Mode::Vocab(VocabAlgo::Alg2)),
    ];
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| black_box(train_pipeline(&config, 4, m, 1).expect("trains")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
