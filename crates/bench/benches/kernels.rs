//! Micro-benchmarks of the numeric kernels underlying the reproduction:
//! matmul layouts, safe softmax, and — most relevantly for the paper —
//! the three partitioned output-layer algorithms against the
//! unpartitioned reference (the CPU analogue of §6.5's kernel analysis).
//! Plain harness: prints median wall-clock per call.

use std::hint::black_box;
use std::time::Instant;
use vp_core::verify::compare_output_layer;
use vp_core::{OutputShard, VocabAlgo};
use vp_model::partition::VocabPartition;
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::softmax_cross_entropy;
use vp_tensor::ops::softmax_rows;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.3} µs/iter (median of {} runs)",
        samples[samples.len() / 2] * 1e6,
        samples.len()
    );
}

fn bench_matmul() {
    let mut rng = seeded_rng(1);
    let a = normal(&mut rng, 64, 128, 1.0);
    let b = normal(&mut rng, 128, 96, 1.0);
    let bt = normal(&mut rng, 96, 128, 1.0);
    bench("matmul_64x128x96/nn", 50, || {
        black_box(a.matmul(&b).unwrap());
    });
    bench("matmul_64x128x96/nt", 50, || {
        black_box(a.matmul_nt(&bt).unwrap());
    });
    let at = a.transpose();
    bench("matmul_64x128x96/tn", 50, || {
        black_box(at.matmul_tn(&b).unwrap());
    });
}

/// Serial vs pooled matmul at the acceptance shape (256³). The threaded
/// output is bitwise identical to serial; the speedup tracks core count.
fn bench_matmul_threaded() {
    let mut rng = seeded_rng(4);
    let a = normal(&mut rng, 256, 256, 1.0);
    let b = normal(&mut rng, 256, 256, 1.0);
    for threads in [1usize, 4] {
        vp_tensor::set_num_threads(threads);
        bench(&format!("matmul_256x256x256/nn/{threads}t"), 5, || {
            black_box(a.matmul(&b).unwrap());
        });
    }
    vp_tensor::set_num_threads(1);
}

fn bench_softmax() {
    let mut rng = seeded_rng(2);
    let logits = normal(&mut rng, 64, 2048, 3.0);
    bench("safe_softmax_64x2048", 50, || {
        black_box(softmax_rows(&logits));
    });
}

/// The output-layer strategies on one shard: how much work the S+T passes
/// of each algorithm do relative to the fused reference.
fn bench_output_layer() {
    let (vocab, hidden, tokens, p) = (1024usize, 64usize, 32usize, 4usize);
    let mut rng = seeded_rng(3);
    let full_w = normal(&mut rng, vocab, hidden, 0.5);
    let x = normal(&mut rng, tokens, hidden, 1.0);
    let labels: Vec<usize> = (0..tokens).map(|i| (i * 31) % vocab).collect();

    bench("output_layer/reference_full_vocab", 20, || {
        let logits = x.matmul_nt(&full_w).unwrap();
        let (out, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let dx = grad.dlogits.matmul(&full_w).unwrap();
        black_box((out.loss, dx));
    });
    // Single-shard S-pass compute (the per-device kernel of §6.5).
    let part = VocabPartition::new(vocab, p);
    let shard = OutputShard::from_full(&full_w, part, 0).unwrap();
    for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
        bench(&format!("output_layer/shard_s_pass/{algo:?}"), 20, || {
            black_box(shard.s_pass(algo, &x, &labels).unwrap());
        });
    }
    // Full threaded equivalence check (p shards + collectives).
    for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
        bench(&format!("output_layer/sharded_e2e/{algo:?}"), 20, || {
            black_box(compare_output_layer(algo, p, &full_w, &x, &labels).unwrap());
        });
    }
}

fn main() {
    bench_matmul();
    bench_matmul_threaded();
    bench_softmax();
    bench_output_layer();
}
