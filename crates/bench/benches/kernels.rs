//! Criterion micro-benchmarks of the numeric kernels underlying the
//! reproduction: matmul layouts, safe softmax, and — most relevantly for
//! the paper — the three partitioned output-layer algorithms against the
//! unpartitioned reference (the CPU analogue of §6.5's kernel analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vp_core::verify::compare_output_layer;
use vp_core::{OutputShard, VocabAlgo};
use vp_model::partition::VocabPartition;
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::softmax_cross_entropy;
use vp_tensor::ops::softmax_rows;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let a = normal(&mut rng, 64, 128, 1.0);
    let b = normal(&mut rng, 128, 96, 1.0);
    let bt = normal(&mut rng, 96, 128, 1.0);
    let mut group = c.benchmark_group("matmul_64x128x96");
    group.bench_function("nn", |bch| bch.iter(|| black_box(a.matmul(&b).unwrap())));
    group.bench_function("nt", |bch| bch.iter(|| black_box(a.matmul_nt(&bt).unwrap())));
    group.bench_function("tn", |bch| {
        let at = a.transpose();
        bch.iter(|| black_box(at.matmul_tn(&b).unwrap()))
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let logits = normal(&mut rng, 64, 2048, 3.0);
    c.bench_function("safe_softmax_64x2048", |b| b.iter(|| black_box(softmax_rows(&logits))));
}

/// The output-layer strategies on one shard: how much work the S+T passes
/// of each algorithm do relative to the fused reference.
fn bench_output_layer(c: &mut Criterion) {
    let (vocab, hidden, tokens, p) = (1024usize, 64usize, 32usize, 4usize);
    let mut rng = seeded_rng(3);
    let full_w = normal(&mut rng, vocab, hidden, 0.5);
    let x = normal(&mut rng, tokens, hidden, 1.0);
    let labels: Vec<usize> = (0..tokens).map(|i| (i * 31) % vocab).collect();

    let mut group = c.benchmark_group("output_layer");
    group.sample_size(20);
    group.bench_function("reference_full_vocab", |b| {
        b.iter(|| {
            let logits = x.matmul_nt(&full_w).unwrap();
            let (out, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            let dx = grad.dlogits.matmul(&full_w).unwrap();
            black_box((out.loss, dx))
        })
    });
    // Single-shard S-pass compute (the per-device kernel of §6.5).
    let part = VocabPartition::new(vocab, p);
    let shard = OutputShard::from_full(&full_w, part, 0).unwrap();
    for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
        group.bench_with_input(
            BenchmarkId::new("shard_s_pass", format!("{algo:?}")),
            &algo,
            |b, &algo| b.iter(|| black_box(shard.s_pass(algo, &x, &labels).unwrap())),
        );
    }
    // Full threaded equivalence check (p shards + collectives).
    for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
        group.bench_with_input(
            BenchmarkId::new("sharded_e2e", format!("{algo:?}")),
            &algo,
            |b, &algo| {
                b.iter(|| black_box(compare_output_layer(algo, p, &full_w, &x, &labels).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_output_layer);
criterion_main!(benches);
