//! Timing bench for the Table 3 computation: the analytical scaling
//! factors of the partitioned vocabulary layers at every (model, device)
//! point of the paper's sweep. Plain harness (no external bench
//! framework): prints median wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;
use vp_model::config::ModelPreset;
use vp_model::cost::{CostModel, Hardware, VocabAlgo};

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.3} µs/iter (median of {} runs)",
        samples[samples.len() / 2] * 1e6,
        samples.len()
    );
}

fn main() {
    bench("table3/all_scaling_factors", 100, || {
        let mut acc = 0.0;
        for seq in [2048usize, 4096] {
            for (preset, p) in [
                (ModelPreset::Gpt4B, 8),
                (ModelPreset::Gpt10B, 16),
                (ModelPreset::Gpt21B, 32),
            ] {
                let cfg = preset.config().with_seq_len(seq).with_vocab(256 * 1024);
                let m = CostModel::new(cfg, Hardware::default());
                acc += m.output_scaling_factor(VocabAlgo::Alg1, p);
                acc += m.output_scaling_factor(VocabAlgo::Alg2, p);
                acc += m.input_scaling_factor(p);
            }
        }
        black_box(acc);
    });
}
