//! Criterion bench for the Table 3 computation: the analytical scaling
//! factors of the partitioned vocabulary layers at every (model, device)
//! point of the paper's sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vp_model::config::ModelPreset;
use vp_model::cost::{CostModel, Hardware, VocabAlgo};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.bench_function("all_scaling_factors", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for seq in [2048usize, 4096] {
                for (preset, p) in
                    [(ModelPreset::Gpt4B, 8), (ModelPreset::Gpt10B, 16), (ModelPreset::Gpt21B, 32)]
                {
                    let cfg = preset.config().with_seq_len(seq).with_vocab(256 * 1024);
                    let m = CostModel::new(cfg, Hardware::default());
                    acc += m.output_scaling_factor(VocabAlgo::Alg1, p);
                    acc += m.output_scaling_factor(VocabAlgo::Alg2, p);
                    acc += m.input_scaling_factor(p);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
