//! Minimal fixed-width table rendering for the `repro` harness.

/// Renders rows as a fixed-width text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Escapes a string for embedding in a JSON document (the workspace is
/// dependency-free, so the `BENCH_*.json` artifacts are emitted by hand).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional `(value, paper)` pair as `measured (paper x.x)`,
/// with `OOM` for missing values.
pub fn vs_paper(measured: Option<f64>, paper: Option<f64>) -> String {
    match (measured, paper) {
        (Some(m), Some(p)) => format!("{m:.2} ({p:.2})"),
        (Some(m), None) => format!("{m:.2} (OOM)"),
        (None, Some(p)) => format!("OOM ({p:.2})"),
        (None, None) => "OOM (OOM)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["method", "mfu"],
            &[
                vec!["baseline".into(), "25.2".into()],
                vec!["vocab-2".into(), "49.7".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("baseline"));
    }

    #[test]
    fn vs_paper_formats_oom() {
        assert_eq!(vs_paper(None, Some(1.0)), "OOM (1.00)");
        assert_eq!(vs_paper(Some(2.5), None), "2.50 (OOM)");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_f64_rejects_non_finite() {
        assert_eq!(json_f64(1.5), "1.500");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
