//! End-to-end training benchmark over the Figure-17 config.
//!
//! Backs the `repro trainbench [--json]` subcommand (`BENCH_train.json`):
//! for each benchmark schedule the harness runs the numeric pass-VM three
//! times through the tensor buffer arena's lifecycle —
//!
//! 1. **fresh** — arena disabled, every buffer from the system allocator;
//!    the loss trajectory is the reference the pooled runs must match
//!    bitwise,
//! 2. **cold** — arena enabled on an empty pool, so allocations are fresh
//!    but every drop seeds the pool,
//! 3. **steady** — same run again on the warmed pool; this is the state a
//!    long training job lives in, and its counters must show the arena
//!    serving (nearly) every request from recycled buffers.
//!
//! The steady run also reports per-iteration wall times (earliest device
//! start to latest device end, gradient sync and optimizer step included),
//! which is the wall-time figure the CI regression gate tracks.

use vp_runtime::{DataSource, SyntheticCorpus, TinyConfig};
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::{Schedule, VocabVariant};
use vp_tensor::alloc::{self, ArenaStats};

use crate::table::{json_escape, json_f64};

/// One schedule's three-phase measurement.
#[derive(Debug, Clone)]
pub struct TrainTiming {
    /// Schedule name (e.g. `vocab-2-1f1b`).
    pub name: &'static str,
    /// Devices the schedule runs on.
    pub devices: usize,
    /// Iterations per run.
    pub iterations: usize,
    /// Final-iteration loss of the fresh (arena-disabled) run.
    pub final_loss: f64,
    /// Whether cold and steady pooled losses were bitwise identical to the
    /// fresh run's — the arena's numerics contract.
    pub pooled_bitwise_identical: bool,
    /// Arena counters over the cold run (empty pool: `fresh` dominates).
    pub cold: ArenaStats,
    /// Arena counters over the steady run (warm pool: `reuse` dominates,
    /// `fresh` near zero).
    pub steady: ArenaStats,
    /// Per-iteration wall-clock µs of the steady run.
    pub steady_iter_us: Vec<f64>,
}

impl TrainTiming {
    /// Median per-iteration wall time of the steady run, µs.
    pub fn median_iter_us(&self) -> f64 {
        let mut sorted = self.steady_iter_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
    }
}

/// The benchmark schedules: the paper's headline Vocab-2 1F1B and its
/// zero-bubble extension (whose `B`/`W` split churns the most per-pass
/// buffers — shadow-block clones and deferred gradient stashes).
fn schedules(config: &TinyConfig) -> Vec<(&'static str, Schedule)> {
    let mb = config.microbatches as u32;
    vec![
        (
            "vocab-2-1f1b",
            generators::vocab_1f1b(4, mb, VocabVariant::Alg2, PassTimes::default(), true),
        ),
        (
            "zb-vocab-2",
            generators::zb_vocab_1f1b(
                4,
                mb,
                VocabVariant::Alg2,
                PassTimes {
                    f: 1.0,
                    b: 1.0,
                    w: 1.0,
                    ..PassTimes::default()
                },
                true,
            ),
        ),
    ]
}

fn source(config: &TinyConfig) -> DataSource {
    DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ))
}

fn bits(losses: &[f64]) -> Vec<u64> {
    losses.iter().map(|l| l.to_bits()).collect()
}

/// Runs the three-phase bench over every schedule. Leaves the arena
/// enabled (the process default) on return.
///
/// # Panics
///
/// Panics if a schedule fails to train — the bench measures working
/// configurations only.
pub fn run(iterations: usize) -> Vec<TrainTiming> {
    let config = TinyConfig::default();
    let corpus = source(&config);
    let mut results = Vec::new();
    for (name, schedule) in schedules(&config) {
        // Phase 1: fresh — the system-allocator reference trajectory.
        alloc::set_enabled(false);
        let fresh = vp_runtime::train_schedule(&config, &schedule, iterations, &corpus)
            .unwrap_or_else(|e| panic!("{name}: fresh run failed: {e}"));
        // Phase 2: cold — empty pool, every drop seeds it.
        alloc::set_enabled(true);
        alloc::trim();
        alloc::reset_counters();
        let cold_report = vp_runtime::train_schedule(&config, &schedule, iterations, &corpus)
            .unwrap_or_else(|e| panic!("{name}: cold run failed: {e}"));
        let cold = alloc::stats();
        // Phase 3: steady — the warmed pool serves (nearly) everything.
        alloc::reset_counters();
        let steady_report = vp_runtime::train_schedule(&config, &schedule, iterations, &corpus)
            .unwrap_or_else(|e| panic!("{name}: steady run failed: {e}"));
        let steady = alloc::stats();
        results.push(TrainTiming {
            name,
            devices: schedule.devices(),
            iterations,
            final_loss: fresh.losses.last().copied().unwrap_or(f64::NAN),
            pooled_bitwise_identical: bits(&fresh.losses) == bits(&cold_report.losses)
                && bits(&fresh.losses) == bits(&steady_report.losses),
            cold,
            steady,
            steady_iter_us: steady_report.iter_wall.iter().map(|w| w * 1e6).collect(),
        });
    }
    results
}

fn stats_json(s: &ArenaStats) -> String {
    format!(
        "{{\"fresh\": {}, \"reuse\": {}, \"outstanding\": {}, \"cached\": {}, \"reuse_ratio\": {}}}",
        s.fresh,
        s.reuse,
        s.outstanding,
        s.cached,
        json_f64(s.reuse_ratio())
    )
}

/// Renders the bench as the `BENCH_train.json` document.
pub fn to_json(iterations: usize, results: &[TrainTiming]) -> String {
    let config = TinyConfig::default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"train\",\n");
    out.push_str("  \"generated_by\": \"repro trainbench --json\",\n");
    out.push_str("  \"unit\": \"us_per_iteration\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"layers\": {}, \"hidden\": {}, \"heads\": {}, \"seq_len\": {}, \"vocab\": {}, \"microbatches\": {}}},\n",
        config.layers, config.hidden, config.heads, config.seq_len, config.vocab, config.microbatches
    ));
    out.push_str(&format!("  \"iterations\": {iterations},\n"));
    out.push_str("  \"schedules\": [\n");
    for (i, t) in results.iter().enumerate() {
        let iter_us: Vec<String> = t.steady_iter_us.iter().map(|&w| json_f64(w)).collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"devices\": {}, \"final_loss\": {}, \"pooled_bitwise_identical\": {}, \"median_steady_iter_us\": {}, \"steady_iter_us\": [{}], \"cold\": {}, \"steady\": {}}}{}\n",
            json_escape(t.name),
            t.devices,
            json_f64(t.final_loss),
            t.pooled_bitwise_identical,
            json_f64(t.median_iter_us()),
            iter_us.join(", "),
            stats_json(&t.cold),
            stats_json(&t.steady),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena_test_lock as arena_lock;

    #[test]
    fn three_phase_bench_recycles_and_stays_bitwise_identical() {
        let _guard = arena_lock();
        let results = run(2);
        assert_eq!(results.len(), 2);
        for t in &results {
            assert!(t.final_loss.is_finite(), "{}", t.name);
            assert!(
                t.pooled_bitwise_identical,
                "{}: arena changed numerics",
                t.name
            );
            assert_eq!(t.steady_iter_us.len(), 2, "{}", t.name);
            assert!(t.steady_iter_us.iter().all(|&w| w > 0.0), "{}", t.name);
            assert!(t.median_iter_us() > 0.0, "{}", t.name);
            // The cold run allocates; the steady run recycles.
            assert!(t.cold.fresh > 0, "{}: {:?}", t.name, t.cold);
            assert!(t.steady.reuse > 0, "{}: {:?}", t.name, t.steady);
            assert!(
                t.steady.reuse_ratio() > 0.9,
                "{}: steady run barely recycled: {:?}",
                t.name,
                t.steady
            );
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let _guard = arena_lock();
        let results = run(2);
        let doc = to_json(2, &results);
        assert!(doc.contains("\"bench\": \"train\""));
        assert!(doc.contains("\"vocab-2-1f1b\""));
        assert!(doc.contains("\"zb-vocab-2\""));
        assert!(doc.contains("\"pooled_bitwise_identical\": true"));
        assert!(doc.contains("\"median_steady_iter_us\""));
        assert!(doc.contains("\"reuse_ratio\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
