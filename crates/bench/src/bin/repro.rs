//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vp-bench --release --bin repro -- <experiment> [--quick]
//! ```
//!
//! Experiments: `check`, `modelcheck`, `fig1`/`schedules`, `fig2`, `fig3`, `table3`,
//! `table3-measured`, `table4`, `table5`, `table6`, `ablation-interlaced`,
//! `ablation-barriers`, `ablation-zero-bubble`, `generality`,
//! `generality-numeric`, `kernels`, `trainbench`, `servebench`, `tpsweep`,
//! `padding`, `trace`, `timeline`, `csv`, `fig17`, or `all`. `--quick` runs
//! the throughput
//! sweeps with 32 instead of 128 microbatches (same shapes, ~4× faster)
//! and shortens the kernel timing loops. `kernels --json` additionally
//! writes `BENCH_kernels.json` (median µs/iter per kernel, serial vs
//! threaded; thread count from `VP_THREADS`, default 4). `trainbench`
//! trains the Figure-17 config end to end through the buffer arena's
//! fresh → cold → steady lifecycle and with `--json` writes per-iteration
//! wall times plus arena counters to `BENCH_train.json`. `servebench`
//! serves open-loop Poisson request streams through the forward-only
//! decode engine at several pipeline depths (greedy decode checked bitwise
//! against the single-device reference) and with `--json` writes
//! throughput, tail latency, occupancy and arena counters to
//! `BENCH_serve.json`. `timeline` runs
//! two schedules through both
//! the simulator and the traced numeric runtime, writes
//! `traces/measured-<name>.trace.json`, and with `--json` writes the
//! sim-vs-measured divergence to `TIMELINE.json`. `tpsweep` runs the
//! PP × TP crossover study on the 2D device grid (every factorization of
//! a fixed device budget, gated through `vp-check` + the grid lints) and
//! with `--json` writes the table to `TPSWEEP.json`. `modelcheck` runs
//! the differential deadlock suite — every `check` grid schedule plus
//! seeded mutants through both the static analyses and the exhaustive
//! pass-VM model checker, failing on any disagreement — and with `--json`
//! writes `MODELCHECK.json`. `--out <path>`
//! redirects the JSON artifact of the selected experiment.

use vp_bench::experiments;
use vp_bench::kernels as kernel_bench;
use vp_bench::paper;
use vp_bench::table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let microbatches = if quick { 32 } else { 128 };
    // First non-flag argument, skipping `--out`'s value.
    let mut which = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            which = Some(args[i].as_str());
            break;
        }
    }
    let which = which.unwrap_or("all");
    let experiments: Vec<&str> = match which {
        "all" => vec![
            "check",
            "modelcheck",
            "fig2",
            "fig3",
            "table4",
            "schedules",
            "table3",
            "table3-measured",
            "table5",
            "table6",
            "ablation-interlaced",
            "ablation-barriers",
            "ablation-zero-bubble",
            "generality",
            "generality-numeric",
            "kernels",
            "trainbench",
            "servebench",
            "tpsweep",
            "padding",
            "trace",
            "timeline",
            "csv",
            "fig17",
        ],
        other => vec![other],
    };
    for exp in experiments {
        match exp {
            "check" => check_schedules(json, out.as_deref()),
            "modelcheck" => modelcheck(json, out.as_deref()),
            "fig1" | "schedules" => schedules(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "table3" => table3(),
            "table3-measured" => table3_measured(),
            "table4" => table4(),
            "table5" => table5(microbatches),
            "table6" => table6(microbatches),
            "ablation-interlaced" => ablation(microbatches),
            "ablation-barriers" => ablation_barriers(microbatches),
            "ablation-zero-bubble" => ablation_zero_bubble(microbatches),
            "generality" => generality(microbatches),
            "generality-numeric" => generality_numeric(),
            "kernels" => kernels(quick, json, out.as_deref()),
            "trainbench" => trainbench(quick, json, out.as_deref()),
            "servebench" => servebench(quick, json, out.as_deref()),
            "tpsweep" => tpsweep(json, out.as_deref()),
            "trace" => trace(),
            "timeline" => timeline(json, out.as_deref()),
            "csv" => csv(microbatches),
            "padding" => padding(),
            "fig17" => fig17(),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn heading(title: &str) {
    println!("\n############ {title} ############\n");
}

fn check_schedules(json: bool, out: Option<&str>) {
    heading("vp-check — static verification of every schedule generator");
    let cases = vp_bench::check::sweep();
    print!("{}", vp_bench::check::render(&cases));
    if json {
        let path = out.unwrap_or("CHECK.json");
        let doc = vp_bench::check::to_json(&cases);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if cases.iter().any(|c| !c.report.is_clean()) {
        eprintln!("vp-check: diagnostics found — failing");
        std::process::exit(1);
    }
}

fn modelcheck(json: bool, out: Option<&str>) {
    heading("Model check — static analyses vs exhaustive pass-VM execution, differentially");
    let cases = vp_bench::modelcheck::run();
    print!("{}", vp_bench::modelcheck::render(&cases));
    if json {
        let path = out.unwrap_or("MODELCHECK.json");
        let doc = vp_bench::modelcheck::to_json(&cases);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    let disagreements = cases
        .iter()
        .filter(|c| c.outcome == vp_bench::modelcheck::Outcome::Disagree)
        .count();
    let over_budget = cases.iter().filter(|c| c.states > c.budget).count();
    if disagreements > 0 || over_budget > 0 {
        eprintln!(
            "modelcheck: {disagreements} disagreement(s), {over_budget} case(s) over state \
             budget — failing"
        );
        std::process::exit(1);
    }
}

fn fig2() {
    heading("Figure 2 — vocabulary/transformer layer ratios (Gemma2-9B)");
    let rows: Vec<Vec<String>> = experiments::fig2_rows()
        .into_iter()
        .map(|(v, c, m)| {
            vec![
                format!("{}k", v / 1024),
                format!("{c:.2}x"),
                format!("{m:.2}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["vocab", "compute ratio", "param-memory ratio"], &rows)
    );
    println!(
        "Paper: at 256k the output layer is ≈5x a transformer layer in both compute and memory."
    );
}

fn fig3() {
    heading("Figure 3 — layer redistribution cannot balance a 128k vocabulary (7B, 16 stages)");
    for (name, loads, imbalance) in experiments::fig3_rows() {
        let bars: String = loads
            .iter()
            .map(|l| {
                let n = (l * 20.0).round() as usize;
                format!("{:<24}", "#".repeat(n.min(60)))
            })
            .collect::<Vec<_>>()
            .join("\n  ");
        println!("{name} (imbalance = max/mean = {imbalance:.2}):\n  {bars}\n");
    }
}

fn table3() {
    heading("Table 3 — vocabulary-layer scaling factor vs. linear scaling (V = 256k)");
    let mut rows = Vec::new();
    for (seq, name, factors) in experiments::table3_rows() {
        let (si, li) = match (seq, name) {
            (2048, "output-vocab-1") => (0, 0),
            (2048, "output-vocab-2") => (0, 1),
            (2048, _) => (0, 2),
            (4096, "output-vocab-1") => (1, 0),
            (4096, "output-vocab-2") => (1, 1),
            _ => (1, 2),
        };
        let mut row = vec![seq.to_string(), name.to_string()];
        for (k, f) in factors.iter().enumerate() {
            row.push(table::vs_paper(Some(*f), Some(paper::TABLE3[si][li][k])));
        }
        rows.push(row);
    }
    println!(
        "{}",
        table::render(
            &["seq", "layer", "8 dev — meas (paper) %", "16 dev", "32 dev"],
            &rows
        )
    );
}

fn table3_measured() {
    heading("Table 3 (measured) — CPU wall-clock scaling of the numeric S+T passes");
    let rows: Vec<Vec<String>> = experiments::table3_measured(64, 64, 4096)
        .into_iter()
        .map(|(p, f1, f2)| {
            vec![
                p.to_string(),
                format!("{:.1}%", 100.0 * f1),
                format!("{:.1}%", 100.0 * f2),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["shards", "output-vocab-1", "output-vocab-2"], &rows)
    );
    println!("Measured on this machine's CPU kernels (methodology of §6.5; absolute values");
    println!("reflect cache behaviour, not A100 kernels — see `repro table3` for the model).");
}

fn table4() {
    heading("Table 4 — analytical per-layer costs (Appendix A)");
    let rows = vec![
        vec![
            "transformer".into(),
            "bsh(72h + 12s)".into(),
            "24h² bytes (12h² params)".into(),
        ],
        vec![
            "input".into(),
            "3bsh".into(),
            "2hV bytes (hV params)".into(),
        ],
        vec![
            "output".into(),
            "6bshV".into(),
            "2hV bytes (hV params)".into(),
        ],
    ];
    println!(
        "{}",
        table::render(&["layer", "compute FLOPs", "parameter memory"], &rows)
    );
    println!(
        "These formulas drive the cost model in `vp-model::cost` (validated by its unit tests)."
    );
}

fn table5(microbatches: usize) {
    heading(
        "Table 5 / Figures 11–12 — methods on 1F1B: MFU % and peak memory GB, measured (paper)",
    );
    let cells = experiments::table5_cells(microbatches);
    for (si, &(_, _, label)) in paper::TABLE5_SETUPS.iter().enumerate() {
        println!("--- {label} ---");
        let mut rows = Vec::new();
        for (mi, &mname) in paper::TABLE5_METHODS.iter().enumerate() {
            let mut mfu_row = vec![mname.to_string(), "MFU %".to_string()];
            let mut mem_row = vec![String::new(), "peak GB".to_string()];
            for (vi, _) in paper::VOCABS_K.iter().enumerate() {
                let m = &cells[si][mi][vi];
                let p = paper::TABLE5[si][mi][vi];
                let measured = (!m.oom).then_some(m.mfu_pct);
                mfu_row.push(table::vs_paper(measured, p.map(|c| c.0)));
                mem_row.push(table::vs_paper(Some(m.mem_gb), p.map(|c| c.1)));
            }
            rows.push(mfu_row);
            rows.push(mem_row);
        }
        println!(
            "{}",
            table::render(&["method", "metric", "32k", "64k", "128k", "256k"], &rows)
        );
    }
}

fn table6(microbatches: usize) {
    heading("Table 6 / Figures 13–14 — V-Half: MFU % and peak memory GB (min–max band), measured (paper)");
    let cells = experiments::table6_cells(microbatches);
    for (si, &(_, _, label)) in paper::TABLE6_SETUPS.iter().enumerate() {
        println!("--- {label} ---");
        let mut rows = Vec::new();
        for (mi, mname) in ["baseline", "vocab-1"].iter().enumerate() {
            let mut mfu_row = vec![mname.to_string(), "MFU %".to_string()];
            let mut mem_row = vec![String::new(), "peak GB".to_string()];
            let mut band_row = vec![String::new(), "min–max GB".to_string()];
            for (vi, _) in paper::VOCABS_K.iter().enumerate() {
                let (m, min_gb) = &cells[si][mi][vi];
                let p = paper::TABLE6[si][mi][vi];
                let measured = (!m.oom).then_some(m.mfu_pct);
                mfu_row.push(table::vs_paper(measured, p.map(|c| c.0)));
                mem_row.push(table::vs_paper(Some(m.mem_gb), p.map(|c| c.1)));
                band_row.push(format!("{min_gb:.1}–{:.1}", m.mem_gb));
            }
            rows.push(mfu_row);
            rows.push(mem_row);
            rows.push(band_row);
        }
        println!(
            "{}",
            table::render(&["method", "metric", "32k", "64k", "128k", "256k"], &rows)
        );
    }
    println!("Paper: baseline spreads up to ≈45 GB across devices; Vocab-1 stays within ≈2.5 GB.");
}

fn ablation(microbatches: usize) {
    heading("Appendix B.2 — interlaced synchronous all-reduce ablation (21B, 32 devices)");
    let saving = experiments::ablation_interlaced(microbatches);
    println!(
        "Removing synchronous collectives speeds the interlaced iteration by {:.1}% (paper: {:.1}%).",
        100.0 * saving,
        100.0 * paper::ABLATION_B2_SPEEDUP
    );
}

fn ablation_barriers(microbatches: usize) {
    heading("Ablation — communication barriers (3 naive / 2 Alg-1 / 1 Alg-2), 4B, 8 devices, 256k");
    let rows: Vec<Vec<String>> = experiments::ablation_barriers(microbatches)
        .into_iter()
        .map(|(name, mfu, gb, mbs)| {
            vec![
                name,
                format!("{mfu:.2}"),
                format!("{gb:.2}"),
                mbs.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["grouping", "MFU %", "peak GB", "in-flight µbatches (dev 0)"],
            &rows
        )
    );
    println!("§5.2: the activation overhead equals the barrier count — the motivation for");
    println!("reducing 3 barriers to 2 (Algorithm 1) and then 1 (Algorithm 2).");
}

fn ablation_zero_bubble(microbatches: usize) {
    heading("Extension — zero-bubble 1F1B with Vocab-2 (T deferrable like W, §4.4)");
    let rows: Vec<Vec<String>> = experiments::ablation_zero_bubble(microbatches)
        .into_iter()
        .map(|(name, mfu, bubble)| vec![name, format!("{mfu:.2}"), format!("{bubble:.1}")])
        .collect();
    println!(
        "{}",
        table::render(&["schedule", "MFU %", "mean bubble %"], &rows)
    );
}

fn csv(microbatches: usize) {
    heading("CSV export — Figure 11–14 data series");
    let dir = std::path::Path::new("csv");
    match experiments::export_csv(dir, microbatches) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("csv export failed: {e}"),
    }
}

fn generality(microbatches: usize) {
    heading("Generality (§5) — Vocab-2 on three schedule families (4B, 8 devices)");
    let rows: Vec<Vec<String>> = experiments::generality_rows(microbatches)
        .into_iter()
        .map(|(name, m32, m256, gb)| {
            vec![
                name,
                format!("{m32:.2}"),
                format!("{m256:.2}"),
                format!("{gb:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "schedule family",
                "MFU % @32k",
                "MFU % @256k",
                "peak GB @256k"
            ],
            &rows
        )
    );
    println!("The same S/T building-block insertion keeps MFU flat in V on every family,");
    println!("as §5.2 argues (interleaving trades memory for a shorter pipeline fill).");
}

fn generality_numeric() {
    heading(
        "Generality (numeric) — the pass-VM interprets zero-bubble and interleaved vocab schedules",
    );
    let rows: Vec<Vec<String>> = experiments::generality_numeric_rows(4)
        .into_iter()
        .map(|(name, loss, dev, bubble)| {
            vec![
                name,
                format!("{loss:.5}"),
                format!("{dev:.2e}"),
                format!("{bubble:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "schedule family",
                "final loss",
                "max |Δloss| vs reference",
                "mean bubble %"
            ],
            &rows
        )
    );
    println!("One interpreter executes all three families numerically (no per-family runtime");
    println!("code); deviations stay within Figure 17's f32 accumulation-order noise.");
}

fn kernels(quick: bool, json: bool, out: Option<&str>) {
    heading("Kernel microbench — serial vs threaded worker pool (vp-tensor::pool)");
    let threads = std::env::var("VP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4);
    let size = 256;
    let (runs, iters) = if quick { (3, 2) } else { (7, 5) };
    let sweep = kernel_bench::run(size, threads, runs, iters);
    let rows: Vec<Vec<String>> = sweep
        .kernels
        .iter()
        .map(|k| {
            vec![
                k.name.to_string(),
                k.shape.clone(),
                format!("{:.1}", k.serial_us),
                format!("{:.1}", k.threaded_us),
                format!("{:.2}x", k.speedup()),
                format!("{:.2}", k.serial_gflops()),
                format!("{:.2}", k.threaded_gflops()),
                k.path.to_string(),
                if k.bitwise_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "kernel",
                "shape",
                "serial µs",
                &format!("{threads}-thread µs"),
                "speedup",
                "serial GFLOP/s",
                "thr GFLOP/s",
                "path",
                "bitwise =="
            ],
            &rows
        )
    );
    // The hardened probe (available_parallelism ∪ /sys topology ∪ cpuinfo,
    // capped by cgroup quotas; VP_CORES overrides) — not bare
    // available_parallelism, which containers mis-report. Dispatch caps
    // workers at this, so it explains `path`. The sweep snapshotted these
    // while measuring, so they match the table above by construction.
    let cores = sweep.cores;
    let effective = sweep.effective_threads;
    println!(
        "Parallelism is across independent output rows or column panels, so threaded\n\
         results are bitwise identical to serial. Probed cores: {cores}; dispatch caps\n\
         {threads} requested threads at {effective} worker(s) — on one core the serial path is\n\
         the correct choice, not a missed speedup."
    );
    if json {
        let path = out.unwrap_or("BENCH_kernels.json");
        let doc = kernel_bench::to_json(&sweep);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn trainbench(quick: bool, json: bool, out: Option<&str>) {
    heading("Train bench — steady-iteration wall time through the buffer arena (Fig-17 config)");
    let iterations = if quick { 3 } else { 6 };
    let results = vp_bench::trainbench::run(iterations);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                t.devices.to_string(),
                format!("{:.5}", t.final_loss),
                format!("{:.0}", t.median_iter_us()),
                t.steady.fresh.to_string(),
                t.steady.reuse.to_string(),
                format!("{:.3}", t.steady.reuse_ratio()),
                if t.pooled_bitwise_identical {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "schedule",
                "devices",
                "final loss",
                "median iter µs",
                "steady fresh",
                "steady reuse",
                "reuse ratio",
                "pooled bitwise =="
            ],
            &rows
        )
    );
    println!(
        "Each schedule runs three times: arena off (reference numerics), cold pool, warm\n\
         pool. Steady-state counters show recycled buffers serving the iteration; the\n\
         loss trajectory is bitwise identical in all three runs."
    );
    if json {
        let path = out.unwrap_or("BENCH_train.json");
        let doc = vp_bench::trainbench::to_json(iterations, &results);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn servebench(quick: bool, json: bool, out: Option<&str>) {
    heading("Serve bench — open-loop decoding through the vocab-parallel serving engine");
    let workload = vp_bench::servebench::ServeWorkload::new(quick);
    let results = vp_bench::servebench::run(&workload);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|t| {
            vec![
                t.name.clone(),
                t.devices.to_string(),
                t.requests.to_string(),
                t.tokens.to_string(),
                t.steps.to_string(),
                format!("{:.0}", t.tokens_per_sec),
                format!("{:.3}", t.p50_ms),
                format!("{:.3}", t.p99_ms),
                format!("{:.2}", t.occupancy),
                format!("{:.3}", t.arena.reuse_ratio()),
                if t.greedy_matches_reference {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "pipeline",
                "devices",
                "requests",
                "tokens",
                "steps",
                "tok/s",
                "p50 ms",
                "p99 ms",
                "occupancy",
                "reuse ratio",
                "greedy =="
            ],
            &rows
        )
    );
    println!(
        "Each depth first replays a closed-loop stream against the single-device\n\
         full-context reference (bitwise greedy equivalence), then serves the Poisson\n\
         stream continuously batched with KV caches drawn from the warmed buffer arena."
    );
    if json {
        let path = out.unwrap_or("BENCH_serve.json");
        let doc = vp_bench::servebench::to_json(&workload, &results);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if results.iter().any(|t| !t.greedy_matches_reference) {
        eprintln!("servebench: greedy decode diverged from the reference — failing");
        std::process::exit(1);
    }
}

fn tpsweep(json: bool, out: Option<&str>) {
    heading("TP sweep — PP × TP crossover on the 2D device grid (4B, 16 devices)");
    let total_devices = 16;
    let series = vp_bench::tpsweep::run(total_devices);
    print!("{}", vp_bench::tpsweep::render(total_devices, &series));
    if json {
        let path = out.unwrap_or("TPSWEEP.json");
        let doc = vp_bench::tpsweep::to_json(total_devices, &series);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if series.iter().any(|s| !s.all_clean() || !s.tp1_matches()) {
        eprintln!("tpsweep: unverified configuration or tp=1 bitwise divergence — failing");
        std::process::exit(1);
    }
}

fn timeline(json: bool, out: Option<&str>) {
    heading("Timeline — simulated vs measured execution of the pass-VM");
    let cases = vp_bench::timeline::run(3);
    for case in &cases {
        println!("--- {} (final loss {:.5}) ---", case.name, case.final_loss);
        print!("{}", case.measured.render());
        println!("sim-vs-measured busy-share divergence:");
        print!("{}", case.divergence.render());
        println!();
    }
    match vp_bench::timeline::write_traces(std::path::Path::new("traces"), &cases) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            println!("Open next to the simulator's traces in chrome://tracing or Perfetto.");
        }
        Err(e) => eprintln!("measured trace export failed: {e}"),
    }
    if json {
        let path = out.unwrap_or("TIMELINE.json");
        let doc = vp_bench::timeline::to_json(&cases);
        match std::fs::write(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn trace() {
    heading("Chrome trace export");
    let dir = std::path::Path::new("traces");
    match experiments::export_traces(dir) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            println!("Open in chrome://tracing or https://ui.perfetto.dev.");
        }
        Err(e) => eprintln!("trace export failed: {e}"),
    }
}

fn schedules() {
    heading("Schedule gallery — Figures 1, 10a/10b, 15b, 16");
    println!("{}", experiments::schedule_gallery());
}

fn padding() {
    heading("§6.1 — vocabulary padding to a multiple of 2p (24 devices)");
    let (orig, padded, shard) = experiments::padding_example();
    println!("V = {orig} → padded {padded} (multiple of 48), shard width {shard}.");
    println!("(The paper's ≈8% kernel speedup from alignment is a GPU memory-subsystem effect");
    println!(
        " outside our cost model; the partition logic it relies on is what is reproduced here.)"
    );
}

fn fig17() {
    heading("Figure 17 / Appendix E — convergence vs. the single-device reference");
    let curves = experiments::fig17_curves(12);
    let iters = curves[0].1.len();
    let mut rows = Vec::new();
    for i in 0..iters {
        let mut row = vec![i.to_string()];
        for (_, losses) in &curves {
            row.push(format!("{:.5}", losses[i]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("iter")
        .chain(curves.iter().map(|(n, _)| *n))
        .collect();
    println!("{}", table::render(&headers, &rows));
    let reference = &curves[0].1;
    let max_dev = curves[1..]
        .iter()
        .flat_map(|(_, l)| l.iter().zip(reference).map(|(a, b)| (a - b).abs()))
        .fold(0.0f64, f64::max);
    println!("Max |Δloss| vs reference across all pipelined implementations: {max_dev:.2e}");
    println!("Paper: \"our implementation maintains correctness, albeit with some small numerical differences\".");
}
