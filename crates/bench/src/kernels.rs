//! Serial-vs-threaded timing of the `vp-tensor` kernels.
//!
//! Backs the `repro kernels [--json]` subcommand, which seeds the perf
//! trajectory (`BENCH_kernels.json`): for every kernel the harness measures
//! the median wall-clock per call with 1 thread (the exact serial code
//! path) and with the requested pool size, and verifies the two outputs are
//! **bitwise identical** — the pool's determinism contract.

use std::time::Instant;
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::{Gelu, LayerNorm};
use vp_tensor::ops::{local_softmax, softmax_rows};
use vp_tensor::{pool, Tensor};

use crate::table::{json_escape, json_f64};

/// A full kernel sweep: the per-kernel timings plus the dispatch
/// environment captured **while measuring** (the assumed core count, the
/// worker count dispatch derives from it, and the accuracy policy). Recorded
/// here rather than re-read at render time so the JSON artifact describes
/// the configuration the numbers were actually taken under, even if
/// `set_assumed_cores` / `VP_CORES` / `set_fast_math` change afterwards.
#[derive(Debug, Clone)]
pub struct KernelSweep {
    /// Problem size the sweep ran at (matmuls `size³`, row-wise `size×4·size`).
    pub size: usize,
    /// Requested pool thread count.
    pub threads: usize,
    /// Core count the dispatch heuristic assumed during the sweep.
    pub cores: usize,
    /// Worker count dispatch actually used: `threads.min(cores).max(1)`.
    pub effective_threads: usize,
    /// Whether the vector fast-math paths were enabled during the sweep.
    pub fast_math: bool,
    /// Per-kernel serial-vs-threaded timings.
    pub kernels: Vec<KernelTiming>,
}

/// One kernel's serial-vs-threaded measurement.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (e.g. `matmul_nn`).
    pub name: &'static str,
    /// Problem shape, human-readable (e.g. `256x256x256`).
    pub shape: String,
    /// Median µs per call with 1 thread.
    pub serial_us: f64,
    /// Median µs per call with the requested thread count.
    pub threaded_us: f64,
    /// Whether the serial and threaded outputs were bitwise identical.
    pub bitwise_identical: bool,
    /// Nominal floating-point operations per call (matmuls: `2mkn`;
    /// row-wise kernels: a per-element op count with transcendentals
    /// counted as one — a throughput yardstick, not a hardware counter).
    pub flops: f64,
    /// The code path the pool's dispatch heuristic picks on this machine
    /// at the benched thread count: `"threaded"` or `"serial"` (worker
    /// count 1, too few rows, or work below the parallel threshold).
    pub path: &'static str,
}

impl KernelTiming {
    /// Serial-over-threaded speedup (`> 1` means the pool helped).
    pub fn speedup(&self) -> f64 {
        self.serial_us / self.threaded_us
    }

    /// Serial throughput in GFLOP/s (nominal flop count over wall time).
    pub fn serial_gflops(&self) -> f64 {
        self.flops / (self.serial_us * 1e3)
    }

    /// Threaded throughput in GFLOP/s.
    pub fn threaded_gflops(&self) -> f64 {
        self.flops / (self.threaded_us * 1e3)
    }
}

/// Median wall-clock µs per call over `runs` samples of `iters` calls.
fn median_us(runs: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Times one kernel serially and with `threads` pool threads. `rows` and
/// `work` mirror what the kernel hands the pool's dispatch heuristic, so
/// the recorded `path` is the one a real call takes on this machine.
#[allow(clippy::too_many_arguments)]
fn time_kernel(
    name: &'static str,
    shape: String,
    threads: usize,
    runs: usize,
    iters: u32,
    flops: f64,
    (rows, work): (usize, usize),
    f: impl Fn() -> Tensor,
) -> KernelTiming {
    pool::set_num_threads(1);
    let serial_out = f();
    let serial_us = median_us(runs, iters, || {
        std::hint::black_box(f());
    });
    pool::set_num_threads(threads);
    let path = if pool::would_parallelize(rows, work) {
        "threaded"
    } else {
        "serial"
    };
    let threaded_out = f();
    let threaded_us = median_us(runs, iters, || {
        std::hint::black_box(f());
    });
    KernelTiming {
        name,
        shape,
        serial_us,
        threaded_us,
        bitwise_identical: bits_eq(&serial_out, &threaded_out),
        flops,
        path,
    }
}

/// Runs the full kernel sweep at `size` (matmuls are `size³`; the row-wise
/// kernels use `size × 4·size`). Restores the pool's previous thread count
/// before returning.
///
/// The sweep does **not** override the pool's core probe: `threads` sets the
/// pool size, but dispatch still caps workers at the probed core count
/// exactly as production calls do. A previous version forced
/// `assumed_cores ≥ threads` "so the threaded path gets exercised" — on a
/// genuinely single-core machine that benched 4-thread contention against
/// the serial path and recorded every kernel as `"threaded"` with speedup
/// < 1. The honest measurement is the one the artifact wants: on one core
/// the right path *is* serial, and the recorded `path` says so. Use
/// `VP_CORES` to bench an assumed topology deliberately.
pub fn run(size: usize, threads: usize, runs: usize, iters: u32) -> KernelSweep {
    let previous = pool::num_threads();
    // Snapshot the dispatch environment up front, alongside the timings it
    // governs (a later config change must not re-label these measurements).
    let cores = pool::assumed_cores();
    let effective_threads = threads.min(cores).max(1);
    let fast_math = vp_tensor::mathx::fast_math();
    let mut rng = seeded_rng(2024);
    let a = normal(&mut rng, size, size, 1.0);
    let b = normal(&mut rng, size, size, 1.0);
    let wide = normal(&mut rng, size, 4 * size, 3.0);
    let ln = LayerNorm::new(4 * size);
    let gelu = Gelu::new();

    let mm = format!("{size}x{size}x{size}");
    let rw = format!("{size}x{}", 4 * size);
    // Dispatch inputs: matmuls hand the pool (m, m·k·n); the row-wise
    // kernels hand (rows, len·c) with their per-kernel work factor.
    let mm_flops = 2.0 * (size * size * size) as f64;
    let len = size * 4 * size;
    let mm_dispatch = (size, size * size * size);
    let kernels = vec![
        time_kernel(
            "matmul_nn",
            mm.clone(),
            threads,
            runs,
            iters,
            mm_flops,
            mm_dispatch,
            || a.matmul(&b).unwrap(),
        ),
        time_kernel(
            "matmul_nt",
            mm.clone(),
            threads,
            runs,
            iters,
            mm_flops,
            mm_dispatch,
            || a.matmul_nt(&b).unwrap(),
        ),
        time_kernel(
            "matmul_tn",
            mm,
            threads,
            runs,
            iters,
            mm_flops,
            mm_dispatch,
            || a.matmul_tn(&b).unwrap(),
        ),
        time_kernel(
            "softmax_rows",
            rw.clone(),
            threads,
            runs,
            iters,
            5.0 * len as f64,
            (size, len * 8),
            || softmax_rows(&wide),
        ),
        time_kernel(
            "local_softmax",
            rw.clone(),
            threads,
            runs,
            iters,
            5.0 * len as f64,
            (size, len * 8),
            || local_softmax(&wide).0,
        ),
        time_kernel(
            "layer_norm",
            rw.clone(),
            threads,
            runs,
            iters,
            8.0 * len as f64,
            (size, len * 8),
            || ln.forward(&wide).unwrap().0,
        ),
        time_kernel(
            "gelu",
            rw,
            threads,
            runs,
            iters,
            10.0 * len as f64,
            (size, len * 16),
            || gelu.forward(&wide).0,
        ),
    ];
    pool::set_num_threads(previous);
    KernelSweep {
        size,
        threads,
        cores,
        effective_threads,
        fast_math,
        kernels,
    }
}

/// Renders the sweep as the `BENCH_kernels.json` document.
///
/// The header records the *probed* core count (hardened against cgroup /
/// affinity mis-reporting, see [`pool::detect_cores`]) next to the
/// requested thread count and the worker count dispatch actually used —
/// `"cores": 1, "threads": 4` in an old artifact was the bug report that
/// motivated the split. All header fields come from the [`KernelSweep`]
/// snapshot taken during [`run`], so they describe the measurements even if
/// the pool config changed since.
pub fn to_json(sweep: &KernelSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"kernels\",\n");
    out.push_str("  \"generated_by\": \"repro kernels --json\",\n");
    out.push_str("  \"unit\": \"us_per_iter_median\",\n");
    out.push_str(&format!("  \"size\": {},\n", sweep.size));
    out.push_str(&format!("  \"threads\": {},\n", sweep.threads));
    out.push_str(&format!("  \"cores\": {},\n", sweep.cores));
    out.push_str(&format!(
        "  \"effective_threads\": {},\n",
        sweep.effective_threads
    ));
    out.push_str(&format!("  \"fast_math\": {},\n", sweep.fast_math));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in sweep.kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}\", \"serial_us\": {}, \"threaded_us\": {}, \"speedup\": {}, \"serial_gflops\": {}, \"threaded_gflops\": {}, \"path\": \"{}\", \"bitwise_identical\": {}}}{}\n",
            json_escape(k.name),
            json_escape(&k.shape),
            json_f64(k.serial_us),
            json_f64(k.threaded_us),
            json_f64(k.speedup()),
            json_f64(k.serial_gflops()),
            json_f64(k.threaded_gflops()),
            json_escape(k.path),
            k.bitwise_identical,
            if i + 1 == sweep.kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// Serializes tests that read or write the pool's global dispatch
    /// config (thread count, assumed cores).
    fn config_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn sweep_covers_all_kernels_and_stays_bitwise_identical() {
        let _guard = config_lock();
        // Tiny size: this is a structure test, not a perf test.
        let sweep = run(24, 2, 1, 1);
        assert_eq!(sweep.size, 24);
        assert_eq!(sweep.threads, 2);
        assert!(sweep.cores >= 1);
        assert_eq!(
            sweep.effective_threads,
            sweep.threads.min(sweep.cores).max(1)
        );
        let results = sweep.kernels;
        let names: Vec<&str> = results.iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            vec![
                "matmul_nn",
                "matmul_nt",
                "matmul_tn",
                "softmax_rows",
                "local_softmax",
                "layer_norm",
                "gelu"
            ]
        );
        for k in &results {
            assert!(k.bitwise_identical, "{} diverged from serial", k.name);
            assert!(k.serial_us > 0.0 && k.threaded_us > 0.0, "{}", k.name);
            assert!(k.flops > 0.0 && k.serial_gflops() > 0.0, "{}", k.name);
            assert!(
                k.path == "serial" || k.path == "threaded",
                "{}: {}",
                k.name,
                k.path
            );
        }
    }

    #[test]
    fn single_core_sweep_never_records_the_threaded_path() {
        // Regression for the inverted bug: `run()` used to force
        // `assumed_cores ≥ threads`, so a 1-core container benched 4-thread
        // contention and recorded `"threaded"` with speedup < 1 on every
        // kernel. On a single core the chosen path must be the serial one —
        // dispatch must never pick the slower path.
        let _guard = config_lock();
        pool::set_assumed_cores(1);
        let sweep = run(64, 4, 1, 1);
        pool::set_assumed_cores(0);
        // The snapshot reflects the config *during* the sweep, not the
        // restored default read afterwards.
        assert_eq!(sweep.cores, 1);
        assert_eq!(sweep.effective_threads, 1);
        for k in &sweep.kernels {
            assert_eq!(k.path, "serial", "{} dispatched to the pool", k.name);
            assert!(k.bitwise_identical, "{} diverged from serial", k.name);
        }
    }

    #[test]
    fn multicore_sweep_exercises_the_threaded_path() {
        // With cores actually available (assumed here, so the test is
        // machine-independent), an explicit thread request must dispatch
        // the big kernels to the pool — and stay bitwise identical.
        let _guard = config_lock();
        pool::set_assumed_cores(4);
        let sweep = run(64, 4, 1, 1);
        pool::set_assumed_cores(0);
        assert_eq!(sweep.cores, 4);
        assert_eq!(sweep.effective_threads, 4);
        for k in sweep
            .kernels
            .iter()
            .filter(|k| k.name.starts_with("matmul"))
        {
            assert_eq!(k.path, "threaded", "{} stayed serial", k.name);
            assert!(k.bitwise_identical, "{} diverged from serial", k.name);
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let _guard = config_lock();
        let sweep = run(16, 2, 1, 1);
        let doc = to_json(&sweep);
        assert!(doc.contains("\"bench\": \"kernels\""));
        assert!(doc.contains("\"threads\": 2"));
        assert!(doc.contains("\"cores\": "));
        assert!(doc.contains("\"effective_threads\": "));
        assert!(doc.contains("\"fast_math\": "));
        assert!(doc.contains("\"matmul_tn\""));
        assert!(doc.contains("\"bitwise_identical\": true"));
        assert!(doc.contains("\"serial_gflops\""));
        assert!(doc.contains("\"threaded_gflops\""));
        assert!(doc.contains("\"path\": \"serial\"") || doc.contains("\"path\": \"threaded\""));
        // Balanced braces/brackets (hand-rolled emitter sanity check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(!doc.contains("null"), "non-finite timing in {doc}");
    }
}
