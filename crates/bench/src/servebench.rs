//! End-to-end serving benchmark over the forward-only decode engine.
//!
//! Backs the `repro servebench [--json]` subcommand (`BENCH_serve.json`):
//! for each pipeline depth × overlap mode the harness
//!
//! 1. checks **greedy-decode bitwise equivalence** — a closed-loop request
//!    stream through the pipelined, paged-KV, vocabulary-sharded engine
//!    must reproduce the single-device full-context reference's token
//!    streams exactly (with chunked prefill and, in the `-ov` series, the
//!    stream-overlapped sampling barrier enabled),
//! 2. runs a **warm-up** closed-loop wave so the KV block pools seed the
//!    arena, records the quiescent-arena baseline, then
//! 3. serves the measured **open-loop** stream (Poisson arrivals with a
//!    configurable prompt/output length mix) and reports tokens/s, p50/p99
//!    per-token latency, mean batch occupancy, the arena reuse ratio and
//!    the outstanding-buffer delta against the baseline (`kv_leaked`,
//!    which must be zero: every retirement returns its blocks).
//!
//! The model here is deliberately larger than [`TinyConfig::default`]
//! (8 layers, hidden 128, 128-token context, 16 slots): the serving SLO
//! story only makes sense when a decode step carries enough compute for
//! pipeline parallelism to amortise its communication.
//!
//! Environment knobs (read once per `run`):
//!
//! * `VP_SERVE_OVERLAP=0|1` — restrict the series to overlap-off / -on
//!   (default: measure both);
//! * `VP_KV_BLOCK=<tokens>` — override the paged-KV block size.
//!
//! The CI serving gate reads the emitted JSON: generation throughput must
//! be positive, tail latency bounded (p99/p50 within the SLO ceiling),
//! the equivalence flag true and every `kv_leaked` zero.

use vp_runtime::serve::{greedy_matches_reference, ServeConfig, ServeEngine, WorkloadSpec};
use vp_runtime::TinyConfig;
use vp_tensor::alloc::{self, ArenaStats};

use crate::table::{json_escape, json_f64};

/// Continuous-batching slots of the bench engine.
const MAX_BATCH: usize = 16;
/// Candidates per shard in the sampling merge.
const TOP_K: usize = 4;
/// Prefill chunk budget (prompt tokens per request per step).
const PREFILL_CHUNK: usize = 4;
/// Requests in the closed-loop equivalence stream (kept small: the
/// single-device reference recomputes the full context per token).
const EQUIVALENCE_REQUESTS: usize = 6;

/// The serving bench model: larger than the training default so a decode
/// step carries real compute (see the module docs).
pub fn bench_model() -> TinyConfig {
    TinyConfig {
        layers: 8,
        hidden: 128,
        seq_len: 128,
        ..TinyConfig::default()
    }
}

/// The benchmark's workload shape (one measured open-loop stream per
/// pipeline depth × overlap mode).
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Requests in the measured stream.
    pub requests: usize,
    /// Mean Poisson arrival rate, requests per second.
    pub rate: f64,
    /// Prompt length range (inclusive), uniform mix.
    pub prompt_len: (usize, usize),
    /// Output length range (inclusive), uniform mix.
    pub output_len: (usize, usize),
}

impl ServeWorkload {
    /// The measured workload: `--quick` serves a quarter of the stream.
    pub fn new(quick: bool) -> Self {
        ServeWorkload {
            requests: if quick { 8 } else { 32 },
            rate: 500.0,
            prompt_len: (8, 48),
            output_len: (4, 16),
        }
    }

    fn spec(&self, seed: u64, rate: Option<f64>) -> WorkloadSpec {
        WorkloadSpec {
            requests: self.requests,
            rate,
            prompt_len: self.prompt_len,
            output_len: self.output_len,
            seed,
        }
    }
}

/// One pipeline depth × overlap mode's serving measurement.
#[derive(Debug, Clone)]
pub struct ServeTiming {
    /// Series label: `pp<d>` (inline sampling barrier) or `pp<d>-ov`
    /// (stream-overlapped sampling barrier).
    pub name: String,
    /// Pipeline devices (vocabulary shards).
    pub devices: usize,
    /// Whether the S/T split-batch overlap schedule was active.
    pub overlap: bool,
    /// Requests completed in the measured run.
    pub requests: usize,
    /// Tokens generated in the measured run.
    pub tokens: usize,
    /// Decode steps of the measured run.
    pub steps: usize,
    /// Generated tokens per wall-clock second.
    pub tokens_per_sec: f64,
    /// Median per-token latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-token latency, milliseconds.
    pub p99_ms: f64,
    /// Mean batch occupancy of the measured run, in `[0, 1]`.
    pub occupancy: f64,
    /// Arena counters over the measured run (pool warmed by the previous
    /// wave: `reuse` must dominate).
    pub arena: ArenaStats,
    /// Outstanding arena buffers after the measured run minus the
    /// post-warm-up baseline. Zero iff every retirement returned its KV
    /// blocks (the pp1 leak regression gate).
    pub kv_leaked: i64,
    /// Whether the engine's greedy token streams matched the
    /// single-device full-context reference bitwise.
    pub greedy_matches_reference: bool,
}

/// Pipeline depths to measure; all must divide the bench model's layers.
fn depths(config: &TinyConfig) -> Vec<usize> {
    [1, 2, 4]
        .into_iter()
        .filter(|p| config.layers.is_multiple_of(*p))
        .collect()
}

/// Overlap modes to measure: both by default, restricted by
/// `VP_SERVE_OVERLAP=0|1`.
fn overlap_modes() -> Vec<bool> {
    match std::env::var("VP_SERVE_OVERLAP").ok().as_deref() {
        Some("0") => vec![false],
        Some("1") => vec![true],
        _ => vec![false, true],
    }
}

/// Paged-KV block size: `VP_KV_BLOCK` override or the library default.
fn kv_block() -> usize {
    std::env::var("VP_KV_BLOCK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(vp_tensor::nn::DEFAULT_BLOCK_TOKENS)
}

/// Runs the serving bench at every pipeline depth × overlap mode.
///
/// # Panics
///
/// Panics if the engine fails to start or a serve run drops requests —
/// the bench measures working configurations only.
pub fn run(workload: &ServeWorkload) -> Vec<ServeTiming> {
    let model = bench_model();
    let kv_block = kv_block();
    let modes = overlap_modes();
    let mut results = Vec::new();
    for devices in depths(&model) {
        for &overlap in &modes {
            let config = ServeConfig {
                model: model.clone(),
                devices,
                max_batch: MAX_BATCH,
                top_k: TOP_K,
                kv_block,
                kv_capacity_blocks: None,
                prefill_chunk: PREFILL_CHUNK,
                overlap,
            };
            let label = if overlap {
                format!("pp{devices}-ov")
            } else {
                format!("pp{devices}")
            };
            // Equivalence first, on a short closed-loop stream (fresh
            // engine so the check exercises engine start as well).
            let check = WorkloadSpec {
                requests: EQUIVALENCE_REQUESTS,
                rate: None,
                prompt_len: workload.prompt_len,
                output_len: workload.output_len,
                seed: 1000 + devices as u64,
            }
            .generate(model.vocab, model.seq_len);
            let greedy = greedy_matches_reference(&config, &check)
                .unwrap_or_else(|e| panic!("{label}: equivalence check failed: {e}"));
            // Measured run: warm the block pools with one closed-loop
            // wave, record the quiescent baseline, then serve the
            // open-loop Poisson stream with fresh counters. Both overlap
            // modes use the same seeds, so their streams are identical
            // and the series are directly comparable.
            let mut engine = ServeEngine::start(config).unwrap_or_else(|e| panic!("{label}: {e}"));
            let warm = workload
                .spec(2000 + devices as u64, None)
                .generate(model.vocab, model.seq_len);
            engine.serve(&warm);
            let baseline = alloc::stats().outstanding;
            alloc::reset_counters();
            let stream = workload
                .spec(3000 + devices as u64, Some(workload.rate))
                .generate(model.vocab, model.seq_len);
            let run = engine.serve(&stream);
            let arena = alloc::stats();
            engine.shutdown();
            assert_eq!(
                run.completions.len(),
                stream.len(),
                "{label}: dropped requests"
            );
            results.push(ServeTiming {
                name: label,
                devices,
                overlap,
                requests: run.completions.len(),
                tokens: run.tokens(),
                steps: run.steps,
                tokens_per_sec: run.tokens_per_sec(),
                p50_ms: run.latency_quantile(0.5) * 1e3,
                p99_ms: run.latency_quantile(0.99) * 1e3,
                occupancy: run.occupancy(),
                arena,
                kv_leaked: arena.outstanding as i64 - baseline as i64,
                greedy_matches_reference: greedy,
            });
        }
    }
    results
}

fn stats_json(s: &ArenaStats) -> String {
    format!(
        "{{\"fresh\": {}, \"reuse\": {}, \"outstanding\": {}, \"cached\": {}, \"reuse_ratio\": {}}}",
        s.fresh,
        s.reuse,
        s.outstanding,
        s.cached,
        json_f64(s.reuse_ratio())
    )
}

/// Renders the bench as the `BENCH_serve.json` document. The top-level
/// `greedy_matches_reference` is the conjunction over every series — the
/// flag the CI serving gate checks.
pub fn to_json(workload: &ServeWorkload, results: &[ServeTiming]) -> String {
    let config = bench_model();
    let all_match = results.iter().all(|t| t.greedy_matches_reference);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str("  \"generated_by\": \"repro servebench --json\",\n");
    // Device threads time-slice on the probed cores: pipeline depth (and
    // the overlap stream) only buys wall-clock on a multicore box, so the
    // artifact records what it ran on.
    out.push_str(&format!(
        "  \"cores\": {},\n",
        vp_tensor::pool::assumed_cores()
    ));
    out.push_str(&format!(
        "  \"config\": {{\"layers\": {}, \"hidden\": {}, \"heads\": {}, \"seq_len\": {}, \"vocab\": {}, \"max_batch\": {}, \"top_k\": {}, \"kv_block\": {}, \"prefill_chunk\": {}}},\n",
        config.layers,
        config.hidden,
        config.heads,
        config.seq_len,
        config.vocab,
        MAX_BATCH,
        TOP_K,
        kv_block(),
        PREFILL_CHUNK
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"requests\": {}, \"rate_per_sec\": {}, \"prompt_len\": [{}, {}], \"output_len\": [{}, {}]}},\n",
        workload.requests,
        json_f64(workload.rate),
        workload.prompt_len.0,
        workload.prompt_len.1,
        workload.output_len.0,
        workload.output_len.1
    ));
    out.push_str(&format!("  \"greedy_matches_reference\": {all_match},\n"));
    out.push_str("  \"pipelines\": [\n");
    for (i, t) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"devices\": {}, \"overlap\": {}, \"requests\": {}, \"tokens\": {}, \"steps\": {}, \"tokens_per_sec\": {}, \"p50_token_latency_ms\": {}, \"p99_token_latency_ms\": {}, \"batch_occupancy\": {}, \"arena\": {}, \"kv_leaked\": {}, \"greedy_matches_reference\": {}}}{}\n",
            json_escape(&t.name),
            t.devices,
            t.overlap,
            t.requests,
            t.tokens,
            t.steps,
            json_f64(t.tokens_per_sec),
            json_f64(t.p50_ms),
            json_f64(t.p99_ms),
            json_f64(t.occupancy),
            stats_json(&t.arena),
            t.kv_leaked,
            t.greedy_matches_reference,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena_test_lock;

    #[test]
    fn quick_bench_meets_the_slo_floors() {
        let _guard = arena_test_lock();
        let workload = ServeWorkload::new(true);
        let results = run(&workload);
        assert_eq!(results.len(), 6, "pp1/pp2/pp4 × overlap off/on");
        for t in &results {
            assert!(t.greedy_matches_reference, "{}: diverged", t.name);
            assert_eq!(t.requests, workload.requests, "{}", t.name);
            assert!(t.tokens > 0 && t.steps > 0, "{}", t.name);
            assert!(t.tokens_per_sec > 0.0, "{}", t.name);
            assert!(t.p50_ms > 0.0 && t.p99_ms >= t.p50_ms, "{}", t.name);
            assert!(t.p99_ms.is_finite(), "{}", t.name);
            // Chunked prefill bounds the tail: no decode step carries a
            // whole long prompt, so p99 stays within the SLO ceiling.
            assert!(
                t.p99_ms / t.p50_ms <= 6.0,
                "{}: p99/p50 = {:.2} blew the SLO ceiling",
                t.name,
                t.p99_ms / t.p50_ms
            );
            assert!(t.occupancy > 0.0 && t.occupancy <= 1.0, "{}", t.name);
            assert_eq!(
                t.kv_leaked, 0,
                "{}: retirement leaked arena buffers",
                t.name
            );
            assert!(
                t.arena.reuse_ratio() > 0.5,
                "{}: warmed pool barely recycled: {:?}",
                t.name,
                t.arena
            );
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let _guard = arena_test_lock();
        let workload = ServeWorkload::new(true);
        let results = run(&workload);
        let doc = to_json(&workload, &results);
        assert!(doc.contains("\"bench\": \"serve\""));
        assert!(doc.contains("\"greedy_matches_reference\": true"));
        assert!(doc.contains("\"tokens_per_sec\""));
        assert!(doc.contains("\"p99_token_latency_ms\""));
        assert!(doc.contains("\"batch_occupancy\""));
        assert!(doc.contains("\"reuse_ratio\""));
        assert!(doc.contains("\"kv_block\"") && doc.contains("\"prefill_chunk\""));
        assert!(doc.contains("\"cores\""));
        assert!(doc.contains("\"kv_leaked\": 0"));
        assert!(doc.contains("\"pp1\"") && doc.contains("\"pp2\"") && doc.contains("\"pp4\""));
        assert!(doc.contains("\"pp2-ov\"") && doc.contains("\"overlap\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
