//! End-to-end serving benchmark over the forward-only decode engine.
//!
//! Backs the `repro servebench [--json]` subcommand (`BENCH_serve.json`):
//! for each pipeline depth the harness
//!
//! 1. checks **greedy-decode bitwise equivalence** — a closed-loop request
//!    stream through the pipelined, KV-cached, vocabulary-sharded engine
//!    must reproduce the single-device full-context reference's token
//!    streams exactly,
//! 2. runs a **warm-up** closed-loop wave so the KV-cache buffers seed the
//!    arena pool, then
//! 3. serves the measured **open-loop** stream (Poisson arrivals with a
//!    configurable prompt/output length mix) and reports tokens/s, p50/p99
//!    per-token latency, mean batch occupancy and the arena reuse ratio
//!    over the measured run.
//!
//! The CI serving gate reads the emitted JSON: generation throughput must
//! be positive, tail latency finite, and the equivalence flag true.

use vp_runtime::serve::{greedy_matches_reference, ServeConfig, ServeEngine, WorkloadSpec};
use vp_runtime::TinyConfig;
use vp_tensor::alloc::{self, ArenaStats};

use crate::table::{json_escape, json_f64};

/// The benchmark's workload shape (one measured open-loop stream per
/// pipeline depth).
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Requests in the measured stream.
    pub requests: usize,
    /// Mean Poisson arrival rate, requests per second.
    pub rate: f64,
    /// Prompt length range (inclusive), uniform mix.
    pub prompt_len: (usize, usize),
    /// Output length range (inclusive), uniform mix.
    pub output_len: (usize, usize),
}

impl ServeWorkload {
    /// The measured workload: `--quick` serves a quarter of the stream.
    pub fn new(quick: bool) -> Self {
        ServeWorkload {
            requests: if quick { 8 } else { 32 },
            rate: 500.0,
            prompt_len: (2, 6),
            output_len: (1, 8),
        }
    }

    fn spec(&self, seed: u64, rate: Option<f64>) -> WorkloadSpec {
        WorkloadSpec {
            requests: self.requests,
            rate,
            prompt_len: self.prompt_len,
            output_len: self.output_len,
            seed,
        }
    }
}

/// One pipeline depth's serving measurement.
#[derive(Debug, Clone)]
pub struct ServeTiming {
    /// Pipeline depth label (e.g. `pp2`).
    pub name: String,
    /// Pipeline devices (vocabulary shards).
    pub devices: usize,
    /// Requests completed in the measured run.
    pub requests: usize,
    /// Tokens generated in the measured run.
    pub tokens: usize,
    /// Decode steps of the measured run.
    pub steps: usize,
    /// Generated tokens per wall-clock second.
    pub tokens_per_sec: f64,
    /// Median per-token latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-token latency, milliseconds.
    pub p99_ms: f64,
    /// Mean batch occupancy of the measured run, in `[0, 1]`.
    pub occupancy: f64,
    /// Arena counters over the measured run (pool warmed by the previous
    /// wave: `reuse` must dominate).
    pub arena: ArenaStats,
    /// Whether the engine's greedy token streams matched the
    /// single-device full-context reference bitwise.
    pub greedy_matches_reference: bool,
}

/// Pipeline depths to measure; all must divide [`TinyConfig::layers`].
fn depths(config: &TinyConfig) -> Vec<usize> {
    [1, 2, 4]
        .into_iter()
        .filter(|p| config.layers.is_multiple_of(*p))
        .collect()
}

/// Runs the serving bench at every pipeline depth.
///
/// # Panics
///
/// Panics if the engine fails to start or a serve run drops requests —
/// the bench measures working configurations only.
pub fn run(workload: &ServeWorkload) -> Vec<ServeTiming> {
    let model = TinyConfig::default();
    let mut results = Vec::new();
    for devices in depths(&model) {
        let config = ServeConfig {
            model: model.clone(),
            devices,
            max_batch: 4,
            top_k: 4,
        };
        // Equivalence first, on a closed-loop stream (fresh engine so the
        // check exercises engine start as well).
        let check = workload
            .spec(1000 + devices as u64, None)
            .generate(model.vocab, model.seq_len);
        let greedy = greedy_matches_reference(&config, &check)
            .unwrap_or_else(|e| panic!("pp{devices}: equivalence check failed: {e}"));
        // Measured run: warm the arena with one closed-loop wave, then
        // serve the open-loop Poisson stream with fresh counters.
        let mut engine = ServeEngine::start(config).unwrap_or_else(|e| panic!("pp{devices}: {e}"));
        let warm = workload
            .spec(2000 + devices as u64, None)
            .generate(model.vocab, model.seq_len);
        engine.serve(&warm);
        alloc::reset_counters();
        let stream = workload
            .spec(3000 + devices as u64, Some(workload.rate))
            .generate(model.vocab, model.seq_len);
        let run = engine.serve(&stream);
        let arena = alloc::stats();
        engine.shutdown();
        assert_eq!(
            run.completions.len(),
            stream.len(),
            "pp{devices}: dropped requests"
        );
        results.push(ServeTiming {
            name: format!("pp{devices}"),
            devices,
            requests: run.completions.len(),
            tokens: run.tokens(),
            steps: run.steps,
            tokens_per_sec: run.tokens_per_sec(),
            p50_ms: run.latency_quantile(0.5) * 1e3,
            p99_ms: run.latency_quantile(0.99) * 1e3,
            occupancy: run.occupancy(),
            arena,
            greedy_matches_reference: greedy,
        });
    }
    results
}

fn stats_json(s: &ArenaStats) -> String {
    format!(
        "{{\"fresh\": {}, \"reuse\": {}, \"outstanding\": {}, \"cached\": {}, \"reuse_ratio\": {}}}",
        s.fresh,
        s.reuse,
        s.outstanding,
        s.cached,
        json_f64(s.reuse_ratio())
    )
}

/// Renders the bench as the `BENCH_serve.json` document. The top-level
/// `greedy_matches_reference` is the conjunction over every pipeline depth
/// — the flag the CI serving gate checks.
pub fn to_json(workload: &ServeWorkload, results: &[ServeTiming]) -> String {
    let config = TinyConfig::default();
    let all_match = results.iter().all(|t| t.greedy_matches_reference);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str("  \"generated_by\": \"repro servebench --json\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"layers\": {}, \"hidden\": {}, \"heads\": {}, \"seq_len\": {}, \"vocab\": {}, \"max_batch\": 4, \"top_k\": 4}},\n",
        config.layers, config.hidden, config.heads, config.seq_len, config.vocab
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"requests\": {}, \"rate_per_sec\": {}, \"prompt_len\": [{}, {}], \"output_len\": [{}, {}]}},\n",
        workload.requests,
        json_f64(workload.rate),
        workload.prompt_len.0,
        workload.prompt_len.1,
        workload.output_len.0,
        workload.output_len.1
    ));
    out.push_str(&format!("  \"greedy_matches_reference\": {all_match},\n"));
    out.push_str("  \"pipelines\": [\n");
    for (i, t) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"devices\": {}, \"requests\": {}, \"tokens\": {}, \"steps\": {}, \"tokens_per_sec\": {}, \"p50_token_latency_ms\": {}, \"p99_token_latency_ms\": {}, \"batch_occupancy\": {}, \"arena\": {}, \"greedy_matches_reference\": {}}}{}\n",
            json_escape(&t.name),
            t.devices,
            t.requests,
            t.tokens,
            t.steps,
            json_f64(t.tokens_per_sec),
            json_f64(t.p50_ms),
            json_f64(t.p99_ms),
            json_f64(t.occupancy),
            stats_json(&t.arena),
            t.greedy_matches_reference,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena_test_lock;

    #[test]
    fn quick_bench_meets_the_slo_floors() {
        let _guard = arena_test_lock();
        let workload = ServeWorkload::new(true);
        let results = run(&workload);
        assert_eq!(results.len(), 3, "pp1/pp2/pp4 over 4 layers");
        for t in &results {
            assert!(t.greedy_matches_reference, "{}: diverged", t.name);
            assert_eq!(t.requests, workload.requests, "{}", t.name);
            assert!(t.tokens > 0 && t.steps > 0, "{}", t.name);
            assert!(t.tokens_per_sec > 0.0, "{}", t.name);
            assert!(t.p50_ms > 0.0 && t.p99_ms >= t.p50_ms, "{}", t.name);
            assert!(t.p99_ms.is_finite(), "{}", t.name);
            assert!(t.occupancy > 0.0 && t.occupancy <= 1.0, "{}", t.name);
            assert!(
                t.arena.reuse_ratio() > 0.5,
                "{}: warmed pool barely recycled: {:?}",
                t.name,
                t.arena
            );
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let _guard = arena_test_lock();
        let workload = ServeWorkload::new(true);
        let results = run(&workload);
        let doc = to_json(&workload, &results);
        assert!(doc.contains("\"bench\": \"serve\""));
        assert!(doc.contains("\"greedy_matches_reference\": true"));
        assert!(doc.contains("\"tokens_per_sec\""));
        assert!(doc.contains("\"p99_token_latency_ms\""));
        assert!(doc.contains("\"batch_occupancy\""));
        assert!(doc.contains("\"reuse_ratio\""));
        assert!(doc.contains("\"pp1\"") && doc.contains("\"pp2\"") && doc.contains("\"pp4\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
