//! `repro check` — sweeps every schedule generator family through the
//! `vp-check` static analyzer and reports the verdict per case.
//!
//! The sweep is the executable form of the §5 generality claim: every
//! built-in schedule — plain/zero-bubble/interleaved 1F1B, the three
//! vocabulary variants with and without sharded input layers, interlaced,
//! V-Half, directly synthesized pass sets, and the forward-only
//! decode-pipeline family (checked under rendezvous semantics, where the
//! sampling all-gather blocks the device thread) — must come out of the
//! analyses with zero diagnostics. `ci.sh` runs it as a gate, twice, and
//! requires byte-identical JSON.

use vp_check::{check_with, CheckConfig, CheckReport};
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::{
    ChunkPlacement, PassKind, Schedule, ScheduleKind, ScheduledPass, VocabVariant,
};
use vp_schedule::synth::{synthesize, NominalPass, SynthInput};

/// One sweep entry: a named schedule and its analysis report.
pub struct CheckCase {
    /// Human-readable case id, e.g. `vocab-1f1b/alg2+input p=4 m=8`.
    pub name: String,
    /// The full static-analysis report.
    pub report: CheckReport,
}

/// One grid case before analysis: the schedule plus the configuration it
/// must be checked under. `repro modelcheck` reuses the exact same list
/// so the differential harness covers precisely what the static gate
/// covers.
pub struct SweepCase {
    /// Human-readable case id.
    pub name: String,
    /// The schedule under test.
    pub schedule: Schedule,
    /// Analysis configuration (decode cases set `forward_only`).
    pub config: CheckConfig,
}

fn zb_times() -> PassTimes {
    PassTimes {
        w: 1.0,
        b: 1.0,
        ..PassTimes::default()
    }
}

fn variant_tag(variant: VocabVariant) -> &'static str {
    match variant {
        VocabVariant::Naive => "naive",
        VocabVariant::Alg1 => "alg1",
        VocabVariant::Alg2 => "alg2",
    }
}

const VARIANTS: [VocabVariant; 3] = [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2];

/// A directly synthesized vocabulary schedule: hand-written nominal
/// priorities, explicit per-device activation caps — exercising the
/// greedy synthesizer path rather than a generator's building block.
fn synth_direct(p: usize, m: u32, variant: VocabVariant) -> (Schedule, CheckConfig) {
    let mut passes: Vec<Vec<NominalPass>> = Vec::with_capacity(p);
    for d in 0..p {
        let mut list = Vec::new();
        for mb in 0..m {
            let base = f64::from(mb) * 10.0 + d as f64 * 0.1;
            list.push(NominalPass {
                pass: ScheduledPass::new(PassKind::F, mb),
                priority: base,
            });
            list.push(NominalPass {
                pass: ScheduledPass::new(PassKind::S, mb),
                priority: base + 3.0,
            });
            if variant == VocabVariant::Naive {
                list.push(NominalPass {
                    pass: ScheduledPass::new(PassKind::S2, mb),
                    priority: base + 4.0,
                });
            }
            list.push(NominalPass {
                pass: ScheduledPass::new(PassKind::T, mb),
                priority: base + 5.0,
            });
            list.push(NominalPass {
                pass: ScheduledPass::new(PassKind::B, mb),
                priority: base + 6.0,
            });
        }
        passes.push(list);
    }
    let caps: Vec<usize> = (0..p).map(|d| p - d + variant.barriers()).collect();
    let schedule = synthesize(&SynthInput {
        kind: ScheduleKind::Vocab(variant),
        num_microbatches: m,
        chunks: 1,
        placement: ChunkPlacement::VShape,
        passes,
        activation_caps: Some(caps.iter().map(|&c| vec![c]).collect()),
        times: PassTimes::default(),
    });
    // The synthesizer's stall valve may exceed the nominal cap by the few
    // relaxation steps it takes; grant the same slack the valve has.
    let config = CheckConfig {
        activation_caps: Some(caps.iter().map(|&c| (c + 2).min(m as usize)).collect()),
        ..CheckConfig::default()
    };
    (schedule, config)
}

/// Enumerates the full sweep grid: every generator family across the
/// `(p, m)` grid, all vocabulary variants, with and without sharded input
/// layers, the synthesizer-direct cases, and the forward-only
/// decode-pipeline family across `(p, batch)`.
pub fn sweep_cases() -> Vec<SweepCase> {
    let mut cases = Vec::new();
    let mut push = |name: String, schedule: &Schedule, config: &CheckConfig| {
        cases.push(SweepCase {
            name,
            schedule: schedule.clone(),
            config: config.clone(),
        });
    };
    let default_cfg = CheckConfig::default();
    for &p in &[2usize, 4, 8] {
        for &m in &[4u32, 8, 24] {
            if (m as usize) < p {
                // Fewer microbatches than pipeline depth starves the
                // steady state; generators target m ≥ p (§6 uses m ≫ p).
                continue;
            }
            let grid = format!("p={p} m={m}");
            push(
                format!("1f1b {grid}"),
                &generators::one_f_one_b(p, m, PassTimes::default()),
                &default_cfg,
            );
            push(
                format!("zb-1f1b {grid}"),
                &generators::zb_1f1b(p, m, zb_times()),
                &default_cfg,
            );
            push(
                format!("interlaced-1f1b {grid}"),
                &generators::interlaced_1f1b(p, m, PassTimes::default()),
                &default_cfg,
            );
            push(
                format!("interleaved-1f1b x2 {grid}"),
                &generators::interleaved_1f1b(p, 2, m, PassTimes::default()),
                &default_cfg,
            );
            push(
                format!("vhalf {grid}"),
                &generators::vhalf(p, m, PassTimes::default()),
                &default_cfg,
            );
            for variant in VARIANTS {
                let tag = variant_tag(variant);
                for include_input in [false, true] {
                    let suffix = if include_input { "+input" } else { "" };
                    push(
                        format!("vocab-1f1b/{tag}{suffix} {grid}"),
                        &generators::vocab_1f1b(p, m, variant, PassTimes::default(), include_input),
                        &default_cfg,
                    );
                    push(
                        format!("zb-vocab-1f1b/{tag}{suffix} {grid}"),
                        &generators::zb_vocab_1f1b(p, m, variant, zb_times(), include_input),
                        &default_cfg,
                    );
                    push(
                        format!("interleaved-vocab x2/{tag}{suffix} {grid}"),
                        &generators::interleaved_vocab_1f1b(
                            p,
                            2,
                            m,
                            variant,
                            PassTimes::default(),
                            include_input,
                        ),
                        &default_cfg,
                    );
                    push(
                        format!("vhalf-vocab/{tag}{suffix} {grid}"),
                        &generators::vhalf_vocab(
                            p,
                            m,
                            variant,
                            PassTimes::default(),
                            include_input,
                        ),
                        &default_cfg,
                    );
                }
                let (schedule, config) = synth_direct(p, m, variant);
                push(format!("synth-direct/{tag} {grid}"), &schedule, &config);
            }
        }
    }
    // The serving-side family: forward-only decode pipelines, checked
    // under rendezvous semantics (the sampling all-gather is synchronous).
    // Batch size plays the microbatch role and goes below p — decode
    // steady state interleaves streams, there is no m ≥ p constraint.
    let decode_cfg = CheckConfig {
        forward_only: true,
        ..CheckConfig::default()
    };
    for &p in &[2usize, 4, 8] {
        for &b in &[1u32, 2, 4, 8, 24] {
            push(
                format!("decode-pipeline p={p} b={b}"),
                &generators::decode_pipeline(p, b),
                &decode_cfg,
            );
            // The overlapped family splits each S from its deferred T
            // merge; its S slots are stream-offloaded rather than
            // rendezvous, which the per-slot classification in
            // `sync_collectives` picks up from the presence of T.
            push(
                format!("decode-pipeline-overlap p={p} b={b}"),
                &generators::decode_pipeline_overlap(p, b),
                &decode_cfg,
            );
        }
    }
    cases
}

/// Runs the static analyzer over every [`sweep_cases`] entry.
pub fn sweep() -> Vec<CheckCase> {
    sweep_cases()
        .into_iter()
        .map(|case| CheckCase {
            report: check_with(&case.schedule, &case.config),
            name: case.name,
        })
        .collect()
}

/// Renders the sweep as a human table plus every diagnostic of failing
/// cases in full rustc style.
pub fn render(cases: &[CheckCase]) -> String {
    let mut rows = Vec::new();
    for case in cases {
        rows.push(vec![
            case.name.clone(),
            case.report.passes.to_string(),
            case.report.hb_edges.to_string(),
            if case.report.races_checked {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            if case.report.is_clean() {
                "ok".to_string()
            } else {
                format!("{} diagnostic(s)", case.report.diagnostics.len())
            },
        ]);
    }
    let mut out = crate::table::render(
        &["case", "passes", "hb edges", "races checked", "verdict"],
        &rows,
    );
    for case in cases {
        if !case.report.is_clean() {
            out.push_str(&format!("\n--- {} ---\n", case.name));
            out.push_str(&vp_check::render_human(&case.report.diagnostics));
        }
    }
    let failing = cases.iter().filter(|c| !c.report.is_clean()).count();
    out.push_str(&format!(
        "\n{} case(s) checked, {} clean, {} failing\n",
        cases.len(),
        cases.len() - failing,
        failing
    ));
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Machine-readable sweep result: per-case verdicts with the diagnostics
/// in `vp_check::render_json`'s format.
pub fn to_json(cases: &[CheckCase]) -> String {
    let failing = cases.iter().filter(|c| !c.report.is_clean()).count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cases\": {},\n", cases.len()));
    out.push_str(&format!("  \"failing\": {},\n", failing));
    out.push_str("  \"results\": [\n");
    for (i, case) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"passes\": {}, \"hb_edges\": {}, \"races_checked\": {}, \
             \"clean\": {}, \"diagnostics\": {}}}{}\n",
            json_escape(&case.name),
            case.report.passes,
            case.report.hb_edges,
            case.report.races_checked,
            case.report.is_clean(),
            vp_check::render_json(&case.report.diagnostics),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sweep_case_is_clean() {
        // The acceptance criterion of the static analyzer: zero
        // diagnostics on every built-in generator schedule across the
        // whole grid.
        let cases = sweep();
        assert!(cases.len() > 100, "sweep too small: {}", cases.len());
        for case in &cases {
            assert!(
                case.report.is_clean(),
                "{}:\n{}",
                case.name,
                vp_check::render_human(&case.report.diagnostics)
            );
        }
        // Race analysis actually ran everywhere (acyclic graphs).
        assert!(cases.iter().all(|c| c.report.races_checked));
        // The serving family is on the grid (rendezvous semantics
        // included — these would fail VP0017 if the hoist regressed).
        let decode = cases
            .iter()
            .filter(|c| c.name.starts_with("decode-pipeline"))
            .count();
        assert_eq!(
            decode, 30,
            "decode grid is 3 depths x 5 batch sizes x 2 families"
        );
        let overlap = cases
            .iter()
            .filter(|c| c.name.starts_with("decode-pipeline-overlap"))
            .count();
        assert_eq!(overlap, 15, "overlap family covers the same grid");
    }

    #[test]
    fn json_shape_is_stable() {
        let cases: Vec<CheckCase> = sweep().into_iter().take(3).collect();
        let doc = to_json(&cases);
        assert!(doc.contains("\"cases\": 3"), "{doc}");
        assert!(doc.contains("\"failing\": 0"), "{doc}");
        assert!(doc.contains("\"diagnostics\": []"), "{doc}");
    }
}
