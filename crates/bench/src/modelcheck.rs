//! `repro modelcheck` — differential validation of the static analyses
//! against the exhaustive pass-VM model checker (`vp_check::model`).
//!
//! Two oracles look at every schedule:
//!
//! * the **static** side runs the full `vp-check` analysis and predicts
//!   "this schedule hangs" iff a hang-class diagnostic fires — `VP0001`
//!   (happens-before cycle), `VP0017` (rendezvous deadlock), or a
//!   `VP0005`/`VP0006` (missing participant / issue-order skew) whose
//!   collective is a true rendezvous, i.e. the decode sampling barrier
//!   (see [`is_hang_prediction`] for why the asynchronous cases are
//!   backend hazards outside the VM's semantics);
//! * the **dynamic** side executes the schedule on the model checker's
//!   pass-VM and reports whether some interleaving deadlocks.
//!
//! The two must agree on every input: a *false clean* (static says fine,
//! model deadlocks) is a soundness hole of the kind that shipped the PR-8
//! serving deadlock; a *false deadlock* (static rejects, model completes)
//! is an over-approximation that would block valid schedules. The corpus
//! is the entire `repro check` sweep grid plus seeded mutants of the
//! grid's schedules, so the analyzer is exercised on broken inputs — not
//! just the clean families it was tuned on. Schedules whose structure is
//! already ill-formed (`VP0002`/`VP0003` missing/duplicate passes) or that
//! violate decode mode (`VP0016`) are rejected by both sides before
//! either semantics applies; they are counted as `static_rejected` and
//! the harness asserts the model refuses them too.
//!
//! Disagreements are rendered with the model checker's replayable
//! interleaving trace so a soundness bug arrives as a concrete execution,
//! not a boolean. `ci.sh` gates on zero disagreements, a minimum mutant
//! count, and every case staying inside its explored-state budget.

use std::collections::HashSet;

use vp_check::diag::{Code, Diagnostic};
use vp_check::model::{model_check, render_trace, ModelConfig, ModelError, Verdict};
use vp_check::{check_with, CheckConfig};
use vp_schedule::pass::{PassKind, Schedule, ScheduledPass};

use crate::check::{sweep_cases, SweepCase};

/// Whether a diagnostic predicts that *this VM* blocks forever.
///
/// `VP0001` (happens-before cycle) and `VP0017` (rendezvous deadlock) are
/// hang predictions outright. `VP0005` (missing participant) and `VP0006`
/// (issue-order skew) hang a real collective *backend* — an in-order
/// stream or a fixed-world group — but the pass-VM's channels stash and
/// never block on order or membership, so they only predict a VM hang
/// when the collective involved is a true rendezvous: a decode sampling
/// barrier whose `S` pass merges inline. An `S` whose microbatch also has
/// a deferred `T` merge somewhere in the schedule (the overlapped decode
/// family) is *stream-offloaded* — the submitting thread never blocks in
/// the barrier, matching `sync_collectives`' per-slot classification — so
/// order/membership skew on it is a backend-data hazard, not a VM hang.
/// The non-rendezvous cases are deliberate over-approximations of backend
/// behavior the model cannot exhibit ([`Outcome::OutOfModel`]).
fn is_hang_prediction(d: &Diagnostic, forward_only: bool, deferred: &HashSet<u32>) -> bool {
    match d.code {
        Code::Deadlock | Code::RendezvousDeadlock => true,
        Code::MissingParticipant | Code::CollectiveOrder => {
            forward_only
                && d.primary
                    .iter()
                    .chain(d.related.iter().map(|(site, _)| site))
                    .any(|site| {
                        site.pass.kind == PassKind::S && !deferred.contains(&site.pass.microbatch)
                    })
        }
        _ => false,
    }
}

/// Microbatches whose sampling merge is deferred to a `T` pass somewhere
/// in the schedule — mirrors the per-slot rendezvous rule of
/// `vp_schedule`'s `sync_collectives`.
fn deferred_merges(schedule: &Schedule) -> HashSet<u32> {
    (0..schedule.devices())
        .flat_map(|d| schedule.passes(d).iter())
        .filter(|pass| pass.kind == PassKind::T)
        .map(|pass| pass.microbatch)
        .collect()
}

/// How one differential case resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Both oracles say the schedule completes.
    AgreeClean,
    /// Both oracles say the schedule hangs.
    AgreeDeadlock,
    /// The static analyzer rejected the schedule before deadlock
    /// semantics applied (structure or mode defect) and the model
    /// refused it for the same reason.
    StaticRejected,
    /// The static analyzer flagged a collective-backend hazard
    /// (`VP0005`/`VP0006` on asynchronous collectives) that the
    /// channel-based VM cannot exhibit; the VM completes, as expected.
    /// Still a killed mutant, but excluded from the deadlock comparison.
    OutOfModel,
    /// The oracles disagree — a soundness bug in one of them.
    Disagree,
}

/// One differential verdict.
pub struct ModelCase {
    /// Case id, e.g. `decode-pipeline p=2 b=4` or
    /// `mutant/unhoist-inputf seed=17 of decode-pipeline p=2 b=4`.
    pub name: String,
    /// Whether the case is a seeded mutant (vs a pristine grid schedule).
    pub mutant: bool,
    /// How it resolved.
    pub outcome: Outcome,
    /// Hang-class codes the static side reported.
    pub static_codes: Vec<&'static str>,
    /// Whether the model found a deadlock (`None` when the model refused
    /// the input as structurally broken / mode-violating).
    pub model_deadlock: Option<bool>,
    /// Distinct states the model explored (0 when refused).
    pub states: usize,
    /// The per-case explored-state budget the model ran under.
    pub budget: usize,
    /// For disagreements: the replayable interleaving trace (or the
    /// model's completion note) proving the dynamic verdict.
    pub evidence: String,
}

/// Explored-state budget for a schedule: the reduced exploration is
/// linear (one state per transition, arrivals included), so a small
/// multiple of the pass count plus slack is a tight cap that still
/// catches exploration blow-ups immediately.
pub fn state_budget(schedule: &Schedule) -> usize {
    4 * schedule.total_passes() + 64
}

fn static_hang_codes(
    report: &vp_check::CheckReport,
    forward_only: bool,
    deferred: &HashSet<u32>,
) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter(|d| is_hang_prediction(d, forward_only, deferred))
        .map(|d| d.code.as_str())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

fn out_of_model_codes(
    report: &vp_check::CheckReport,
    forward_only: bool,
    deferred: &HashSet<u32>,
) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter(|d| {
            matches!(d.code, Code::MissingParticipant | Code::CollectiveOrder)
                && !is_hang_prediction(d, forward_only, deferred)
        })
        .map(|d| d.code.as_str())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

fn static_rejects(report: &vp_check::CheckReport) -> bool {
    report.diagnostics.iter().any(|d| {
        matches!(
            d.code,
            Code::MissingPass | Code::DuplicatePass | Code::BackwardInDecode
        )
    })
}

/// Runs one schedule through both oracles.
fn differential(
    name: String,
    mutant: bool,
    schedule: &Schedule,
    config: &CheckConfig,
) -> ModelCase {
    let report = check_with(schedule, config);
    let deferred = deferred_merges(schedule);
    let static_codes = static_hang_codes(&report, config.forward_only, &deferred);
    let budget = state_budget(schedule);
    let model_cfg = ModelConfig {
        forward_only: config.forward_only,
        max_states: budget,
        full: false,
    };
    let model = model_check(schedule, &model_cfg);
    if static_rejects(&report) {
        // Structure/mode defects precede deadlock semantics on both
        // sides; the model must refuse such inputs rather than run them.
        let (outcome, evidence) = match model {
            Err(ModelError::Structure(_) | ModelError::ModeViolation { .. }) => {
                (Outcome::StaticRejected, String::new())
            }
            ref other => (
                Outcome::Disagree,
                format!("static analyzer rejected the schedule but the model ran it: {other:?}"),
            ),
        };
        return ModelCase {
            name,
            mutant,
            outcome,
            static_codes,
            model_deadlock: None,
            states: 0,
            budget,
            evidence,
        };
    }
    match model {
        Ok(verdict) => {
            let deadlocked = verdict.deadlocked();
            let static_hang = !static_codes.is_empty();
            let (outcome, evidence) = if deadlocked != static_hang {
                let evidence = match &verdict {
                    Verdict::Deadlock(report) => format!(
                        "FALSE CLEAN: static analysis reports no hang, but this interleaving \
                         blocks:\n{}",
                        render_trace(report)
                    ),
                    Verdict::Completes { states, steps } => format!(
                        "FALSE DEADLOCK: static analysis reports {static_codes:?}, but every \
                         interleaving completes ({states} states, {steps} steps)"
                    ),
                };
                (Outcome::Disagree, evidence)
            } else if deadlocked {
                (Outcome::AgreeDeadlock, String::new())
            } else if !out_of_model_codes(&report, config.forward_only, &deferred).is_empty() {
                (Outcome::OutOfModel, String::new())
            } else {
                (Outcome::AgreeClean, String::new())
            };
            ModelCase {
                name,
                mutant,
                outcome,
                static_codes,
                model_deadlock: Some(deadlocked),
                states: verdict.states(),
                budget,
                evidence,
            }
        }
        Err(err) => ModelCase {
            name,
            mutant,
            outcome: Outcome::Disagree,
            static_codes,
            model_deadlock: None,
            states: 0,
            budget,
            evidence: format!(
                "static analysis accepted the schedule but the model refused it: {err}"
            ),
        },
    }
}

/// Deterministic splitmix-fed LCG, same construction as the mutation test
/// suites — reproducible mutants, no external randomness.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }
}

fn device_passes(schedule: &Schedule) -> Vec<Vec<ScheduledPass>> {
    (0..schedule.devices())
        .map(|d| schedule.passes(d).to_vec())
        .collect()
}

fn rebuild(schedule: &Schedule, passes: Vec<Vec<ScheduledPass>>) -> Schedule {
    Schedule::new(
        schedule.kind(),
        schedule.num_microbatches(),
        schedule.chunks(),
        passes,
    )
    .with_placement(schedule.placement())
}

/// A seed-driven mutation operator: produces a mutated schedule, or
/// `None` when the schedule has no applicable site.
type Operator = fn(&Schedule, &mut Lcg) -> Option<Schedule>;

/// The mutation operators. They mirror the hand-written mutants of the
/// `vp-check` test suites but run across the *whole* grid, seeded.
const OPERATORS: [(&str, Operator); 6] = [
    ("swap-adjacent", mutate_swap_adjacent),
    ("drop-pass", mutate_drop_pass),
    ("dup-pass", mutate_dup_pass),
    ("unhoist-inputf", mutate_unhoist_inputf),
    ("insert-backward", mutate_insert_backward),
    ("missplit-overlap", mutate_missplit_overlap),
];

/// Swaps two adjacent passes on a random device — order skews, cycles,
/// or (often) a still-valid schedule; the differential harness does not
/// care which, only that both oracles say the same thing.
fn mutate_swap_adjacent(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let mut passes = device_passes(schedule);
    let candidates: Vec<usize> = (0..passes.len())
        .filter(|&d| passes[d].len() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let d = candidates[rng.below(candidates.len())];
    let i = rng.below(passes[d].len() - 1);
    passes[d].swap(i, i + 1);
    Some(rebuild(schedule, passes))
}

/// Removes one random pass — missing-pass structure errors, coverage
/// holes, or (for decode `S`) a rendezvous that can never complete.
fn mutate_drop_pass(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let mut passes = device_passes(schedule);
    let candidates: Vec<usize> = (0..passes.len())
        .filter(|&d| !passes[d].is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let d = candidates[rng.below(candidates.len())];
    let i = rng.below(passes[d].len());
    passes[d].remove(i);
    Some(rebuild(schedule, passes))
}

/// Duplicates one random pass in place (`VP0003` on the static side; the
/// model refuses the ill-formed index).
fn mutate_dup_pass(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let mut passes = device_passes(schedule);
    let candidates: Vec<usize> = (0..passes.len())
        .filter(|&d| !passes[d].is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let d = candidates[rng.below(candidates.len())];
    let i = rng.below(passes[d].len());
    let dup = passes[d][i];
    passes[d].insert(i + 1, dup);
    Some(rebuild(schedule, passes))
}

/// Un-hoists one `InputF` send: moves it from the hoisted head of the
/// device's list back to its "natural" position, immediately before the
/// device's own `F` of the same slot — which in steady state means right
/// *after* an `S` rendezvous. The exact PR-8 regression shape: the row is
/// still unsent when the device enters the sampling barrier, while stage
/// 0 needs it to reach the same barrier. Only sender devices (`d > 0`)
/// qualify — stage 0 consumes its own row locally.
fn mutate_unhoist_inputf(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let mut passes = device_passes(schedule);
    let mut sites: Vec<(usize, usize, usize)> = Vec::new();
    for (d, list) in passes.iter().enumerate().skip(1) {
        for i in 1..list.len() {
            if list[i].kind != PassKind::F || list[i - 1].kind != PassKind::S {
                continue;
            }
            let Some(j) = list.iter().position(|pass| {
                pass.kind == PassKind::InputF && pass.microbatch == list[i].microbatch
            }) else {
                continue;
            };
            if j < i - 1 {
                sites.push((d, i, j));
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (d, i, j) = sites[rng.below(sites.len())];
    let row = passes[d].remove(j);
    passes[d].insert(i - 1, row);
    Some(rebuild(schedule, passes))
}

/// Rebuilds an overlapped decode schedule with an *inconsistent* S/T
/// split across devices: device 0 merges each slot immediately (zero
/// S→T lag) while every other device defers its merge by a seeded lag of
/// two or three forwards — the `decode_pipeline_overlap_missplit` shape.
/// For `p ≥ 2`, `m ≥ 2` the asymmetric happens-before graph cycles
/// (`VP0001`) and the VM reaches the same stuck state. Applies only to
/// forward-only schedules that actually defer merges (contain `T`).
fn mutate_missplit_overlap(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let passes = device_passes(schedule);
    let has_t = passes.iter().flatten().any(|pass| pass.kind == PassKind::T);
    let decode_only = passes.iter().flatten().all(|pass| pass.kind.decode_safe());
    if !has_t || !decode_only || passes.len() < 2 {
        return None;
    }
    let m = schedule.num_microbatches();
    let lag = 2 + rng.below(2) as u32;
    let mut mutated = Vec::with_capacity(passes.len());
    for d in 0..passes.len() {
        let mut v = Vec::new();
        for k in 0..m {
            v.push(ScheduledPass::new(PassKind::InputF, k));
        }
        if d == 0 {
            // Zero lag: merge immediately after every forward, as if
            // this device's overlapped half-batch were empty.
            for k in 0..m {
                v.push(ScheduledPass::new(PassKind::F, k));
                v.push(ScheduledPass::new(PassKind::S, k));
                v.push(ScheduledPass::new(PassKind::T, k));
            }
        } else {
            for k in 0..m.min(lag) {
                v.push(ScheduledPass::new(PassKind::F, k));
            }
            for k in lag..m {
                v.push(ScheduledPass::new(PassKind::S, k - lag));
                v.push(ScheduledPass::new(PassKind::F, k));
                v.push(ScheduledPass::new(PassKind::T, k - lag));
            }
            for k in m.saturating_sub(lag)..m {
                v.push(ScheduledPass::new(PassKind::S, k));
                v.push(ScheduledPass::new(PassKind::T, k));
            }
        }
        mutated.push(v);
    }
    Some(rebuild(schedule, mutated))
}

/// Appends a backward pass to a random device — a mode violation in
/// decode (`VP0016`), a structure error or harmless extra in training.
fn mutate_insert_backward(schedule: &Schedule, rng: &mut Lcg) -> Option<Schedule> {
    let mut passes = device_passes(schedule);
    let d = rng.below(passes.len());
    let mb = rng.next() as u32 % schedule.num_microbatches();
    passes[d].push(ScheduledPass::new(PassKind::B, mb));
    Some(rebuild(schedule, passes))
}

/// Seeds per (operator, base case) pair. 6 operators x 4 seeds over the
/// decode sub-grid plus 6 x 1 over a training sample comfortably clears
/// the 240-mutant floor while keeping the run in CI time.
const DECODE_SEEDS: u64 = 4;
const TRAINING_SEEDS: u64 = 1;

/// Runs the full differential suite: every sweep-grid case pristine, then
/// seeded mutants of each.
pub fn run() -> Vec<ModelCase> {
    let grid = sweep_cases();
    let mut out = Vec::new();
    for SweepCase {
        name,
        schedule,
        config,
    } in &grid
    {
        out.push(differential(name.clone(), false, schedule, config));
    }
    // Mutants: heavier on the decode family (the rendezvous semantics
    // under test), lighter on the large training schedules.
    let mut mutant_seed = 0u64;
    for SweepCase {
        name,
        schedule,
        config,
    } in &grid
    {
        let seeds = if config.forward_only {
            DECODE_SEEDS
        } else {
            TRAINING_SEEDS
        };
        // Skip the biggest training schedules: mutating a p=8 m=24
        // interleaved schedule exercises nothing the p=2 m=4 one does
        // not, and the corpus stays fast enough to run twice in CI.
        if !config.forward_only && schedule.total_passes() > 200 {
            continue;
        }
        for (op_name, op) in OPERATORS {
            for s in 0..seeds {
                mutant_seed += 1;
                let mut rng = Lcg::new(mutant_seed.wrapping_mul(1000) + s);
                if let Some(mutated) = op(schedule, &mut rng) {
                    out.push(differential(
                        format!("mutant/{op_name} seed={mutant_seed} of {name}"),
                        true,
                        &mutated,
                        config,
                    ));
                }
            }
        }
    }
    out
}

/// Renders the differential run as a human table plus full evidence for
/// every disagreement.
pub fn render(cases: &[ModelCase]) -> String {
    let mut rows = Vec::new();
    for case in cases {
        if case.mutant && case.outcome != Outcome::Disagree {
            continue; // hundreds of agreeing mutants: summarized below
        }
        rows.push(vec![
            case.name.clone(),
            match case.outcome {
                Outcome::AgreeClean => "clean".to_string(),
                Outcome::AgreeDeadlock => "deadlock (both)".to_string(),
                Outcome::StaticRejected => "rejected (both)".to_string(),
                Outcome::OutOfModel => "backend hazard (static only)".to_string(),
                Outcome::Disagree => "DISAGREE".to_string(),
            },
            case.static_codes.join("+"),
            case.states.to_string(),
            case.budget.to_string(),
        ]);
    }
    let mut out = crate::table::render(
        &["case", "verdict", "static codes", "states", "budget"],
        &rows,
    );
    for case in cases {
        if case.outcome == Outcome::Disagree {
            out.push_str(&format!("\n--- {} ---\n{}\n", case.name, case.evidence));
        }
    }
    let mutants = cases.iter().filter(|c| c.mutant).count();
    let disagreements = cases
        .iter()
        .filter(|c| c.outcome == Outcome::Disagree)
        .count();
    let killed = cases
        .iter()
        .filter(|c| c.mutant && c.outcome != Outcome::AgreeClean)
        .count();
    out.push_str(&format!(
        "\n{} case(s): {} grid + {} mutant(s) ({} flagged by both oracles), \
         {} disagreement(s)\n",
        cases.len(),
        cases.len() - mutants,
        mutants,
        killed,
        disagreements
    ));
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Machine-readable result for `MODELCHECK.json`: summary counters the CI
/// gate asserts on, plus per-case verdicts (deterministic order — the
/// grid is deterministic and the mutant seeds are fixed).
pub fn to_json(cases: &[ModelCase]) -> String {
    let mutants = cases.iter().filter(|c| c.mutant).count();
    let disagreements = cases
        .iter()
        .filter(|c| c.outcome == Outcome::Disagree)
        .count();
    let agree_deadlock = cases
        .iter()
        .filter(|c| c.outcome == Outcome::AgreeDeadlock)
        .count();
    let out_of_model = cases
        .iter()
        .filter(|c| c.outcome == Outcome::OutOfModel)
        .count();
    let over_budget = cases.iter().filter(|c| c.states > c.budget).count();
    let max_states = cases.iter().map(|c| c.states).max().unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cases\": {},\n", cases.len()));
    out.push_str(&format!("  \"grid_cases\": {},\n", cases.len() - mutants));
    out.push_str(&format!("  \"mutants\": {mutants},\n"));
    out.push_str(&format!("  \"disagreements\": {disagreements},\n"));
    out.push_str(&format!("  \"agree_deadlock\": {agree_deadlock},\n"));
    out.push_str(&format!("  \"out_of_model\": {out_of_model},\n"));
    out.push_str(&format!("  \"over_budget\": {over_budget},\n"));
    out.push_str(&format!("  \"max_states\": {max_states},\n"));
    out.push_str("  \"results\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let outcome = match case.outcome {
            Outcome::AgreeClean => "agree_clean",
            Outcome::AgreeDeadlock => "agree_deadlock",
            Outcome::StaticRejected => "static_rejected",
            Outcome::OutOfModel => "out_of_model",
            Outcome::Disagree => "disagree",
        };
        let model = match case.model_deadlock {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mutant\": {}, \"outcome\": \"{outcome}\", \
             \"static_codes\": [{}], \"model_deadlock\": {model}, \"states\": {}, \
             \"budget\": {}{}}}{}\n",
            json_escape(&case.name),
            case.mutant,
            case.static_codes
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", "),
            case.states,
            case.budget,
            if case.evidence.is_empty() {
                String::new()
            } else {
                format!(", \"evidence\": \"{}\"", json_escape(&case.evidence))
            },
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_suite_has_zero_disagreements() {
        // The PR's acceptance criterion: the static analyses and the
        // model checker agree on every grid schedule and every seeded
        // mutant — no false cleans, no false deadlocks.
        let cases = run();
        let disagreements: Vec<&ModelCase> = cases
            .iter()
            .filter(|c| c.outcome == Outcome::Disagree)
            .collect();
        assert!(
            disagreements.is_empty(),
            "{} disagreement(s), first: {} — {}",
            disagreements.len(),
            disagreements[0].name,
            disagreements[0].evidence
        );
        let mutants = cases.iter().filter(|c| c.mutant).count();
        assert!(mutants >= 240, "mutant corpus too small: {mutants}");
        // Pristine grid cases all agree-clean; deadlocks only ever come
        // from mutants.
        assert!(cases
            .iter()
            .filter(|c| !c.mutant)
            .all(|c| c.outcome == Outcome::AgreeClean));
        // Some mutants actually hang (the corpus is not all-rejected),
        // proving the deadlock path of both oracles runs.
        assert!(cases
            .iter()
            .any(|c| c.mutant && c.outcome == Outcome::AgreeDeadlock));
        // Every model run stayed inside its explored-state budget.
        assert!(cases.iter().all(|c| c.states <= c.budget));
    }

    #[test]
    fn unhoist_mutants_exist_and_deadlock() {
        let cases = run();
        let unhoisted: Vec<&ModelCase> = cases
            .iter()
            .filter(|c| c.name.starts_with("mutant/unhoist-inputf") && c.name.contains("decode"))
            .collect();
        assert!(!unhoisted.is_empty());
        // The PR-8 shape: both oracles call the un-hoisted decode
        // schedule a deadlock, and the static side names VP0017.
        assert!(unhoisted
            .iter()
            .any(|c| c.outcome == Outcome::AgreeDeadlock && c.static_codes.contains(&"VP0017")));
    }

    #[test]
    fn missplit_overlap_mutants_exist_and_deadlock() {
        let cases = run();
        let missplit: Vec<&ModelCase> = cases
            .iter()
            .filter(|c| {
                c.name.starts_with("mutant/missplit-overlap")
                    && c.name.contains("decode-pipeline-overlap")
            })
            .collect();
        assert!(!missplit.is_empty());
        // The inconsistent S/T split: both oracles call it a deadlock,
        // and the static side names the happens-before cycle.
        assert!(missplit
            .iter()
            .any(|c| c.outcome == Outcome::AgreeDeadlock && c.static_codes.contains(&"VP0001")));
        // The mis-split only applies where merges are actually deferred:
        // the inline decode family must yield no such mutants.
        assert!(!cases.iter().any(|c| {
            c.name.starts_with("mutant/missplit-overlap")
                && c.name.contains(" of decode-pipeline p=")
        }));
    }

    #[test]
    fn json_is_deterministic() {
        let a = to_json(&run());
        let b = to_json(&run());
        assert_eq!(a, b);
        assert!(a.contains("\"disagreements\": 0"), "{}", &a[..200]);
    }
}
