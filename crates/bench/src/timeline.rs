//! The `repro timeline` experiment: run a schedule through the simulator
//! *and* the numeric runtime, export the measured Chrome trace, and report
//! where the two timelines diverge.
//!
//! For each case the simulator executes the schedule on unit pass costs
//! (`UnitCosts` over `PassTimes::default()`) while the runtime trains the
//! tiny GPT on the same schedule with measured-run tracing enabled
//! ([`vp_runtime::train_schedule_traced`]). The measured trace of the
//! final iteration is rendered as Chrome trace-event JSON next to the
//! simulator's exports (`traces/measured-<name>.trace.json`), and
//! [`vp_sim::compare_timelines`] reduces both sides to per-pass-kind busy
//! shares whose divergence CI gates.

use crate::table::{json_escape, json_f64};
use std::path::{Path, PathBuf};
use vp_runtime::{train_schedule_traced, DataSource, SyntheticCorpus, TimelineReport, TinyConfig};
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::generators;
use vp_schedule::pass::{Schedule, VocabVariant};
use vp_sim::{compare_timelines, DivergenceReport};

/// One schedule measured both ways.
#[derive(Debug)]
pub struct TimelineCase {
    /// Short case name (also names the trace file).
    pub name: &'static str,
    /// Final training loss of the measured run (sanity: it really trained).
    pub final_loss: f64,
    /// Analysis of the measured event stream.
    pub measured: TimelineReport,
    /// Per-pass-kind sim-vs-measured share divergence.
    pub divergence: DivergenceReport,
    /// Chrome trace-event JSON of the measured final iteration.
    pub trace_json: String,
    /// Events that did not fit the per-device buffers (0 in healthy runs).
    pub dropped_events: usize,
}

/// The cases `repro timeline` runs: the plain 1F1B baseline and a
/// vocabulary-parallel (Algorithm 2) schedule, both on 4 devices with the
/// tiny-GPT default of 4 microbatches.
fn cases(config: &TinyConfig) -> Vec<(&'static str, Schedule)> {
    let m = config.microbatches as u32;
    let times = PassTimes::default();
    vec![
        ("1f1b", generators::one_f_one_b(4, m, times)),
        (
            "vocab2-1f1b",
            generators::vocab_1f1b(4, m, VocabVariant::Alg2, times, true),
        ),
    ]
}

/// Runs every case: simulator on unit costs, numeric runtime with tracing,
/// then the divergence comparison.
///
/// # Panics
///
/// Panics if a schedule fails to validate or train — these are the same
/// fixed cases the unit tests cover, so failure is a bug, not an input
/// error.
pub fn run(iterations: usize) -> Vec<TimelineCase> {
    let config = TinyConfig::default();
    let corpus = DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    cases(&config)
        .into_iter()
        .map(|(name, schedule)| {
            let costs = UnitCosts::new(PassTimes::default(), schedule.chunks());
            let sim_exec = Executor::new(&costs)
                .run(&schedule)
                .expect("timeline schedules validate");
            let sim = vp_schedule::analysis::ScheduleAnalysis::new(&schedule, &sim_exec);
            let (report, log) = train_schedule_traced(&config, &schedule, iterations, &corpus)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let measured = log.report();
            let divergence = compare_timelines(&sim, &measured);
            TimelineCase {
                name,
                final_loss: *report.losses.last().expect("losses reported"),
                measured,
                divergence,
                trace_json: log.chrome_trace(),
                dropped_events: log.dropped(),
            }
        })
        .collect()
}

/// Writes each case's measured Chrome trace to
/// `dir/measured-<name>.trace.json`, creating `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_traces(dir: &Path, cases: &[TimelineCase]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for case in cases {
        let path = dir.join(format!("measured-{}.trace.json", case.name));
        std::fs::write(&path, &case.trace_json)?;
        written.push(path);
    }
    Ok(written)
}

/// Serializes the comparison as the `TIMELINE.json` document CI gates on.
pub fn to_json(cases: &[TimelineCase]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"timeline\",\n");
    out.push_str("  \"generated_by\": \"repro timeline --json\",\n");
    out.push_str("  \"schedules\": [\n");
    for (i, case) in cases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape(case.name)
        ));
        out.push_str(&format!(
            "      \"final_loss\": {},\n",
            json_f64(case.final_loss)
        ));
        out.push_str(&format!(
            "      \"makespan_ns\": {},\n",
            case.measured.makespan_ns
        ));
        out.push_str(&format!(
            "      \"critical_path_ns\": {},\n",
            case.measured.critical_path_ns
        ));
        out.push_str(&format!(
            "      \"mean_bubble\": {},\n",
            json_f64(case.measured.mean_bubble())
        ));
        out.push_str(&format!(
            "      \"comm_overlap\": {},\n",
            json_f64(case.measured.mean_comm_overlap())
        ));
        out.push_str(&format!(
            "      \"sim_bubble\": {},\n",
            json_f64(case.divergence.sim_bubble)
        ));
        out.push_str(&format!(
            "      \"max_divergence\": {},\n",
            json_f64(case.divergence.max_divergence())
        ));
        out.push_str(&format!(
            "      \"dropped_events\": {},\n",
            case.dropped_events
        ));
        out.push_str("      \"kinds\": [\n");
        for (j, k) in case.divergence.kinds.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"sim_share\": {}, \"measured_share\": {}}}{}\n",
                json_escape(k.name),
                json_f64(k.sim_share),
                json_f64(k.measured_share),
                if j + 1 == case.divergence.kinds.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_cases_measure_and_compare() {
        let cases = run(2);
        assert_eq!(cases.len(), 2);
        for case in &cases {
            assert!(case.final_loss.is_finite(), "{}", case.name);
            assert_eq!(case.dropped_events, 0, "{}", case.name);
            // The measured trace covers all 4 devices with real spans.
            assert_eq!(case.measured.devices.len(), 4, "{}", case.name);
            assert!(case.measured.total_busy_ns() > 0, "{}", case.name);
            assert!(case.trace_json.contains("traceEvents"));
            // Both sides agree on which kinds exist: F and B always.
            let names: Vec<&str> = case.divergence.kinds.iter().map(|k| k.name).collect();
            assert!(names.contains(&"F") && names.contains(&"B"), "{names:?}");
        }
        // The vocab case records S/T passes and stream work.
        let vocab = &cases[1];
        assert!(vocab.trace_json.contains("\"S\""));
        assert!(vocab.trace_json.contains("stream.job"));
        let names: Vec<&str> = vocab.divergence.kinds.iter().map(|k| k.name).collect();
        assert!(names.contains(&"S") && names.contains(&"T"), "{names:?}");
    }

    #[test]
    fn timeline_json_is_balanced_and_complete() {
        let cases = run(1);
        let doc = to_json(&cases);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"bench\": \"timeline\""));
        assert!(doc.contains("\"name\": \"1f1b\""));
        assert!(doc.contains("\"name\": \"vocab2-1f1b\""));
        assert!(doc.contains("max_divergence"));
    }
}
