//! The paper's published numbers (Tables 3, 5 and 6), embedded for
//! paper-vs-measured reporting. `None` marks the configurations the paper
//! reports as out-of-memory.

/// One (MFU %, peak-memory GB) cell; `None` = OOM in the paper.
pub type Cell = Option<(f64, f64)>;

/// Methods in Table 5's row order.
pub const TABLE5_METHODS: [&str; 5] = ["baseline", "redis", "vocab-1", "vocab-2", "interlaced"];

/// Vocabulary sizes (in units of 1024) common to Tables 5 and 6.
pub const VOCABS_K: [usize; 4] = [32, 64, 128, 256];

/// Table 5 setups: (devices, sequence length, human label).
pub const TABLE5_SETUPS: [(usize, usize, &str); 6] = [
    (8, 2048, "8GPU, seq 2048 (≈4B)"),
    (8, 4096, "8GPU, seq 4096 (≈4B)"),
    (16, 2048, "16GPU, seq 2048 (≈10B)"),
    (16, 4096, "16GPU, seq 4096 (≈10B)"),
    (32, 2048, "32GPU, seq 2048 (≈21B)"),
    (32, 4096, "32GPU, seq 4096 (≈21B)"),
];

/// Table 5 data: `[setup][method][vocab] -> (MFU %, peak GB)`.
pub const TABLE5: [[[Cell; 4]; 5]; 6] = [
    // 8 GPU, seq 2048
    [
        [
            Some((46.16, 14.86)),
            Some((40.48, 16.32)),
            Some((33.11, 19.25)),
            Some((25.23, 25.64)),
        ],
        [
            Some((46.01, 14.86)),
            Some((46.37, 16.32)),
            Some((44.22, 19.25)),
            Some((38.91, 25.64)),
        ],
        [
            Some((50.42, 15.63)),
            Some((50.28, 16.02)),
            Some((49.93, 16.84)),
            Some((50.12, 18.59)),
        ],
        [
            Some((50.23, 14.83)),
            Some((50.18, 15.23)),
            Some((49.82, 16.04)),
            Some((49.69, 17.78)),
        ],
        [
            Some((51.18, 17.20)),
            Some((50.94, 17.57)),
            Some((50.97, 18.43)),
            Some((50.92, 20.17)),
        ],
    ],
    // 8 GPU, seq 4096
    [
        [
            Some((47.05, 21.39)),
            Some((41.87, 22.85)),
            Some((35.00, 25.78)),
            Some((26.75, 31.64)),
        ],
        [
            Some((46.93, 21.39)),
            Some((46.78, 22.85)),
            Some((47.44, 25.78)),
            Some((43.01, 31.64)),
        ],
        [
            Some((50.98, 24.04)),
            Some((50.98, 24.47)),
            Some((50.83, 25.41)),
            Some((50.66, 27.34)),
        ],
        [
            Some((50.93, 22.44)),
            Some((50.75, 22.89)),
            Some((50.56, 23.80)),
            Some((50.40, 25.73)),
        ],
        [
            Some((51.41, 27.20)),
            Some((51.82, 27.64)),
            Some((51.32, 28.60)),
            Some((51.38, 30.53)),
        ],
    ],
    // 16 GPU, seq 2048
    [
        [
            Some((45.66, 24.03)),
            Some((40.09, 25.98)),
            Some((32.44, 29.92)),
            Some((24.21, 38.71)),
        ],
        [
            Some((45.56, 24.03)),
            Some((42.82, 25.98)),
            Some((38.65, 29.92)),
            Some((36.98, 38.71)),
        ],
        [
            Some((49.02, 24.37)),
            Some((50.62, 24.63)),
            Some((50.54, 25.14)),
            Some((50.66, 26.26)),
        ],
        [
            Some((48.90, 23.57)),
            Some((50.49, 23.83)),
            Some((50.46, 24.35)),
            Some((50.46, 25.47)),
        ],
        [
            Some((48.94, 29.23)),
            Some((48.97, 29.47)),
            Some((49.19, 29.97)),
            Some((49.52, 31.10)),
        ],
    ],
    // 16 GPU, seq 4096
    [
        [
            Some((47.56, 36.99)),
            Some((41.21, 38.94)),
            Some((33.88, 42.85)),
            Some((25.33, 50.90)),
        ],
        [
            Some((47.41, 36.99)),
            Some((43.07, 38.94)),
            Some((43.15, 42.85)),
            Some((40.15, 50.90)),
        ],
        [
            Some((50.93, 39.46)),
            Some((50.97, 39.73)),
            Some((50.71, 40.31)),
            Some((51.22, 41.53)),
        ],
        [
            Some((50.97, 37.89)),
            Some((50.80, 38.18)),
            Some((50.68, 38.77)),
            Some((50.90, 39.92)),
        ],
        [
            Some((49.52, 49.16)),
            Some((49.53, 49.44)),
            Some((49.77, 50.05)),
            Some((49.84, 51.28)),
        ],
    ],
    // 32 GPU, seq 2048
    [
        [
            Some((42.81, 33.45)),
            Some((37.28, 35.89)),
            Some((28.97, 41.17)),
            Some((20.86, 52.16)),
        ],
        [
            Some((43.48, 33.45)),
            Some((37.29, 35.89)),
            Some((36.32, 41.17)),
            Some((29.16, 52.16)),
        ],
        [
            Some((45.85, 33.38)),
            Some((45.92, 33.55)),
            Some((45.90, 33.86)),
            Some((46.11, 34.51)),
        ],
        [
            Some((45.54, 32.72)),
            Some((45.86, 32.88)),
            Some((45.86, 33.20)),
            Some((46.16, 33.84)),
        ],
        [
            Some((42.40, 42.94)),
            Some((42.43, 43.09)),
            Some((42.75, 43.40)),
            Some((43.25, 44.07)),
        ],
    ],
    // 32 GPU, seq 4096 (interlaced OOMs everywhere)
    [
        [
            Some((43.68, 54.97)),
            Some((38.11, 57.41)),
            Some((30.05, 62.29)),
            Some((21.63, 73.05)),
        ],
        [
            Some((44.01, 54.97)),
            Some((38.12, 57.41)),
            Some((37.87, 62.29)),
            Some((31.03, 73.05)),
        ],
        [
            Some((46.41, 57.41)),
            Some((46.44, 57.56)),
            Some((46.68, 57.88)),
            Some((46.83, 58.58)),
        ],
        [
            Some((46.23, 56.09)),
            Some((46.35, 56.26)),
            Some((46.55, 56.61)),
            Some((46.84, 57.31)),
        ],
        [None, None, None, None],
    ],
];

/// Table 6 setups: (devices, sequence length, human label).
pub const TABLE6_SETUPS: [(usize, usize, &str); 6] = [
    (16, 2048, "16GPU, seq 2048 (≈7B)"),
    (16, 4096, "16GPU, seq 4096 (≈7B)"),
    (24, 2048, "24GPU, seq 2048 (≈16B)"),
    (24, 4096, "24GPU, seq 4096 (≈16B)"),
    (32, 2048, "32GPU, seq 2048 (≈30B)"),
    (32, 4096, "32GPU, seq 4096 (≈30B)"),
];

/// Table 6 data: `[setup][method (baseline, vocab-1)][vocab]`.
pub const TABLE6: [[[Cell; 4]; 2]; 6] = [
    [
        [
            Some((46.41, 15.57)),
            Some((38.52, 19.77)),
            Some((28.75, 28.55)),
            Some((19.99, 46.77)),
        ],
        [
            Some((52.82, 13.20)),
            Some((53.11, 13.46)),
            Some((53.41, 13.98)),
            Some((52.89, 15.02)),
        ],
    ],
    [
        [
            Some((50.01, 21.22)),
            Some((41.17, 25.61)),
            Some((31.36, 34.56)),
            Some((21.90, 53.11)),
        ],
        [
            Some((58.69, 20.14)),
            Some((58.56, 20.41)),
            Some((58.44, 20.96)),
            Some((57.59, 22.06)),
        ],
    ],
    [
        [
            Some((51.07, 23.94)),
            Some((43.13, 29.12)),
            Some((32.38, 39.98)),
            Some((22.54, 61.71)),
        ],
        [
            Some((56.70, 21.08)),
            Some((56.50, 21.29)),
            Some((55.72, 21.72)),
            Some((54.86, 22.57)),
        ],
    ],
    [
        [
            Some((54.53, 33.60)),
            Some((45.96, 38.97)),
            Some((34.99, 49.90)),
            Some((24.31, 72.60)),
        ],
        [
            Some((60.09, 32.55)),
            Some((60.09, 32.78)),
            Some((59.42, 33.22)),
            Some((58.22, 34.12)),
        ],
    ],
    [
        [
            Some((52.80, 34.11)),
            Some((45.56, 40.28)),
            Some((35.69, 53.22)),
            None,
        ],
        [
            Some((57.70, 30.85)),
            Some((57.62, 31.04)),
            Some((57.69, 31.42)),
            Some((57.80, 32.18)),
        ],
    ],
    [
        [
            Some((56.06, 48.84)),
            Some((48.17, 55.19)),
            Some((37.85, 68.12)),
            None,
        ],
        [
            Some((60.10, 47.99)),
            Some((60.14, 48.19)),
            Some((60.72, 48.59)),
            Some((59.82, 49.38)),
        ],
    ],
];

/// Table 3: scaling factor (%) of partitioned vocabulary layers relative
/// to linear scaling. `[seq][layer][devices]` with seqs (2048, 4096),
/// layers (output-vocab-1, output-vocab-2, input), devices (8, 16, 32).
pub const TABLE3: [[[f64; 3]; 3]; 2] = [
    [
        [91.29, 84.22, 80.59],
        [86.72, 79.84, 75.93],
        [39.99, 28.85, 15.18],
    ],
    [
        [93.21, 88.02, 85.24],
        [88.36, 83.42, 79.66],
        [27.69, 15.52, 8.35],
    ],
];

/// Appendix B.2: removing the interlaced pipeline's synchronous
/// all-reduces improved end-to-end iteration time by this fraction
/// (21.5B model, 32 GPUs).
pub const ABLATION_B2_SPEEDUP: f64 = 0.1095;
