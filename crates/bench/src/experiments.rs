//! The experiment implementations behind the `repro` binary, one per
//! table/figure of the paper (see DESIGN.md's experiment index).

use vp_model::config::{ModelConfig, ModelPreset};
use vp_model::cost::{CostModel, Hardware, VocabAlgo};
use vp_model::partition::{StageLayout, VocabPartition};
use vp_runtime::{train_pipeline, train_reference, Mode, TinyConfig};
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::generators;
use vp_schedule::pass::VocabVariant;
use vp_schedule::render;
use vp_sim::{
    run_1f1b, run_barrier_ablation, run_interlaced_ablation, run_vhalf, run_zero_bubble, sweep,
    Method, SimReport, VHalfMethod,
};

/// One measured cell of a throughput/memory table.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredCell {
    /// MFU in percent.
    pub mfu_pct: f64,
    /// Peak memory across devices, GB.
    pub mem_gb: f64,
    /// Whether this exceeds the 80 GB device budget (paper's OOM).
    pub oom: bool,
}

impl From<&SimReport> for MeasuredCell {
    fn from(r: &SimReport) -> Self {
        MeasuredCell {
            mfu_pct: r.mfu_pct(),
            mem_gb: r.max_memory_gb(),
            oom: r.would_oom(),
        }
    }
}

fn preset_for_table5(devices: usize) -> ModelPreset {
    match devices {
        8 => ModelPreset::Gpt4B,
        16 => ModelPreset::Gpt10B,
        _ => ModelPreset::Gpt21B,
    }
}

fn preset_for_table6(devices: usize) -> ModelPreset {
    match devices {
        16 => ModelPreset::Gpt7B,
        24 => ModelPreset::Gpt16B,
        _ => ModelPreset::Gpt30B,
    }
}

fn config(preset: ModelPreset, seq: usize, vocab_k: usize, microbatches: usize) -> ModelConfig {
    preset
        .config()
        .with_seq_len(seq)
        .with_vocab(vocab_k * 1024)
        .with_num_microbatches(microbatches)
}

/// Figure 2: compute and parameter-memory ratio of the vocabulary layers
/// relative to one transformer layer, Gemma2-9B. Returns
/// `(vocab_size, compute_ratio, memory_ratio)` rows.
pub fn fig2_rows() -> Vec<(usize, f64, f64)> {
    let base = ModelPreset::Gemma2_9B.config();
    [32usize, 64, 128, 256]
        .into_iter()
        .map(|k| {
            let cfg = base.clone().with_vocab(k * 1024);
            let compute =
                6.0 * cfg.vocab as f64 / (72.0 * cfg.hidden as f64 + 12.0 * cfg.seq_len as f64);
            let memory = cfg.vocab_layer_params() as f64 / cfg.transformer_layer_params() as f64;
            (cfg.vocab, compute, memory)
        })
        .collect()
}

/// Figure 3: per-stage relative compute under the three layouts for the
/// 7B model at 128k vocabulary (16 stages, 2 transformer layers each).
/// Returns `(layout name, per-stage loads, imbalance factor)`.
pub fn fig3_rows() -> Vec<(&'static str, Vec<f64>, f64)> {
    let cfg = ModelPreset::Gpt7B.config().with_vocab(128 * 1024);
    let p = 16;
    let layouts = [
        ("baseline", StageLayout::baseline(&cfg, p)),
        ("redis", StageLayout::redistributed(&cfg, p)),
        ("vocab-parallel", StageLayout::vocab_parallel(&cfg, p)),
    ];
    layouts
        .into_iter()
        .map(|(name, layout)| {
            let loads: Vec<f64> = (0..p)
                .map(|d| layout.stage_relative_compute(&cfg, d))
                .collect();
            let mean = loads.iter().sum::<f64>() / p as f64;
            let normalized: Vec<f64> = loads.iter().map(|l| l / mean).collect();
            let imbalance = layout.compute_imbalance(&cfg);
            (name, normalized, imbalance)
        })
        .collect()
}

/// Table 3: scaling factors of the partitioned vocabulary layers relative
/// to linear scaling. Returns `(seq, layer name, [factor at 8/16/32])`.
pub fn table3_rows() -> Vec<(usize, &'static str, [f64; 3])> {
    let mut rows = Vec::new();
    for seq in [2048usize, 4096] {
        let factors = |algo: Option<VocabAlgo>| -> [f64; 3] {
            let mut out = [0.0; 3];
            for (i, (preset, p)) in [
                (ModelPreset::Gpt4B, 8),
                (ModelPreset::Gpt10B, 16),
                (ModelPreset::Gpt21B, 32),
            ]
            .into_iter()
            .enumerate()
            {
                let cfg = preset.config().with_seq_len(seq).with_vocab(256 * 1024);
                let m = CostModel::new(cfg, Hardware::default());
                out[i] = 100.0
                    * match algo {
                        Some(a) => m.output_scaling_factor(a, p),
                        None => m.input_scaling_factor(p),
                    };
            }
            out
        };
        rows.push((seq, "output-vocab-1", factors(Some(VocabAlgo::Alg1))));
        rows.push((seq, "output-vocab-2", factors(Some(VocabAlgo::Alg2))));
        rows.push((seq, "input", factors(None)));
    }
    rows
}

/// Table 5 / Figures 11–12: all five methods on 1F1B. Returns
/// `cells[setup][method][vocab]`. `microbatches` trades fidelity for time
/// (the paper uses 128; tests use fewer).
pub fn table5_cells(microbatches: usize) -> Vec<Vec<Vec<MeasuredCell>>> {
    let hw = Hardware::default();
    crate::paper::TABLE5_SETUPS
        .iter()
        .map(|&(devices, seq, _)| {
            Method::all()
                .iter()
                .map(|&method| {
                    crate::paper::VOCABS_K
                        .iter()
                        .map(|&vk| {
                            let cfg = config(preset_for_table5(devices), seq, vk, microbatches);
                            MeasuredCell::from(&run_1f1b(method, &cfg, devices, hw.clone()))
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Table 6 / Figures 13–14: Baseline vs Vocab-1 on V-Half. Returns
/// `cells[setup][method][vocab]` plus the per-device min memory (for the
/// Figure 14 band): `(cell, min_mem_gb)`.
pub fn table6_cells(microbatches: usize) -> Vec<Vec<Vec<(MeasuredCell, f64)>>> {
    let hw = Hardware::default();
    crate::paper::TABLE6_SETUPS
        .iter()
        .map(|&(devices, seq, _)| {
            [VHalfMethod::Baseline, VHalfMethod::Vocab1]
                .iter()
                .map(|&method| {
                    crate::paper::VOCABS_K
                        .iter()
                        .map(|&vk| {
                            let cfg = config(preset_for_table6(devices), seq, vk, microbatches);
                            let r = run_vhalf(method, &cfg, devices, hw.clone());
                            (MeasuredCell::from(&r), r.min_memory_gb())
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Appendix B.2 ablation: fraction of interlaced iteration time spent in
/// synchronous all-reduces (21B model, 32 devices, seq 2048).
pub fn ablation_interlaced(microbatches: usize) -> f64 {
    let cfg = config(ModelPreset::Gpt21B, 2048, 256, microbatches);
    let (with_sync, without) = run_interlaced_ablation(&cfg, 32, Hardware::default());
    (with_sync - without) / with_sync
}

/// The barrier-count ablation (§4/§5.2): naive (3 barriers) vs Algorithm 1
/// (2) vs Algorithm 2 (1), on 1F1B. Returns `(name, mfu %, peak GB,
/// device-0 in-flight microbatches)` rows.
pub fn ablation_barriers(microbatches: usize) -> Vec<(String, f64, f64, usize)> {
    let cfg = config(ModelPreset::Gpt4B, 2048, 256, microbatches);
    run_barrier_ablation(&cfg, 8, &Hardware::default())
        .into_iter()
        .map(|r| {
            (
                r.method.clone(),
                r.mfu_pct(),
                r.max_memory_gb(),
                r.peak_microbatches[0],
            )
        })
        .collect()
}

/// The zero-bubble extension (§4.4's deferrable-T affinity): plain 1F1B
/// with Vocab-2 vs ZB-1F1B with Vocab-2. Returns `(name, mfu %, mean
/// bubble %)` rows.
pub fn ablation_zero_bubble(microbatches: usize) -> Vec<(String, f64, f64)> {
    let cfg = config(ModelPreset::Gpt4B, 2048, 256, microbatches);
    let hw = Hardware::default();
    let plain = run_1f1b(Method::Vocab2, &cfg, 8, hw.clone());
    let zb = run_zero_bubble(&cfg, 8, hw, Some(vp_schedule::pass::VocabVariant::Alg2));
    let mean = |r: &SimReport| {
        100.0 * r.bubble_fraction.iter().sum::<f64>() / r.bubble_fraction.len() as f64
    };
    vec![
        ("1f1b-vocab-2".to_string(), plain.mfu_pct(), mean(&plain)),
        (zb.method.clone(), zb.mfu_pct(), mean(&zb)),
    ]
}

/// Writes Chrome trace-event JSON files for the main schedules into `dir`.
/// Returns the written paths.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_traces(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use vp_schedule::trace::to_chrome_trace;
    std::fs::create_dir_all(dir)?;
    let times = PassTimes::default();
    let mut written = Vec::new();
    let cases: Vec<(&str, vp_schedule::pass::Schedule)> = vec![
        ("1f1b", generators::one_f_one_b(4, 8, times)),
        (
            "vocab1-1f1b",
            generators::vocab_1f1b(4, 8, VocabVariant::Alg1, times, true),
        ),
        (
            "vocab2-1f1b",
            generators::vocab_1f1b(4, 8, VocabVariant::Alg2, times, true),
        ),
        ("interlaced", generators::interlaced_1f1b(4, 8, times)),
        (
            "vhalf-vocab1",
            generators::vhalf_vocab(
                4,
                8,
                VocabVariant::Alg1,
                PassTimes {
                    b: 1.0,
                    w: 1.0,
                    ..times
                },
                true,
            ),
        ),
    ];
    for (name, schedule) in cases {
        let costs = UnitCosts::new(times, schedule.chunks());
        let report = Executor::new(&costs)
            .run(&schedule)
            .expect("gallery schedules validate");
        let json = to_chrome_trace(&schedule, &report, 1000.0);
        let path = dir.join(format!("{name}.trace.json"));
        std::fs::write(&path, json)?;
        written.push(path);
    }
    Ok(written)
}

/// The schedule-generality experiment (§5): Vocab-2 MFU on three schedule
/// families at 32k and 256k vocabularies. Returns `(family, mfu32, mfu256,
/// peak_gb_256)` rows.
pub fn generality_rows(microbatches: usize) -> Vec<(String, f64, f64, f64)> {
    let hw = Hardware::default();
    let run = |vk: usize, which: u8| -> SimReport {
        let cfg = config(ModelPreset::Gpt4B, 2048, vk, microbatches);
        match which {
            0 => run_1f1b(Method::Vocab2, &cfg, 8, hw.clone()),
            1 => run_zero_bubble(&cfg, 8, hw.clone(), Some(VocabVariant::Alg2)),
            _ => vp_sim::run_interleaved_vocab(&cfg, 8, 2, VocabVariant::Alg2, hw.clone()),
        }
    };
    ["1f1b", "zero-bubble 1f1b", "interleaved 1f1b (2 chunks)"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let small = run(32, i as u8);
            let large = run(256, i as u8);
            (
                name.to_string(),
                small.mfu_pct(),
                large.mfu_pct(),
                large.max_memory_gb(),
            )
        })
        .collect()
}

/// A *measured* analogue of Table 3 on this machine's CPU: wall-clock the
/// numeric `S`+`T` passes of one shard at several partition factors and
/// report throughput relative to linear scaling of the unpartitioned
/// layer. (Absolute factors reflect CPU cache behaviour, not A100 kernels;
/// the methodology is the paper's.) Returns `(p, factor_alg1, factor_alg2)`
/// rows.
///
/// # Panics
///
/// Panics on tensor errors (fixed, valid shapes).
pub fn table3_measured(tokens: usize, hidden: usize, vocab: usize) -> Vec<(usize, f64, f64)> {
    use std::time::Instant;
    use vp_core::{OutputShard, VocabAlgo};
    use vp_model::partition::VocabPartition;
    use vp_tensor::init::{normal, seeded_rng};

    let mut rng = seeded_rng(123);
    let full_w = normal(&mut rng, vocab, hidden, 0.3);
    let x = normal(&mut rng, tokens, hidden, 1.0);
    let labels: Vec<usize> = (0..tokens).map(|i| (i * 977) % vocab).collect();

    // Time the S+T work of one shard at partition factor p (the barrier
    // compute is excluded, as the paper excludes overlapped communication).
    let time_shard = |algo: VocabAlgo, p: usize| -> f64 {
        let part = VocabPartition::new(vocab, p);
        let mut shard = OutputShard::from_full(&full_w, part, 0).expect("shard");
        // Warm up once, then measure a few repetitions.
        let reps = 3;
        let mut best = f64::INFINITY;
        for _ in 0..=reps {
            let start = Instant::now();
            let mut state = shard.s_pass(algo, &x, &labels).expect("s pass");
            // Complete the barrier locally (single-shard stats are global).
            match algo {
                VocabAlgo::Alg1 => {
                    state.barrier_local();
                    let _ = shard.t_pass_alg1(&state, &x).expect("t pass");
                }
                _ => {
                    state.barrier_local();
                    shard.t_pass_alg2(&state, &x).expect("t pass");
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let mut factors = [0.0f64; 2];
        for (i, algo) in [VocabAlgo::Alg1, VocabAlgo::Alg2].into_iter().enumerate() {
            let full = time_shard(algo, 1);
            let shard = time_shard(algo, p);
            factors[i] = (full / p as f64) / shard;
        }
        rows.push((p, factors[0], factors[1]));
    }
    rows
}

/// Writes the Figure 11–14 data series as CSV files into `dir`
/// (`fig11_12_<setup>.csv` for the 1F1B methods, `fig13_14_<setup>.csv`
/// for V-Half). Returns the written paths.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_csv(
    dir: &std::path::Path,
    microbatches: usize,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let hw = Hardware::default();
    let vocabs: Vec<usize> = crate::paper::VOCABS_K.iter().map(|k| k * 1024).collect();
    let mut written = Vec::new();
    for &(devices, seq, _) in &crate::paper::TABLE5_SETUPS {
        let cfg = preset_for_table5(devices)
            .config()
            .with_seq_len(seq)
            .with_num_microbatches(microbatches);
        let series: Vec<(Method, Vec<sweep::SweepPoint>)> = Method::all()
            .iter()
            .map(|&m| (m, sweep::vocab_sweep(m, &cfg, devices, &hw, &vocabs)))
            .collect();
        let named: Vec<(&str, &[sweep::SweepPoint])> = series
            .iter()
            .map(|(m, s)| (m.name(), s.as_slice()))
            .collect();
        let path = dir.join(format!("fig11_12_{devices}gpu_seq{seq}.csv"));
        std::fs::write(&path, sweep::to_csv("vocab", &named))?;
        written.push(path);
    }
    for &(devices, seq, _) in &crate::paper::TABLE6_SETUPS {
        let cfg = preset_for_table6(devices)
            .config()
            .with_seq_len(seq)
            .with_num_microbatches(microbatches);
        let series: Vec<(VHalfMethod, Vec<sweep::SweepPoint>)> =
            [VHalfMethod::Baseline, VHalfMethod::Vocab1]
                .iter()
                .map(|&m| (m, sweep::vocab_sweep_vhalf(m, &cfg, devices, &hw, &vocabs)))
                .collect();
        let named: Vec<(&str, &[sweep::SweepPoint])> = series
            .iter()
            .map(|(m, s)| (m.name(), s.as_slice()))
            .collect();
        let path = dir.join(format!("fig13_14_{devices}gpu_seq{seq}.csv"));
        std::fs::write(&path, sweep::to_csv("vocab", &named))?;
        written.push(path);
    }
    Ok(written)
}

/// Renders the schedule gallery (Figures 1, 9/10, 15, 16 analogues).
pub fn schedule_gallery() -> String {
    let times = PassTimes::default();
    let mut out = String::new();
    out.push_str(&render::legend());
    let show = |title: &str, schedule: &vp_schedule::pass::Schedule, out: &mut String| {
        let costs = UnitCosts::new(times, schedule.chunks());
        let report = Executor::new(&costs)
            .run(schedule)
            .expect("gallery schedules validate");
        out.push_str(&format!("\n== {title} ==\n"));
        out.push_str(&render::render_timeline(schedule, &report, 100));
    };
    show(
        "Figure 1: plain 1F1B (p=4, m=6)",
        &generators::one_f_one_b(4, 6, times),
        &mut out,
    );
    show(
        "Figure 10a: 1F1B + Vocabulary Parallelism, Algorithm 1 (p=4, m=6)",
        &generators::vocab_1f1b(4, 6, VocabVariant::Alg1, times, false),
        &mut out,
    );
    show(
        "Figure 10b: 1F1B + Vocabulary Parallelism, Algorithm 2 (p=4, m=6)",
        &generators::vocab_1f1b(4, 6, VocabVariant::Alg2, times, false),
        &mut out,
    );
    show(
        "Figure 15b: interlaced pipeline (p=4, m=6)",
        &generators::interlaced_1f1b(4, 6, times),
        &mut out,
    );
    let vhalf_times = PassTimes {
        b: 1.0,
        w: 1.0,
        ..times
    };
    show(
        "Figure 16: V-Half + Vocabulary Parallelism (p=4, m=6)",
        &generators::vhalf_vocab(4, 6, VocabVariant::Alg1, vhalf_times, false),
        &mut out,
    );
    out
}

/// §6.1 padding note: the vocabulary is padded to a multiple of `2p`.
/// Returns `(original, padded, shard width)` for the paper's 24-device
/// example.
pub fn padding_example() -> (usize, usize, usize) {
    let part = VocabPartition::new(256_008, 24);
    (part.vocab(), part.padded(), part.shard_width())
}

/// Figure 17: convergence of the pipelined implementations against the
/// single-device reference. Returns `(name, losses)` per curve.
///
/// # Panics
///
/// Panics if any trainer fails (configuration is fixed and valid).
pub fn fig17_curves(iterations: usize) -> Vec<(&'static str, Vec<f64>)> {
    let config = TinyConfig::default();
    vec![
        (
            "reference",
            train_reference(&config, iterations).expect("reference trains"),
        ),
        (
            "pipeline-baseline",
            train_pipeline(&config, 4, Mode::Baseline, iterations).expect("baseline trains"),
        ),
        (
            "pipeline-vocab-1",
            train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg1), iterations)
                .expect("vocab-1 trains"),
        ),
        (
            "pipeline-vocab-2",
            train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), iterations)
                .expect("vocab-2 trains"),
        ),
    ]
}

/// Numeric schedule generality: the runtime interprets zero-bubble and
/// interleaved vocabulary schedules *directly* (no family-specific code)
/// and must match the single-device reference, with the measured bubble
/// reported from the interpreter's real-timing `ExecReport`. Returns
/// `(family, final_loss, max_deviation_vs_reference, mean_bubble_pct)`
/// rows.
///
/// # Panics
///
/// Panics if any trainer fails (configurations are fixed and valid).
pub fn generality_numeric_rows(iterations: usize) -> Vec<(String, f64, f64, f64)> {
    use vp_runtime::{train_schedule, DataSource, SyntheticCorpus};

    let base = TinyConfig::default();
    let m = base.microbatches as u32;
    let zb_times = PassTimes {
        f: 1.0,
        b: 1.0,
        w: 1.0,
        ..PassTimes::default()
    };
    let il_times = PassTimes {
        f: 0.5,
        b: 1.0,
        ..PassTimes::default()
    };
    // Interleaving doubles the virtual stages, so it gets a deeper model
    // (8 layers over 4 devices × 2 chunks) with its own reference curve.
    let deep = TinyConfig { layers: 8, ..base };
    let runs = [
        (
            "vocab 1f1b",
            base.clone(),
            generators::vocab_1f1b(4, m, VocabVariant::Alg2, PassTimes::default(), true),
        ),
        (
            "zb vocab 1f1b",
            base,
            generators::zb_vocab_1f1b(4, m, VocabVariant::Alg2, zb_times, true),
        ),
        (
            "interleaved vocab 1f1b (2 chunks)",
            deep,
            generators::interleaved_vocab_1f1b(4, 2, m, VocabVariant::Alg2, il_times, true),
        ),
    ];
    let mut rows = Vec::new();
    for (name, config, schedule) in runs {
        let reference = train_reference(&config, iterations).expect("reference trains");
        let corpus = DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ));
        let report = train_schedule(&config, &schedule, iterations, &corpus)
            .expect("schedule interprets numerically");
        let max_dev = report
            .losses
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let bubble = 100.0 * report.analysis(&schedule).mean_bubble();
        rows.push((
            name.to_string(),
            *report.losses.last().expect("losses"),
            max_dev,
            bubble,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_ratio_reaches_about_5x_at_256k() {
        let rows = fig2_rows();
        let (_, compute, memory) = rows[3];
        assert!((4.5..6.5).contains(&compute), "compute {compute}");
        assert!((5.0..7.0).contains(&memory), "memory {memory}");
        // Ratios grow with vocabulary.
        assert!(rows[0].1 < rows[3].1);
    }

    #[test]
    fn fig3_shows_residual_imbalance_after_redistribution() {
        let rows = fig3_rows();
        let baseline = rows.iter().find(|r| r.0 == "baseline").unwrap();
        let redis = rows.iter().find(|r| r.0 == "redis").unwrap();
        let vocab = rows.iter().find(|r| r.0 == "vocab-parallel").unwrap();
        assert!(baseline.2 > redis.2);
        assert!(redis.2 > 1.1, "redis should stay imbalanced: {}", redis.2);
        assert!(vocab.2 < 1.02);
    }

    #[test]
    fn table3_factors_match_paper_shape() {
        let rows = table3_rows();
        for (seq, name, factors) in &rows {
            // Factors decrease with device count.
            assert!(
                factors[0] > factors[1] && factors[1] > factors[2],
                "{seq} {name}: {factors:?}"
            );
        }
        // Output factors: within ~8 points of the paper at every cell.
        for (i, seq) in [2048usize, 4096].iter().enumerate() {
            for (j, name) in ["output-vocab-1", "output-vocab-2"].iter().enumerate() {
                let row = rows.iter().find(|r| r.0 == *seq && r.1 == *name).unwrap();
                for k in 0..3 {
                    let paper = crate::paper::TABLE3[i][j][k];
                    assert!(
                        (row.2[k] - paper).abs() < 8.0,
                        "{seq} {name} dev[{k}]: measured {} vs paper {paper}",
                        row.2[k]
                    );
                }
            }
        }
        // Input layer scales much worse than the output layer.
        let input = rows.iter().find(|r| r.0 == 2048 && r.1 == "input").unwrap();
        assert!(input.2[2] < 40.0);
    }

    #[test]
    fn schedule_gallery_renders_all_figures() {
        let g = schedule_gallery();
        for needle in [
            "Figure 1",
            "Figure 10a",
            "Figure 10b",
            "Figure 15b",
            "Figure 16",
        ] {
            assert!(g.contains(needle), "missing {needle}");
        }
        assert!(g.contains('S') && g.contains('T'));
    }

    #[test]
    fn padding_matches_papers_example() {
        let (orig, padded, shard) = padding_example();
        assert_eq!((orig, padded), (256_008, 256_032));
        assert_eq!(shard * 24, padded);
    }

    #[test]
    fn barrier_ablation_shape() {
        let rows = ablation_barriers(16);
        assert_eq!(rows.len(), 3);
        // In-flight microbatches ordered by barrier count; MFUs comparable.
        assert!(rows[0].3 >= rows[1].3 && rows[1].3 > rows[2].3, "{rows:?}");
        assert!(rows[0].2 > rows[2].2, "{rows:?}");
    }

    #[test]
    fn zero_bubble_ablation_improves() {
        let rows = ablation_zero_bubble(16);
        assert!(rows[1].1 > rows[0].1, "{rows:?}");
    }

    #[test]
    fn table3_measured_produces_sane_factors() {
        let rows = table3_measured(16, 32, 512);
        assert_eq!(rows.len(), 3);
        for (p, f1, f2) in rows {
            assert!(f1.is_finite() && f1 > 0.05 && f1 < 5.0, "p={p}: f1 {f1}");
            assert!(f2.is_finite() && f2 > 0.05 && f2 < 5.0, "p={p}: f2 {f2}");
        }
    }

    #[test]
    fn csv_export_writes_all_series() {
        let dir = std::env::temp_dir().join("vp-csv-test");
        let written = export_csv(&dir, 8).unwrap();
        assert_eq!(written.len(), 12);
        let first = std::fs::read_to_string(&written[0]).unwrap();
        assert!(first.starts_with("vocab,baseline_mfu_pct"));
        assert_eq!(first.lines().count(), 5); // header + 4 vocab sizes
        for p in written {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn traces_are_written() {
        let dir = std::env::temp_dir().join("vp-trace-test");
        let written = export_traces(&dir).unwrap();
        assert_eq!(written.len(), 5);
        for p in &written {
            let s = std::fs::read_to_string(p).unwrap();
            assert!(s.contains("traceEvents"));
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn quick_table5_8gpu_shape() {
        // One setup only (keeps the test fast): baseline collapses in V,
        // vocab methods are flat and better at 256k.
        let hw = Hardware::default();
        let cells: Vec<Vec<MeasuredCell>> = Method::all()
            .iter()
            .map(|&m| {
                crate::paper::VOCABS_K
                    .iter()
                    .map(|&vk| {
                        let cfg = config(ModelPreset::Gpt4B, 2048, vk, 32);
                        MeasuredCell::from(&run_1f1b(m, &cfg, 8, hw.clone()))
                    })
                    .collect()
            })
            .collect();
        let baseline = &cells[0];
        let vocab2 = &cells[3];
        assert!(baseline[3].mfu_pct < 0.75 * baseline[0].mfu_pct);
        assert!((vocab2[3].mfu_pct - vocab2[0].mfu_pct).abs() < 3.0);
        assert!(vocab2[3].mfu_pct > 1.4 * baseline[3].mfu_pct);
        assert!(vocab2[3].mem_gb < baseline[3].mem_gb);
    }

    #[test]
    fn generality_numeric_tracks_reference() {
        let rows = generality_numeric_rows(3);
        assert_eq!(rows.len(), 3);
        for (name, final_loss, dev, bubble) in rows {
            assert!(final_loss.is_finite(), "{name}");
            // Figure 17's tolerance: f32 accumulation-order noise only.
            assert!(dev < 1e-3, "{name}: deviation {dev}");
            assert!((0.0..100.0).contains(&bubble), "{name}: bubble {bubble}");
        }
    }
}
