//! `repro tpsweep` — the PP × TP composition study on the 2D device grid.
//!
//! For a fixed device budget, sweeps every `pp × tp` factorization (PTD-P
//! style, Narayanan et al. 2021 §5.4) across methods, TP synchronization
//! styles and microbatch counts, and reports where the crossover sits:
//! with few microbatches the pipeline fill/drain bubble dominates and a
//! wider tensor axis wins; with many microbatches the fill amortizes and
//! the deep pipeline's full-width kernels win.
//!
//! Every point is gated twice:
//!
//! * **verified** — the schedule passes the full `vp-check` analysis *and*
//!   the grid lints (`VP0013`–`VP0015`) on its `pp × tp` grid;
//! * **bitwise** — the `tp = 1` column of every series must be bitwise
//!   identical (`f64::to_bits`) to the flat 1D simulation, the degeneracy
//!   contract the whole grid refactor rests on.
//!
//! `ci.sh` runs `repro tpsweep --json` and fails if any point is
//! unverified, any `tp = 1` point diverges from the 1D run, or the
//! vocab-2/all-reduce crossover fails to flip with the microbatch count.

use std::collections::HashMap;

use vp_check::{check, check_grid};
use vp_model::config::ModelPreset;
use vp_model::cost::Hardware;
use vp_model::TpSyncStyle;
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::{Schedule, VocabVariant};
use vp_sim::{run_1f1b, tp_crossover_sweep, Method, SimReport};

use crate::table::json_f64;

/// One factorization of the device budget and its gated simulation result.
#[derive(Debug, Clone)]
pub struct TpSweepPoint {
    /// Pipeline depth of this factorization.
    pub pp: usize,
    /// Tensor-parallel width (`pp * tp` = the fixed device budget).
    pub tp: usize,
    /// Model FLOPs utilization, percent.
    pub mfu_pct: f64,
    /// End-to-end iteration time, milliseconds.
    pub iteration_ms: f64,
    /// Peak memory of the most loaded device, GB.
    pub peak_gb: f64,
    /// Mean idle fraction across devices, percent.
    pub bubble_pct: f64,
    /// Whether `vp-check` plus the grid lints accept this configuration.
    pub check_clean: bool,
    /// On the `tp = 1` column: whether the grid report is bitwise
    /// identical to the flat 1D simulation. `None` elsewhere.
    pub tp1_bitwise_match: Option<bool>,
}

/// One sweep series: a (method, sync style, microbatch count) row of the
/// crossover table, covering every factorization.
#[derive(Debug, Clone)]
pub struct TpSweepSeries {
    /// Simulated method.
    pub method: Method,
    /// TP synchronization scenario (Megatron all-reduce or PSA).
    pub sync: TpSyncStyle,
    /// Microbatches per iteration (the crossover's control variable).
    pub microbatches: usize,
    /// Points ordered by increasing `tp` (so `points[0]` is `tp = 1`).
    pub points: Vec<TpSweepPoint>,
}

impl TpSweepSeries {
    /// The tensor width of the fastest factorization in this series.
    pub fn best_tp(&self) -> usize {
        self.points
            .iter()
            .min_by(|a, b| a.iteration_ms.total_cmp(&b.iteration_ms))
            .map_or(1, |p| p.tp)
    }

    /// Whether every point passed the static checks.
    pub fn all_clean(&self) -> bool {
        self.points.iter().all(|p| p.check_clean)
    }

    /// Whether the `tp = 1` column matched the 1D run bitwise.
    pub fn tp1_matches(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.tp1_bitwise_match.unwrap_or(true))
    }
}

/// Lower-case name of a sync style, as used in reports and JSON.
pub fn sync_name(sync: TpSyncStyle) -> &'static str {
    match sync {
        TpSyncStyle::AllReduce => "all-reduce",
        TpSyncStyle::Psa => "psa",
    }
}

/// The schedule a method runs on `pp` stages — what `run_1f1b_grid`
/// executes, rebuilt for the static checks (pass times are irrelevant to
/// the analyses).
fn schedule_for(method: Method, pp: usize, m: u32) -> Schedule {
    match method {
        Method::Baseline | Method::Redis => generators::one_f_one_b(pp, m, PassTimes::default()),
        Method::Vocab1 => {
            generators::vocab_1f1b(pp, m, VocabVariant::Alg1, PassTimes::default(), true)
        }
        Method::Vocab2 => {
            generators::vocab_1f1b(pp, m, VocabVariant::Alg2, PassTimes::default(), true)
        }
        Method::Interlaced => generators::interlaced_1f1b(pp, m, PassTimes::default()),
    }
}

/// Bitwise equality of the report fields the degeneracy contract covers.
fn bitwise_eq(a: &SimReport, b: &SimReport) -> bool {
    a.devices == b.devices
        && a.iteration_seconds.to_bits() == b.iteration_seconds.to_bits()
        && a.mfu.to_bits() == b.mfu.to_bits()
        && a.peak_memory_bytes.len() == b.peak_memory_bytes.len()
        && a.peak_memory_bytes
            .iter()
            .zip(&b.peak_memory_bytes)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.bubble_fraction
            .iter()
            .zip(&b.bubble_fraction)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn mean_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    100.0 * values.iter().sum::<f64>() / values.len() as f64
}

/// Runs the full crossover sweep on `total_devices` devices (4B model):
/// {baseline, vocab-2} × {all-reduce, PSA} × {4, 16, 128} microbatches.
pub fn run(total_devices: usize) -> Vec<TpSweepSeries> {
    let hw = Hardware::default();
    // The static checks depend only on (method, pp, tp, m) — not on the
    // sync style — so share verdicts across series.
    let mut verdicts: HashMap<(&'static str, usize, usize, usize), bool> = HashMap::new();
    let mut out = Vec::new();
    for method in [Method::Baseline, Method::Vocab2] {
        for sync in [TpSyncStyle::AllReduce, TpSyncStyle::Psa] {
            for m in [4usize, 16, 128] {
                let config = ModelPreset::Gpt4B.config().with_num_microbatches(m);
                let flat = run_1f1b(method, &config, total_devices, hw.clone());
                let points = tp_crossover_sweep(method, &config, total_devices, &hw, sync)
                    .into_iter()
                    .map(|p| {
                        let (pp, tp) = (p.grid.pp(), p.grid.tp());
                        let check_clean = *verdicts
                            .entry((method.name(), pp, tp, m))
                            .or_insert_with(|| {
                                let sched = schedule_for(method, pp, m as u32);
                                check(&sched).is_clean() && check_grid(&sched, &p.grid).is_empty()
                            });
                        TpSweepPoint {
                            pp,
                            tp,
                            mfu_pct: p.report.mfu_pct(),
                            iteration_ms: 1e3 * p.report.iteration_seconds,
                            peak_gb: p.report.max_memory_gb(),
                            bubble_pct: mean_pct(&p.report.bubble_fraction),
                            check_clean,
                            tp1_bitwise_match: (tp == 1).then(|| bitwise_eq(&p.report, &flat)),
                        }
                    })
                    .collect();
                out.push(TpSweepSeries {
                    method,
                    sync,
                    microbatches: m,
                    points,
                });
            }
        }
    }
    out
}

/// Renders the sweep as a human table: one row per point, the fastest
/// factorization of each series starred.
pub fn render(total_devices: usize, series: &[TpSweepSeries]) -> String {
    let mut rows = Vec::new();
    for s in series {
        let best = s.best_tp();
        for p in &s.points {
            rows.push(vec![
                s.method.name().to_string(),
                sync_name(s.sync).to_string(),
                s.microbatches.to_string(),
                format!("{}x{}{}", p.pp, p.tp, if p.tp == best { " *" } else { "" }),
                format!("{:.2}", p.mfu_pct),
                format!("{:.1}", p.iteration_ms),
                format!("{:.1}", p.peak_gb),
                format!("{:.1}", p.bubble_pct),
                if p.check_clean { "ok" } else { "FAIL" }.to_string(),
                match p.tp1_bitwise_match {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                }
                .to_string(),
            ]);
        }
    }
    let mut out = crate::table::render(
        &[
            "method",
            "sync",
            "microbatches",
            "pp x tp",
            "MFU %",
            "iter ms",
            "peak GB",
            "bubble %",
            "vp-check",
            "tp=1 bitwise ==",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\n{total_devices} devices; * marks the fastest factorization of each series.\n\
         Few microbatches: the fill bubble dominates and a wider tensor axis wins.\n\
         Many microbatches: the fill amortizes and the deep pipeline wins.\n"
    ));
    out
}

/// Machine-readable crossover table (`TPSWEEP.json`).
pub fn to_json(total_devices: usize, series: &[TpSweepSeries]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"tpsweep\",\n");
    out.push_str("  \"generated_by\": \"repro tpsweep --json\",\n");
    out.push_str(&format!("  \"total_devices\": {total_devices},\n"));
    out.push_str("  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"method\": \"{}\", \"sync\": \"{}\", \"microbatches\": {}, \"best_tp\": {},\n",
            s.method.name(),
            sync_name(s.sync),
            s.microbatches,
            s.best_tp()
        ));
        out.push_str("     \"points\": [\n");
        for (j, p) in s.points.iter().enumerate() {
            let bitwise = match p.tp1_bitwise_match {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "       {{\"pp\": {}, \"tp\": {}, \"mfu_pct\": {}, \"iteration_ms\": {}, \
                 \"peak_gb\": {}, \"bubble_pct\": {}, \"check_clean\": {}, \
                 \"tp1_bitwise_match\": {}}}{}\n",
                p.pp,
                p.tp,
                json_f64(p.mfu_pct),
                json_f64(p.iteration_ms),
                json_f64(p.peak_gb),
                json_f64(p.bubble_pct),
                p.check_clean,
                bitwise,
                if j + 1 == s.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 == series.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_clean_bitwise_and_crosses_over() {
        let series = run(16);
        // 2 methods x 2 syncs x 3 microbatch counts.
        assert_eq!(series.len(), 12);
        for s in &series {
            assert_eq!(s.points.len(), 4, "16 devices have 4 factorizations");
            assert_eq!(s.points[0].tp, 1);
            assert!(
                s.all_clean(),
                "{}/{}: unverified point",
                s.method.name(),
                sync_name(s.sync)
            );
            assert!(
                s.tp1_matches(),
                "{}/{} m={}: tp=1 diverged from the 1D run",
                s.method.name(),
                sync_name(s.sync),
                s.microbatches
            );
        }
        // The headline crossover (vocab-2, all-reduce): TP wins when the
        // bubble dominates, deep PP when the fill amortizes.
        let find = |m: usize| {
            series
                .iter()
                .find(|s| {
                    s.method == Method::Vocab2
                        && s.sync == TpSyncStyle::AllReduce
                        && s.microbatches == m
                })
                .expect("series present")
        };
        assert!(find(4).best_tp() > 1, "bubble-bound: TP must win");
        assert_eq!(find(128).best_tp(), 1, "compute-bound: deep PP must win");
    }

    #[test]
    fn json_shape_is_stable() {
        let series = run(4);
        let doc = to_json(4, &series);
        assert!(doc.contains("\"bench\": \"tpsweep\""), "{doc}");
        assert!(doc.contains("\"tp1_bitwise_match\": true"), "{doc}");
        assert!(doc.contains("\"tp1_bitwise_match\": null"), "{doc}");
        assert!(!doc.contains("\"check_clean\": false"), "{doc}");
        assert!(!doc.contains("\"tp1_bitwise_match\": false"), "{doc}");
    }
}
