#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation and prints paper-vs-measured comparisons.
//!
//! Each experiment of DESIGN.md's index has a function in [`experiments`]
//! returning structured rows (so tests can assert the qualitative shape)
//! and a subcommand in the `repro` binary that renders them. The paper's
//! published numbers are embedded in [`paper`] for side-by-side output.

pub mod check;
pub mod experiments;
pub mod kernels;
pub mod modelcheck;
pub mod paper;
pub mod servebench;
pub mod table;
pub mod timeline;
pub mod tpsweep;
pub mod trainbench;

/// Serializes tests that cycle or measure the process-global tensor
/// buffer arena (`trainbench` toggles it, `servebench` reads its
/// counters) — one shared lock so they cannot interleave.
#[cfg(test)]
pub(crate) fn arena_test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}
