//! Mutation testing of the static analyzer: seeded schedule mutations
//! whose defect class is known, asserted to be *killed* (diagnosed) by
//! `vp-check` with the expected code — and the unmutated schedules
//! asserted clean. This is the analyzer's soundness/completeness smoke
//! test: a checker that accepts everything would pass the sweep too.

use vp_check::{check, Code};
use vp_schedule::block::PassTimes;
use vp_schedule::generators::{one_f_one_b, vocab_1f1b, zb_vocab_1f1b};
use vp_schedule::pass::{PassKind, Schedule, ScheduledPass, VocabVariant};

/// Deterministic LCG (Knuth's MMIX constants) so every mutation site is
/// reproducible from its seed.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() >> 33) as usize % n
    }
}

fn zb_times() -> PassTimes {
    PassTimes {
        w: 1.0,
        b: 1.0,
        ..PassTimes::default()
    }
}

fn device_passes(sched: &Schedule) -> Vec<Vec<ScheduledPass>> {
    (0..sched.devices())
        .map(|d| sched.passes(d).to_vec())
        .collect()
}

fn rebuild(sched: &Schedule, passes: Vec<Vec<ScheduledPass>>) -> Schedule {
    Schedule::new(
        sched.kind(),
        sched.num_microbatches(),
        sched.chunks(),
        passes,
    )
    .with_placement(sched.placement())
}

fn slot_of(passes: &[ScheduledPass], kind: PassKind, mb: u32) -> usize {
    passes
        .iter()
        .position(|p| p.kind == kind && p.microbatch == mb && p.chunk == 0)
        .unwrap_or_else(|| panic!("no {kind:?} mb={mb}"))
}

fn base_schedules() -> Vec<(String, Schedule)> {
    let mut out = Vec::new();
    for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
        out.push((
            format!("vocab-1f1b/{variant:?}"),
            vocab_1f1b(4, 8, variant, PassTimes::default(), false),
        ));
    }
    out.push((
        "zb-vocab-1f1b/Alg2".to_string(),
        zb_vocab_1f1b(4, 8, VocabVariant::Alg2, zb_times(), false),
    ));
    out
}

#[test]
fn unmutated_schedules_are_accepted() {
    for (name, sched) in base_schedules() {
        let report = check(&sched);
        assert!(
            report.is_clean(),
            "{name} should be clean:\n{}",
            vp_check::render_human(&report.diagnostics)
        );
    }
}

/// Mutant class 1 — drop a recv: remove a middle device's `F`, so the next
/// stage's forward waits on a pass that never runs. Killed by `VP0002`
/// (the dependency names the missing pass) and `VP0004` (the coverage
/// hole on the mutated device).
#[test]
fn drop_recv_mutants_are_killed() {
    for seed in 0..6 {
        let mut rng = Lcg::new(seed);
        let (name, sched) = {
            let mut bases = base_schedules();
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut passes = device_passes(&sched);
        let d = 1 + rng.below(sched.devices() - 1);
        let mb = rng.below(8) as u32;
        let f = slot_of(&passes[d], PassKind::F, mb);
        passes[d].remove(f);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::MissingPass) && report.has(Code::CoverageHole),
            "seed {seed} ({name}, drop F mb={mb} on device {d}): {:?}",
            report.codes()
        );
    }
}

/// Mutant class 2 — swap two dependent passes: exchange a device's `F`
/// and `B` of one microbatch. The backward then transitively waits on its
/// own forward through the pipeline chain: `VP0001`, with the minimal
/// cycle naming the mutated microbatch on the mutated device.
#[test]
fn swapped_dependent_passes_deadlock_with_a_named_cycle() {
    for seed in 0..6 {
        let mut rng = Lcg::new(100 + seed);
        let (name, sched) = {
            let mut bases = base_schedules();
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut passes = device_passes(&sched);
        let d = rng.below(sched.devices());
        let mb = rng.below(8) as u32;
        let f = slot_of(&passes[d], PassKind::F, mb);
        let b = slot_of(&passes[d], PassKind::B, mb);
        passes[d].swap(f, b);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::Deadlock),
            "seed {seed} ({name}): {:?}",
            report.codes()
        );
        let diag = report
            .diagnostics
            .iter()
            .find(|di| di.code == Code::Deadlock)
            .unwrap();
        assert!(
            diag.related
                .iter()
                .any(|(site, _)| site.device == d && site.pass.microbatch == mb),
            "seed {seed} ({name}): cycle does not mention device {d} mb {mb}:\n{diag}"
        );
    }
}

/// Mutant class 3 — duplicate an `F`: `VP0003` with both sites.
#[test]
fn duplicated_pass_mutants_are_killed() {
    for seed in 0..6 {
        let mut rng = Lcg::new(200 + seed);
        let (name, sched) = {
            let mut bases = base_schedules();
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut passes = device_passes(&sched);
        let d = rng.below(sched.devices());
        let mb = rng.below(8) as u32;
        let f = slot_of(&passes[d], PassKind::F, mb);
        let dup = passes[d][f];
        let insert_at = rng.below(passes[d].len() + 1);
        passes[d].insert(insert_at, dup);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::DuplicatePass),
            "seed {seed} ({name}): {:?}",
            report.codes()
        );
    }
}

/// Mutant class 4 — remove a barrier participant: delete one device's `S`
/// for one microbatch. Killed specifically by `VP0005`, naming the device
/// and the barrier class it fails to enter.
#[test]
fn removed_barrier_participant_is_killed_by_vp0005() {
    for seed in 0..6 {
        let mut rng = Lcg::new(300 + seed);
        let (name, sched) = {
            let mut bases = base_schedules();
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut passes = device_passes(&sched);
        let d = rng.below(sched.devices());
        let mb = rng.below(8) as u32;
        let s = slot_of(&passes[d], PassKind::S, mb);
        passes[d].remove(s);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::MissingParticipant),
            "seed {seed} ({name}): {:?}",
            report.codes()
        );
        let diag = report
            .diagnostics
            .iter()
            .find(|di| di.code == Code::MissingParticipant)
            .unwrap();
        assert!(
            diag.message.contains(&format!("device {d}")) && diag.message.contains("C0"),
            "seed {seed} ({name}): {}",
            diag.message
        );
    }
}

/// Mutant class 5 — shift a vocabulary pass outside its bubble: move a
/// device's `S` after its own `B` of the same microbatch. The last
/// stage's backward gates on all `S` (directly for Algorithm 2, through
/// `T` otherwise), so the displaced `S` closes a cycle: `VP0001`, and the
/// extracted cycle contains the `S` pass itself.
#[test]
fn vocab_pass_shifted_outside_its_bubble_deadlocks() {
    for seed in 0..6 {
        let mut rng = Lcg::new(400 + seed);
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), false);
        let mut passes = device_passes(&sched);
        let d = rng.below(3); // non-last device
        let mb = rng.below(8) as u32;
        let s = slot_of(&passes[d], PassKind::S, mb);
        let b = slot_of(&passes[d], PassKind::B, mb);
        let moved = passes[d].remove(s);
        let b = if s < b { b - 1 } else { b };
        passes[d].insert(b + 1, moved);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::Deadlock),
            "seed {seed}: {:?}",
            report.codes()
        );
        let diag = report
            .diagnostics
            .iter()
            .find(|di| di.code == Code::Deadlock)
            .unwrap();
        assert!(
            diag.related
                .iter()
                .any(|(site, _)| site.pass.kind == PassKind::S && site.device == d),
            "seed {seed}: cycle does not contain the displaced S:\n{diag}"
        );
    }
}

/// Mutant class 6 — eager forwards: hoist every `F` of device 0 ahead of
/// its backwards. No dependency is violated (forwards may always run
/// early), but the peak resident-activation count explodes past the
/// analytical 1F1B bound: `VP0011`, and only `VP0011`.
#[test]
fn eager_forward_mutants_break_only_the_peak_bound() {
    let sched = one_f_one_b(4, 8, PassTimes::default());
    let mut passes = device_passes(&sched);
    passes[0].sort_by_key(|p| !matches!(p.kind, PassKind::F));
    let report = check(&rebuild(&sched, passes));
    assert_eq!(
        report.codes(),
        vec![Code::PeakActivations],
        "{:#?}",
        report.diagnostics
    );
    let diag = &report.diagnostics[0];
    assert!(diag.message.contains("holds 8"), "{}", diag.message);
    assert!(diag.message.contains("bound of 4"), "{}", diag.message);
}

/// Mutant class 7 — reorder collective entries: swap one device's `S`
/// passes of two microbatches. The shards now pair up different barrier
/// instances: `VP0006` (plus the resulting cycle/`VP0007`, since the
/// device's own `T` gates on the displaced `S`).
#[test]
fn swapped_collective_entries_are_killed_by_vp0006() {
    for seed in 0..6 {
        let mut rng = Lcg::new(500 + seed);
        let (name, sched) = {
            let mut bases = base_schedules();
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut passes = device_passes(&sched);
        let d = rng.below(sched.devices());
        let mb = rng.below(7) as u32;
        let s0 = slot_of(&passes[d], PassKind::S, mb);
        let s1 = slot_of(&passes[d], PassKind::S, mb + 1);
        passes[d].swap(s0, s1);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::CollectiveOrder),
            "seed {seed} ({name}): {:?}",
            report.codes()
        );
    }
}

/// Mutant class 8 — consume before issue: swap a device's `S` and `T` of
/// one microbatch. `T` consumes the `C1` all-reduce result before its own
/// device contributes its shard: `VP0007` (and the same inversion is a
/// happens-before cycle, `VP0001`).
#[test]
fn consume_before_issue_mutants_are_killed_by_vp0007() {
    for seed in 0..6 {
        let mut rng = Lcg::new(600 + seed);
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), false);
        let mut passes = device_passes(&sched);
        let d = rng.below(sched.devices());
        let mb = rng.below(8) as u32;
        let s = slot_of(&passes[d], PassKind::S, mb);
        let t = slot_of(&passes[d], PassKind::T, mb);
        passes[d].swap(s, t);
        let report = check(&rebuild(&sched, passes));
        assert!(
            report.has(Code::ConsumeBeforeIssue) && report.has(Code::Deadlock),
            "seed {seed}: {:?}",
            report.codes()
        );
    }
}

/// The full matrix: every mutant class applied across seeds and base
/// schedules must be killed (a non-clean report). A checker that lets a
/// single class survive fails here even if the class-specific assertions
/// above rot.
#[test]
fn every_mutant_class_is_killed() {
    let mut killed = 0usize;
    for seed in 0..10u64 {
        let mut rng = Lcg::new(700 + seed);
        for (name, sched) in base_schedules() {
            let m = sched.num_microbatches();
            for class in 0..6 {
                let mut passes = device_passes(&sched);
                let d = rng.below(sched.devices());
                let mb = rng.below(m as usize) as u32;
                match class {
                    0 => {
                        let i = slot_of(&passes[d], PassKind::F, mb);
                        passes[d].remove(i);
                    }
                    1 => {
                        let f = slot_of(&passes[d], PassKind::F, mb);
                        let b = slot_of(&passes[d], PassKind::B, mb);
                        passes[d].swap(f, b);
                    }
                    2 => {
                        let i = slot_of(&passes[d], PassKind::B, mb);
                        let dup = passes[d][i];
                        passes[d].push(dup);
                    }
                    3 => {
                        let i = slot_of(&passes[d], PassKind::S, mb);
                        passes[d].remove(i);
                    }
                    4 => {
                        let s = slot_of(&passes[d], PassKind::S, mb);
                        let t = slot_of(&passes[d], PassKind::T, mb);
                        passes[d].swap(s, t);
                    }
                    _ => {
                        passes[d].sort_by_key(|p| !matches!(p.kind, PassKind::F));
                    }
                }
                let report = check(&rebuild(&sched, passes));
                assert!(
                    !report.is_clean(),
                    "seed {seed} class {class} on {name} (device {d}, mb {mb}) SURVIVED"
                );
                killed += 1;
            }
        }
    }
    assert_eq!(killed, 10 * 4 * 6);
}

/// Satellite contract: the codes `vp_schedule::deps::DepError` embeds in
/// its messages are exactly the analyzer's codes for the same defect
/// classes, so a dynamic validation failure and a static diagnostic read
/// the same.
#[test]
fn dep_error_and_checker_codes_agree() {
    use vp_schedule::deps::validate;
    use vp_schedule::pass::ScheduleKind;
    let cases: [(Schedule, Code); 3] = [
        (
            Schedule::new(
                ScheduleKind::Plain,
                1,
                1,
                vec![
                    vec![
                        ScheduledPass::new(PassKind::F, 0),
                        ScheduledPass::new(PassKind::B, 0),
                    ],
                    vec![
                        ScheduledPass::new(PassKind::B, 0),
                        ScheduledPass::new(PassKind::F, 0),
                    ],
                ],
            ),
            Code::Deadlock,
        ),
        (
            Schedule::new(
                ScheduleKind::Plain,
                1,
                1,
                vec![vec![], vec![ScheduledPass::new(PassKind::F, 0)]],
            ),
            Code::MissingPass,
        ),
        (
            Schedule::new(
                ScheduleKind::Plain,
                1,
                1,
                vec![vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ]],
            ),
            Code::DuplicatePass,
        ),
    ];
    for (sched, code) in cases {
        let err = validate(&sched).unwrap_err();
        assert!(
            err.to_string().contains(&format!("[{code}]")),
            "validate: {err} lacks [{code}]"
        );
        let report = check(&sched);
        assert!(report.has(code), "check: {:?} lacks {code}", report.codes());
    }
}
