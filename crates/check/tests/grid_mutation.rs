//! Mutation testing of the grid lints: seeded defects in the derived TP
//! collective fact table, each killed by exactly its code (`VP0013`
//! wrong-group membership, `VP0014` entry-order skew, `VP0015` grid
//! coverage holes) — and the unmutated tables asserted clean across
//! generator families and grid shapes.

use vp_check::grid::{check_grid, check_grid_facts};
use vp_check::Code;
use vp_schedule::block::PassTimes;
use vp_schedule::generators::{one_f_one_b, vocab_1f1b, zb_vocab_1f1b};
use vp_schedule::grid::{tp_ops, DeviceGrid, TpCollective};
use vp_schedule::pass::{Schedule, VocabVariant};

/// Deterministic LCG (Knuth's MMIX constants), as in the 1D suite.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() >> 33) as usize % n
    }
}

fn zb_times() -> PassTimes {
    PassTimes {
        w: 1.0,
        b: 1.0,
        ..PassTimes::default()
    }
}

fn base_schedules(p: usize) -> Vec<(String, Schedule)> {
    vec![
        ("1f1b".to_string(), one_f_one_b(p, 6, PassTimes::default())),
        (
            "vocab-1f1b/Alg1".to_string(),
            vocab_1f1b(p, 6, VocabVariant::Alg1, PassTimes::default(), true),
        ),
        (
            "vocab-1f1b/Alg2".to_string(),
            vocab_1f1b(p, 6, VocabVariant::Alg2, PassTimes::default(), true),
        ),
        (
            "zb-vocab-1f1b/Alg2".to_string(),
            zb_vocab_1f1b(p, 6, VocabVariant::Alg2, zb_times(), true),
        ),
    ]
}

/// Indices of one member's entries in the table, in seq order.
fn entries_of(table: &[TpCollective], global: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..table.len())
        .filter(|&i| table[i].global == global)
        .collect();
    idx.sort_by_key(|&i| table[i].seq);
    idx
}

#[test]
fn unmutated_grids_are_accepted_across_families_and_shapes() {
    for pp in [2usize, 4] {
        for tp in [1usize, 2, 3] {
            let grid = DeviceGrid::new(pp, tp);
            for (name, sched) in base_schedules(pp) {
                let diags = check_grid(&sched, &grid);
                assert!(
                    diags.is_empty(),
                    "{name} on {pp}x{tp} should be clean: {diags:#?}"
                );
            }
        }
    }
}

/// Mutant class 1 — wrong group member: relabel one entry's group to a
/// different row (the runtime analogue: a communicator built from the
/// wrong ranks). Killed by `VP0013`, naming the rank's actual row.
#[test]
fn wrong_group_members_are_killed_by_vp0013() {
    for seed in 0..6u64 {
        let mut rng = Lcg::new(seed);
        let pp = [2, 4][rng.below(2)];
        let grid = DeviceGrid::new(pp, 2);
        let (name, sched) = {
            let mut bases = base_schedules(pp);
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut table = tp_ops(&sched, &grid);
        let i = rng.below(table.len());
        let actual = table[i].group;
        table[i].group = (actual + 1 + rng.below(pp - 1)) % pp;
        let diags = check_grid_facts(&table, &grid);
        assert!(
            diags.iter().any(|d| d.code == Code::WrongGroupMember),
            "seed {seed} ({name}): {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        let d = diags
            .iter()
            .find(|d| d.code == Code::WrongGroupMember)
            .unwrap();
        assert!(
            d.notes.iter().any(|n| n.contains(&format!("row {actual}"))),
            "seed {seed} ({name}): {d}"
        );
    }
}

/// An out-of-grid rank is also `VP0013`, not a panic.
#[test]
fn out_of_grid_rank_is_killed_by_vp0013() {
    let grid = DeviceGrid::new(2, 2);
    let sched = one_f_one_b(2, 3, PassTimes::default());
    let mut table = tp_ops(&sched, &grid);
    table[0].global = grid.devices() + 3;
    let diags = check_grid_facts(&table, &grid);
    assert!(diags.iter().any(|d| d.code == Code::WrongGroupMember));
}

/// Mutant class 2 — entry-order skew: swap the rendezvous payloads of two
/// adjacent entries of *one* row member (its peers keep the original
/// order). The multiset stays intact, so this is killed by `VP0014`
/// specifically — and only when the row has a peer to disagree with.
#[test]
fn order_skew_is_killed_by_vp0014() {
    for seed in 0..6u64 {
        let mut rng = Lcg::new(100 + seed);
        let pp = [2, 4][rng.below(2)];
        let tp = 2 + rng.below(2);
        let grid = DeviceGrid::new(pp, tp);
        let (name, sched) = {
            let mut bases = base_schedules(pp);
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut table = tp_ops(&sched, &grid);
        let victim = rng.below(grid.devices());
        let idx = entries_of(&table, victim);
        // Find adjacent entries with different payloads to swap.
        let i = (0..idx.len() - 1)
            .find(|&i| {
                let (a, b) = (table[idx[i]], table[idx[i + 1]]);
                (a.op, a.microbatch, a.chunk) != (b.op, b.microbatch, b.chunk)
            })
            .expect("every pass contributes at least two distinct rendezvous");
        let (a, b) = (idx[i], idx[i + 1]);
        let seq_a = table[a].seq;
        table[a].seq = table[b].seq;
        table[b].seq = seq_a;
        let diags = check_grid_facts(&table, &grid);
        assert!(
            diags.iter().any(|d| d.code == Code::GroupOrderSkew),
            "seed {seed} ({name}, rank {victim} on {pp}x{tp}): {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        assert!(
            !diags.iter().any(|d| d.code == Code::GridCoverageHole),
            "seed {seed} ({name}): pure reorder must not read as a coverage hole"
        );
    }
}

/// Mutant class 3 — coverage hole: drop one member's entries for one
/// microbatch (the runtime analogue: a rank that skips a sharded pass).
/// Killed by `VP0015`, naming a missing rendezvous.
#[test]
fn dropped_participation_is_killed_by_vp0015() {
    for seed in 0..6u64 {
        let mut rng = Lcg::new(200 + seed);
        let pp = [2, 4][rng.below(2)];
        let tp = 2 + rng.below(3);
        let grid = DeviceGrid::new(pp, tp);
        let (name, sched) = {
            let mut bases = base_schedules(pp);
            let i = rng.below(bases.len());
            bases.swap_remove(i)
        };
        let mut table = tp_ops(&sched, &grid);
        let victim = rng.below(grid.devices());
        let mb = rng.below(6) as u32;
        table.retain(|e| !(e.global == victim && e.microbatch == mb));
        let diags = check_grid_facts(&table, &grid);
        assert!(
            diags.iter().any(|d| d.code == Code::GridCoverageHole),
            "seed {seed} ({name}, rank {victim} mb {mb} on {pp}x{tp}): {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        let d = diags
            .iter()
            .find(|d| d.code == Code::GridCoverageHole)
            .unwrap();
        assert!(
            d.message.contains(&format!("rank {victim}")),
            "seed {seed} ({name}): {d}"
        );
    }
}

/// A member absent from the table entirely (thread never launched) is the
/// extreme coverage hole.
#[test]
fn fully_absent_member_is_killed_by_vp0015() {
    let grid = DeviceGrid::new(2, 2);
    let sched = vocab_1f1b(2, 4, VocabVariant::Alg2, PassTimes::default(), true);
    let mut table = tp_ops(&sched, &grid);
    table.retain(|e| e.global != 1);
    let diags = check_grid_facts(&table, &grid);
    assert!(diags.iter().any(|d| d.code == Code::GridCoverageHole));
}

/// At `tp = 1` every mutation that keeps membership legal is vacuously
/// consistent: single-member groups cannot skew or hole.
#[test]
fn tp1_tables_survive_reorders_and_drops() {
    let grid = DeviceGrid::new(4, 1);
    let sched = vocab_1f1b(4, 6, VocabVariant::Alg1, PassTimes::default(), true);
    let mut table = tp_ops(&sched, &grid);
    // Reorder one member and drop another's microbatch.
    let idx = entries_of(&table, 0);
    let seq0 = table[idx[0]].seq;
    table[idx[0]].seq = table[idx[1]].seq;
    table[idx[1]].seq = seq0;
    table.retain(|e| !(e.global == 2 && e.microbatch == 3));
    assert!(check_grid_facts(&table, &grid).is_empty());
}
