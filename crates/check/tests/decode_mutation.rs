//! Mutation testing of the decode-mode analyses: seeded mutations of the
//! forward-only decode pipeline whose defect class is known, asserted to
//! be killed by `vp-check` with the expected code — and the unmutated
//! schedules asserted clean.
//!
//! The three operators are the three ways the serving path has actually
//! broken (or nearly broken):
//!
//! * **insert-backward** — a gradient-family pass leaks into a decode
//!   schedule (`VP0016`);
//! * **un-hoist InputF** — an embedding-row send slides back past a
//!   sampling rendezvous into its "natural" position, the exact shape of
//!   the PR-8 serving deadlock (`VP0017`);
//! * **drop sampling-barrier participant** — a device loses one `S`
//!   call, so the world-sized all-gather can never complete (`VP0005`).

use vp_check::{check_decode, Code};
use vp_schedule::generators::decode_pipeline;
use vp_schedule::pass::{PassKind, Schedule, ScheduledPass};

/// Deterministic LCG (Knuth's MMIX constants) so every mutation site is
/// reproducible from its seed.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() >> 33) as usize % n
    }
}

fn device_passes(sched: &Schedule) -> Vec<Vec<ScheduledPass>> {
    (0..sched.devices())
        .map(|d| sched.passes(d).to_vec())
        .collect()
}

fn rebuild(sched: &Schedule, passes: Vec<Vec<ScheduledPass>>) -> Schedule {
    Schedule::new(
        sched.kind(),
        sched.num_microbatches(),
        sched.chunks(),
        passes,
    )
    .with_placement(sched.placement())
}

fn base_schedules() -> Vec<(String, Schedule)> {
    let mut out = Vec::new();
    for (p, b) in [(2usize, 4u32), (4, 4), (4, 8), (8, 8)] {
        out.push((
            format!("decode-pipeline p={p} b={b}"),
            decode_pipeline(p, b),
        ));
    }
    out
}

fn assert_killed(name: &str, schedule: &Schedule, code: Code) {
    let report = check_decode(schedule);
    assert!(
        report.diagnostics.iter().any(|d| d.code == code),
        "{name}: expected {} among {:?}",
        code.as_str(),
        report
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn unmutated_decode_bases_are_accepted() {
    for (name, sched) in base_schedules() {
        let report = check_decode(&sched);
        assert!(
            report.is_clean(),
            "{name}:\n{}",
            vp_check::render_human(&report.diagnostics)
        );
    }
}

#[test]
fn inserted_backward_passes_are_killed_as_vp0016() {
    for (name, sched) in base_schedules() {
        for seed in 0..4u64 {
            let mut rng = Lcg::new(seed);
            let mut passes = device_passes(&sched);
            let d = rng.below(passes.len());
            let backward = [PassKind::B, PassKind::W, PassKind::T, PassKind::InputB][rng.below(4)];
            let mb = rng.next() as u32 % sched.num_microbatches();
            let at = rng.below(passes[d].len() + 1);
            passes[d].insert(at, ScheduledPass::new(backward, mb));
            let mutated = rebuild(&sched, passes);
            assert_killed(
                &format!("{name} insert-{backward:?} seed={seed}"),
                &mutated,
                Code::BackwardInDecode,
            );
        }
    }
}

#[test]
fn unhoisted_input_sends_are_killed_as_vp0017() {
    for (name, sched) in base_schedules() {
        for seed in 0..4u64 {
            let mut rng = Lcg::new(seed);
            let mut passes = device_passes(&sched);
            // Candidate sites: a steady-state F (preceded by an S
            // rendezvous) on a sender device whose hoisted InputF of the
            // same slot sits further up the list.
            let mut sites: Vec<(usize, usize, usize)> = Vec::new();
            for (d, list) in passes.iter().enumerate().skip(1) {
                for i in 1..list.len() {
                    if list[i].kind != PassKind::F || list[i - 1].kind != PassKind::S {
                        continue;
                    }
                    let j = list
                        .iter()
                        .position(|p| {
                            p.kind == PassKind::InputF && p.microbatch == list[i].microbatch
                        })
                        .expect("every slot has a hoisted InputF");
                    if j < i - 1 {
                        sites.push((d, i, j));
                    }
                }
            }
            assert!(!sites.is_empty(), "{name}: no un-hoist site");
            let (d, i, j) = sites[rng.below(sites.len())];
            let row = passes[d].remove(j);
            passes[d].insert(i - 1, row);
            let mutated = rebuild(&sched, passes);
            assert_killed(
                &format!("{name} unhoist d={d} seed={seed}"),
                &mutated,
                Code::RendezvousDeadlock,
            );
        }
    }
}

#[test]
fn dropped_sampling_participants_are_killed_as_vp0005() {
    for (name, sched) in base_schedules() {
        for seed in 0..4u64 {
            let mut rng = Lcg::new(seed);
            let mut passes = device_passes(&sched);
            let d = rng.below(passes.len());
            let s_slots: Vec<usize> = passes[d]
                .iter()
                .enumerate()
                .filter(|(_, p)| p.kind == PassKind::S)
                .map(|(i, _)| i)
                .collect();
            let slot = s_slots[rng.below(s_slots.len())];
            passes[d].remove(slot);
            let mutated = rebuild(&sched, passes);
            assert_killed(
                &format!("{name} drop-S d={d} seed={seed}"),
                &mutated,
                Code::MissingParticipant,
            );
        }
    }
}

#[test]
fn the_natural_layout_is_the_canonical_vp0017_witness() {
    // Not seeded: the exact shipped-then-fixed schedule shape, end to end
    // through the public decode entry point.
    use vp_schedule::generators::decode_pipeline_natural;
    let report = check_decode(&decode_pipeline_natural(2, 2));
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::RendezvousDeadlock)
        .expect("natural layout must be rejected");
    let text = diag.to_string();
    assert!(text.contains("error[VP0017]"), "{text}");
    assert!(text.contains("hoist"), "{text}");
}
