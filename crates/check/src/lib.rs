#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `vp-check`: a static schedule & communication verifier.
//!
//! Proves properties of any [`vp_schedule::pass::Schedule`] *without
//! executing it*, reporting violations as rustc-style diagnostics with
//! stable codes (`VP0001`–`VP0017`):
//!
//! * **Deadlock freedom** ([`deadlock`]) — the happens-before graph
//!   (program order + §5.1 dependency edges) is acyclic; a violation is
//!   rendered as the *minimal* cycle, naming exactly the passes that wait
//!   on each other (`VP0001`), after structural integrity (`VP0002`
//!   missing passes, `VP0003` duplicates) is established.
//! * **Communication protocol** ([`comm`]) — every scheduled kind covers
//!   every microbatch (`VP0004`); collective participation sets are
//!   identical across vocabulary shards (`VP0005`); shards enter a
//!   collective class's instances in the same order (`VP0006`); no pass
//!   consumes a comm-stream result before its own device issues the
//!   contribution (`VP0007`).
//! * **Activation liveness** ([`liveness`]) — no use-before-alloc
//!   (`VP0008`), leak (`VP0009`) or double-free (`VP0010`), and each
//!   device's peak resident activations stay within the analytical 1F1B
//!   bound of §5.2 (`VP0011`).
//! * **Static races** ([`race`]) — every conflicting access pair to every
//!   logical buffer ([`vp_schedule::facts`]) is ordered by a
//!   happens-before path (`VP0012`); on valid schedules this *proves*
//!   race freedom, including Algorithm 2's freely-deferrable `T` pass.
//! * **Grid participation** ([`grid`]) — on a `pp × tp` device grid, every
//!   tensor-group (grid row) collective is entered by exactly its row's
//!   members (`VP0013`), in the same order on every peer (`VP0014`), with
//!   identical participation multisets (`VP0015`). [`check_grid`] runs
//!   these on top of [`check`] for grid configurations; `tp = 1` is
//!   vacuously clean.
//! * **Decode schedules** ([`check_decode`]) — forward-only serving pass
//!   lists swap the training liveness rules for `VP0016`: no
//!   backward-family pass may appear (inference produces no gradients);
//!   all other analyses run unchanged. Additionally, decode mode is
//!   *rendezvous-faithful*: the sampling barrier each `S` pass executes is
//!   a synchronous all-gather on the device thread, so the analysis adds
//!   arrival edges ([`vp_schedule::hb::HbGraph::with_rendezvous`]) under
//!   which a sender blocked inside a collective also blocks its later
//!   sends. A cycle that appears only with these edges — the schedule
//!   looks fine to the asymmetric model but hangs the real runtime — is
//!   `VP0017`, with the minimal cycle naming the blocked collective and
//!   the unsent row.
//! * **Execution model checking** ([`model`]) — an exhaustive explorer of
//!   the pass-VM's actual concurrency semantics (per-device program
//!   counters, blocking receives, rendezvous barriers) over the same
//!   schedules, used to *differentially validate* the graph analyses: the
//!   `repro modelcheck` sweep asserts the static verdict and the explored
//!   verdict agree on every grid case and seeded mutant.
//!
//! The `repro check` subcommand sweeps every built-in generator family
//! through [`check`] (and `repro tpsweep` gates its grid configurations
//! through [`check_grid`]); `ci.sh` fails on any diagnostic.

pub mod comm;
pub mod deadlock;
pub mod diag;
pub mod grid;
pub mod liveness;
pub mod model;
pub mod race;

pub use diag::{render_human, render_json, Code, Diagnostic, Severity, Site};
pub use grid::{check_grid, check_grid_facts};

use vp_schedule::deps::{build_deps, sync_collectives};
use vp_schedule::hb::HbGraph;
use vp_schedule::pass::Schedule;

/// Options for [`check_with`].
#[derive(Debug, Clone, Default)]
pub struct CheckConfig {
    /// Per-device peak-activation caps to enforce as `VP0011`. `None`
    /// uses the analytical cap of the schedule family
    /// ([`liveness::analytic_caps`]); families without a closed form
    /// (multi-chunk placements) then skip the bound.
    pub activation_caps: Option<Vec<usize>>,
    /// Forward-only (decode) mode: the training liveness rules
    /// (`VP0008`–`VP0011`) are replaced by the decode rule `VP0016` — no
    /// backward-family pass may appear at all, and `F` activations are
    /// transient rather than resident. Use [`check_decode`] for the common
    /// case.
    pub forward_only: bool,
}

/// The outcome of a full static analysis of one schedule.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All findings, sorted by (code, device, slot).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of scheduled passes analyzed.
    pub passes: usize,
    /// Number of happens-before edges examined (0 if the graph could not
    /// be built because of structural diagnostics).
    pub hb_edges: usize,
    /// Whether the race analysis ran (it needs an acyclic graph).
    pub races_checked: bool,
}

impl CheckReport {
    /// Whether the schedule passed every analysis.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct codes present, in ascending order.
    pub fn codes(&self) -> Vec<Code> {
        let mut codes: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Whether any diagnostic carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

/// Runs every analysis with default configuration.
pub fn check(schedule: &Schedule) -> CheckReport {
    check_with(schedule, &CheckConfig::default())
}

/// Runs every analysis on a forward-only decode schedule (the serving
/// engine's per-step pass list): the training liveness rules give way to
/// `VP0016` (no backward-family pass may appear), the deadlock,
/// communication-protocol and race analyses run unchanged, and — because
/// a decode step's `S` pass executes its sampling barrier synchronously
/// on the device thread rather than submitting it to a comm stream — the
/// rendezvous-faithful deadlock analysis (`VP0017`) runs on top.
pub fn check_decode(schedule: &Schedule) -> CheckReport {
    check_with(
        schedule,
        &CheckConfig {
            forward_only: true,
            ..CheckConfig::default()
        },
    )
}

/// Runs every analysis.
///
/// Structure (`VP0002`/`VP0003`) and the schedule-only lints
/// (`VP0004`–`VP0006`, `VP0008`–`VP0011`) always run. The graph-based
/// analyses (`VP0001`, `VP0007`, `VP0012`) run only once the dependency
/// graph is well-defined, and race detection additionally requires
/// acyclicity (a deadlocked schedule has no execution to race in).
pub fn check_with(schedule: &Schedule, config: &CheckConfig) -> CheckReport {
    let mut diagnostics = deadlock::check_structure(schedule);
    let structural_ok = diagnostics.is_empty();
    diagnostics.extend(comm::check_coverage(schedule));
    diagnostics.extend(comm::check_participation(schedule));
    diagnostics.extend(comm::check_collective_order(schedule));
    if config.forward_only {
        diagnostics.extend(liveness::check_forward_only(schedule));
    } else {
        let caps = config
            .activation_caps
            .clone()
            .or_else(|| liveness::analytic_caps(schedule));
        diagnostics.extend(liveness::check_liveness(schedule, caps.as_deref()));
    }

    let mut hb_edges = 0;
    let mut races_checked = false;
    if structural_ok {
        let deps = build_deps(schedule).expect("structure was just verified");
        diagnostics.extend(comm::check_consume_before_issue(schedule, &deps));
        let hb = HbGraph::new(schedule, &deps);
        hb_edges = (0..hb.len()).map(|v| hb.succs(v).len()).sum();
        match hb.topo_order() {
            None => {
                let cycle = hb.minimal_cycle().expect("cyclic graph has a cycle");
                diagnostics.push(deadlock::cycle_diagnostic(&cycle));
            }
            Some(topo) => {
                let reach = race::Reachability::compute(&hb, &topo);
                diagnostics.extend(race::check_races(schedule, &hb, &reach));
                races_checked = true;
                // Rendezvous-faithful pass: collectives the schedule
                // executes synchronously on the device thread (decode's
                // sampling barrier) also block the sender's later sends.
                // A cycle that appears only once those arrival edges are
                // added is a deadlock the asymmetric model missed: VP0017.
                let sync = sync_collectives(schedule, config.forward_only);
                if !sync.is_empty() {
                    let rhb = HbGraph::with_rendezvous(schedule, &deps, &sync);
                    if rhb.topo_order().is_none() {
                        let cycle = rhb.minimal_cycle().expect("cyclic graph has a cycle");
                        diagnostics.push(deadlock::rendezvous_cycle_diagnostic(&cycle));
                    }
                }
            }
        }
    }
    diagnostics.sort_by_key(|d| {
        (
            d.code,
            d.primary.map_or(usize::MAX, |s| s.device),
            d.primary.map_or(usize::MAX, |s| s.slot),
        )
    });
    CheckReport {
        diagnostics,
        passes: schedule.total_passes(),
        hb_edges,
        races_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators::{one_f_one_b, vocab_1f1b, zb_vocab_1f1b};
    use vp_schedule::pass::{PassKind, ScheduleKind, ScheduledPass, VocabVariant};

    fn zb_times() -> PassTimes {
        PassTimes {
            w: 1.0,
            b: 1.0,
            ..PassTimes::default()
        }
    }

    #[test]
    fn built_in_generators_are_clean() {
        let report = check(&one_f_one_b(4, 8, PassTimes::default()));
        assert!(report.is_clean(), "{:#?}", report.diagnostics);
        assert!(report.races_checked);
        assert!(report.hb_edges > 0);
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            let report = check(&zb_vocab_1f1b(4, 8, variant, zb_times(), true));
            assert!(report.is_clean(), "{variant:?}: {:#?}", report.diagnostics);
        }
    }

    #[test]
    fn deadlocked_schedule_reports_vp0001_and_skips_races() {
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![
                    ScheduledPass::new(PassKind::B, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ],
            ],
        );
        let report = check(&sched);
        assert!(report.has(Code::Deadlock));
        assert!(!report.races_checked);
        // VP0008 also fires: device 1's B precedes its F in program order.
        assert!(report.has(Code::UseBeforeAlloc));
    }

    #[test]
    fn structural_failure_suppresses_graph_analyses() {
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![], vec![ScheduledPass::new(PassKind::F, 0)]],
        );
        let report = check(&sched);
        assert!(report.has(Code::MissingPass));
        assert_eq!(report.hb_edges, 0);
        assert!(!report.races_checked);
    }

    #[test]
    fn diagnostics_are_sorted_by_code_then_site() {
        let sched = vocab_1f1b(4, 6, VocabVariant::Alg1, PassTimes::default(), false);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..4).map(|d| sched.passes(d).to_vec()).collect();
        // Two independent defects: drop a T on device 2 and duplicate an
        // F on device 0.
        let t = passes[2]
            .iter()
            .position(|p| p.kind == PassKind::T && p.microbatch == 1)
            .unwrap();
        passes[2].remove(t);
        passes[0].push(ScheduledPass::new(PassKind::F, 0));
        let report = check(&Schedule::new(sched.kind(), 6, 1, passes));
        assert!(!report.is_clean());
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
        assert!(report.has(Code::DuplicatePass));
    }

    #[test]
    fn decode_schedules_are_clean_under_check_decode() {
        use vp_schedule::generators::decode_pipeline;
        for p in [1, 2, 4] {
            for m in [1u32, 3, 8] {
                let sched = decode_pipeline(p, m);
                // Training liveness would leak every F; decode mode accepts.
                let report = check_decode(&sched);
                assert!(report.is_clean(), "p={p} m={m}: {:#?}", report.diagnostics);
                assert!(report.races_checked);
            }
        }
    }

    #[test]
    fn overlap_decode_schedules_are_clean_under_check_decode() {
        use vp_schedule::generators::decode_pipeline_overlap;
        for p in [1, 2, 4] {
            for m in [1u32, 3, 8] {
                let sched = decode_pipeline_overlap(p, m);
                let report = check_decode(&sched);
                assert!(report.is_clean(), "p={p} m={m}: {:#?}", report.diagnostics);
                assert!(report.races_checked);
            }
        }
    }

    #[test]
    fn missplit_overlap_decode_is_rejected_as_a_deadlock() {
        use vp_schedule::generators::decode_pipeline_overlap_missplit;
        // The inconsistent half-batch split: device 0 merges at lag 0,
        // everyone else at lag 2. The wait lives at T (the S passes are
        // stream-offloaded), so the cycle is already in the asymmetric
        // graph — VP0001, not VP0017.
        for p in [2usize, 4] {
            for m in [2u32, 3, 8] {
                let report = check_decode(&decode_pipeline_overlap_missplit(p, m));
                assert!(
                    report.has(Code::Deadlock),
                    "p={p} m={m}: {:?}",
                    report.codes()
                );
            }
        }
        // Degenerate sizes never reach the inconsistent window: clean.
        assert!(check_decode(&decode_pipeline_overlap_missplit(2, 1)).is_clean());
        // The witness cycle crosses a T wait and an F of the next slot.
        let report = check_decode(&decode_pipeline_overlap_missplit(2, 2));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Deadlock)
            .unwrap();
        let kinds: Vec<PassKind> = d.related.iter().map(|(s, _)| s.pass.kind).collect();
        assert!(kinds.contains(&PassKind::T), "{d}");
        assert!(kinds.contains(&PassKind::F), "{d}");
    }

    #[test]
    fn unhoisted_decode_schedule_is_rejected_with_vp0017() {
        use vp_schedule::generators::decode_pipeline_natural;
        // The PR-8 serving deadlock, now a diagnostic instead of a hang:
        // InputF sends in natural position at p=2/m=2.
        let report = check_decode(&decode_pipeline_natural(2, 2));
        assert!(report.has(Code::RendezvousDeadlock), "{:?}", report.codes());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::RendezvousDeadlock)
            .unwrap();
        // The witness names the blocked S collective and the unsent
        // InputF row.
        assert_eq!(d.primary.unwrap().pass.kind, PassKind::S, "{d}");
        assert!(
            d.related.iter().any(|(s, _)| s.pass.kind == PassKind::S),
            "{d}"
        );
        assert!(
            d.related
                .iter()
                .any(|(s, _)| s.pass.kind == PassKind::InputF),
            "{d}"
        );
        assert!(d.notes.iter().any(|n| n.contains("unsent")), "{d}");
        // Only the blocking-send analysis fires: the base model is clean,
        // so no VP0001.
        assert!(!report.has(Code::Deadlock), "{:?}", report.codes());
        // And the cycle is minimal: a handful of passes, not the whole
        // schedule.
        assert!(d.related.len() <= 4, "{d}");
    }

    #[test]
    fn unhoisted_decode_family_deadlocks_across_sizes() {
        use vp_schedule::generators::decode_pipeline_natural;
        for p in [2usize, 4] {
            for m in [2u32, 3, 8] {
                let report = check_decode(&decode_pipeline_natural(p, m));
                assert!(
                    report.has(Code::RendezvousDeadlock),
                    "p={p} m={m}: {:?}",
                    report.codes()
                );
            }
        }
        // Degenerate sizes have nothing to block on: clean.
        assert!(check_decode(&decode_pipeline_natural(1, 4)).is_clean());
        assert!(check_decode(&decode_pipeline_natural(4, 1)).is_clean());
    }

    #[test]
    fn training_vocab_schedules_have_no_rendezvous_diagnostics() {
        // Training offloads C1 to the comm stream: the rendezvous pass
        // must not run (sync_collectives is empty outside forward_only),
        // so the shipped families stay clean.
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            let report = check(&vocab_1f1b(4, 8, variant, PassTimes::default(), true));
            assert!(report.is_clean(), "{variant:?}: {:#?}", report.diagnostics);
        }
    }

    #[test]
    fn training_liveness_rejects_decode_schedules_as_leaks() {
        use vp_schedule::generators::decode_pipeline;
        let report = check(&decode_pipeline(2, 4));
        assert!(report.has(Code::ActivationLeak));
    }

    #[test]
    fn backward_pass_in_decode_schedule_is_vp0016() {
        use vp_schedule::generators::decode_pipeline;
        let sched = decode_pipeline(2, 4);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        passes[1].push(ScheduledPass::new(PassKind::B, 0));
        let mutated = Schedule::new(sched.kind(), 4, 1, passes);
        let report = check_decode(&mutated);
        assert!(report.has(Code::BackwardInDecode), "{:#?}", report.codes());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::BackwardInDecode)
            .unwrap();
        assert_eq!(d.primary.unwrap().device, 1);
    }

    #[test]
    fn decode_mode_still_catches_comm_and_deadlock_defects() {
        use vp_schedule::generators::decode_pipeline;
        // Drop one S on device 0: participation hole.
        let sched = decode_pipeline(2, 4);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        let s = passes[0]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 2)
            .unwrap();
        passes[0].remove(s);
        let mutated = Schedule::new(sched.kind(), 4, 1, passes);
        let report = check_decode(&mutated);
        assert!(!report.is_clean(), "dropped S must be caught");

        // Swap two S entries on one device: collective order skew.
        let sched = decode_pipeline(2, 4);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        let s0 = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 0)
            .unwrap();
        let s1 = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 1)
            .unwrap();
        passes[1].swap(s0, s1);
        let mutated = Schedule::new(sched.kind(), 4, 1, passes);
        let report = check_decode(&mutated);
        assert!(!report.is_clean(), "S order skew must be caught");
    }

    #[test]
    fn explicit_caps_override_the_analytic_bound() {
        let sched = one_f_one_b(2, 4, PassTimes::default());
        let strict = CheckConfig {
            activation_caps: Some(vec![1, 1]),
            ..CheckConfig::default()
        };
        let report = check_with(&sched, &strict);
        assert!(report.has(Code::PeakActivations));
        assert!(check(&sched).is_clean());
    }
}
