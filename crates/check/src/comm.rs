//! Communication-protocol lint: `VP0004` coverage holes, `VP0005`
//! collective participation, `VP0006` cross-shard entry order and
//! `VP0007` comm-stream consume-before-issue.
//!
//! The vocabulary passes communicate through rendezvous collectives
//! (`C0`/`C1`/`C2` and friends): every shard must enter every barrier, and
//! must enter the instances of a class in the same order — an in-order
//! communication stream delivers them FIFO, so cross-shard disagreement on
//! the order is a hang even when each device's schedule is locally
//! sensible. Point-to-point activation/gradient transfers are exempt from
//! the order lint: the runtime backs them with keyed stashes, so
//! reordering across microbatches is tolerated.

use std::collections::HashMap;
use vp_schedule::deps::{DepContext, DepGraph};
use vp_schedule::facts::collective_entries;
use vp_schedule::pass::{PassKind, Schedule, ScheduledPass};

use crate::diag::{Code, Diagnostic, Site};

/// Pass kinds that are sharded across all devices (every device runs its
/// own shard of the same logical computation), in a stable report order.
const SHARDED_KINDS: [PassKind; 7] = [
    PassKind::S,
    PassKind::S2,
    PassKind::T,
    PassKind::InputF,
    PassKind::InputB,
    PassKind::OutputF,
    PassKind::OutputB,
];

fn format_mbs(mbs: &[u32]) -> String {
    const SHOWN: usize = 8;
    let mut s = mbs
        .iter()
        .take(SHOWN)
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    if mbs.len() > SHOWN {
        s.push_str(&format!(", … ({} total)", mbs.len()));
    }
    s
}

/// `VP0004`: every pass kind a device schedules at all must cover every
/// microbatch. A dropped send/recv shows up as a hole in the coverage of
/// its kind: the device runs `F` for microbatches 0–5 and 7, say, and the
/// partner's mb-6 pass waits forever.
pub fn check_coverage(schedule: &Schedule) -> Vec<Diagnostic> {
    let m = schedule.num_microbatches();
    let mut groups: HashMap<(usize, PassKind, u8), (Vec<u32>, Site)> = HashMap::new();
    for (d, i, pass) in schedule.iter_all() {
        let entry = groups.entry((d, pass.kind, pass.chunk)).or_insert_with(|| {
            (
                Vec::new(),
                Site {
                    device: d,
                    slot: i,
                    pass: *pass,
                },
            )
        });
        entry.0.push(pass.microbatch);
    }
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort_by_key(|&(d, kind, chunk)| (d, chunk, kind_rank(kind)));
    let mut diags = Vec::new();
    for key in keys {
        let (d, kind, chunk) = key;
        let (mbs, site) = &groups[&key];
        let missing: Vec<u32> = (0..m).filter(|mb| !mbs.contains(mb)).collect();
        if !missing.is_empty() {
            diags.push(
                Diagnostic::error(
                    Code::CoverageHole,
                    format!(
                        "device {d} schedules {kind:?} (chunk {chunk}) for {} of {m} \
                         microbatches but not for mb {}",
                        mbs.len(),
                        format_mbs(&missing)
                    ),
                )
                .at(*site)
                .note(
                    "a kind that appears at all must cover every microbatch: its partners' \
                     passes for the missing microbatches can never be satisfied",
                )
                .help(format!(
                    "schedule the missing {kind:?} passes or drop the kind entirely"
                )),
            );
        }
    }
    diags
}

fn kind_rank(kind: PassKind) -> usize {
    SHARDED_KINDS
        .iter()
        .position(|&k| k == kind)
        .map_or(usize::MAX, |r| r + 100)
}

/// `VP0005`: collective participation sets must be identical across
/// vocabulary shards. If any device runs a sharded pass for a microbatch,
/// every device must — the barrier it enters blocks until all `p` shards
/// arrive.
pub fn check_participation(schedule: &Schedule) -> Vec<Diagnostic> {
    let ctx = DepContext::of(schedule);
    let p = schedule.devices();
    let mut diags = Vec::new();
    for kind in SHARDED_KINDS {
        let mut present: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut witness: Option<Site> = None;
        for (d, i, pass) in schedule.iter_all() {
            if pass.kind == kind {
                present[d].push(pass.microbatch);
                if witness.is_none() {
                    witness = Some(Site {
                        device: d,
                        slot: i,
                        pass: *pass,
                    });
                }
            }
        }
        let Some(witness) = witness else { continue };
        let mut union: Vec<u32> = present.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        let classes = collective_entries(&ctx, &ScheduledPass::new(kind, 0));
        let barrier = if classes.is_empty() {
            format!("sharded {kind:?} computation")
        } else {
            classes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" and ")
        };
        for (d, mbs) in present.iter().enumerate() {
            let missing: Vec<u32> = union
                .iter()
                .copied()
                .filter(|mb| !mbs.contains(mb))
                .collect();
            if !missing.is_empty() {
                diags.push(
                    Diagnostic::error(
                        Code::MissingParticipant,
                        format!(
                            "device {d} never enters the {barrier} for {kind:?} of mb {}",
                            format_mbs(&missing)
                        ),
                    )
                    .at(witness)
                    .note(format!(
                        "all {p} vocabulary shards must participate in every instance of a \
                         collective; the other shards block at the barrier forever"
                    ))
                    .help(format!(
                        "schedule {kind:?} for the missing microbatches on device {d}"
                    )),
                );
            }
        }
    }
    diags
}

/// `VP0006`: devices must enter the instances of a collective class in the
/// same order. Each device's communication stream issues its collectives
/// in program order; rendezvous semantics then deadlock if shard 0 enters
/// `S` of mb 1 before mb 0 while shard 1 does the opposite.
pub fn check_collective_order(schedule: &Schedule) -> Vec<Diagnostic> {
    let p = schedule.devices();
    let mut diags = Vec::new();
    for kind in SHARDED_KINDS {
        let mut seqs: Vec<Vec<(u32, Site)>> = vec![Vec::new(); p];
        for (d, i, pass) in schedule.iter_all() {
            if pass.kind == kind {
                seqs[d].push((
                    pass.microbatch,
                    Site {
                        device: d,
                        slot: i,
                        pass: *pass,
                    },
                ));
            }
        }
        let Some(reference) = seqs.iter().position(|s| !s.is_empty()) else {
            continue;
        };
        let ref_set = sorted_mbs(&seqs[reference]);
        for d in reference + 1..p {
            if seqs[d].is_empty() || sorted_mbs(&seqs[d]) != ref_set {
                // Absence and set mismatches are VP0005's finding.
                continue;
            }
            if let Some(pos) = (0..seqs[d].len()).find(|&i| seqs[d][i].0 != seqs[reference][i].0) {
                let (mb_here, site_here) = seqs[d][pos];
                let (mb_ref, site_ref) = seqs[reference][pos];
                diags.push(
                    Diagnostic::error(
                        Code::CollectiveOrder,
                        format!(
                            "devices disagree on the order of {kind:?} collectives: entry #{pos} \
                             is mb {mb_here} on device {d} but mb {mb_ref} on device {reference}"
                        ),
                    )
                    .at(site_here)
                    .related(site_ref, format!("device {reference}'s entry #{pos}"))
                    .note(
                        "each device enters collectives in program order; rendezvous \
                         collectives hang when shards pair up different instances",
                    )
                    .help(format!(
                        "reorder device {d}'s {kind:?} passes to match the other shards"
                    )),
                );
            }
        }
    }
    diags
}

/// `VP0007`: a pass consuming a collective's result must run after its own
/// device's entry into that collective instance. The entry is issued on
/// the device's communication stream in program order; a consumer
/// scheduled before it waits for a job its own device has not contributed
/// to yet — on the runtime this is a comm-stream hang even before the
/// cross-device cycle is considered.
pub fn check_consume_before_issue(schedule: &Schedule, deps: &DepGraph) -> Vec<Diagnostic> {
    let ctx = DepContext::of(schedule);
    // First slot at which each device enters each (class, mb) instance.
    let mut issued: HashMap<(usize, vp_schedule::facts::CollectiveClass, u32), (usize, Site)> =
        HashMap::new();
    for (d, i, pass) in schedule.iter_all() {
        for class in collective_entries(&ctx, pass) {
            issued.entry((d, class, pass.microbatch)).or_insert((
                i,
                Site {
                    device: d,
                    slot: i,
                    pass: *pass,
                },
            ));
        }
    }
    let mut diags = Vec::new();
    for (d, i, pass) in schedule.iter_all() {
        let mut seen = Vec::new();
        for dep in deps.preds(d, i) {
            let Some(class) = dep.kind.collective_class() else {
                continue;
            };
            if seen.contains(&class) {
                continue;
            }
            seen.push(class);
            let Some(&(islot, issue_site)) = issued.get(&(d, class, pass.microbatch)) else {
                // The device never issues this instance at all; that is
                // VP0005's (or VP0002's) finding.
                continue;
            };
            if islot > i {
                diags.push(
                    Diagnostic::error(
                        Code::ConsumeBeforeIssue,
                        format!(
                            "{pass} on device {d} consumes the {class} of mb {} before the \
                             device issues its own contribution",
                            pass.microbatch
                        ),
                    )
                    .at(Site {
                        device: d,
                        slot: i,
                        pass: *pass,
                    })
                    .related(
                        issue_site,
                        format!("device {d} enters the {class} only here"),
                    )
                    .note(
                        "a device's communication stream runs in program order: the consumer \
                         waits on a collective its own device has not entered yet",
                    )
                    .help(format!(
                        "move the issuing pass before slot {i} on device {d}"
                    )),
                );
            }
        }
    }
    diags
}

fn sorted_mbs(seq: &[(u32, Site)]) -> Vec<u32> {
    let mut mbs: Vec<u32> = seq.iter().map(|(mb, _)| *mb).collect();
    mbs.sort_unstable();
    mbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::deps::build_deps;
    use vp_schedule::generators::{vocab_1f1b, zb_vocab_1f1b};
    use vp_schedule::pass::{ScheduleKind, VocabVariant};

    fn zb_times() -> PassTimes {
        PassTimes {
            w: 1.0,
            b: 1.0,
            ..PassTimes::default()
        }
    }

    fn rebuild(sched: &Schedule, passes: Vec<Vec<ScheduledPass>>) -> Schedule {
        Schedule::new(
            sched.kind(),
            sched.num_microbatches(),
            sched.chunks(),
            passes,
        )
        .with_placement(sched.placement())
    }

    fn device_passes(sched: &Schedule) -> Vec<Vec<ScheduledPass>> {
        (0..sched.devices())
            .map(|d| sched.passes(d).to_vec())
            .collect()
    }

    #[test]
    fn clean_vocab_schedules_pass_every_comm_lint() {
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            let sched = vocab_1f1b(4, 8, variant, PassTimes::default(), true);
            assert!(check_coverage(&sched).is_empty(), "{variant:?}");
            assert!(check_participation(&sched).is_empty(), "{variant:?}");
            assert!(check_collective_order(&sched).is_empty(), "{variant:?}");
            let deps = build_deps(&sched).unwrap();
            assert!(
                check_consume_before_issue(&sched, &deps).is_empty(),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn dropped_pass_is_a_coverage_hole() {
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), false);
        let mut passes = device_passes(&sched);
        let pos = passes[2]
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 3)
            .unwrap();
        passes[2].remove(pos);
        let diags = check_coverage(&rebuild(&sched, passes));
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, Code::CoverageHole);
        assert!(diags[0].message.contains("mb 3"), "{}", diags[0].message);
    }

    #[test]
    fn removed_barrier_participant_is_named_with_its_barrier() {
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg1, PassTimes::default(), false);
        let mut passes = device_passes(&sched);
        let pos = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 2)
            .unwrap();
        passes[1].remove(pos);
        let diags = check_participation(&rebuild(&sched, passes));
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, Code::MissingParticipant);
        assert!(diags[0].message.contains("C0"), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("device 1"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn swapped_collective_entries_diverge() {
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), false);
        let mut passes = device_passes(&sched);
        let s0 = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 0)
            .unwrap();
        let s1 = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 1)
            .unwrap();
        passes[1].swap(s0, s1);
        let diags = check_collective_order(&rebuild(&sched, passes));
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == Code::CollectiveOrder));
        assert!(diags[0].message.contains("S"), "{}", diags[0].message);
    }

    #[test]
    fn t_before_s_consumes_before_issue() {
        // On one device move T0 before S0: T0 waits for the C1 result of
        // an all-reduce its own device has not entered yet.
        let sched = zb_vocab_1f1b(4, 8, VocabVariant::Alg2, zb_times(), false);
        let mut passes = device_passes(&sched);
        let d = 3;
        let s = passes[d]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 0)
            .unwrap();
        let t = passes[d]
            .iter()
            .position(|p| p.kind == PassKind::T && p.microbatch == 0)
            .unwrap();
        passes[d].swap(s, t);
        let mutated = rebuild(&sched, passes);
        let deps = build_deps(&mutated).unwrap();
        let diags = check_consume_before_issue(&mutated, &deps);
        assert!(
            diags.iter().any(|di| di.code == Code::ConsumeBeforeIssue
                && di.primary.map(|s| s.pass.kind) == Some(PassKind::T)),
            "{diags:#?}"
        );
        assert_eq!(mutated.kind(), ScheduleKind::Vocab(VocabVariant::Alg2));
    }
}
