//! Static race detection (`VP0012`): every pair of conflicting buffer
//! accesses must be ordered by a happens-before path.
//!
//! The buffer facts of [`vp_schedule::facts`] are deliberately independent
//! of the dependency rules, so this pass *verifies* rather than assumes
//! that the rules order every conflict: for each logical buffer, each
//! (write, read) pair needs a happens-before path from the write to the
//! read, and each (write, write) pair needs a path in either direction.
//! On every valid built-in schedule this proves race freedom — including
//! the paper's §4.4 claim that Algorithm 2's `T` pass is freely deferrable
//! because it touches no buffer the backward chain reads.

use std::collections::HashMap;
use vp_schedule::deps::DepContext;
use vp_schedule::facts::{buffer_accesses, Access, Buffer};
use vp_schedule::hb::HbGraph;
use vp_schedule::pass::Schedule;

use crate::diag::{Code, Diagnostic, Site};

/// Dense transitive-closure bitsets over a happens-before graph:
/// `before(u, v)` answers "must `u` finish before `v` starts?".
pub struct Reachability {
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Computes the ancestor sets of every node by a single sweep over a
    /// topological order (`O(V·E/64)` words of work, `V²/64` words of
    /// memory — a few hundred KiB for the largest sweep schedules).
    pub fn compute(hb: &HbGraph, topo: &[usize]) -> Reachability {
        let n = hb.len();
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        let mut row = vec![0u64; words];
        for &v in topo {
            row.copy_from_slice(&bits[v * words..(v + 1) * words]);
            row[v / 64] |= 1 << (v % 64);
            for &(w, _) in hb.succs(v) {
                let dst = &mut bits[w * words..(w + 1) * words];
                for (d, s) in dst.iter_mut().zip(&row) {
                    *d |= s;
                }
            }
        }
        Reachability { words, bits }
    }

    /// Whether node `u` happens before node `v` (strictly: `u != v` and a
    /// path exists).
    pub fn before(&self, u: usize, v: usize) -> bool {
        u != v && self.bits[v * self.words + u / 64] & (1 << (u % 64)) != 0
    }
}

/// Checks every conflicting access pair of every logical buffer for
/// happens-before ordering. Emits at most one `VP0012` per buffer (the
/// first unordered pair found), since one broken buffer usually breaks
/// many of its pairs at once.
pub fn check_races(schedule: &Schedule, hb: &HbGraph, reach: &Reachability) -> Vec<Diagnostic> {
    let ctx = DepContext::of(schedule);
    // Insertion-ordered buffer table for deterministic reports.
    let mut order: Vec<Buffer> = Vec::new();
    let mut accesses: HashMap<Buffer, Vec<(usize, Access)>> = HashMap::new();
    for (d, i, pass) in schedule.iter_all() {
        for (buffer, access) in buffer_accesses(&ctx, d, pass) {
            let entry = accesses.entry(buffer).or_insert_with(|| {
                order.push(buffer);
                Vec::new()
            });
            entry.push((hb.id(d, i), access));
        }
    }
    let mut diags = Vec::new();
    'buffers: for buffer in order {
        let list = &accesses[&buffer];
        for (a, (u, ua)) in list.iter().enumerate() {
            if *ua != Access::Write {
                continue;
            }
            for (b, (v, va)) in list.iter().enumerate() {
                if a == b || u == v {
                    continue;
                }
                match va {
                    Access::Read => {
                        if !reach.before(*u, *v) {
                            diags.push(race_diag(hb, &buffer, *u, *v, reach));
                            continue 'buffers;
                        }
                    }
                    Access::Write => {
                        if b > a && !reach.before(*u, *v) && !reach.before(*v, *u) {
                            diags.push(race_diag(hb, &buffer, *u, *v, reach));
                            continue 'buffers;
                        }
                    }
                }
            }
        }
    }
    diags
}

fn site_of(hb: &HbGraph, id: usize) -> Site {
    let (device, slot, pass) = hb.node(id);
    Site { device, slot, pass }
}

fn race_diag(
    hb: &HbGraph,
    buffer: &Buffer,
    writer: usize,
    other: usize,
    reach: &Reachability,
) -> Diagnostic {
    let wsite = site_of(hb, writer);
    let osite = site_of(hb, other);
    let (verb, note) = if reach.before(other, writer) {
        (
            "runs before",
            "the consumer is ordered before the producer: it observes stale or \
             uninitialized contents",
        )
    } else {
        (
            "is unordered with",
            "no chain of program order and dependency edges relates the two accesses: \
             on real hardware they race",
        )
    };
    Diagnostic::error(
        Code::UnsyncedAccess,
        format!(
            "conflicting accesses to the {buffer}: {} on device {} {verb} the write by {} \
             on device {}",
            osite.pass, osite.device, wsite.pass, wsite.device
        ),
    )
    .at(osite)
    .related(wsite, "the conflicting write")
    .note(note)
    .help("add (or fix) the dependency edge that should order these passes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::deps::build_deps;
    use vp_schedule::generators::{vocab_1f1b, zb_vocab_1f1b};
    use vp_schedule::pass::{PassKind, VocabVariant};

    fn zb_times() -> PassTimes {
        PassTimes {
            w: 1.0,
            b: 1.0,
            ..PassTimes::default()
        }
    }

    fn closure(sched: &Schedule) -> (HbGraph, Reachability) {
        let deps = build_deps(sched).unwrap();
        let hb = HbGraph::new(sched, &deps);
        let topo = hb.topo_order().expect("acyclic");
        let reach = Reachability::compute(&hb, &topo);
        (hb, reach)
    }

    #[test]
    fn reachability_includes_transitive_cross_device_paths() {
        let sched = vocab_1f1b(3, 4, VocabVariant::Alg1, PassTimes::default(), false);
        let (hb, reach) = closure(&sched);
        // Device 0's F0 happens before device 2's B0 (forward chain, then
        // the last stage's local F→B edge).
        let f0 = sched
            .passes(0)
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 0)
            .unwrap();
        let b0 = sched
            .passes(2)
            .iter()
            .position(|p| p.kind == PassKind::B && p.microbatch == 0)
            .unwrap();
        assert!(reach.before(hb.id(0, f0), hb.id(2, b0)));
        assert!(!reach.before(hb.id(2, b0), hb.id(0, f0)));
    }

    #[test]
    fn valid_schedules_are_race_free() {
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            for include_input in [false, true] {
                let sched = zb_vocab_1f1b(4, 8, variant, zb_times(), include_input);
                let (hb, reach) = closure(&sched);
                let diags = check_races(&sched, &hb, &reach);
                assert!(
                    diags.is_empty(),
                    "{variant:?} input={include_input}: {diags:#?}"
                );
            }
        }
    }

    #[test]
    fn concurrent_pass_pairs_exist_but_share_no_buffers() {
        // Pipelines are parallel: plenty of pass pairs are unordered in
        // both directions. Race freedom means none of those pairs share a
        // buffer with a write — which is exactly what check_races proves.
        let sched = vp_schedule::generators::one_f_one_b(2, 2, PassTimes::default());
        let (hb, reach) = closure(&sched);
        let n = hb.len();
        let unordered =
            (0..n).any(|u| (0..n).any(|v| u != v && !reach.before(u, v) && !reach.before(v, u)));
        assert!(
            unordered,
            "pipeline schedules always have concurrent pass pairs"
        );
        assert!(check_races(&sched, &hb, &reach).is_empty());
    }

    #[test]
    fn detector_flags_unordered_conflicts_when_edges_vanish() {
        // The §5.1 rules order every organic conflict (the sweep proves
        // that), so exercise the detector by deleting all ordering: with
        // an empty reachability relation every write→read pair must be
        // reported — proving the pairs are actually examined, one
        // diagnostic per buffer.
        let sched = vocab_1f1b(2, 2, VocabVariant::Alg2, PassTimes::default(), false);
        let (hb, reach) = closure(&sched);
        assert!(check_races(&sched, &hb, &reach).is_empty());
        let words = hb.len().div_ceil(64).max(1);
        let empty = Reachability {
            words,
            bits: vec![0; hb.len() * words],
        };
        let diags = check_races(&sched, &hb, &empty);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == Code::UnsyncedAccess));
        let mut seen = std::collections::HashSet::new();
        for d in &diags {
            assert!(seen.insert(d.message.clone()), "duplicate: {}", d.message);
        }
    }
}
