//! An exhaustive execution model checker for the pass-VM's concurrency
//! semantics — the dynamic counterpart of the static happens-before
//! analyses, used to *differentially validate* them.
//!
//! The VM under test is the thread-per-stage runtime: every device walks
//! its pass list with a program counter; point-to-point sends never block
//! (the runtime's channels are unbounded and stash out-of-order tags);
//! receives block until the producing pass has completed; stream-offloaded
//! collective results block their *consumer* the same way; and — in
//! forward-only decode mode — the `S` pass's sampling barrier is a true
//! rendezvous executed inline on the device thread: the call arrives once
//! its receive is satisfied, then blocks until **every** device of the
//! world has arrived at its matching call ([`vp_schedule::deps::sync_collectives`]).
//!
//! [`model_check`] explores the reachable state space of this machine.
//! A state is the vector of per-device program counters plus an
//! inside-the-rendezvous flag; a transition is one device completing its
//! current pass (or arriving at its rendezvous). Exploration is DFS with
//! DPOR-style partial-order reduction: every transition of this VM is
//! *independent* of every other enabled transition — completions only
//! accumulate, unbounded channels mean no send can disable anything, and
//! rendezvous arrivals commute — so the persistent set at each state is a
//! single transition and the reduced exploration is linear in the number
//! of passes. The reduction itself is validated by
//! [`ModelConfig::full`], which explores *all* interleavings (feasible on
//! small configs) and must reach the same verdict; the unit tests do
//! exactly that cross-check.
//!
//! A deadlock verdict carries a replayable interleaving trace — the exact
//! sequence of transitions leading to the stuck state — plus a
//! description of what every blocked device is waiting for. [`replay`]
//! re-executes a trace step by step and confirms it is a real execution
//! of the machine.

use std::collections::HashSet;
use std::fmt;

use vp_schedule::deps::{build_deps, sync_collectives, DepError, DepGraph, SyncCollective};
use vp_schedule::pass::{Schedule, ScheduledPass};

/// Options for [`model_check`].
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Forward-only decode mode: `S` barriers are synchronous rendezvous
    /// (and backward-family passes are a mode violation). Mirrors
    /// [`crate::CheckConfig::forward_only`].
    pub forward_only: bool,
    /// Hard cap on distinct states explored; exceeding it is an error,
    /// not a verdict — the caller's budget assertion failed.
    pub max_states: usize,
    /// Explore every interleaving instead of the partial-order-reduced
    /// canonical one. Exponential; only for small configs (it exists to
    /// validate the reduction).
    pub full: bool,
}

impl Default for ModelConfig {
    fn default() -> ModelConfig {
        ModelConfig {
            forward_only: false,
            max_states: 1 << 20,
            full: false,
        }
    }
}

impl ModelConfig {
    /// Decode-mode configuration with the default state budget.
    pub fn decode() -> ModelConfig {
        ModelConfig {
            forward_only: true,
            ..ModelConfig::default()
        }
    }
}

/// What a transition did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The device completed an ordinary pass and advanced.
    Complete,
    /// The device arrived at its rendezvous collective and is now blocked
    /// inside it.
    Arrive,
    /// The device was the *last* arriver: the rendezvous completes and
    /// every participant advances atomically.
    ArriveAndRelease,
}

/// One executed transition of an interleaving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// The device that fired.
    pub device: usize,
    /// The slot it was at.
    pub slot: usize,
    /// The pass at that slot.
    pub pass: ScheduledPass,
    /// What happened.
    pub action: Action,
}

/// A blocked device in a deadlocked state and why it cannot proceed.
#[derive(Debug, Clone)]
pub struct Blocked {
    /// The stuck device.
    pub device: usize,
    /// The slot its program counter points at.
    pub slot: usize,
    /// The pass it cannot get past.
    pub pass: ScheduledPass,
    /// Human-readable description of the unmet wait.
    pub reason: String,
}

/// A deadlock found by exploration.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Distinct states explored before the deadlock was reached.
    pub states: usize,
    /// The replayable interleaving: firing these transitions from the
    /// initial state reaches the stuck state.
    pub trace: Vec<TraceStep>,
    /// Every unfinished device and what it waits for.
    pub blocked: Vec<Blocked>,
}

/// The model checker's verdict on a schedule.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every explored interleaving runs to completion.
    Completes {
        /// Distinct states explored.
        states: usize,
        /// Transitions on the completing run.
        steps: usize,
    },
    /// Some interleaving blocks with work left.
    Deadlock(DeadlockReport),
}

impl Verdict {
    /// Whether the verdict is a deadlock.
    pub fn deadlocked(&self) -> bool {
        matches!(self, Verdict::Deadlock(_))
    }

    /// Distinct states explored.
    pub fn states(&self) -> usize {
        match self {
            Verdict::Completes { states, .. } => *states,
            Verdict::Deadlock(report) => report.states,
        }
    }
}

/// Why the model could not run at all (distinct from a deadlock verdict).
#[derive(Debug, Clone)]
pub enum ModelError {
    /// The schedule is structurally broken (missing/duplicate passes);
    /// the static analyzer reports the same defect as `VP0002`/`VP0003`.
    Structure(DepError),
    /// A forward-only schedule contains a pass the decode engine has no
    /// semantics for; the static analyzer reports it as `VP0016`.
    ModeViolation {
        /// Offending device.
        device: usize,
        /// The backward-family pass.
        pass: ScheduledPass,
    },
    /// Exploration exceeded [`ModelConfig::max_states`].
    StateBudget {
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Structure(e) => write!(f, "structural defect: {e}"),
            ModelError::ModeViolation { device, pass } => write!(
                f,
                "mode violation: {pass} on device {device} has no forward-only semantics [VP0016]"
            ),
            ModelError::StateBudget { limit } => {
                write!(
                    f,
                    "state budget exceeded: more than {limit} distinct states"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// The compiled machine: blocking requirements per (device, slot).
struct Vm {
    /// Per-device pass lists.
    passes: Vec<Vec<ScheduledPass>>,
    /// Blocking receives of each pass: `(producer device, producer slot)`
    /// pairs that must have completed before the pass can fire (for a
    /// rendezvous participant: before it can *arrive*).
    preds: Vec<Vec<Vec<(usize, usize)>>>,
    /// Rendezvous instance index of each slot, if the pass is a
    /// synchronous-collective participant.
    sync_of: Vec<Vec<Option<usize>>>,
    /// The synchronous collective instances.
    instances: Vec<SyncCollective>,
    /// World size: a rendezvous completes only when *all* devices arrive;
    /// an instance scheduled on fewer devices can never complete (the
    /// runtime's collective group spans the whole world).
    devices: usize,
}

/// VM state: one `(pc, inside-rendezvous)` pair per device, packed as
/// `pc * 2 + arrived` for hashing.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    packed: Vec<u32>,
}

impl State {
    fn pc(&self, d: usize) -> usize {
        (self.packed[d] / 2) as usize
    }

    fn arrived(&self, d: usize) -> bool {
        self.packed[d] % 2 == 1
    }

    fn advance(&mut self, d: usize) {
        self.packed[d] = (self.packed[d] / 2 + 1) * 2;
    }

    fn arrive(&mut self, d: usize) {
        self.packed[d] |= 1;
    }
}

impl Vm {
    fn build(schedule: &Schedule, deps: &DepGraph, forward_only: bool) -> Vm {
        let p = schedule.devices();
        let passes: Vec<Vec<ScheduledPass>> = (0..p).map(|d| schedule.passes(d).to_vec()).collect();
        let preds: Vec<Vec<Vec<(usize, usize)>>> = (0..p)
            .map(|d| {
                (0..passes[d].len())
                    .map(|i| {
                        deps.preds(d, i)
                            .iter()
                            .map(|dep| (dep.device, dep.index))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let instances = sync_collectives(schedule, forward_only);
        let mut sync_of: Vec<Vec<Option<usize>>> =
            (0..p).map(|d| vec![None; passes[d].len()]).collect();
        for (idx, inst) in instances.iter().enumerate() {
            for &(d, slot) in &inst.sites {
                sync_of[d][slot] = Some(idx);
            }
        }
        Vm {
            passes,
            preds,
            sync_of,
            instances,
            devices: p,
        }
    }

    fn initial(&self) -> State {
        State {
            packed: vec![0; self.devices],
        }
    }

    fn done(&self, s: &State) -> bool {
        (0..self.devices).all(|d| s.pc(d) >= self.passes[d].len())
    }

    fn preds_met(&self, s: &State, d: usize, slot: usize) -> bool {
        self.preds[d][slot].iter().all(|&(pd, pi)| s.pc(pd) > pi)
    }

    /// Devices with an enabled transition, ascending.
    fn enabled(&self, s: &State) -> Vec<usize> {
        (0..self.devices)
            .filter(|&d| {
                let slot = s.pc(d);
                slot < self.passes[d].len() && !s.arrived(d) && self.preds_met(s, d, slot)
            })
            .collect()
    }

    /// Fires device `d`'s transition, mutating `s`.
    fn apply(&self, s: &mut State, d: usize) -> TraceStep {
        let slot = s.pc(d);
        let pass = self.passes[d][slot];
        match self.sync_of[d][slot] {
            None => {
                s.advance(d);
                TraceStep {
                    device: d,
                    slot,
                    pass,
                    action: Action::Complete,
                }
            }
            Some(idx) => {
                s.arrive(d);
                let inst = &self.instances[idx];
                let complete = inst.sites.len() == self.devices
                    && inst
                        .sites
                        .iter()
                        .all(|&(pd, pslot)| s.pc(pd) == pslot && s.arrived(pd));
                if complete {
                    for &(pd, _) in &inst.sites {
                        s.advance(pd);
                    }
                    TraceStep {
                        device: d,
                        slot,
                        pass,
                        action: Action::ArriveAndRelease,
                    }
                } else {
                    TraceStep {
                        device: d,
                        slot,
                        pass,
                        action: Action::Arrive,
                    }
                }
            }
        }
    }

    /// Describes why each unfinished device in a quiescent state is stuck.
    fn blocked(&self, s: &State) -> Vec<Blocked> {
        let mut out = Vec::new();
        for d in 0..self.devices {
            let slot = s.pc(d);
            if slot >= self.passes[d].len() {
                continue;
            }
            let pass = self.passes[d][slot];
            let reason = if s.arrived(d) {
                let idx = self.sync_of[d][slot].expect("arrived implies rendezvous");
                let inst = &self.instances[idx];
                if inst.sites.len() < self.devices {
                    let scheduled: Vec<usize> = inst.sites.iter().map(|&(pd, _)| pd).collect();
                    format!(
                        "inside the {} of mb {} that can never complete: only devices \
                         {scheduled:?} of {} schedule the call",
                        inst.class, inst.microbatch, self.devices
                    )
                } else {
                    let missing: Vec<usize> = inst
                        .sites
                        .iter()
                        .filter(|&&(pd, pslot)| !(s.pc(pd) == pslot && s.arrived(pd)))
                        .map(|&(pd, _)| pd)
                        .collect();
                    format!(
                        "inside the {} of mb {}, waiting for device(s) {missing:?} to arrive",
                        inst.class, inst.microbatch
                    )
                }
            } else {
                let unmet: Vec<String> = self.preds[d][slot]
                    .iter()
                    .filter(|&&(pd, pi)| s.pc(pd) <= pi)
                    .map(|&(pd, pi)| format!("{} [device {pd}, slot {pi}]", self.passes[pd][pi]))
                    .collect();
                format!("receive not satisfied: waiting on {}", unmet.join(", "))
            };
            out.push(Blocked {
                device: d,
                slot,
                pass,
                reason,
            });
        }
        out
    }
}

/// Exhaustively explores a schedule's executions under the pass-VM's
/// concurrency semantics.
///
/// Returns [`Verdict::Completes`] if every explored interleaving finishes,
/// or [`Verdict::Deadlock`] with a replayable trace to the first stuck
/// state found.
///
/// # Errors
///
/// [`ModelError::Structure`] if the dependency graph cannot be built
/// (`VP0002`/`VP0003` territory), [`ModelError::ModeViolation`] for a
/// backward-family pass under `forward_only` (`VP0016`), and
/// [`ModelError::StateBudget`] if exploration exceeds the configured cap.
pub fn model_check(schedule: &Schedule, config: &ModelConfig) -> Result<Verdict, ModelError> {
    if config.forward_only {
        for (d, _, pass) in schedule.iter_all() {
            if !pass.kind.decode_safe() {
                return Err(ModelError::ModeViolation {
                    device: d,
                    pass: *pass,
                });
            }
        }
    }
    let deps = build_deps(schedule).map_err(ModelError::Structure)?;
    let vm = Vm::build(schedule, &deps, config.forward_only);

    struct Frame {
        state: State,
        enabled: Vec<usize>,
        next: usize,
        step: Option<TraceStep>,
    }

    let init = vm.initial();
    let mut visited: HashSet<State> = HashSet::new();
    visited.insert(init.clone());
    let mut completed_steps: Option<usize> = None;
    let mut stack = vec![Frame {
        enabled: vm.enabled(&init),
        state: init,
        next: 0,
        step: None,
    }];
    while let Some(top) = stack.last_mut() {
        if vm.done(&top.state) {
            let steps = stack.len() - 1;
            completed_steps.get_or_insert(steps);
            stack.pop();
            continue;
        }
        if top.enabled.is_empty() {
            // Quiescent with work left: deadlock. The DFS path is the
            // replayable interleaving.
            let blocked = vm.blocked(&top.state);
            let trace: Vec<TraceStep> = stack.iter().filter_map(|f| f.step).collect();
            return Ok(Verdict::Deadlock(DeadlockReport {
                states: visited.len(),
                trace,
                blocked,
            }));
        }
        // DPOR-style persistent set: all enabled transitions of this VM
        // commute and none can disable another (monotone completions,
        // non-blocking sends, commuting arrivals), so the singleton
        // lowest-device set is persistent and exploring it alone is
        // sound. `full` ignores the reduction to validate it.
        let fanout = if config.full { top.enabled.len() } else { 1 };
        if top.next >= fanout {
            stack.pop();
            continue;
        }
        let d = top.enabled[top.next];
        top.next += 1;
        let mut state = top.state.clone();
        let step = vm.apply(&mut state, d);
        if visited.contains(&state) {
            continue;
        }
        visited.insert(state.clone());
        if visited.len() > config.max_states {
            return Err(ModelError::StateBudget {
                limit: config.max_states,
            });
        }
        stack.push(Frame {
            enabled: vm.enabled(&state),
            state,
            next: 0,
            step: Some(step),
        });
    }
    Ok(Verdict::Completes {
        states: visited.len(),
        steps: completed_steps.unwrap_or(0),
    })
}

/// Re-executes a trace step by step, checking that every transition was
/// enabled when fired and produced the recorded action. Returns `true` if
/// the trace replays to a quiescent (deadlocked) state with work left —
/// i.e. it is a genuine counterexample execution.
///
/// # Errors
///
/// Same preconditions as [`model_check`].
pub fn replay(
    schedule: &Schedule,
    config: &ModelConfig,
    trace: &[TraceStep],
) -> Result<bool, ModelError> {
    let deps = build_deps(schedule).map_err(ModelError::Structure)?;
    let vm = Vm::build(schedule, &deps, config.forward_only);
    let mut state = vm.initial();
    for step in trace {
        if !vm.enabled(&state).contains(&step.device) {
            return Ok(false);
        }
        let fired = vm.apply(&mut state, step.device);
        if fired != *step {
            return Ok(false);
        }
    }
    Ok(vm.enabled(&state).is_empty() && !vm.done(&state))
}

/// Renders an interleaving trace plus the blocked-device summary as human
/// text — the "replayable trace" attached to a differential disagreement.
pub fn render_trace(report: &DeadlockReport) -> String {
    let mut out = String::new();
    for (i, step) in report.trace.iter().enumerate() {
        let what = match step.action {
            Action::Complete => "completes",
            Action::Arrive => "arrives at its rendezvous in",
            Action::ArriveAndRelease => "arrives last and releases the rendezvous of",
        };
        out.push_str(&format!(
            "  step {i:3}: device {} {what} {} [slot {}]\n",
            step.device, step.pass, step.slot
        ));
    }
    out.push_str(&format!(
        "  => stuck: {} device(s) blocked after {} step(s)\n",
        report.blocked.len(),
        report.trace.len()
    ));
    for b in &report.blocked {
        out.push_str(&format!(
            "     device {} at slot {} ({}): {}\n",
            b.device, b.slot, b.pass, b.reason
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators::{
        decode_pipeline, decode_pipeline_natural, decode_pipeline_overlap,
        decode_pipeline_overlap_missplit, one_f_one_b, vocab_1f1b,
    };
    use vp_schedule::pass::{PassKind, VocabVariant};

    #[test]
    fn clean_families_complete() {
        let cfg = ModelConfig::default();
        for sched in [
            one_f_one_b(4, 8, PassTimes::default()),
            vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), true),
            vocab_1f1b(3, 6, VocabVariant::Naive, PassTimes::default(), false),
        ] {
            let verdict = model_check(&sched, &cfg).unwrap();
            assert!(!verdict.deadlocked(), "{verdict:?}");
            // Reduced exploration is linear: one state per transition
            // plus the initial state.
            assert!(verdict.states() <= 2 * sched.total_passes() + 1);
        }
    }

    #[test]
    fn hoisted_decode_completes_under_rendezvous_semantics() {
        let cfg = ModelConfig::decode();
        for p in [1usize, 2, 4] {
            for m in [1u32, 2, 3, 8] {
                let verdict = model_check(&decode_pipeline(p, m), &cfg).unwrap();
                assert!(!verdict.deadlocked(), "p={p} m={m}: {verdict:?}");
            }
        }
    }

    #[test]
    fn overlap_decode_completes_with_stream_offloaded_merges() {
        // Every slot of the overlap family schedules a T, so no S is a
        // rendezvous: the VM models S as an ordinary (submitting) pass and
        // the wait lives at T's arrival preds. All shapes complete.
        let cfg = ModelConfig::decode();
        for p in [1usize, 2, 4] {
            for m in [1u32, 2, 3, 8] {
                let sched = decode_pipeline_overlap(p, m);
                let verdict = model_check(&sched, &cfg).unwrap();
                assert!(!verdict.deadlocked(), "p={p} m={m}: {verdict:?}");
            }
        }
    }

    #[test]
    fn missplit_overlap_deadlocks_with_a_replayable_trace() {
        let cfg = ModelConfig::decode();
        let sched = decode_pipeline_overlap_missplit(2, 2);
        let verdict = model_check(&sched, &cfg).unwrap();
        let Verdict::Deadlock(report) = verdict else {
            panic!("mis-split overlap must deadlock: {verdict:?}");
        };
        assert!(replay(&sched, &cfg, &report.trace).unwrap());
        // Device 0 is stuck at its deferred merge, waiting on device 1's
        // S(0) — which sits behind device 1's F(1), itself waiting on the
        // F(1) activation device 0 never sends.
        assert!(
            report
                .blocked
                .iter()
                .any(|b| b.device == 0 && b.pass.kind == PassKind::T),
            "{report:?}"
        );
        assert!(
            report
                .blocked
                .iter()
                .any(|b| b.device == 1 && b.pass.kind == PassKind::F),
            "{report:?}"
        );
    }

    #[test]
    fn natural_decode_deadlocks_with_a_replayable_trace() {
        let cfg = ModelConfig::decode();
        let sched = decode_pipeline_natural(2, 2);
        let verdict = model_check(&sched, &cfg).unwrap();
        let Verdict::Deadlock(report) = verdict else {
            panic!("un-hoisted decode must deadlock: {verdict:?}");
        };
        // The trace replays to the same stuck state.
        assert!(replay(&sched, &cfg, &report.trace).unwrap());
        // The blocked summary names the rendezvous and the unsent row's
        // consumer.
        assert!(
            report
                .blocked
                .iter()
                .any(|b| b.pass.kind == PassKind::S && b.reason.contains("C1")),
            "{report:?}"
        );
        let unsent = sched.passes(1)[3];
        assert_eq!(unsent.kind, PassKind::InputF);
        assert!(
            report
                .blocked
                .iter()
                .any(|b| b.reason.contains(&format!("{unsent}"))),
            "{report:?}"
        );
        let text = render_trace(&report);
        assert!(text.contains("stuck"), "{text}");
    }

    #[test]
    fn without_rendezvous_semantics_the_natural_decode_looks_fine() {
        // The false clean the asymmetric model commits: training-mode
        // semantics (no sync collectives) completes the un-hoisted
        // schedule — which is exactly why VP0017 and this model checker
        // exist.
        let sched = decode_pipeline_natural(2, 2);
        let cfg = ModelConfig {
            forward_only: false,
            ..ModelConfig::default()
        };
        assert!(!model_check(&sched, &cfg).unwrap().deadlocked());
    }

    #[test]
    fn full_exploration_agrees_with_the_reduction() {
        // The POR soundness cross-check: on configs small enough to
        // enumerate every interleaving, the full and reduced explorations
        // must reach the same verdict.
        for (sched, forward_only) in [
            (decode_pipeline(2, 2), true),
            (decode_pipeline(2, 3), true),
            (decode_pipeline(3, 2), true),
            (decode_pipeline_natural(2, 2), true),
            (decode_pipeline_natural(2, 3), true),
            (decode_pipeline_natural(3, 2), true),
            (decode_pipeline_overlap(2, 2), true),
            (decode_pipeline_overlap(3, 2), true),
            (decode_pipeline_overlap_missplit(2, 2), true),
            (decode_pipeline_overlap_missplit(2, 3), true),
            (one_f_one_b(2, 2, PassTimes::default()), false),
            (
                vocab_1f1b(2, 2, VocabVariant::Alg2, PassTimes::default(), false),
                false,
            ),
        ] {
            let reduced = ModelConfig {
                forward_only,
                ..ModelConfig::default()
            };
            let full = ModelConfig {
                forward_only,
                full: true,
                max_states: 1 << 22,
            };
            let rv = model_check(&sched, &reduced).unwrap();
            let fv = model_check(&sched, &full).unwrap();
            assert_eq!(
                rv.deadlocked(),
                fv.deadlocked(),
                "reduced and full disagree: {rv:?} vs {fv:?}"
            );
            assert!(fv.states() >= rv.states());
        }
    }

    #[test]
    fn dropped_rendezvous_participant_blocks_forever() {
        // Remove device 0's S of mb 1: the world-sized all-gather can
        // never complete, so every arriver hangs — the model sees what
        // VP0005 predicts statically.
        let sched = decode_pipeline(2, 4);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        let s = passes[0]
            .iter()
            .position(|p| p.kind == PassKind::S && p.microbatch == 1)
            .unwrap();
        passes[0].remove(s);
        let mutated = vp_schedule::pass::Schedule::new(sched.kind(), 4, 1, passes);
        let verdict = model_check(&mutated, &ModelConfig::decode()).unwrap();
        let Verdict::Deadlock(report) = verdict else {
            panic!("dropped participant must hang: {verdict:?}");
        };
        assert!(
            report
                .blocked
                .iter()
                .any(|b| b.reason.contains("never complete")),
            "{report:?}"
        );
    }

    #[test]
    fn mode_violation_and_structure_errors_are_distinct() {
        let sched = decode_pipeline(2, 2);
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        passes[1].push(ScheduledPass::new(PassKind::B, 0));
        let mutated = vp_schedule::pass::Schedule::new(sched.kind(), 2, 1, passes);
        assert!(matches!(
            model_check(&mutated, &ModelConfig::decode()),
            Err(ModelError::ModeViolation { device: 1, .. })
        ));

        let mut passes: Vec<Vec<ScheduledPass>> = (0..2)
            .map(|d| decode_pipeline(2, 2).passes(d).to_vec())
            .collect();
        let f = passes[0]
            .iter()
            .position(|p| p.kind == PassKind::F)
            .unwrap();
        passes[0].remove(f);
        let mutated = vp_schedule::pass::Schedule::new(sched.kind(), 2, 1, passes);
        assert!(matches!(
            model_check(&mutated, &ModelConfig::decode()),
            Err(ModelError::Structure(_))
        ));
    }

    #[test]
    fn state_budget_is_enforced() {
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), true);
        let cfg = ModelConfig {
            max_states: 10,
            ..ModelConfig::default()
        };
        assert!(matches!(
            model_check(&sched, &cfg),
            Err(ModelError::StateBudget { limit: 10 })
        ));
    }
}
