//! Grid lints: per-group collective participation on the 2D device grid.
//!
//! The 1D lints (`VP0005`/`VP0006`) reason about the *vocabulary*
//! collectives, whose participation set is always "every pipeline device".
//! On a `pp × tp` grid the sharded transformer passes add a second family
//! of collectives — the Megatron `f`/`g` rendezvous of each tensor group
//! (grid row) — whose participation set is *per group*. This module
//! generalizes the participation/order/coverage lints to that setting,
//! consuming the derived [`vp_schedule::grid::tp_ops`] fact table:
//!
//! * `VP0013` — an entry claims membership of a tensor group its grid
//!   coordinates do not place it in (or is not a grid rank at all).
//! * `VP0014` — row peers enter the same collectives in different orders;
//!   in-order rendezvous streams deadlock under such skew.
//! * `VP0015` — a row peer participates in fewer (or other) collectives
//!   than the rest of its group: the missing rendezvous hangs the row.
//!
//! With `tp == 1` every group has one member, so any fact table is
//! vacuously consistent — the degenerate acceptance the flat pipeline
//! relies on. The grid mutation suite seeds each defect class into clean
//! tables and asserts exactly these codes fire.

use crate::diag::{Code, Diagnostic, Site};
use std::collections::HashMap;
use vp_schedule::grid::{tp_ops, DeviceGrid, TpCollective, TpOp};
use vp_schedule::pass::{PassKind, Schedule, ScheduledPass};

/// The scheduled pass a fact-table entry originated from.
fn pass_of(entry: &TpCollective) -> ScheduledPass {
    let kind = match entry.op {
        TpOp::AttnForward | TpOp::MlpForward => PassKind::F,
        TpOp::MlpBackward | TpOp::AttnBackward => PassKind::B,
    };
    ScheduledPass {
        kind,
        microbatch: entry.microbatch,
        chunk: entry.chunk,
    }
}

/// A site pointing at one TP rendezvous. `device` is the *global* grid
/// rank; `slot` is the entry's position in that rank's rendezvous
/// sequence (not its schedule slot).
fn site_of(entry: &TpCollective) -> Site {
    Site {
        device: entry.global,
        slot: entry.seq,
        pass: pass_of(entry),
    }
}

/// What one participant rendezvouses on, ignoring order.
type Rendezvous = (TpOp, u32, u8);

fn rendezvous_of(entry: &TpCollective) -> Rendezvous {
    (entry.op, entry.microbatch, entry.chunk)
}

/// Derives the TP collective table of `schedule` replicated over `grid`
/// and runs the grid lints on it.
///
/// # Panics
///
/// Panics if `schedule.devices() != grid.pp()` (the schedule's device
/// axis is the grid's pipeline axis).
pub fn check_grid(schedule: &Schedule, grid: &DeviceGrid) -> Vec<Diagnostic> {
    check_grid_facts(&tp_ops(schedule, grid), grid)
}

/// Runs the grid lints on an explicit fact table — the entry point the
/// mutation suite drives with seeded defects.
pub fn check_grid_facts(table: &[TpCollective], grid: &DeviceGrid) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // VP0013: membership. One diagnostic per offending (global, group)
    // pair; offenders are excluded from the group comparisons below.
    let mut flagged: Vec<(usize, usize)> = Vec::new();
    let mut members_ok = Vec::with_capacity(table.len());
    for entry in table {
        let claimed = entry.group;
        let wrong = entry.global >= grid.devices() || grid.coords(entry.global).0 != claimed;
        if !wrong {
            members_ok.push(*entry);
            continue;
        }
        if flagged.contains(&(entry.global, claimed)) {
            continue;
        }
        flagged.push((entry.global, claimed));
        let mut d = Diagnostic::error(
            Code::WrongGroupMember,
            format!(
                "grid rank {} enters {} collectives under tensor group {claimed}",
                entry.global,
                entry.op.name()
            ),
        )
        .at(site_of(entry));
        if entry.global >= grid.devices() {
            d = d.note(format!(
                "rank {} is outside the {}x{} grid",
                entry.global,
                grid.pp(),
                grid.tp()
            ));
        } else {
            d = d.note(format!(
                "rank {} lies in row {}, not row {claimed}",
                entry.global,
                grid.coords(entry.global).0
            ));
        }
        diags.push(d.help("form each tensor group from one grid row: group index = pp_rank"));
    }

    // Group the surviving entries per (group, member), ordered by seq.
    let mut per_member: HashMap<(usize, usize), Vec<TpCollective>> = HashMap::new();
    for entry in &members_ok {
        per_member
            .entry((entry.group, entry.global))
            .or_default()
            .push(*entry);
    }
    for seq in per_member.values_mut() {
        seq.sort_by_key(|e| e.seq);
    }

    for group in 0..grid.pp() {
        let row = grid.tp_group(group);
        let present: Vec<usize> = row
            .ranks
            .iter()
            .copied()
            .filter(|r| per_member.contains_key(&(group, *r)))
            .collect();
        if present.is_empty() {
            continue; // no sharded passes touched this row
        }
        let empty = Vec::new();
        let seq_of = |r: usize| per_member.get(&(group, r)).unwrap_or(&empty);
        let reference = present[0];
        let ref_seq = seq_of(reference);
        let ref_counts = counts(ref_seq);
        for &member in &row.ranks {
            if member == reference {
                continue;
            }
            let seq = seq_of(member);
            let member_counts = counts(seq);
            if member_counts != ref_counts {
                // VP0015: participation differs. Name one rendezvous the
                // lagging side misses.
                let (victim, other, missing) = match first_missing(&ref_counts, &member_counts) {
                    Some(r) => (member, reference, r),
                    None => (
                        reference,
                        member,
                        first_missing(&member_counts, &ref_counts)
                            .expect("unequal multisets differ in some element"),
                    ),
                };
                let mut d = Diagnostic::error(
                    Code::GridCoverageHole,
                    format!(
                        "grid rank {victim} participates in {} tensor collectives of group \
                         {group}; row peer {other} participates in {}",
                        seq_of(victim).len(),
                        seq_of(other).len(),
                    ),
                )
                .note(format!(
                    "rank {victim} never enters {} for microbatch {} (chunk {})",
                    missing.0.name(),
                    missing.1,
                    missing.2
                ));
                if let Some(example) = seq_of(other).iter().find(|e| rendezvous_of(e) == missing) {
                    d = d.related(site_of(example), format!("rank {other} rendezvouses here"));
                }
                diags.push(d.help(
                    "every row peer executes the same sharded pass list; restore the \
                            dropped passes or shrink the group",
                ));
                continue;
            }
            // Same multiset: any difference left is pure order skew.
            if let Some(i) =
                (0..seq.len()).find(|&i| rendezvous_of(&seq[i]) != rendezvous_of(&ref_seq[i]))
            {
                diags.push(
                    Diagnostic::error(
                        Code::GroupOrderSkew,
                        format!(
                            "grid ranks {reference} and {member} enter the collectives of \
                             tensor group {group} in different orders (first divergence at \
                             rendezvous {i})"
                        ),
                    )
                    .at(site_of(&seq[i]))
                    .related(
                        site_of(&ref_seq[i]),
                        format!("rank {reference} expects this"),
                    )
                    .help(
                        "in-order rendezvous streams require all row peers to enter \
                         collectives in the same sequence; align the pass orders",
                    ),
                );
            }
        }
    }

    diags.sort_by_key(|d| {
        (
            d.code,
            d.primary.map_or(usize::MAX, |s| s.device),
            d.primary.map_or(usize::MAX, |s| s.slot),
        )
    });
    diags
}

fn counts(seq: &[TpCollective]) -> HashMap<Rendezvous, usize> {
    let mut out = HashMap::new();
    for e in seq {
        *out.entry(rendezvous_of(e)).or_insert(0) += 1;
    }
    out
}

/// A rendezvous `a` holds more of than `b` (i.e. `b` is missing), if any.
fn first_missing(
    a: &HashMap<Rendezvous, usize>,
    b: &HashMap<Rendezvous, usize>,
) -> Option<Rendezvous> {
    a.iter()
        .find(|(k, n)| b.get(*k).copied().unwrap_or(0) < **n)
        .map(|(k, _)| *k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators;

    #[test]
    fn clean_grids_produce_no_diagnostics() {
        let sched = generators::one_f_one_b(2, 3, PassTimes::default());
        for tp in [1, 2, 4] {
            let diags = check_grid(&sched, &DeviceGrid::new(2, tp));
            assert!(diags.is_empty(), "tp={tp}: {diags:#?}");
        }
    }

    #[test]
    fn single_member_groups_accept_any_order() {
        // tp = 1: no peer to disagree with, so even a scrambled table is
        // consistent — the degenerate acceptance of the flat pipeline.
        let sched = generators::one_f_one_b(2, 2, PassTimes::default());
        let grid = DeviceGrid::new(2, 1);
        let mut table = tp_ops(&sched, &grid);
        let payload = (table[0].op, table[0].microbatch, table[0].chunk);
        let (a, b) = (payload, (table[1].op, table[1].microbatch, table[1].chunk));
        (table[0].op, table[0].microbatch, table[0].chunk) = b;
        (table[1].op, table[1].microbatch, table[1].chunk) = a;
        assert!(check_grid_facts(&table, &grid).is_empty());
    }
}
