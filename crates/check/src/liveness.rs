//! Activation liveness: `VP0008` use-before-alloc, `VP0009` leaks,
//! `VP0010` double-free and `VP0011` peak-activation bounds.
//!
//! A device's resident activation memory is governed entirely by its own
//! program order: `F` allocates the microbatch-chunk's activation slot,
//! `B` consumes and frees it. That makes liveness — and the device's peak
//! resident count — a purely static property of the per-device pass list,
//! checkable without touching the dependency rules. The peak bound is the
//! paper's §5.2 building-block argument: 1F1B keeps at most `p − d`
//! microbatches in flight on device `d`, plus one microbatch per
//! communication barrier the vocabulary variant inserts between the last
//! transformer forward and backward.

use std::collections::HashMap;
use vp_schedule::facts::Buffer;
use vp_schedule::pass::{Schedule, ScheduleKind};

use crate::diag::{Code, Diagnostic, Site};

/// The analytical per-device peak-activation caps for single-chunk
/// schedule families, or `None` when no closed form applies (multi-chunk
/// placements interleave warm-ups; callers supply explicit caps via
/// `CheckConfig` instead).
///
/// * Plain 1F1B: device `d` admits `p − d` in-flight microbatches.
/// * Vocabulary variants add one microbatch per barrier (§5.2): `+3`
///   naive, `+2` Algorithm 1, `+1` Algorithm 2.
/// * Interlaced: the synchronous output layer stretches warm-up to
///   `⌈1.5·(p − d)⌉ + 1`.
pub fn analytic_caps(schedule: &Schedule) -> Option<Vec<usize>> {
    if schedule.chunks() != 1 {
        return None;
    }
    let p = schedule.devices();
    let cap = |d: usize| {
        let depth = p - d;
        match schedule.kind() {
            ScheduleKind::Plain => depth,
            ScheduleKind::Vocab(variant) => depth + variant.barriers(),
            ScheduleKind::Interlaced => (3 * depth).div_ceil(2) + 1,
        }
    };
    Some((0..p).map(cap).collect())
}

/// Forward-only (decode) liveness: `VP0016`.
///
/// A decode step retains no activations — each `F`'s output is consumed by
/// the next stage's recv (or the `S` pass) within the step, and nothing
/// ever runs backward. The training liveness rules therefore do not apply;
/// what *must* hold instead is that no backward-family pass appears at
/// all: `B`/`W`/`S2`/`InputB` would wait forever on gradients that
/// inference never produces. (`T` is the exception: in the overlapped
/// decode family it is the deferred sampling merge of its microbatch's
/// `S` all-gather, consuming collective results — not gradients.)
pub fn check_forward_only(schedule: &Schedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for d in 0..schedule.devices() {
        for (i, pass) in schedule.passes(d).iter().enumerate() {
            if !pass.kind.decode_safe() {
                diags.push(
                    Diagnostic::error(
                        Code::BackwardInDecode,
                        format!("{pass} cannot appear in a forward-only decode schedule"),
                    )
                    .at(Site {
                        device: d,
                        slot: i,
                        pass: *pass,
                    })
                    .note("decode produces no gradients: nothing will ever satisfy this pass")
                    .help("decode pass lists may only contain F, S, T and InputF"),
                );
            }
        }
    }
    diags
}

/// Runs the liveness analysis. `caps` gives the per-device peak bound to
/// enforce (`VP0011`); pass `None` to skip the bound and only check
/// alloc/free pairing.
pub fn check_liveness(schedule: &Schedule, caps: Option<&[usize]>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for d in 0..schedule.devices() {
        let mut live: HashMap<(u8, u32), Site> = HashMap::new();
        let mut freed: HashMap<(u8, u32), Site> = HashMap::new();
        let mut count = 0usize;
        let mut peak = 0usize;
        let mut peak_site: Option<Site> = None;
        for (i, pass) in schedule.passes(d).iter().enumerate() {
            let site = Site {
                device: d,
                slot: i,
                pass: *pass,
            };
            let slot_key = (pass.chunk, pass.microbatch);
            let buffer = Buffer::Activation {
                device: d,
                chunk: pass.chunk,
                microbatch: pass.microbatch,
            };
            if pass.kind.allocates_activation() {
                live.insert(slot_key, site);
                count += 1;
                if count > peak {
                    peak = count;
                    peak_site = Some(site);
                }
            } else if pass.kind.frees_activation() {
                if live.remove(&slot_key).is_some() {
                    count -= 1;
                    freed.insert(slot_key, site);
                } else if let Some(first) = freed.get(&slot_key) {
                    diags.push(
                        Diagnostic::error(
                            Code::DoubleFree,
                            format!("{pass} frees the {buffer} twice"),
                        )
                        .at(site)
                        .related(*first, "first freed here")
                        .help("each activation slot is freed exactly once, by its backward"),
                    );
                } else {
                    let alloc_later = schedule.passes(d)[i + 1..]
                        .iter()
                        .position(|p| {
                            p.kind.allocates_activation() && (p.chunk, p.microbatch) == slot_key
                        })
                        .map(|off| i + 1 + off);
                    let mut diag = Diagnostic::error(
                        Code::UseBeforeAlloc,
                        format!("{pass} consumes the {buffer} before it is allocated"),
                    )
                    .at(site);
                    diag = match alloc_later {
                        Some(j) => diag.related(
                            Site {
                                device: d,
                                slot: j,
                                pass: schedule.passes(d)[j],
                            },
                            "allocated only here, later in program order",
                        ),
                        None => diag.note("no pass on this device ever allocates it"),
                    };
                    diags.push(
                        diag.help(
                            "schedule the forward of this microbatch-chunk before its backward",
                        ),
                    );
                }
            }
        }
        let mut leaked: Vec<(&(u8, u32), &Site)> = live.iter().collect();
        leaked.sort_by_key(|(key, _)| **key);
        for (&(chunk, microbatch), site) in leaked {
            let buffer = Buffer::Activation {
                device: d,
                chunk,
                microbatch,
            };
            diags.push(
                Diagnostic::error(
                    Code::ActivationLeak,
                    format!("the {buffer} is allocated but never freed"),
                )
                .at(*site)
                .note("activations not consumed within the iteration accumulate across steps")
                .help("schedule the backward of this microbatch-chunk"),
            );
        }
        if let Some(cap) = caps.and_then(|c| c.get(d)).copied() {
            if peak > cap {
                let site = peak_site.expect("peak > 0 implies a peak site");
                diags.push(
                    Diagnostic::error(
                        Code::PeakActivations,
                        format!(
                            "device {d} holds {peak} resident activations at its peak, \
                             exceeding the schedule family's bound of {cap}"
                        ),
                    )
                    .at(site)
                    .note(
                        "the §5.2 building-block bound: 1F1B admits p − d in-flight \
                         microbatches on device d, plus one per vocabulary barrier",
                    )
                    .help("delay forwards (or hoist backwards) to shrink the in-flight window"),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators::{interlaced_1f1b, one_f_one_b, vocab_1f1b};
    use vp_schedule::pass::{PassKind, ScheduledPass, VocabVariant};

    #[test]
    fn clean_schedules_balance_allocations_within_caps() {
        let plain = one_f_one_b(4, 8, PassTimes::default());
        assert!(check_liveness(&plain, analytic_caps(&plain).as_deref()).is_empty());
        for variant in [VocabVariant::Naive, VocabVariant::Alg1, VocabVariant::Alg2] {
            let sched = vocab_1f1b(4, 12, variant, PassTimes::default(), false);
            let diags = check_liveness(&sched, analytic_caps(&sched).as_deref());
            assert!(diags.is_empty(), "{variant:?}: {diags:#?}");
        }
        let inter = interlaced_1f1b(4, 8, PassTimes::default());
        let diags = check_liveness(&inter, analytic_caps(&inter).as_deref());
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn dropped_backward_leaks_and_missing_forward_uses_before_alloc() {
        let sched = one_f_one_b(2, 4, PassTimes::default());
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        let b = passes[0]
            .iter()
            .position(|p| p.kind == PassKind::B && p.microbatch == 2)
            .unwrap();
        passes[0].remove(b);
        let mutated = Schedule::new(sched.kind(), 4, 1, passes);
        let diags = check_liveness(&mutated, None);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, Code::ActivationLeak);

        // A backward whose forward comes later: VP0008 with the late
        // allocation as a related site.
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        let f = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::F && p.microbatch == 3)
            .unwrap();
        let b = passes[1]
            .iter()
            .position(|p| p.kind == PassKind::B && p.microbatch == 3)
            .unwrap();
        passes[1].swap(f, b);
        let mutated = Schedule::new(sched.kind(), 4, 1, passes);
        let diags = check_liveness(&mutated, None);
        let vp8: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::UseBeforeAlloc)
            .collect();
        assert_eq!(vp8.len(), 1, "{diags:#?}");
        assert!(!vp8[0].related.is_empty());
    }

    #[test]
    fn double_free_is_reported_once_with_first_site() {
        let passes = vec![vec![
            ScheduledPass::new(PassKind::F, 0),
            ScheduledPass::new(PassKind::B, 0),
            ScheduledPass::new(PassKind::B, 0),
        ]];
        let sched = Schedule::new(ScheduleKind::Plain, 1, 1, passes);
        let diags = check_liveness(&sched, None);
        let vp10: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::DoubleFree)
            .collect();
        assert_eq!(vp10.len(), 1, "{diags:#?}");
        assert_eq!(vp10[0].related[0].0.slot, 1);
    }

    #[test]
    fn eager_forwards_break_the_peak_bound() {
        // Hoist every F of device 0 before its first B: peak becomes m,
        // far above the 1F1B bound p − 0 = 2.
        let sched = one_f_one_b(2, 6, PassTimes::default());
        let mut passes: Vec<Vec<ScheduledPass>> =
            (0..2).map(|d| sched.passes(d).to_vec()).collect();
        passes[0].sort_by_key(|p| !matches!(p.kind, PassKind::F));
        let mutated = Schedule::new(sched.kind(), 6, 1, passes);
        let caps = analytic_caps(&mutated).unwrap();
        assert_eq!(caps, vec![2, 1]);
        let diags = check_liveness(&mutated, Some(&caps));
        let vp11: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::PeakActivations)
            .collect();
        assert_eq!(vp11.len(), 1, "{diags:#?}");
        assert!(vp11[0].message.contains("holds 6"), "{}", vp11[0].message);
    }

    use vp_schedule::pass::ScheduleKind;
}
