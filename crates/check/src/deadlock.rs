//! Structural integrity (`VP0002`, `VP0003`) and deadlock freedom
//! (`VP0001`).
//!
//! Structural problems — duplicated passes and dependencies on passes the
//! schedule never runs — make the dependency graph itself ill-defined, so
//! they are checked first and, unlike `vp_schedule::deps::build_deps`
//! (which fails fast on the first defect), *all* of them are collected.
//! Once the graph is well-defined, deadlock freedom is exactly acyclicity
//! of the happens-before graph; a violation is rendered as the minimal
//! cycle extracted by [`vp_schedule::hb::HbGraph::minimal_cycle`].

use std::collections::{HashMap, HashSet};
use vp_schedule::deps::{DepContext, Key};
use vp_schedule::hb::{CycleStep, HbEdge};
use vp_schedule::pass::Schedule;

use crate::diag::{Code, Diagnostic, Site};

/// Collects every duplicate pass (`VP0003`) and every dependency on a
/// missing pass (`VP0002`) in the schedule.
pub fn check_structure(schedule: &Schedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut index: HashMap<Key, (usize, usize)> = HashMap::new();
    for (d, i, pass) in schedule.iter_all() {
        let key = (pass.kind, pass.microbatch, pass.chunk, d);
        if let Some(&(pd, pi)) = index.get(&key) {
            diags.push(
                Diagnostic::error(
                    Code::DuplicatePass,
                    format!("pass {pass} is scheduled twice on device {d}"),
                )
                .at(Site {
                    device: d,
                    slot: i,
                    pass: *pass,
                })
                .related(
                    Site {
                        device: pd,
                        slot: pi,
                        pass: *pass,
                    },
                    "first occurrence",
                )
                .help(
                    "each (kind, microbatch, chunk) may run at most once per device per iteration",
                ),
            );
        } else {
            index.insert(key, (d, i));
        }
    }
    let ctx = DepContext::of(schedule);
    let mut reported: HashSet<Key> = HashSet::new();
    for (d, i, pass) in schedule.iter_all() {
        for (key, edge) in ctx.logical_preds(pass, d) {
            if !index.contains_key(&key) && reported.insert(key) {
                let (kind, mb, chunk, src) = key;
                diags.push(
                    Diagnostic::error(
                        Code::MissingPass,
                        format!(
                            "device {src} never schedules {kind:?} mb={mb} chunk={chunk}, \
                             which {pass} on device {d} waits for"
                        ),
                    )
                    .at(Site {
                        device: d,
                        slot: i,
                        pass: *pass,
                    })
                    .note(format!(
                        "the dependency is realized by {}",
                        HbEdge::Dep(edge).describe()
                    ))
                    .help(format!(
                        "schedule {kind:?} mb={mb} chunk={chunk} on device {src}, or remove its consumers"
                    )),
                );
            }
        }
    }
    diags
}

/// Renders a minimal happens-before cycle as the `VP0001` deadlock
/// diagnostic: the primary site is the first pass on the cycle, each step
/// appears as a related site labeled with the edge that forces it before
/// the next, and the notes spell out the impossibility.
pub fn cycle_diagnostic(cycle: &[CycleStep]) -> Diagnostic {
    let head = cycle.first().expect("cycles are non-empty");
    let mut d = Diagnostic::error(
        Code::Deadlock,
        format!(
            "{} passes wait on each other in a happens-before cycle: the schedule deadlocks",
            cycle.len()
        ),
    )
    .at(Site {
        device: head.device,
        slot: head.slot,
        pass: head.pass,
    });
    for (i, step) in cycle.iter().enumerate() {
        let next = &cycle[(i + 1) % cycle.len()];
        d = d.related(
            Site {
                device: step.device,
                slot: step.slot,
                pass: step.pass,
            },
            format!(
                "must finish before {} [device {}, slot {}] — {}",
                next.pass,
                next.device,
                next.slot,
                step.edge.describe()
            ),
        );
    }
    d.note(
        "every pass on the cycle must finish before the next, and the last before the first \
         — no execution order satisfies this",
    )
    .help("reorder the involved devices so program order agrees with the dependency rules")
}

/// Renders a cycle that exists only under rendezvous (blocking-send)
/// semantics as the `VP0017` diagnostic.
///
/// The primary site is the collective call that blocks (the target of a
/// rendezvous arrival edge); every cycle step appears as a related site.
/// The notes name the collective instance the device sits inside and —
/// when an un-issued send (`InputF`) is on the cycle — the exact row that
/// is still unsent while the barrier waits, which is the PR-8 serving
/// deadlock's shape.
pub fn rendezvous_cycle_diagnostic(cycle: &[CycleStep]) -> Diagnostic {
    // The blocked collective call: the *target* of a rendezvous edge, i.e.
    // the step after the arrival edge on the cycle.
    let blocked = cycle
        .iter()
        .enumerate()
        .find(|(_, step)| step.edge.is_rendezvous())
        .map(|(i, _)| &cycle[(i + 1) % cycle.len()])
        .unwrap_or_else(|| cycle.first().expect("cycles are non-empty"));
    let mut d = Diagnostic::error(
        Code::RendezvousDeadlock,
        format!(
            "{} passes deadlock under rendezvous semantics: the schedule is acyclic in the \
             happens-before model, but {} blocks inside its synchronous collective",
            cycle.len(),
            blocked.pass
        ),
    )
    .at(Site {
        device: blocked.device,
        slot: blocked.slot,
        pass: blocked.pass,
    });
    for (i, step) in cycle.iter().enumerate() {
        let next = &cycle[(i + 1) % cycle.len()];
        d = d.related(
            Site {
                device: step.device,
                slot: step.slot,
                pass: step.pass,
            },
            format!(
                "must finish before {} [device {}, slot {}] — {}",
                next.pass,
                next.device,
                next.slot,
                step.edge.describe()
            ),
        );
    }
    d = d.note(format!(
        "{} on device {} does not return until every participant's device reaches its \
         matching call, so everything scheduled after it on device {} — including its \
         pending sends — is blocked too",
        blocked.pass, blocked.device, blocked.device
    ));
    if let Some(unsent) = cycle
        .iter()
        .find(|step| step.pass.kind == vp_schedule::pass::PassKind::InputF)
    {
        d = d.note(format!(
            "the embedding row of {} on device {} is still unsent when the collective \
             begins: it is scheduled after the blocking call, while another device's \
             forward needs it to reach the same collective",
            unsent.pass, unsent.device
        ));
    }
    d.help(
        "hoist the non-blocking sends (InputF) ahead of every rendezvous collective entry, \
         as generators::decode_pipeline does",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::block::PassTimes;
    use vp_schedule::deps::build_deps;
    use vp_schedule::generators::vocab_1f1b;
    use vp_schedule::hb::HbGraph;
    use vp_schedule::pass::{PassKind, ScheduleKind, ScheduledPass, VocabVariant};

    #[test]
    fn clean_schedule_has_no_structural_diagnostics() {
        let sched = vocab_1f1b(4, 8, VocabVariant::Alg2, PassTimes::default(), true);
        assert!(check_structure(&sched).is_empty());
    }

    #[test]
    fn all_missing_passes_are_collected() {
        // Three devices, only the middle one populated: its F needs
        // device 0's F, its B needs device 2's B — two distinct missing
        // passes, both reported (build_deps would stop at the first).
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![],
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![],
            ],
        );
        let diags = check_structure(&sched);
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags.iter().all(|d| d.code == Code::MissingPass));
    }

    #[test]
    fn duplicates_are_reported_with_both_sites() {
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![
                ScheduledPass::new(PassKind::F, 0),
                ScheduledPass::new(PassKind::B, 0),
                ScheduledPass::new(PassKind::F, 0),
            ]],
        );
        let diags = check_structure(&sched);
        let dup: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::DuplicatePass)
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].primary.unwrap().slot, 2);
        assert_eq!(dup[0].related[0].0.slot, 0);
    }

    #[test]
    fn cycle_diagnostic_names_every_step() {
        let sched = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![
                    ScheduledPass::new(PassKind::B, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ],
            ],
        );
        let deps = build_deps(&sched).unwrap();
        let cycle = HbGraph::new(&sched, &deps).minimal_cycle().unwrap();
        let diag = cycle_diagnostic(&cycle);
        assert_eq!(diag.code, Code::Deadlock);
        assert_eq!(diag.related.len(), cycle.len());
        let text = diag.to_string();
        assert!(text.contains("error[VP0001]"), "{text}");
        assert!(text.contains("program order"), "{text}");
    }
}
