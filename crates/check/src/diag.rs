//! Diagnostics: stable codes, severities, sites and the two renderers
//! (rustc-style human text and a machine-readable JSON array).

use std::fmt;
use vp_schedule::pass::ScheduledPass;

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// checks append new codes. `vp_schedule::deps::DepError` embeds the same
/// codes for the defect classes dynamic validation can also hit
/// (`VP0001`–`VP0003`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `VP0001` — a set of passes wait on each other in a happens-before
    /// cycle: the schedule deadlocks.
    Deadlock,
    /// `VP0002` — a dependency references a pass the schedule does not
    /// contain (an implied send or collective shard with no partner).
    MissingPass,
    /// `VP0003` — the same pass is scheduled twice on one device.
    DuplicatePass,
    /// `VP0004` — a device schedules a pass kind for some microbatches but
    /// not others (a dropped send/recv leaves a coverage hole).
    CoverageHole,
    /// `VP0005` — a collective's participation set is not identical across
    /// vocabulary shards: some device never enters the barrier for a
    /// microbatch every other device enters it for.
    MissingParticipant,
    /// `VP0006` — devices enter the instances of a collective class in
    /// different orders; rendezvous collectives on in-order streams
    /// deadlock under such cross-shard disagreement.
    CollectiveOrder,
    /// `VP0007` — a pass consumes a comm-stream job's result before its
    /// own device issues the job's shard contribution.
    ConsumeBeforeIssue,
    /// `VP0008` — a pass consumes an activation that was never allocated,
    /// or is allocated only later in program order.
    UseBeforeAlloc,
    /// `VP0009` — an activation is allocated but never freed within the
    /// iteration.
    ActivationLeak,
    /// `VP0010` — an activation slot is freed twice.
    DoubleFree,
    /// `VP0011` — a device's peak resident activations exceed the
    /// analytical 1F1B bound (§5.2: `p − d` plus one microbatch per
    /// communication barrier).
    PeakActivations,
    /// `VP0012` — two passes touch the same logical buffer, at least one
    /// writing, with no happens-before path ordering them correctly.
    UnsyncedAccess,
    /// `VP0013` — a grid entry enters a tensor collective under a group it
    /// is not a member of (or is not a grid rank at all); the rendezvous
    /// either hangs or silently mixes rows.
    WrongGroupMember,
    /// `VP0014` — row peers of one tensor group enter the same set of
    /// collectives in different orders; rendezvous collectives on in-order
    /// streams deadlock under such skew.
    GroupOrderSkew,
    /// `VP0015` — a grid entry participates in fewer (or other) tensor
    /// collectives than its row peers: some rendezvous waits forever on
    /// the missing member.
    GridCoverageHole,
    /// `VP0016` — a forward-only (decode) schedule contains a
    /// backward-family pass (`B`, `W`, `T`, `S2`, `InputB`); inference
    /// never produces gradients, so such a pass would wait forever on a
    /// gradient that no one sends.
    BackwardInDecode,
    /// `VP0017` — a cycle that exists only under rendezvous (blocking-
    /// send) semantics: the schedule is acyclic in the asymmetric
    /// happens-before model, but a synchronous collective blocks its
    /// device — and all of the device's later sends — until every
    /// participant arrives, closing a wait cycle the dependency edges
    /// alone do not show.
    RendezvousDeadlock,
}

impl Code {
    /// The stable code string, e.g. `"VP0001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Deadlock => "VP0001",
            Code::MissingPass => "VP0002",
            Code::DuplicatePass => "VP0003",
            Code::CoverageHole => "VP0004",
            Code::MissingParticipant => "VP0005",
            Code::CollectiveOrder => "VP0006",
            Code::ConsumeBeforeIssue => "VP0007",
            Code::UseBeforeAlloc => "VP0008",
            Code::ActivationLeak => "VP0009",
            Code::DoubleFree => "VP0010",
            Code::PeakActivations => "VP0011",
            Code::UnsyncedAccess => "VP0012",
            Code::WrongGroupMember => "VP0013",
            Code::GroupOrderSkew => "VP0014",
            Code::GridCoverageHole => "VP0015",
            Code::BackwardInDecode => "VP0016",
            Code::RendezvousDeadlock => "VP0017",
        }
    }

    /// One-line description of the defect class (the diagnostic-code
    /// table of DESIGN.md §7).
    pub fn title(self) -> &'static str {
        match self {
            Code::Deadlock => "dependency cycle (deadlock)",
            Code::MissingPass => "dependency on a missing pass",
            Code::DuplicatePass => "duplicate pass",
            Code::CoverageHole => "microbatch coverage hole",
            Code::MissingParticipant => "collective participant missing",
            Code::CollectiveOrder => "collective entry order diverges across devices",
            Code::ConsumeBeforeIssue => "comm-stream result consumed before issue",
            Code::UseBeforeAlloc => "activation used before allocation",
            Code::ActivationLeak => "activation leaked",
            Code::DoubleFree => "activation double-free",
            Code::PeakActivations => "peak activations exceed the 1F1B bound",
            Code::UnsyncedAccess => "conflicting buffer accesses without happens-before order",
            Code::WrongGroupMember => "collective entered under the wrong tensor group",
            Code::GroupOrderSkew => "tensor-group rendezvous order diverges across row peers",
            Code::GridCoverageHole => "tensor-group participation differs across row peers",
            Code::BackwardInDecode => "backward-family pass in a forward-only decode schedule",
            Code::RendezvousDeadlock => "deadlock under rendezvous (blocking-send) semantics",
        }
    }

    /// Every defined code, in numeric order.
    pub fn all() -> [Code; 17] {
        [
            Code::Deadlock,
            Code::MissingPass,
            Code::DuplicatePass,
            Code::CoverageHole,
            Code::MissingParticipant,
            Code::CollectiveOrder,
            Code::ConsumeBeforeIssue,
            Code::UseBeforeAlloc,
            Code::ActivationLeak,
            Code::DoubleFree,
            Code::PeakActivations,
            Code::UnsyncedAccess,
            Code::WrongGroupMember,
            Code::GroupOrderSkew,
            Code::GridCoverageHole,
            Code::BackwardInDecode,
            Code::RendezvousDeadlock,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity. Every current check reports errors; the level
/// exists so future style lints can ride the same pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The schedule is wrong: it deadlocks, corrupts state or breaks the
    /// memory bound.
    Error,
    /// Suspicious but executable.
    Warning,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// A location in a schedule: pass `pass` at `slot` in `device`'s order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Site {
    /// Device index.
    pub device: usize,
    /// Position in the device's execution order.
    pub slot: usize,
    /// The pass at that position.
    pub pass: ScheduledPass,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {}, slot {}: {}",
            self.device, self.slot, self.pass
        )
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// The main, one-line message.
    pub message: String,
    /// The pass the diagnostic points at, if it has a single anchor.
    pub primary: Option<Site>,
    /// Additional labeled sites (cycle members, the matching send, …).
    pub related: Vec<(Site, String)>,
    /// Free-form notes printed after the sites.
    pub notes: Vec<String>,
    /// An actionable suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new error-severity diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            primary: None,
            related: Vec::new(),
            notes: Vec::new(),
            help: None,
        }
    }

    /// Anchors the diagnostic at a site.
    pub fn at(mut self, site: Site) -> Diagnostic {
        self.primary = Some(site);
        self
    }

    /// Adds a labeled related site.
    pub fn related(mut self, site: Site, label: impl Into<String>) -> Diagnostic {
        self.related.push((site, label.into()));
        self
    }

    /// Adds a note line.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Sets the help line.
    pub fn help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// The rustc-style human rendering:
    ///
    /// ```text
    /// error[VP0001]: dependency cycle (deadlock): 2 passes wait on each other
    ///   --> device 1, slot 0: B0
    ///    = note: B0 [device 1, slot 0] must precede F0 [device 1, slot 1] (local data dependency)
    ///    = help: reorder device 1 so every pass follows its dependencies
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        )?;
        if let Some(site) = &self.primary {
            writeln!(f, "  --> {site}")?;
        }
        for (site, label) in &self.related {
            writeln!(f, "   = at {site} ({label})")?;
        }
        for note in &self.notes {
            writeln!(f, "   = note: {note}")?;
        }
        if let Some(help) = &self.help {
            writeln!(f, "   = help: {help}")?;
        }
        Ok(())
    }
}

/// Renders a batch of diagnostics as human text, ending with a summary
/// line (`"N error(s) found"` or `"no diagnostics"`).
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if diags.is_empty() {
        out.push_str("no diagnostics\n");
    } else {
        out.push_str(&format!(
            "{errors} error(s), {} warning(s) found\n",
            diags.len() - errors
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_site(site: &Site) -> String {
    format!(
        "{{\"device\": {}, \"slot\": {}, \"pass\": \"{}\"}}",
        site.device, site.slot, site.pass
    )
}

/// Renders diagnostics as a JSON array (the `--json` machine format).
/// Each element carries `code`, `severity`, `title`, `message`, the
/// optional `primary` site, `related` sites with labels, `notes` and
/// `help`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"code\": \"{}\", \"severity\": \"{}\", \"title\": \"{}\", \"message\": \"{}\"",
            d.code,
            d.severity.as_str(),
            json_escape(d.code.title()),
            json_escape(&d.message)
        ));
        if let Some(site) = &d.primary {
            out.push_str(&format!(", \"primary\": {}", json_site(site)));
        }
        if !d.related.is_empty() {
            out.push_str(", \"related\": [");
            for (j, (site, label)) in d.related.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"site\": {}, \"label\": \"{}\"}}",
                    json_site(site),
                    json_escape(label)
                ));
            }
            out.push(']');
        }
        if !d.notes.is_empty() {
            out.push_str(", \"notes\": [");
            for (j, note) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(note)));
            }
            out.push(']');
        }
        if let Some(help) = &d.help {
            out.push_str(&format!(", \"help\": \"{}\"", json_escape(help)));
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_schedule::pass::PassKind;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        for (i, code) in all.iter().enumerate() {
            assert_eq!(code.as_str(), format!("VP{:04}", i + 1));
        }
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let d = Diagnostic::error(Code::Deadlock, "2 passes wait on each other")
            .at(Site {
                device: 1,
                slot: 0,
                pass: ScheduledPass::new(PassKind::B, 0),
            })
            .note("B0 must precede F0")
            .help("reorder device 1");
        let text = d.to_string();
        assert!(text.starts_with("error[VP0001]: "), "{text}");
        assert!(text.contains("  --> device 1, slot 0: B0"), "{text}");
        assert!(text.contains("   = note: "), "{text}");
        assert!(text.contains("   = help: "), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let d = Diagnostic::error(Code::MissingPass, "needs \"F0\"").at(Site {
            device: 0,
            slot: 2,
            pass: ScheduledPass::new(PassKind::F, 1),
        });
        let json = render_json(&[d]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"F0\\\""), "{json}");
        assert!(json.contains("\"code\": \"VP0002\""), "{json}");
        assert!(json.contains("\"primary\": {\"device\": 0"), "{json}");
    }

    #[test]
    fn dep_error_messages_embed_matching_codes() {
        // The satellite contract: vp_schedule's dynamic validation errors
        // carry the same stable codes as the static analyzer.
        use vp_schedule::block::PassTimes;
        use vp_schedule::pass::{Schedule, ScheduleKind, ScheduledPass};
        let stuck = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![
                vec![
                    ScheduledPass::new(PassKind::F, 0),
                    ScheduledPass::new(PassKind::B, 0),
                ],
                vec![
                    ScheduledPass::new(PassKind::B, 0),
                    ScheduledPass::new(PassKind::F, 0),
                ],
            ],
        );
        let err = vp_schedule::deps::validate(&stuck).unwrap_err();
        assert!(err.to_string().contains(Code::Deadlock.as_str()), "{err}");

        let missing = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![], vec![ScheduledPass::new(PassKind::F, 0)]],
        );
        let err = vp_schedule::deps::validate(&missing).unwrap_err();
        assert!(
            err.to_string().contains(Code::MissingPass.as_str()),
            "{err}"
        );

        let dup = Schedule::new(
            ScheduleKind::Plain,
            1,
            1,
            vec![vec![
                ScheduledPass::new(PassKind::F, 0),
                ScheduledPass::new(PassKind::F, 0),
            ]],
        );
        let err = vp_schedule::deps::validate(&dup).unwrap_err();
        assert!(
            err.to_string().contains(Code::DuplicatePass.as_str()),
            "{err}"
        );
        let _ = PassTimes::default();
    }
}
