//! Property tests for the accuracy policy (`vp_tensor::mathx`).
//!
//! Two contracts are pinned here:
//!
//! 1. The **fast path** approximations stay inside their documented error
//!    bounds against libm: [`mathx::exp`] within [`mathx::EXP_MAX_ULP`]
//!    units in the last place over a dense bit-level sweep of the input
//!    range, [`mathx::tanh`] within [`mathx::TANH_MAX_ABS_ERROR`] absolute
//!    error with `|tanh| ≤ 1` and NaN propagated.
//! 2. The **reference path** (`VP_FAST_MATH=0`) is bitwise-pinned: GELU and
//!    the softmax family produce byte-identical outputs to the historical
//!    libm formulas, so every pre-fast-math artifact and the Fig-17
//!    equivalence protocol are reproducible forever.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::Gelu;
use vp_tensor::ops::local_softmax;
use vp_tensor::{mathx, Tensor};

/// Serializes the tests that flip the process-global accuracy policy.
fn policy_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Maps a float onto the monotone integer line so that adjacent
/// representable values (including subnormals and ±∞) differ by 1.
fn ordered(x: f32) -> i64 {
    let b = i64::from(x.to_bits());
    if b & 0x8000_0000 != 0 {
        0x8000_0000 - b
    } else {
        b
    }
}

/// Distance in representable-value steps ("ULPs" in bit space).
fn ulp_dist(a: f32, b: f32) -> u64 {
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// Deterministic 64-bit LCG for randomized inputs (no external deps).
struct Lcg(u64);

impl Lcg {
    fn next_f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        let unit = ((self.0 >> 40) as f32) / (1u64 << 24) as f32;
        lo + (hi - lo) * unit
    }
}

#[test]
fn exp_stays_within_documented_ulp_bound() {
    // Dense bit-level sweep of both signs out past the overflow/underflow
    // clamps (the prime stride visits every exponent and a spread of
    // mantissas), plus randomized inputs concentrated in the live range.
    let check = |x: f32| {
        let got = mathx::exp(x);
        let want = x.exp();
        assert!(
            ulp_dist(got, want) <= u64::from(mathx::EXP_MAX_ULP),
            "exp({x}) = {got:e} vs libm {want:e} ({} ulp apart)",
            ulp_dist(got, want)
        );
    };
    let mut bits = 0u32;
    while bits <= 0x42e0_0000 {
        // 0.0 ..= 112.0, every value of the exponent field
        check(f32::from_bits(bits));
        check(-f32::from_bits(bits));
        bits += 104_729; // prime stride ≪ one exponent step (2²³)
    }
    let mut rng = Lcg(0x9e37_79b9_7f4a_7c15);
    for _ in 0..200_000 {
        check(rng.next_f32_in(-110.0, 95.0));
    }
    for _ in 0..50_000 {
        check(rng.next_f32_in(-2.0, 2.0));
    }
}

#[test]
fn tanh_stays_within_documented_abs_error_and_saturation() {
    let check = |x: f32| {
        let got = mathx::tanh(x);
        let want = x.tanh();
        assert!(got.abs() <= 1.0, "tanh({x}) = {got} escapes [-1, 1]");
        assert!(
            (got - want).abs() <= mathx::TANH_MAX_ABS_ERROR,
            "tanh({x}) = {got} vs libm {want} (err {:e})",
            (got - want).abs()
        );
    };
    let mut bits = 0u32;
    while bits <= 0x41a0_0000 {
        // 0.0 ..= 20.0 (deep saturation), every exponent field value
        check(f32::from_bits(bits));
        check(-f32::from_bits(bits));
        bits += 104_729;
    }
    let mut rng = Lcg(0x2545_f491_4f6c_dd1d);
    for _ in 0..200_000 {
        check(rng.next_f32_in(-10.0, 10.0));
    }
    // Saturation and propagation at the extremes.
    assert_eq!(mathx::tanh(f32::INFINITY), 1.0);
    assert_eq!(mathx::tanh(f32::NEG_INFINITY), -1.0);
    assert_eq!(mathx::tanh(1e30), 1.0);
    assert!(mathx::tanh(f32::NAN).is_nan());
}

#[test]
fn reference_policy_is_byte_identical_to_the_historical_libm_path() {
    let _guard = policy_lock();
    mathx::set_fast_math(Some(false));

    // GELU: forward, cache, and standalone derivative must reproduce the
    // pre-fast-math formulas bit for bit.
    let x = normal(&mut seeded_rng(41), 13, 29, 1.7);
    let layer = Gelu::new();
    let (y, cache) = layer.forward(&x);
    let dx = layer.backward(&cache, &Tensor::ones(13, 29)).unwrap();
    for ((&yo, &dxo), &v) in y.data().iter().zip(dx.data()).zip(x.data()) {
        let inner = 0.797_884_6_f32 * (v + 0.044_715 * v * v * v);
        let th = inner.tanh();
        let want_y = 0.5 * v * (1.0 + th);
        let du = 0.797_884_6_f32 * (1.0 + 3.0 * 0.044_715 * v * v);
        let want_dx = 0.5 * (1.0 + th) + 0.5 * v * (1.0 - th * th) * du;
        assert_eq!(yo.to_bits(), want_y.to_bits(), "gelu({v}) drifted");
        assert_eq!(dxo.to_bits(), want_dx.to_bits(), "gelu'({v}) drifted");
    }

    // Softmax: max → exp(v − m) via libm → sequential sum → multiply by the
    // reciprocal, exactly the historical operation order.
    let t = normal(&mut seeded_rng(42), 11, 37, 3.0);
    let (sm, stats) = local_softmax(&t);
    for r in 0..11 {
        let src = t.row(r);
        let m = src.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut exps: Vec<f32> = src.iter().map(|&v| (v - m).exp()).collect();
        let mut s = 0.0f32;
        for &e in &exps {
            s += e;
        }
        let inv = 1.0 / s;
        for e in &mut exps {
            *e *= inv;
        }
        assert_eq!(stats.max[r].to_bits(), m.to_bits());
        assert_eq!(stats.sum[r].to_bits(), s.to_bits());
        for (got, want) in sm.row(r).iter().zip(&exps) {
            assert_eq!(got.to_bits(), want.to_bits(), "softmax row {r} drifted");
        }
    }

    mathx::set_fast_math(None);
}

#[test]
fn fast_policy_keeps_softmax_rows_normalized_and_close_to_reference() {
    let _guard = policy_lock();
    let t = normal(&mut seeded_rng(43), 9, 65, 4.0);

    mathx::set_fast_math(Some(false));
    let (reference, _) = local_softmax(&t);
    mathx::set_fast_math(Some(true));
    let (fast, _) = local_softmax(&t);
    mathx::set_fast_math(None);

    for r in 0..9 {
        let sum: f64 = fast.row(r).iter().map(|&v| f64::from(v)).sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "fast softmax row {r} sums to {sum}"
        );
        for (f, g) in fast.row(r).iter().zip(reference.row(r)) {
            // Probabilities live in [0, 1]; the 4-ULP exp bound plus one
            // rounding in the normalization keeps the paths this close.
            assert!((f - g).abs() <= 1e-6, "row {r}: {f} vs {g}");
        }
    }
}
