//! Property tests of the pool's determinism contract: every threaded kernel
//! must be **bitwise identical** to its serial (`VP_THREADS=1`) counterpart
//! for all matmul layouts, edge shapes and thread counts — parallelism is
//! across independent output rows only, so no per-element reduction order
//! ever changes.

use std::sync::{Mutex, MutexGuard, OnceLock};
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::{Gelu, LayerNorm};
use vp_tensor::ops::{local_softmax, row_max, softmax_rows};
use vp_tensor::{num_threads, pool, set_num_threads, Tensor};

/// Thread counts exercised against the serial reference.
const THREAD_COUNTS: &[usize] = &[1, 2, 7];

/// `(m, k, n)` shapes: empty, degenerate single-row/col, non-tile-multiple
/// and tile-aligned dimensions.
const SHAPES: &[(usize, usize, usize)] = &[
    (0, 5, 3),
    (5, 0, 3),
    (5, 3, 0),
    (1, 1, 1),
    (1, 37, 11),
    (37, 1, 11),
    (11, 37, 1),
    (17, 33, 29),
    (64, 64, 64),
    (65, 130, 31),
];

/// Serializes tests that reconfigure the process-global thread count, and
/// pretends the machine has plenty of cores for the duration: the dispatch
/// heuristic otherwise falls back to serial on a 1-core CI box, which would
/// make these threaded-vs-serial comparisons vacuous.
struct ConfigGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ConfigGuard {
    fn drop(&mut self) {
        pool::set_assumed_cores(0);
    }
}

fn config_lock() -> ConfigGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    pool::set_assumed_cores(16);
    ConfigGuard { _lock: guard }
}

/// Bitwise tensor equality (distinguishes `-0.0` from `0.0` and compares
/// NaN payloads exactly, unlike `PartialEq` on `f32`).
fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert!(bits_eq(a, b), "{what}: threaded result differs from serial");
}

#[test]
fn matmul_layouts_are_bitwise_identical_across_thread_counts() {
    let _guard = config_lock();
    let before = num_threads();
    let mut rng = seeded_rng(42);
    for &(m, k, n) in SHAPES {
        let a = normal(&mut rng, m, k, 1.0);
        let b = normal(&mut rng, k, n, 1.0);
        let b_t = normal(&mut rng, n, k, 1.0);
        let a_t = normal(&mut rng, k, m, 1.0);
        set_num_threads(1);
        let nn_ref = a.matmul(&b).unwrap();
        let nt_ref = a.matmul_nt(&b_t).unwrap();
        let tn_ref = a_t.matmul_tn(&b).unwrap();
        for &t in THREAD_COUNTS {
            set_num_threads(t);
            assert_bits_eq(
                &a.matmul(&b).unwrap(),
                &nn_ref,
                &format!("nn {m}x{k}x{n} t={t}"),
            );
            assert_bits_eq(
                &a.matmul_nt(&b_t).unwrap(),
                &nt_ref,
                &format!("nt {m}x{k}x{n} t={t}"),
            );
            assert_bits_eq(
                &a_t.matmul_tn(&b).unwrap(),
                &tn_ref,
                &format!("tn {m}x{k}x{n} t={t}"),
            );
        }
    }
    set_num_threads(before);
}

#[test]
fn matmul_with_nan_and_inf_is_bitwise_identical_across_thread_counts() {
    let _guard = config_lock();
    let before = num_threads();
    let mut rng = seeded_rng(7);
    let (m, k, n) = (33, 17, 29);
    let mut a = normal(&mut rng, m, k, 1.0);
    let b = normal(&mut rng, k, n, 1.0);
    *a.at_mut(3, 5) = f32::NAN;
    *a.at_mut(20, 0) = f32::INFINITY;
    *a.at_mut(7, 2) = 0.0;
    set_num_threads(1);
    let reference = a.matmul(&b).unwrap();
    for &t in THREAD_COUNTS {
        set_num_threads(t);
        assert_bits_eq(&a.matmul(&b).unwrap(), &reference, &format!("nn-nan t={t}"));
    }
    set_num_threads(before);
}

#[test]
fn softmax_family_is_bitwise_identical_across_thread_counts() {
    let _guard = config_lock();
    let before = num_threads();
    let mut rng = seeded_rng(11);
    for &(rows, cols) in &[(0usize, 4usize), (3, 0), (1, 129), (65, 1), (37, 257)] {
        let mut t = normal(&mut rng, rows, cols, 3.0);
        if rows > 2 && cols > 1 {
            // Exercise the fully-masked-row path too.
            for v in t.row_mut(1) {
                *v = f32::NEG_INFINITY;
            }
        }
        set_num_threads(1);
        let max_ref = row_max(&t);
        let sm_ref = softmax_rows(&t);
        let (local_ref, stats_ref) = local_softmax(&t);
        for &n in THREAD_COUNTS {
            set_num_threads(n);
            assert_eq!(
                row_max(&t).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                max_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row_max {rows}x{cols} t={n}"
            );
            assert_bits_eq(
                &softmax_rows(&t),
                &sm_ref,
                &format!("softmax {rows}x{cols} t={n}"),
            );
            let (local, stats) = local_softmax(&t);
            assert_bits_eq(
                &local,
                &local_ref,
                &format!("local_softmax {rows}x{cols} t={n}"),
            );
            assert_eq!(
                stats.sum.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                stats_ref
                    .sum
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "local_softmax sums {rows}x{cols} t={n}"
            );
        }
    }
    set_num_threads(before);
}

#[test]
fn both_accuracy_policies_keep_threaded_bitwise_identical_to_serial() {
    // The determinism contract is policy-independent: whichever exp/tanh
    // the kernels use (libm reference or the fast polynomials), threading
    // splits only independent rows / column panels, so serial and threaded
    // outputs must match bit for bit under *either* policy.
    let _guard = config_lock();
    let before = num_threads();
    let mut rng = seeded_rng(29);
    let x = normal(&mut rng, 67, 96, 2.5);
    let logits = normal(&mut rng, 67, 96, 4.0);
    let gelu = Gelu::new();
    for policy in [false, true] {
        vp_tensor::mathx::set_fast_math(Some(policy));
        set_num_threads(1);
        let (gelu_ref, _) = gelu.forward(&x);
        let (sm_ref, stats_ref) = local_softmax(&logits);
        for &t in THREAD_COUNTS {
            set_num_threads(t);
            let (g, _) = gelu.forward(&x);
            assert_bits_eq(&g, &gelu_ref, &format!("gelu fast={policy} t={t}"));
            let (sm, stats) = local_softmax(&logits);
            assert_bits_eq(&sm, &sm_ref, &format!("softmax fast={policy} t={t}"));
            assert_eq!(
                stats.sum.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                stats_ref
                    .sum
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "softmax sums fast={policy} t={t}"
            );
        }
    }
    vp_tensor::mathx::set_fast_math(None);
    set_num_threads(before);
}

#[test]
fn layer_norm_and_gelu_are_bitwise_identical_across_thread_counts() {
    let _guard = config_lock();
    let before = num_threads();
    let mut rng = seeded_rng(13);
    for &(rows, dim) in &[(1usize, 64usize), (33, 48), (130, 96)] {
        let x = normal(&mut rng, rows, dim, 2.0);
        let dy = normal(&mut rng, rows, dim, 1.0);
        let ln = LayerNorm::new(dim);
        let gelu = Gelu::new();
        set_num_threads(1);
        let (ln_ref, _) = ln.forward(&x).unwrap();
        let (gelu_ref, cache_ref) = gelu.forward(&x);
        let dx_ref = gelu.backward(&cache_ref, &dy).unwrap();
        for &t in THREAD_COUNTS {
            set_num_threads(t);
            let (y, _) = ln.forward(&x).unwrap();
            assert_bits_eq(&y, &ln_ref, &format!("layernorm {rows}x{dim} t={t}"));
            let (g, cache) = gelu.forward(&x);
            assert_bits_eq(&g, &gelu_ref, &format!("gelu {rows}x{dim} t={t}"));
            let dx = gelu.backward(&cache, &dy).unwrap();
            assert_bits_eq(&dx, &dx_ref, &format!("gelu_bwd {rows}x{dim} t={t}"));
        }
    }
    set_num_threads(before);
}
