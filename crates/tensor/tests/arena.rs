//! Integration tests of the buffer arena's recycling and its numerics
//! contract: pooled outputs are **bitwise identical** to fresh-alloc
//! outputs, and steady-state repetition of the same computation is served
//! from the pool (reuse > 0, fresh ≈ 0 after warm-up).

use std::sync::{Mutex, MutexGuard, OnceLock};
use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::nn::{Gelu, LayerNorm, Linear};
use vp_tensor::{alloc, Tensor};

/// Serializes tests that toggle the process-global arena switch.
fn arena_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A small representative workload: linear + layer-norm + GELU forward and
/// a couple of matmul layouts, returning every output tensor.
fn workload(seed: u64) -> Vec<Tensor> {
    let mut rng = seeded_rng(seed);
    let x = normal(&mut rng, 33, 48, 1.0);
    let layer = Linear::new(&mut rng, 48, 32, true);
    let ln = LayerNorm::new(48);
    let gelu = Gelu::new();
    let (y, _) = layer.forward(&x).unwrap();
    let (normed, _) = ln.forward(&x).unwrap();
    let (act, cache) = gelu.forward(&x);
    let dact = gelu.backward(&cache, &normed).unwrap();
    let nt = y.matmul_nt(&y).unwrap();
    let tn = x.matmul_tn(&x).unwrap();
    vec![y, normed, act, dact, nt, tn]
}

fn assert_all_bits_eq(a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len());
    for (i, (ta, tb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ta.shape(), tb.shape(), "output {i} shape");
        for (x, y) in ta.data().iter().zip(tb.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "output {i} diverged");
        }
    }
}

#[test]
fn pooled_outputs_are_bitwise_identical_to_fresh() {
    let _guard = arena_lock();
    // Fresh: arena bypassed, every Vec comes from the system allocator.
    alloc::set_enabled(false);
    let fresh = workload(1234);
    // Pooled: run twice so the second pass reads recycled buffers.
    alloc::set_enabled(true);
    let warm = workload(1234);
    let pooled = workload(1234);
    assert_all_bits_eq(&fresh, &warm);
    assert_all_bits_eq(&fresh, &pooled);
}

#[test]
fn second_iteration_is_served_from_the_pool() {
    let _guard = arena_lock();
    alloc::set_enabled(true);
    // Warm-up: populate the pool with every shape the workload uses.
    drop(workload(77));
    alloc::reset_counters();
    let outputs = workload(77);
    let stats = alloc::stats();
    assert!(
        stats.reuse > 0,
        "second iteration must recycle buffers: {stats:?}"
    );
    // The live outputs themselves may have taken fresh buffers only if the
    // pool genuinely ran dry; with an identical warm-up iteration it must
    // not have.
    assert_eq!(
        stats.fresh, 0,
        "steady-state iteration must allocate nothing new: {stats:?}"
    );
    assert!(stats.reuse_ratio() > 0.99, "{stats:?}");
    drop(outputs);
}

#[test]
fn disabling_mid_run_still_produces_identical_results() {
    let _guard = arena_lock();
    alloc::set_enabled(true);
    let pooled = workload(5);
    alloc::set_enabled(false);
    let fresh = workload(5);
    alloc::set_enabled(true);
    assert_all_bits_eq(&pooled, &fresh);
}

#[test]
fn outstanding_tracks_live_tensors() {
    let _guard = arena_lock();
    alloc::set_enabled(true);
    let before = alloc::stats().outstanding;
    let t = Tensor::zeros(64, 64);
    let live = alloc::stats().outstanding;
    assert!(live > before, "taking a buffer must raise outstanding");
    drop(t);
    assert!(
        alloc::stats().outstanding < live,
        "dropping the tensor must release its buffer"
    );
}
