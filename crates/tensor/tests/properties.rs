//! Property-based tests for the tensor substrate.
//!
//! These pin down the algebraic identities the Vocabulary Parallelism
//! algorithms rely on: linearity of matmul, the transpose laws behind the
//! `nt`/`tn` kernels, shift-invariance of safe softmax and — most
//! importantly — that an arbitrarily sharded softmax rescaled with global
//! statistics (the paper's Eq. 5) reproduces the full softmax.

use proptest::prelude::*;
use vp_tensor::ops::{local_softmax, rescale_softmax, softmax_rows};
use vp_tensor::Tensor;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-50.0f32..50.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data).unwrap())
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_nt_equals_matmul_with_transpose(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        let mut rng = vp_tensor::init::seeded_rng(seed);
        let a = vp_tensor::init::normal(&mut rng, m, k, 1.0);
        let b = vp_tensor::init::normal(&mut rng, n, k, 1.0);
        let via_nt = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        prop_assert!(via_nt.max_abs_diff(&via_t).unwrap() < 1e-4);
        let c = vp_tensor::init::normal(&mut rng, m, n, 1.0);
        let via_tn = a.matmul_tn(&c).unwrap();
        let via_t2 = a.transpose().matmul(&c).unwrap();
        prop_assert!(via_tn.max_abs_diff(&via_t2).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_is_linear_in_lhs((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = vp_tensor::init::seeded_rng(seed);
        let a1 = vp_tensor::init::normal(&mut rng, m, k, 1.0);
        let a2 = vp_tensor::init::normal(&mut rng, m, k, 1.0);
        let b = vp_tensor::init::normal(&mut rng, k, n, 1.0);
        let lhs = a1.add(&a2).unwrap().matmul(&b).unwrap();
        let rhs = a1.matmul(&b).unwrap().add(&a2.matmul(&b).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(t in tensor_strategy(3, 7)) {
        let s = softmax_rows(&t);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in tensor_strategy(2, 5), shift in -100.0f32..100.0) {
        let a = softmax_rows(&t);
        let b = softmax_rows(&t.map(|v| v + shift));
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    /// The core identity of the paper (Eq. 5): shard the columns at an
    /// arbitrary split point, softmax each shard locally, merge statistics
    /// as the all-reduce would, rescale — and recover the full softmax.
    #[test]
    fn sharded_softmax_matches_full(
        t in tensor_strategy(3, 8),
        split in 0usize..=8,
    ) {
        let full = softmax_rows(&t);
        let a = t.slice_cols(0, split).unwrap();
        let b = t.slice_cols(split, 8).unwrap();
        let (mut sa, st_a) = local_softmax(&a);
        let (mut sb, st_b) = local_softmax(&b);
        let rows = t.rows();
        let gmax: Vec<f32> = (0..rows).map(|r| st_a.max[r].max(st_b.max[r])).collect();
        let gsum: Vec<f32> = (0..rows)
            .map(|r| {
                let fix = |m: f32, s: f32| if s == 0.0 { 0.0 } else { s * (m - gmax[r]).exp() };
                fix(st_a.max[r], st_a.sum[r]) + fix(st_b.max[r], st_b.sum[r])
            })
            .collect();
        rescale_softmax(&mut sa, &st_a, &gmax, &gsum).unwrap();
        rescale_softmax(&mut sb, &st_b, &gmax, &gsum).unwrap();
        for r in 0..rows {
            for c in 0..split {
                prop_assert!((sa.at(r, c) - full.at(r, c)).abs() < 1e-5);
            }
            for c in split..8 {
                prop_assert!((sb.at(r, c - split) - full.at(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_involution_and_slice_concat(t in tensor_strategy(4, 5), cut in 0usize..=4) {
        prop_assert_eq!(t.transpose().transpose(), t.clone());
        let top = t.slice_rows(0, cut).unwrap();
        let bottom = t.slice_rows(cut, 4).unwrap();
        let glued = Tensor::concat_rows(&[&top, &bottom]).unwrap();
        prop_assert_eq!(glued, t);
    }
}
