//! Randomized-property tests for the tensor substrate, driven by a
//! deterministic seed sweep (no external property-testing framework).
//!
//! These pin down the algebraic identities the Vocabulary Parallelism
//! algorithms rely on: linearity of matmul, the transpose laws behind the
//! `nt`/`tn` kernels, shift-invariance of safe softmax and — most
//! importantly — that an arbitrarily sharded softmax rescaled with global
//! statistics (the paper's Eq. 5) reproduces the full softmax.

use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::ops::{local_softmax, rescale_softmax, softmax_rows};
use vp_tensor::rng::Rng;
use vp_tensor::Tensor;

fn random_tensor(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.gen_range(-50.0f32..50.0))
        .collect();
    Tensor::from_vec(rows, cols, data).unwrap()
}

fn random_dims(rng: &mut impl Rng) -> (usize, usize, usize) {
    (
        rng.gen_range(1..6usize),
        rng.gen_range(1..6usize),
        rng.gen_range(1..6usize),
    )
}

#[test]
fn matmul_nt_equals_matmul_with_transpose() {
    for seed in 0..64u64 {
        let mut rng = seeded_rng(seed);
        let (m, k, n) = random_dims(&mut rng);
        let a = normal(&mut rng, m, k, 1.0);
        let b = normal(&mut rng, n, k, 1.0);
        let via_nt = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        assert!(via_nt.max_abs_diff(&via_t).unwrap() < 1e-4, "seed {seed}");
        let c = normal(&mut rng, m, n, 1.0);
        let via_tn = a.matmul_tn(&c).unwrap();
        let via_t2 = a.transpose().matmul(&c).unwrap();
        assert!(via_tn.max_abs_diff(&via_t2).unwrap() < 1e-4, "seed {seed}");
    }
}

#[test]
fn matmul_is_linear_in_lhs() {
    for seed in 100..164u64 {
        let mut rng = seeded_rng(seed);
        let (m, k, n) = random_dims(&mut rng);
        let a1 = normal(&mut rng, m, k, 1.0);
        let a2 = normal(&mut rng, m, k, 1.0);
        let b = normal(&mut rng, k, n, 1.0);
        let lhs = a1.add(&a2).unwrap().matmul(&b).unwrap();
        let rhs = a1.matmul(&b).unwrap().add(&a2.matmul(&b).unwrap()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3, "seed {seed}");
    }
}

#[test]
fn softmax_rows_are_probability_distributions() {
    for seed in 200..264u64 {
        let mut rng = seeded_rng(seed);
        let t = random_tensor(&mut rng, 3, 7);
        let s = softmax_rows(&t);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "seed {seed} row {r}");
            assert!(
                s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn softmax_is_shift_invariant() {
    for seed in 300..364u64 {
        let mut rng = seeded_rng(seed);
        let t = random_tensor(&mut rng, 2, 5);
        let shift = rng.gen_range(-100.0f32..100.0);
        let a = softmax_rows(&t);
        let b = softmax_rows(&t.map(|v| v + shift));
        assert!(
            a.max_abs_diff(&b).unwrap() < 1e-4,
            "seed {seed} shift {shift}"
        );
    }
}

/// The core identity of the paper (Eq. 5): shard the columns at an
/// arbitrary split point, softmax each shard locally, merge statistics
/// as the all-reduce would, rescale — and recover the full softmax.
#[test]
fn sharded_softmax_matches_full() {
    for seed in 400..464u64 {
        let mut rng = seeded_rng(seed);
        let t = random_tensor(&mut rng, 3, 8);
        let split = rng.gen_range(0..9usize);
        let full = softmax_rows(&t);
        let a = t.slice_cols(0, split).unwrap();
        let b = t.slice_cols(split, 8).unwrap();
        let (mut sa, st_a) = local_softmax(&a);
        let (mut sb, st_b) = local_softmax(&b);
        let rows = t.rows();
        let gmax: Vec<f32> = (0..rows).map(|r| st_a.max[r].max(st_b.max[r])).collect();
        let gsum: Vec<f32> = (0..rows)
            .map(|r| {
                let fix = |m: f32, s: f32| {
                    if s == 0.0 {
                        0.0
                    } else {
                        s * (m - gmax[r]).exp()
                    }
                };
                fix(st_a.max[r], st_a.sum[r]) + fix(st_b.max[r], st_b.sum[r])
            })
            .collect();
        rescale_softmax(&mut sa, &st_a, &gmax, &gsum).unwrap();
        rescale_softmax(&mut sb, &st_b, &gmax, &gsum).unwrap();
        for r in 0..rows {
            for c in 0..split {
                assert!((sa.at(r, c) - full.at(r, c)).abs() < 1e-5, "seed {seed}");
            }
            for c in split..8 {
                assert!(
                    (sb.at(r, c - split) - full.at(r, c)).abs() < 1e-5,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn transpose_involution_and_slice_concat() {
    for seed in 500..564u64 {
        let mut rng = seeded_rng(seed);
        let t = random_tensor(&mut rng, 4, 5);
        let cut = rng.gen_range(0..5usize);
        assert_eq!(t.transpose().transpose(), t.clone());
        let top = t.slice_rows(0, cut).unwrap();
        let bottom = t.slice_rows(cut, 4).unwrap();
        let glued = Tensor::concat_rows(&[&top, &bottom]).unwrap();
        assert_eq!(glued, t);
    }
}
