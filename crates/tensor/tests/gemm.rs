//! Property tests of the packed GEMM against a naive triple-loop reference.
//!
//! The packed microkernel (`crates/tensor/src/gemm.rs`) re-tiles and packs
//! operands but must accumulate every output element in ascending-`k`
//! order from `0.0` — exactly the naive `i-k-j` loop. These tests pin that
//! down **bitwise** for every layout on edge shapes: empty dimensions,
//! 1×1, sizes straddling the 64-wide blocking and the 4×8 register tile,
//! and NaN/∞ propagation through zero-padded pack panels.

use vp_tensor::init::{normal, seeded_rng};
use vp_tensor::Tensor;

/// `(m, k, n)` shapes chosen to hit every tiling edge: zero dims, single
/// elements, sub-tile sizes, exact block multiples, and off-by-one block
/// straddles (65 = 64+1, 129 = 2·64+1, 9 = MR·2+1, 17 = NR·2+1,
/// 131 = MC+3 spans the 128-row block boundary).
const SHAPES: &[(usize, usize, usize)] = &[
    (0, 5, 3),
    (5, 0, 3),
    (5, 3, 0),
    (0, 0, 0),
    (1, 1, 1),
    (1, 64, 1),
    (3, 5, 2),
    (4, 8, 8),
    (9, 17, 5),
    (17, 9, 33),
    (64, 64, 64),
    (65, 129, 66),
    (2, 200, 70),
    (131, 37, 19),
];

/// Naive `i-k-j` reference: one running accumulator per output element,
/// `p` strictly ascending — the order the packed kernel must preserve.
fn naive_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.at(i, p);
            for j in 0..n {
                *out.at_mut(i, j) += av * b.at(p, j);
            }
        }
    }
    out
}

fn naive_nt(a: &Tensor, bt: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = bt.rows();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.at(i, p);
            for j in 0..n {
                *out.at_mut(i, j) += av * bt.at(j, p);
            }
        }
    }
    out
}

fn naive_tn(at: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = at.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = at.at(p, i);
            for j in 0..n {
                *out.at_mut(i, j) += av * b.at(p, j);
            }
        }
    }
    out
}

fn assert_bits_eq(actual: &Tensor, reference: &Tensor, what: &str) {
    assert_eq!(actual.shape(), reference.shape(), "{what}: shape");
    for (i, (x, y)) in actual.data().iter().zip(reference.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn packed_gemm_matches_naive_reference_on_edge_shapes() {
    let mut rng = seeded_rng(2025);
    for &(m, k, n) in SHAPES {
        let a = normal(&mut rng, m, k, 1.0);
        let b = normal(&mut rng, k, n, 1.0);
        let bt = normal(&mut rng, n, k, 1.0);
        let at = normal(&mut rng, k, m, 1.0);
        assert_bits_eq(
            &a.matmul(&b).unwrap(),
            &naive_nn(&a, &b),
            &format!("nn {m}x{k}x{n}"),
        );
        assert_bits_eq(
            &a.matmul_nt(&bt).unwrap(),
            &naive_nt(&a, &bt),
            &format!("nt {m}x{k}x{n}"),
        );
        assert_bits_eq(
            &at.matmul_tn(&b).unwrap(),
            &naive_tn(&at, &b),
            &format!("tn {m}x{k}x{n}"),
        );
    }
}

#[test]
fn fused_bias_matches_naive_matmul_plus_bias() {
    let mut rng = seeded_rng(7);
    for &(m, k, n) in SHAPES {
        let a = normal(&mut rng, m, k, 1.0);
        let b = normal(&mut rng, k, n, 1.0);
        let bias = normal(&mut rng, 1, n, 0.7);
        let fused = a.matmul_bias(&b, &bias).unwrap();
        let mut reference = naive_nn(&a, &b);
        for i in 0..m {
            for j in 0..n {
                *reference.at_mut(i, j) += bias.at(0, j);
            }
        }
        assert_bits_eq(&fused, &reference, &format!("bias {m}x{k}x{n}"));
    }
}

#[test]
fn k_zero_yields_all_zero_output() {
    let a = Tensor::zeros(7, 0);
    let b = Tensor::zeros(0, 13);
    let out = a.matmul(&b).unwrap();
    assert_eq!(out.shape(), (7, 13));
    assert!(out.data().iter().all(|&v| v.to_bits() == 0.0f32.to_bits()));
    // With a bias, k=0 must still produce exactly the bias rows.
    let bias = Tensor::from_vec(1, 13, (0..13).map(|i| i as f32 - 6.0).collect()).unwrap();
    let biased = a.matmul_bias(&b, &bias).unwrap();
    for r in 0..7 {
        for (j, &bv) in bias.row(0).iter().enumerate() {
            // 0.0 + bv, the same order as the unfused path.
            assert_eq!(biased.at(r, j).to_bits(), (0.0f32 + bv).to_bits());
        }
    }
}

#[test]
fn nan_and_inf_propagate_through_packed_panels() {
    // Poison values land inside (and outside) zero-padded edge tiles of a
    // non-block-multiple shape; padding lanes must never leak into real
    // outputs, and real NaN/∞ terms must never be skipped.
    let (m, k, n) = (13, 66, 21);
    let mut rng = seeded_rng(99);
    let mut a = normal(&mut rng, m, k, 1.0);
    let mut b = normal(&mut rng, k, n, 1.0);
    *a.at_mut(12, 65) = f32::NAN; // last row/col: inside the ragged tile
    *a.at_mut(0, 0) = f32::INFINITY;
    *a.at_mut(5, 7) = 0.0;
    *b.at_mut(7, 20) = f32::NAN; // 0 · NaN must stay NaN
    *b.at_mut(65, 0) = f32::NEG_INFINITY;
    assert_bits_eq(&a.matmul(&b).unwrap(), &naive_nn(&a, &b), "nn poison");

    let mut bt = normal(&mut rng, n, k, 1.0);
    *bt.at_mut(20, 65) = f32::NAN;
    *bt.at_mut(0, 7) = f32::INFINITY;
    assert_bits_eq(&a.matmul_nt(&bt).unwrap(), &naive_nt(&a, &bt), "nt poison");

    let mut at = normal(&mut rng, k, m, 1.0);
    *at.at_mut(65, 12) = f32::NAN;
    *at.at_mut(3, 0) = 0.0;
    assert_bits_eq(&at.matmul_tn(&b).unwrap(), &naive_tn(&at, &b), "tn poison");
}

#[test]
fn tiles_never_spill_past_the_row_block_boundary() {
    // Regression: the compute loop clamped each tile to the *chunk* row
    // count instead of the packed 128-row block, so whenever MC % MR != 0
    // (the 6-row AVX2 tile) the last tile of a non-final block spilled
    // into the next block's rows, adding `0·b` terms from the zero
    // padding — x + 0·∞ = NaN and -0.0 + 0.0 = +0.0, silently breaking
    // bitwise identity and ∞ propagation for every m > 128. Poison `b`
    // with infinities in every column block so any spilled lane turns a
    // row ≥ 128 into NaN; the naive reference keeps it ±∞.
    let (m, k, n) = (131, 37, 19);
    let mut rng = seeded_rng(41);
    let a = normal(&mut rng, m, k, 1.0);
    let mut b = normal(&mut rng, k, n, 1.0);
    for j in 0..n {
        *b.at_mut(j % k, j) = if j % 2 == 0 {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
    }
    assert_bits_eq(&a.matmul(&b).unwrap(), &naive_nn(&a, &b), "nn spill");

    let bt = b.transpose();
    assert_bits_eq(&a.matmul_nt(&bt).unwrap(), &naive_nt(&a, &bt), "nt spill");

    let at = a.transpose();
    assert_bits_eq(&at.matmul_tn(&b).unwrap(), &naive_tn(&at, &b), "tn spill");
}

#[test]
fn layouts_agree_with_explicit_transpose_bitwise() {
    // matmul_nt(a, b) and matmul(a, bᵀ) share per-element accumulation
    // order under the packed kernel, so they agree bitwise (a stronger
    // statement than the old approximate-equality test in tensor.rs).
    let mut rng = seeded_rng(31);
    let a = normal(&mut rng, 9, 70, 1.0);
    let bt = normal(&mut rng, 23, 70, 1.0);
    assert_bits_eq(
        &a.matmul_nt(&bt).unwrap(),
        &a.matmul(&bt.transpose()).unwrap(),
        "nt vs explicit transpose",
    );
    let at = normal(&mut rng, 70, 9, 1.0);
    let b = normal(&mut rng, 70, 23, 1.0);
    assert_bits_eq(
        &at.matmul_tn(&b).unwrap(),
        &at.transpose().matmul(&b).unwrap(),
        "tn vs explicit transpose",
    );
}
