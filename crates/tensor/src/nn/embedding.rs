use crate::optim::Param;
use crate::rng::Rng;
use crate::{init, Result, Tensor, TensorError};

/// Token embedding table `W: [vocab, hidden]`.
///
/// The forward pass is a row gather; the backward pass scatter-adds output
/// gradients into the gathered rows. This is the paper's *input vocabulary
/// layer* (Appendix C): its compute is negligible (`3bsh` FLOPs) but its
/// parameter memory `hV` is as large as the output layer's.
#[derive(Debug, Clone)]
pub struct Embedding {
    weight: Param,
}

/// Cache for [`Embedding::forward`]: the gathered token ids.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    ids: Vec<usize>,
}

impl Embedding {
    /// Creates an embedding table with GPT-style initialization.
    pub fn new(rng: &mut impl Rng, vocab: usize, hidden: usize) -> Self {
        Embedding {
            weight: Param::new(init::gpt(rng, vocab, hidden)),
        }
    }

    /// Wraps an existing weight tensor (used for sharding).
    pub fn from_weight(weight: Tensor) -> Self {
        Embedding {
            weight: Param::new(weight),
        }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.weight.value().rows()
    }

    /// Hidden width (number of columns).
    pub fn hidden(&self) -> usize {
        self.weight.value().cols()
    }

    /// Immutable view of the embedding matrix.
    pub fn weight(&self) -> &Tensor {
        self.weight.value()
    }

    /// Gathers the embedding rows for `ids`, producing `[ids.len(), hidden]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if any id is `>= vocab`.
    pub fn forward(&self, ids: &[usize]) -> Result<(Tensor, EmbeddingCache)> {
        let h = self.hidden();
        let mut out = Tensor::zeros(ids.len(), h);
        for (r, &id) in ids.iter().enumerate() {
            if id >= self.vocab() {
                return Err(TensorError::OutOfBounds {
                    op: "embedding",
                    index: id,
                    bound: self.vocab(),
                });
            }
            out.row_mut(r).copy_from_slice(self.weight.value().row(id));
        }
        Ok((out, EmbeddingCache { ids: ids.to_vec() }))
    }

    /// Scatter-adds `dy` rows into the weight gradient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dy` does not have one row
    /// per cached id and `hidden` columns.
    pub fn backward(&mut self, cache: &EmbeddingCache, dy: &Tensor) -> Result<()> {
        if dy.shape() != (cache.ids.len(), self.hidden()) {
            return Err(TensorError::ShapeMismatch {
                op: "embedding_bwd",
                lhs: dy.shape(),
                rhs: (cache.ids.len(), self.hidden()),
            });
        }
        let mut dw = Tensor::zeros(self.vocab(), self.hidden());
        for (r, &id) in cache.ids.iter().enumerate() {
            for (d, &g) in dw.row_mut(id).iter_mut().zip(dy.row(r)) {
                *d += g;
            }
        }
        self.weight.accumulate(&dw)
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Embedding {
        Embedding::from_weight(Tensor::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]).unwrap())
    }

    #[test]
    fn forward_gathers_rows() {
        let emb = table();
        let (y, _) = emb.forward(&[2, 0, 2]).unwrap();
        assert_eq!(y.data(), &[20., 21., 0., 1., 20., 21.]);
    }

    #[test]
    fn forward_rejects_out_of_range() {
        assert!(table().forward(&[3]).is_err());
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut emb = table();
        let (_, cache) = emb.forward(&[1, 1]).unwrap();
        let dy = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        emb.backward(&cache, &dy).unwrap();
        let g = emb.params_mut()[0].grad().clone();
        assert_eq!(g.row(0), &[0., 0.]);
        assert_eq!(g.row(1), &[4., 6.]);
        assert_eq!(g.row(2), &[0., 0.]);
    }

    #[test]
    fn backward_validates_shape() {
        let mut emb = table();
        let (_, cache) = emb.forward(&[0]).unwrap();
        assert!(emb.backward(&cache, &Tensor::zeros(2, 2)).is_err());
    }
}
