//! Manual-backprop neural-network layers.
//!
//! Each layer exposes a `forward` returning the output plus an explicit
//! activation cache, and a `backward` consuming that cache, accumulating
//! parameter gradients in place and returning the input gradient. Explicit
//! caches (rather than a tape) mirror how pipeline-parallel training
//! frameworks account activation memory per microbatch — the resource the
//! paper's schedules budget for.

mod activation;
mod attention;
mod embedding;
mod kv;
mod linear;
mod loss;
mod norm;

pub use activation::{gelu, gelu_backward, gelu_backward_with_tanh, Gelu, GeluCache};
pub use attention::{AttentionCache, MultiHeadAttention};
pub use embedding::{Embedding, EmbeddingCache};
pub use kv::{KvBlockPool, KvCache, DEFAULT_BLOCK_TOKENS};
pub use linear::{Linear, LinearCache};
pub use loss::{softmax_cross_entropy, CrossEntropyGrad, CrossEntropyOutput};
pub use norm::{LayerNorm, LayerNormCache};
