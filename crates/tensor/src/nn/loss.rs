use crate::ops::{cross_entropy_mean, one_hot, softmax_rows};
use crate::{Result, Tensor};

/// Forward result of the reference (unpartitioned) softmax cross-entropy.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over rows.
    pub loss: f64,
    /// Row-wise softmax probabilities (kept for the backward pass).
    pub probs: Tensor,
}

/// Gradient of the mean cross-entropy with respect to the logits.
#[derive(Debug, Clone)]
pub struct CrossEntropyGrad {
    /// `(softmax(Y) − G) / N`, shape `[N, V]`.
    pub dlogits: Tensor,
}

/// Reference full-vocabulary softmax cross-entropy: the ground truth the
/// paper's partitioned Algorithms 1 and 2 must reproduce exactly.
///
/// Returns the forward output and the logits gradient for *mean* reduction
/// (gradients are `(softmax − G)/N`, matching a language-model loss averaged
/// over tokens).
///
/// # Errors
///
/// Returns an error if `labels.len() != logits.rows()` or any label is out
/// of range.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(CrossEntropyOutput, CrossEntropyGrad)> {
    let loss = cross_entropy_mean(logits, labels)?;
    let probs = softmax_rows(logits);
    let g = one_hot(labels, logits.cols())?;
    let mut dlogits = probs.sub(&g)?;
    dlogits.scale_in_place(1.0 / labels.len() as f32);
    Ok((
        CrossEntropyOutput { loss, probs },
        CrossEntropyGrad { dlogits },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn uniform_logits_loss_is_log_v() {
        let logits = Tensor::zeros(4, 8);
        let (out, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (8f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_checks_against_finite_differences() {
        let logits = normal(&mut seeded_rng(31), 3, 5, 1.0);
        let labels = [4usize, 0, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let report = check_scalar_fn(&logits, &grad.dlogits, 1e-3, |t| {
            cross_entropy_mean(t, &labels).unwrap()
        });
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = normal(&mut seeded_rng(32), 2, 6, 2.0);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 5]).unwrap();
        for r in 0..2 {
            let sum: f32 = grad.dlogits.row(r).iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let mut logits = Tensor::zeros(1, 4);
        *logits.at_mut(0, 2) = 50.0;
        let (out, grad) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!(out.loss < 1e-6);
        assert!(grad.dlogits.max_abs() < 1e-6);
    }
}
