use crate::optim::Param;
use crate::rng::Rng;
use crate::{init, Result, Tensor};

/// A fully-connected layer `y = x·W + b` with `W: [in, out]`, `b: [1, out]`.
///
/// # Example
///
/// ```
/// use vp_tensor::{nn::Linear, Tensor, init};
///
/// let mut rng = init::seeded_rng(0);
/// let layer = Linear::new(&mut rng, 4, 2, true);
/// let x = Tensor::ones(3, 4);
/// let (y, _cache) = layer.forward(&x)?;
/// assert_eq!(y.shape(), (3, 2));
/// # Ok::<(), vp_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
}

/// Activations cached by [`Linear::forward`] for the backward pass.
#[derive(Debug, Clone)]
pub struct LinearCache {
    input: Tensor,
}

impl LinearCache {
    /// Bytes of activation memory held by this cache.
    pub fn bytes(&self) -> usize {
        self.input.len() * std::mem::size_of::<f32>()
    }
}

impl Linear {
    /// Creates a layer with GPT-style initialized weights and zero bias.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize, with_bias: bool) -> Self {
        Linear {
            weight: Param::new(init::gpt(rng, in_dim, out_dim)),
            bias: with_bias.then(|| Param::new(Tensor::zeros(1, out_dim))),
        }
    }

    /// Creates a layer from explicit tensors (used for sharding and tests).
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>) -> Self {
        Linear {
            weight: Param::new(weight),
            bias: bias.map(Param::new),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value().rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value().cols()
    }

    /// Forward pass; caches the input for backward.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LinearCache)> {
        // Fused bias: added inside the GEMM while each output strip is
        // still cache-hot — bitwise identical to matmul-then-broadcast-add
        // (see `Tensor::matmul_bias`). The bias-less case stays the plain
        // unfused matmul.
        let y = match &self.bias {
            Some(b) => x.matmul_bias(self.weight.value(), b.value())?,
            None => x.matmul(self.weight.value())?,
        };
        Ok((y, LinearCache { input: x.clone() }))
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `dy` does not match the forward output shape.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Result<Tensor> {
        // dx = dy · Wᵀ; `matmul_nt` multiplies by the transposed rhs.
        let dx = dy.matmul_nt(self.weight.value())?;
        let dw = cache.input.matmul_tn(dy)?;
        self.weight.accumulate(&dw)?;
        if let Some(b) = &mut self.bias {
            let mut db = Tensor::zeros(1, dy.cols());
            for r in 0..dy.rows() {
                for (d, &g) in db.row_mut(0).iter_mut().zip(dy.row(r)) {
                    *d += g;
                }
            }
            b.accumulate(&db)?;
        }
        Ok(dx)
    }

    /// Mutable references to all trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    /// Immutable view of the weight matrix.
    pub fn weight(&self) -> &Tensor {
        self.weight.value()
    }

    /// Immutable view of the bias row, if the layer has one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|b| b.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::seeded_rng;

    /// L(x) = sum(Linear(x)) so dL/dy = 1.
    fn loss_of(layer: &Linear, x: &Tensor) -> f64 {
        layer.forward(x).unwrap().0.sum()
    }

    #[test]
    fn forward_shape_and_bias() {
        let layer = Linear::from_parts(
            Tensor::eye(3),
            Some(Tensor::from_vec(1, 3, vec![1., 2., 3.]).unwrap()),
        );
        let x = Tensor::zeros(2, 3);
        let (y, _) = layer.forward(&x).unwrap();
        assert_eq!(y.row(0), &[1., 2., 3.]);
        assert_eq!(y.row(1), &[1., 2., 3.]);
    }

    #[test]
    fn fused_bias_matches_unfused_bitwise() {
        let mut rng = seeded_rng(42);
        let w = init::normal(&mut rng, 37, 29, 1.0);
        let bias = init::normal(&mut rng, 1, 29, 0.5);
        let x = init::normal(&mut rng, 19, 37, 1.0);
        let layer = Linear::from_parts(w.clone(), Some(bias.clone()));
        let (fused, _) = layer.forward(&x).unwrap();
        // Unfused reference: plain matmul followed by a broadcast add.
        let mut reference = x.matmul(&w).unwrap();
        for r in 0..reference.rows() {
            for (v, &bv) in reference.row_mut(r).iter_mut().zip(bias.row(0)) {
                *v += bv;
            }
        }
        assert_eq!(fused.shape(), reference.shape());
        for (a, b) in fused.data().iter().zip(reference.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "fused bias diverged");
        }
        // The bias-less path is the plain matmul, also bitwise.
        let no_bias = Linear::from_parts(w.clone(), None);
        let (y, _) = no_bias.forward(&x).unwrap();
        let plain = x.matmul(&w).unwrap();
        for (a, b) in y.data().iter().zip(plain.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn input_gradient_checks() {
        let mut rng = seeded_rng(11);
        let layer = Linear::new(&mut rng, 5, 3, true);
        let x = init::normal(&mut rng, 4, 5, 1.0);
        let (y, cache) = layer.forward(&x).unwrap();
        let dy = Tensor::ones(y.rows(), y.cols());
        let mut layer2 = layer.clone();
        let dx = layer2.backward(&cache, &dy).unwrap();
        let report = check_scalar_fn(&x, &dx, 1e-2, |t| loss_of(&layer, t));
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn weight_gradient_checks() {
        let mut rng = seeded_rng(12);
        let layer = Linear::new(&mut rng, 4, 3, false);
        let x = init::normal(&mut rng, 2, 4, 1.0);
        let (y, cache) = layer.forward(&x).unwrap();
        let dy = Tensor::ones(y.rows(), y.cols());
        let mut layer2 = layer.clone();
        layer2.backward(&cache, &dy).unwrap();
        let analytic = layer2.params_mut()[0].grad().clone();
        let w0 = layer.weight().clone();
        let report = check_scalar_fn(&w0, &analytic, 1e-2, |w| {
            Linear::from_parts(w.clone(), None)
                .forward(&x)
                .unwrap()
                .0
                .sum()
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut layer = Linear::from_parts(Tensor::eye(2), Some(Tensor::zeros(1, 2)));
        let x = Tensor::ones(3, 2);
        let (_, cache) = layer.forward(&x).unwrap();
        let dy = Tensor::ones(3, 2);
        layer.backward(&cache, &dy).unwrap();
        let params = layer.params_mut();
        assert_eq!(params[1].grad().data(), &[3.0, 3.0]);
    }
}
