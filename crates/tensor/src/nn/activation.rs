use crate::{Result, Tensor, TensorError};

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// GELU activation (tanh approximation), applied elementwise.
#[inline]
pub fn gelu(x: f32) -> f32 {
    let inner = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    0.5 * x * (1.0 + inner.tanh())
}

/// Derivative of [`gelu`] with respect to its input.
#[inline]
pub fn gelu_backward(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// The GELU activation as a stateless layer (caches the pre-activation).
#[derive(Debug, Clone, Default)]
pub struct Gelu;

impl Gelu {
    /// Creates the activation layer.
    pub fn new() -> Self {
        Gelu
    }

    /// Applies GELU elementwise; the cache is the input itself.
    ///
    /// Elementwise, so row-parallel execution (see [`crate::pool`]) is
    /// trivially bitwise identical to the serial path.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        let (rows, cols) = x.shape();
        let mut y = Tensor::zeros(rows, cols);
        crate::pool::par_rows_mut(
            rows,
            x.len().saturating_mul(16),
            y.data_mut(),
            |r0, _r1, chunk| {
                let src = &x.data()[r0 * cols..r0 * cols + chunk.len()];
                for (o, &v) in chunk.iter_mut().zip(src) {
                    *o = gelu(v);
                }
            },
        );
        (y, x.clone())
    }

    /// Backward pass through the activation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dy` and the cached input
    /// have different shapes.
    pub fn backward(&self, cache: &Tensor, dy: &Tensor) -> Result<Tensor> {
        if cache.shape() != dy.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "gelu_bwd",
                lhs: dy.shape(),
                rhs: cache.shape(),
            });
        }
        let (rows, cols) = cache.shape();
        let mut dx = Tensor::zeros(rows, cols);
        crate::pool::par_rows_mut(
            rows,
            cache.len().saturating_mul(16),
            dx.data_mut(),
            |r0, _r1, chunk| {
                let base = r0 * cols;
                let x = &cache.data()[base..base + chunk.len()];
                let g = &dy.data()[base..base + chunk.len()];
                for ((o, &xv), &gv) in chunk.iter_mut().zip(x).zip(g) {
                    *o = gelu_backward(xv) * gv;
                }
            },
        );
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn gelu_known_values() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_is_monotone_near_origin() {
        let mut prev = gelu(-0.5);
        let mut x = -0.5;
        while x < 0.5 {
            x += 0.01;
            let cur = gelu(x);
            assert!(cur >= prev - 1e-6);
            prev = cur;
        }
    }

    #[test]
    fn gradient_checks() {
        let x = normal(&mut seeded_rng(9), 3, 4, 1.0);
        let layer = Gelu::new();
        let (_, cache) = layer.forward(&x);
        let dx = layer.backward(&cache, &Tensor::ones(3, 4)).unwrap();
        let report = check_scalar_fn(&x, &dx, 1e-3, |t| layer.forward(t).0.sum());
        assert!(report.passes(1e-3), "{report:?}");
    }
}
