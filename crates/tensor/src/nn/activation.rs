use crate::{mathx, Result, Tensor, TensorError};

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// The policy-resolved tanh every GELU entry point shares: libm on the
/// bitwise-pinned reference path, the bounded polynomial [`mathx::tanh`]
/// on the fast path. One function for forward *and* backward, so the
/// cached-tanh bitwise identity holds under either policy.
#[inline]
fn gelu_tanh(u: f32) -> f32 {
    if mathx::fast_math() {
        mathx::tanh(u)
    } else {
        u.tanh()
    }
}

/// GELU activation (tanh approximation), applied elementwise.
///
/// The tanh follows the process accuracy policy ([`crate::mathx`]).
#[inline]
pub fn gelu(x: f32) -> f32 {
    let inner = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    0.5 * x * (1.0 + gelu_tanh(inner))
}

/// Derivative of [`gelu`] given the input `x` and the cached
/// `t = tanh(√(2/π)·(x + c·x³))` from the forward pass.
///
/// This is the hoisted form: the tanh chain — the only transcendental in
/// the derivative — is *not* recomputed. [`Gelu::forward`] caches `t`
/// alongside the input, so the backward pass is purely polynomial.
#[inline]
pub fn gelu_backward_with_tanh(x: f32, t: f32) -> f32 {
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Derivative of [`gelu`] with respect to its input (standalone form;
/// recomputes the tanh — under the same accuracy policy — that
/// [`gelu_backward_with_tanh`] takes cached).
#[inline]
pub fn gelu_backward(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    gelu_backward_with_tanh(x, gelu_tanh(u))
}

/// Activations cached by [`Gelu::forward`]: the input and the tanh term,
/// so backward performs zero transcendental evaluations.
///
/// Caching `t` instead of recomputing `tanh(u(x))` in backward is bitwise
/// neutral: both evaluate the identical expression on the identical input.
#[derive(Debug, Clone)]
pub struct GeluCache {
    x: Tensor,
    t: Tensor,
}

impl GeluCache {
    /// Bytes of activation memory held by this cache.
    pub fn bytes(&self) -> usize {
        (self.x.len() + self.t.len()) * std::mem::size_of::<f32>()
    }
}

/// The GELU activation as a stateless layer (caches the pre-activation and
/// the forward tanh term).
#[derive(Debug, Clone, Default)]
pub struct Gelu;

impl Gelu {
    /// Creates the activation layer.
    pub fn new() -> Self {
        Gelu
    }

    /// Applies GELU elementwise, caching the input and the tanh term.
    ///
    /// Elementwise, so row-parallel execution (see [`crate::pool`]) is
    /// trivially bitwise identical to the serial path. On the fast policy
    /// path the branch-free polynomial tanh auto-vectorizes; the reference
    /// path calls libm per element exactly as before.
    pub fn forward(&self, x: &Tensor) -> (Tensor, GeluCache) {
        let (rows, cols) = x.shape();
        let mut y = Tensor::zeros(rows, cols);
        let mut t = Tensor::zeros(rows, cols);
        let fast = mathx::fast_math();
        crate::pool::par_rows_mut2(
            rows,
            x.len().saturating_mul(16),
            y.data_mut(),
            t.data_mut(),
            |r0, _r1, yc, tc| {
                let src = &x.data()[r0 * cols..r0 * cols + yc.len()];
                if fast {
                    for ((yo, to), &v) in yc.iter_mut().zip(tc.iter_mut()).zip(src) {
                        let inner = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
                        let th = mathx::tanh(inner);
                        *to = th;
                        *yo = 0.5 * v * (1.0 + th);
                    }
                } else {
                    for ((yo, to), &v) in yc.iter_mut().zip(tc.iter_mut()).zip(src) {
                        let inner = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
                        let th = inner.tanh();
                        *to = th;
                        *yo = 0.5 * v * (1.0 + th);
                    }
                }
            },
        );
        (y, GeluCache { x: x.clone(), t })
    }

    /// Backward pass through the activation. Uses the cached tanh term, so
    /// no transcendentals are evaluated — bitwise identical to recomputing
    /// them (same expression, same inputs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dy` and the cached input
    /// have different shapes.
    pub fn backward(&self, cache: &GeluCache, dy: &Tensor) -> Result<Tensor> {
        if cache.x.shape() != dy.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "gelu_bwd",
                lhs: dy.shape(),
                rhs: cache.x.shape(),
            });
        }
        let (rows, cols) = cache.x.shape();
        let mut dx = Tensor::zeros(rows, cols);
        crate::pool::par_rows_mut(
            rows,
            cache.x.len().saturating_mul(16),
            dx.data_mut(),
            |r0, _r1, chunk| {
                let base = r0 * cols;
                let x = &cache.x.data()[base..base + chunk.len()];
                let t = &cache.t.data()[base..base + chunk.len()];
                let g = &dy.data()[base..base + chunk.len()];
                for (((o, &xv), &tv), &gv) in chunk.iter_mut().zip(x).zip(t).zip(g) {
                    *o = gelu_backward_with_tanh(xv, tv) * gv;
                }
            },
        );
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn gelu_known_values() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_is_monotone_near_origin() {
        let mut prev = gelu(-0.5);
        let mut x = -0.5;
        while x < 0.5 {
            x += 0.01;
            let cur = gelu(x);
            assert!(cur >= prev - 1e-6);
            prev = cur;
        }
    }

    #[test]
    fn gradient_checks() {
        let x = normal(&mut seeded_rng(9), 3, 4, 1.0);
        let layer = Gelu::new();
        let (_, cache) = layer.forward(&x);
        let dx = layer.backward(&cache, &Tensor::ones(3, 4)).unwrap();
        let report = check_scalar_fn(&x, &dx, 1e-3, |t| layer.forward(t).0.sum());
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn cached_tanh_backward_pins_standalone_derivative() {
        // The hoisted (cached-tanh) derivative must be bitwise equal to the
        // standalone form for every input — including non-finite ones —
        // since both evaluate the identical expression chain. Holds under
        // either accuracy policy because forward and backward share
        // `gelu_tanh`; check both explicitly.
        let _guard = mathx::test_policy_guard();
        let mut vals: Vec<f32> = (-400..=400).map(|i| i as f32 * 0.025).collect();
        vals.extend([f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-30]);
        for policy in [false, true] {
            mathx::set_fast_math(Some(policy));
            for &x in &vals {
                let u = 0.797_884_6_f32 * (x + 0.044_715 * x * x * x);
                let hoisted = gelu_backward_with_tanh(x, gelu_tanh(u));
                assert_eq!(
                    gelu_backward(x).to_bits(),
                    hoisted.to_bits(),
                    "derivative diverged at x={x} (fast_math={policy})"
                );
            }
            // And the layer path (cached tanh from forward) matches applying
            // the standalone derivative to the same input.
            let x = normal(&mut seeded_rng(17), 5, 7, 1.5);
            let layer = Gelu::new();
            let (_, cache) = layer.forward(&x);
            let dx = layer.backward(&cache, &Tensor::ones(5, 7)).unwrap();
            for (o, &xv) in dx.data().iter().zip(x.data()) {
                assert_eq!(o.to_bits(), gelu_backward(xv).to_bits());
            }
        }
        mathx::set_fast_math(None);
    }
}
