use crate::nn::kv::KvCache;
use crate::ops::softmax_rows;
use crate::optim::Param;
use crate::rng::Rng;
use crate::{init, Result, Tensor, TensorError};

/// Causal multi-head self-attention with projection matrices
/// `W_q, W_k, W_v, W_o: [h, h]` (no biases, GPT-style).
///
/// Operates on a single sequence `x: [s, h]`; batching is handled by the
/// caller (the paper's experiments use microbatch size 1, and pipeline
/// passes operate per microbatch anyway).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    heads: usize,
}

/// Activations cached by [`MultiHeadAttention::forward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    input: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per-head post-softmax attention probabilities, `[s, s]` each.
    probs: Vec<Tensor>,
    /// Concatenated per-head context `[s, h]` (input of the output proj).
    context: Tensor,
}

impl MultiHeadAttention {
    /// Creates an attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads` (a configuration bug).
    pub fn new(rng: &mut impl Rng, hidden: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden {hidden} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            wq: Param::new(init::gpt(rng, hidden, hidden)),
            wk: Param::new(init::gpt(rng, hidden, hidden)),
            wv: Param::new(init::gpt(rng, hidden, hidden)),
            wo: Param::new(init::gpt(rng, hidden, hidden)),
            heads,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.wq.value().rows()
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn head_dim(&self) -> usize {
        self.hidden() / self.heads
    }

    /// Forward pass over one sequence `x: [s, h]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols() != hidden`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, AttentionCache)> {
        let h = self.hidden();
        if x.cols() != h {
            return Err(TensorError::ShapeMismatch {
                op: "attention",
                lhs: x.shape(),
                rhs: (x.rows(), h),
            });
        }
        let s = x.rows();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let q = x.matmul(self.wq.value())?;
        let k = x.matmul(self.wk.value())?;
        let v = x.matmul(self.wv.value())?;
        let mut context = Tensor::zeros(s, h);
        let mut probs = Vec::with_capacity(self.heads);
        for head in 0..self.heads {
            let c0 = head * hd;
            let c1 = c0 + hd;
            let qh = q.slice_cols(c0, c1)?;
            let kh = k.slice_cols(c0, c1)?;
            let vh = v.slice_cols(c0, c1)?;
            // scores[i][j] = (q_i · k_j) / sqrt(hd), causally masked (j <= i).
            let mut scores = qh.matmul_nt(&kh)?;
            scores.scale_in_place(scale);
            for i in 0..s {
                for j in (i + 1)..s {
                    *scores.at_mut(i, j) = f32::NEG_INFINITY;
                }
            }
            let p = softmax_rows(&scores);
            let ctx_h = p.matmul(&vh)?;
            for i in 0..s {
                context.row_mut(i)[c0..c1].copy_from_slice(ctx_h.row(i));
            }
            probs.push(p);
        }
        let y = context.matmul(self.wo.value())?;
        Ok((
            y,
            AttentionCache {
                input: x.clone(),
                q,
                k,
                v,
                probs,
                context,
            },
        ))
    }

    /// Incremental (decode) forward: attends the `n` new rows of `x` over
    /// the cached prefix plus themselves, appending their projected
    /// keys/values to `kv`.
    ///
    /// Row `i` of the output is **bitwise identical** to row
    /// `kv.len() + i` of [`Self::forward`] run over the concatenated full
    /// sequence: the per-row kernels (projection matmuls, score matmul,
    /// scale, softmax, context matmul) are the same ops in the same order,
    /// and truncating at the causal horizon instead of masking with `−∞`
    /// only removes terms that contribute exactly-zero addends. The serve
    /// runtime's decode-vs-recompute equivalence tests pin this down.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols() != hidden` or
    /// the cache's row width does not match, and
    /// [`TensorError::Exhausted`] if the cache's block pool is bounded and
    /// out of blocks.
    pub fn forward_decode(&self, x: &Tensor, kv: &mut KvCache) -> Result<Tensor> {
        let h = self.hidden();
        if x.cols() != h || kv.hidden() != h {
            return Err(TensorError::ShapeMismatch {
                op: "attention_decode",
                lhs: (x.rows(), x.cols().max(kv.hidden())),
                rhs: (x.rows(), h),
            });
        }
        let n = x.rows();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let q = x.matmul(self.wq.value())?;
        let k = x.matmul(self.wk.value())?;
        let v = x.matmul(self.wv.value())?;
        for i in 0..n {
            kv.append(k.row(i), v.row(i))?;
        }
        let base = kv.len() - n;
        let mut context = Tensor::zeros(n, h);
        for head in 0..self.heads {
            let c0 = head * hd;
            let c1 = c0 + hd;
            for i in 0..n {
                let horizon = base + i + 1; // causal: positions 0..=base+i
                let mut kh = Tensor::zeros(horizon, hd);
                let mut vh = Tensor::zeros(horizon, hd);
                for j in 0..horizon {
                    kh.row_mut(j).copy_from_slice(&kv.k_row(j)[c0..c1]);
                    vh.row_mut(j).copy_from_slice(&kv.v_row(j)[c0..c1]);
                }
                let mut qh = Tensor::zeros(1, hd);
                qh.row_mut(0).copy_from_slice(&q.row(i)[c0..c1]);
                let mut scores = qh.matmul_nt(&kh)?;
                scores.scale_in_place(scale);
                let p = softmax_rows(&scores);
                let ctx = p.matmul(&vh)?;
                context.row_mut(i)[c0..c1].copy_from_slice(ctx.row(0));
            }
        }
        context.matmul(self.wo.value())
    }

    /// Backward pass: accumulates all four weight gradients and returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dy` does not match the
    /// forward output shape.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Result<Tensor> {
        let h = self.hidden();
        let s = cache.input.rows();
        if dy.shape() != (s, h) {
            return Err(TensorError::ShapeMismatch {
                op: "attention_bwd",
                lhs: dy.shape(),
                rhs: (s, h),
            });
        }
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        // Output projection.
        let d_context = dy.matmul_nt(self.wo.value())?;
        let dwo = cache.context.matmul_tn(dy)?;
        self.wo.accumulate(&dwo)?;

        let mut dq = Tensor::zeros(s, h);
        let mut dk = Tensor::zeros(s, h);
        let mut dv = Tensor::zeros(s, h);
        for head in 0..self.heads {
            let c0 = head * hd;
            let c1 = c0 + hd;
            let qh = cache.q.slice_cols(c0, c1)?;
            let kh = cache.k.slice_cols(c0, c1)?;
            let vh = cache.v.slice_cols(c0, c1)?;
            let p = &cache.probs[head];
            let d_ctx_h = d_context.slice_cols(c0, c1)?;
            // ctx = P · V  ⇒  dP = dctx · Vᵀ,  dV = Pᵀ · dctx.
            let dp = d_ctx_h.matmul_nt(&vh)?;
            let dvh = p.matmul_tn(&d_ctx_h)?;
            // Softmax backward per row: dS = P ⊙ (dP − Σ_j dP⊙P).
            let mut ds = Tensor::zeros(s, s);
            for i in 0..s {
                let p_row = p.row(i);
                let dp_row = dp.row(i);
                let dot: f32 = p_row.iter().zip(dp_row).map(|(&a, &b)| a * b).sum();
                for ((o, &pv), &dpv) in ds.row_mut(i).iter_mut().zip(p_row).zip(dp_row) {
                    *o = pv * (dpv - dot);
                }
            }
            // scores = scale · Q Kᵀ  ⇒  dQ = scale · dS · K, dK = scale · dSᵀ · Q.
            let mut dqh = ds.matmul(&kh)?;
            dqh.scale_in_place(scale);
            let mut dkh = ds.matmul_tn(&qh)?;
            dkh.scale_in_place(scale);
            for i in 0..s {
                dq.row_mut(i)[c0..c1].copy_from_slice(dqh.row(i));
                dk.row_mut(i)[c0..c1].copy_from_slice(dkh.row(i));
                dv.row_mut(i)[c0..c1].copy_from_slice(dvh.row(i));
            }
        }

        // Input projections.
        let dwq = cache.input.matmul_tn(&dq)?;
        let dwk = cache.input.matmul_tn(&dk)?;
        let dwv = cache.input.matmul_tn(&dv)?;
        self.wq.accumulate(&dwq)?;
        self.wk.accumulate(&dwk)?;
        self.wv.accumulate(&dwv)?;
        let mut dx = dq.matmul_nt(self.wq.value())?;
        dx.add_assign(&dk.matmul_nt(self.wk.value())?)?;
        dx.add_assign(&dv.matmul_nt(self.wv.value())?)?;
        Ok(dx)
    }

    /// Mutable references to the trainable parameters `[W_q, W_k, W_v, W_o]`.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    /// Immutable view of the query projection `W_q`.
    pub fn wq(&self) -> &Tensor {
        self.wq.value()
    }

    /// Immutable view of the key projection `W_k`.
    pub fn wk(&self) -> &Tensor {
        self.wk.value()
    }

    /// Immutable view of the value projection `W_v`.
    pub fn wv(&self) -> &Tensor {
        self.wv.value()
    }

    /// Immutable view of the output projection `W_o`.
    pub fn wo(&self) -> &Tensor {
        self.wo.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn forward_is_causal() {
        // Changing a future token must not change earlier outputs.
        let mut rng = seeded_rng(21);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x1 = normal(&mut rng, 5, 8, 1.0);
        let mut x2 = x1.clone();
        for v in x2.row_mut(4) {
            *v += 1.0;
        }
        let (y1, _) = attn.forward(&x1).unwrap();
        let (y2, _) = attn.forward(&x2).unwrap();
        for i in 0..4 {
            for c in 0..8 {
                assert!((y1.at(i, c) - y2.at(i, c)).abs() < 1e-6, "row {i} changed");
            }
        }
        assert!(y1
            .row(4)
            .iter()
            .zip(y2.row(4))
            .any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn attention_probs_rows_sum_to_one() {
        let mut rng = seeded_rng(22);
        let attn = MultiHeadAttention::new(&mut rng, 4, 1);
        let x = normal(&mut rng, 3, 4, 1.0);
        let (_, cache) = attn.forward(&x).unwrap();
        for r in 0..3 {
            let sum: f32 = cache.probs[0].row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            // Masked entries are exactly zero.
            for j in (r + 1)..3 {
                assert_eq!(cache.probs[0].at(r, j), 0.0);
            }
        }
    }

    #[test]
    fn input_gradient_checks() {
        let mut rng = seeded_rng(23);
        let attn = MultiHeadAttention::new(&mut rng, 6, 2);
        let x = normal(&mut rng, 4, 6, 0.7);
        let w = normal(&mut rng, 4, 6, 1.0);
        let (_, cache) = attn.forward(&x).unwrap();
        let mut attn2 = attn.clone();
        let dx = attn2.backward(&cache, &w).unwrap();
        let report = check_scalar_fn(&x, &dx, 1e-2, |t| {
            attn.forward(t).unwrap().0.mul(&w).unwrap().sum()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn weight_gradients_check() {
        let mut rng = seeded_rng(24);
        let attn = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = normal(&mut rng, 3, 4, 0.7);
        let (_, cache) = attn.forward(&x).unwrap();
        let mut attn2 = attn.clone();
        attn2.backward(&cache, &Tensor::ones(3, 4)).unwrap();
        // Check W_q and W_o gradients by perturbation.
        for (idx, name) in [(0usize, "wq"), (3usize, "wo")] {
            let analytic = attn2.params_mut()[idx].grad().clone();
            let base = {
                let mut a = attn.clone();
                a.params_mut()[idx].value().clone()
            };
            let report = check_scalar_fn(&base, &analytic, 1e-2, |w| {
                let mut probe = attn.clone();
                *probe.params_mut()[idx].value_mut() = w.clone();
                probe.forward(&x).unwrap().0.sum()
            });
            assert!(report.passes(2e-2), "{name}: {report:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let _ = MultiHeadAttention::new(&mut seeded_rng(0), 6, 4);
    }

    #[test]
    fn decode_is_bitwise_equal_to_full_forward() {
        let mut rng = seeded_rng(77);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = normal(&mut rng, 6, 8, 0.9);
        let (full, _) = attn.forward(&x).unwrap();
        // Token-at-a-time decode over the same sequence.
        let mut kv = KvCache::new(8);
        for i in 0..6 {
            let xi = x.slice_rows(i, i + 1).unwrap();
            let yi = attn.forward_decode(&xi, &mut kv).unwrap();
            for (a, b) in full.row(i).iter().zip(yi.row(0)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged");
            }
        }
        assert_eq!(kv.len(), 6);
        // Chunked decode (multi-row prefill) matches too.
        let mut kv2 = KvCache::new(8);
        let first = x.slice_rows(0, 4).unwrap();
        let rest = x.slice_rows(4, 6).unwrap();
        let y0 = attn.forward_decode(&first, &mut kv2).unwrap();
        let y1 = attn.forward_decode(&rest, &mut kv2).unwrap();
        for i in 0..4 {
            for (a, b) in full.row(i).iter().zip(y0.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk row {i}");
            }
        }
        for i in 0..2 {
            for (a, b) in full.row(4 + i).iter().zip(y1.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "tail row {i}");
            }
        }
    }

    #[test]
    fn decode_is_bitwise_identical_across_kv_block_sizes() {
        // Paged-vs-contiguous equivalence: a one-block pool (block size ≥
        // sequence) is the old contiguous layout; tiny pages that force
        // rows across block boundaries must produce bit-identical output.
        use crate::nn::kv::KvBlockPool;
        let mut rng = seeded_rng(79);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = normal(&mut rng, 7, 8, 0.9);
        let decode_with = |block_tokens: usize| -> Vec<u32> {
            let pool = KvBlockPool::new(8, block_tokens);
            let mut kv = KvCache::with_pool(&pool);
            let mut bits = Vec::new();
            for i in 0..7 {
                let xi = x.slice_rows(i, i + 1).unwrap();
                let yi = attn.forward_decode(&xi, &mut kv).unwrap();
                bits.extend(yi.row(0).iter().map(|v| v.to_bits()));
            }
            bits
        };
        let contiguous = decode_with(64);
        // Block size 2 puts the 7-row context across 4 pages; size 3
        // exercises a partially filled tail page at every boundary shape.
        assert_eq!(decode_with(2), contiguous, "2-token pages diverged");
        assert_eq!(decode_with(3), contiguous, "3-token pages diverged");
    }

    #[test]
    fn decode_attends_across_block_boundaries() {
        // A context longer than one page must still attend to rows in
        // earlier blocks: perturbing a position in the *first* block
        // changes the output of a query in the *second* block.
        use crate::nn::kv::KvBlockPool;
        let mut rng = seeded_rng(80);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x1 = normal(&mut rng, 6, 8, 0.9);
        let mut x2 = x1.clone();
        for v in x2.row_mut(0) {
            *v += 1.0;
        }
        let last_out = |x: &Tensor| {
            let pool = KvBlockPool::new(8, 4); // rows 4..6 spill to block 1
            let mut kv = KvCache::with_pool(&pool);
            let mut last = Vec::new();
            for i in 0..6 {
                let xi = x.slice_rows(i, i + 1).unwrap();
                let yi = attn.forward_decode(&xi, &mut kv).unwrap();
                last = yi.row(0).to_vec();
            }
            assert_eq!(kv.blocks(), 2, "context must straddle a page edge");
            last
        };
        let (a, b) = (last_out(&x1), last_out(&x2));
        assert!(
            a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-6),
            "query in block 1 ignored the perturbed row in block 0"
        );
    }

    #[test]
    fn decode_rejects_mismatched_cache_width() {
        let mut rng = seeded_rng(78);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = normal(&mut rng, 1, 8, 1.0);
        let mut kv = KvCache::new(4);
        assert!(attn.forward_decode(&x, &mut kv).is_err());
    }
}
