use crate::optim::Param;
use crate::{Result, Tensor, TensorError};

/// Layer normalization over the last (column) dimension with learnable
/// gain `γ` and offset `β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

/// Activations cached by [`LayerNorm::forward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over vectors of width `dim` (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::ones(1, dim)),
            beta: Param::new(Tensor::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.gamma.value().cols()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols() != dim`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerNormCache)> {
        let dim = self.dim();
        if x.cols() != dim {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm",
                lhs: x.shape(),
                rhs: (1, dim),
            });
        }
        let rows = x.rows();
        let mut normalized = Tensor::zeros(rows, dim);
        let mut inv_std = vec![0.0f32; rows];
        let mut y = Tensor::zeros(rows, dim);
        let gamma = self.gamma.value().row(0);
        let beta = self.beta.value().row(0);
        let eps = self.eps;
        // Row-parallel: every row's statistics and outputs are independent,
        // so the result is bitwise identical for any thread count.
        crate::pool::par_rows_mut3(
            rows,
            x.len().saturating_mul(8),
            y.data_mut(),
            normalized.data_mut(),
            &mut inv_std,
            |r0, _r1, y_chunk, n_chunk, is_chunk| {
                for (li, is_out) in is_chunk.iter_mut().enumerate() {
                    let row = x.row(r0 + li);
                    let mean = row.iter().sum::<f32>() / dim as f32;
                    let var =
                        row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
                    let is = 1.0 / (var + eps).sqrt();
                    *is_out = is;
                    // One fused pass: per element this is the identical
                    // `n = (v − mean)·is; y = γ·n + β` chain as two
                    // separate loops (same bits), without re-reading the
                    // normalized row from memory.
                    let n_row = &mut n_chunk[li * dim..(li + 1) * dim];
                    let y_row = &mut y_chunk[li * dim..(li + 1) * dim];
                    for (((n, o), &v), (&g, &b)) in n_row
                        .iter_mut()
                        .zip(y_row.iter_mut())
                        .zip(row)
                        .zip(gamma.iter().zip(beta))
                    {
                        let nv = (v - mean) * is;
                        *n = nv;
                        *o = g * nv + b;
                    }
                }
            },
        );
        Ok((
            y,
            LayerNormCache {
                normalized,
                inv_std,
            },
        ))
    }

    /// Backward pass: accumulates `dγ`, `dβ` and returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dy` does not match the
    /// cached activation shape.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Result<Tensor> {
        let dim = self.dim();
        if dy.shape() != cache.normalized.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm_bwd",
                lhs: dy.shape(),
                rhs: cache.normalized.shape(),
            });
        }
        let gamma = self.gamma.value().row(0).to_vec();
        let mut dgamma = Tensor::zeros(1, dim);
        let mut dbeta = Tensor::zeros(1, dim);
        let mut dx = Tensor::zeros(dy.rows(), dim);
        for r in 0..dy.rows() {
            let n_row = cache.normalized.row(r);
            let dy_row = dy.row(r);
            // Parameter gradients.
            for (((dg, db), &n), &g) in dgamma
                .row_mut(0)
                .iter_mut()
                .zip(dbeta.row_mut(0).iter_mut())
                .zip(n_row)
                .zip(dy_row)
            {
                *dg += g * n;
                *db += g;
            }
            // Input gradient: with x̂ the normalized input and
            // dŷ = dy·γ,  dx = inv_std · (dŷ − mean(dŷ) − x̂·mean(dŷ·x̂)).
            let dhat: Vec<f32> = dy_row.iter().zip(&gamma).map(|(&d, &g)| d * g).collect();
            let mean_dhat = dhat.iter().sum::<f32>() / dim as f32;
            let mean_dhat_n =
                dhat.iter().zip(n_row).map(|(&d, &n)| d * n).sum::<f32>() / dim as f32;
            let is = cache.inv_std[r];
            for ((o, &d), &n) in dx.row_mut(r).iter_mut().zip(&dhat).zip(n_row) {
                *o = is * (d - mean_dhat - n * mean_dhat_n);
            }
        }
        self.gamma.accumulate(&dgamma)?;
        self.beta.accumulate(&dbeta)?;
        Ok(dx)
    }

    /// Mutable references to the trainable parameters `[γ, β]`.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn output_rows_are_normalized() {
        let ln = LayerNorm::new(8);
        let x = normal(&mut seeded_rng(3), 4, 8, 2.0);
        let (y, _) = ln.forward(&x).unwrap();
        for r in 0..4 {
            let mean = y.row(r).iter().sum::<f32>() / 8.0;
            let var = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_wrong_width() {
        let ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(1, 5)).is_err());
    }

    #[test]
    fn input_gradient_checks() {
        let mut rng = seeded_rng(5);
        let ln = LayerNorm::new(6);
        let x = normal(&mut rng, 3, 6, 1.0);
        // Weighted sum so the gradient is non-trivial.
        let w = normal(&mut rng, 3, 6, 1.0);
        let (y, cache) = ln.forward(&x).unwrap();
        let dy = w.clone();
        let mut ln2 = ln.clone();
        let dx = ln2.backward(&cache, &dy).unwrap();
        let _ = y;
        let report = check_scalar_fn(&x, &dx, 1e-2, |t| {
            let (out, _) = ln.forward(t).unwrap();
            out.mul(&w).unwrap().sum()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn gamma_beta_gradients_check() {
        let mut rng = seeded_rng(6);
        let x = normal(&mut rng, 3, 5, 1.0);
        let mut ln = LayerNorm::new(5);
        let (y, cache) = ln.forward(&x).unwrap();
        ln.backward(&cache, &Tensor::ones(y.rows(), y.cols()))
            .unwrap();
        let dgamma = ln.params_mut()[0].grad().clone();
        let report = check_scalar_fn(&Tensor::ones(1, 5), &dgamma, 1e-2, |g| {
            let mut probe = LayerNorm::new(5);
            probe.gamma = Param::new(g.clone());
            probe.forward(&x).unwrap().0.sum()
        });
        assert!(report.passes(1e-2), "{report:?}");
        let dbeta = ln.params_mut()[1].grad().clone();
        // dL/dβ under L = sum(y) is the row count for every column.
        assert!(dbeta.data().iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }
}
