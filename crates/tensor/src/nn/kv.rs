//! Paged, arena-backed key/value cache for incremental (decode) attention.
//!
//! Training runs attention over whole sequences, so every forward sees all
//! positions at once. A decode step sees **one new token** per sequence and
//! must attend over everything generated so far; recomputing the full
//! prefix per step is quadratic in context length. The [`KvCache`] keeps
//! one layer's projected keys and values for one sequence, growing as
//! tokens arrive.
//!
//! Storage is *paged*: instead of one contiguous buffer per cache that
//! doubles on growth (2× jumps, copy-on-grow, fragmentation when long and
//! short requests share a pipeline), a [`KvBlockPool`] hands out
//! fixed-size blocks of `block_tokens` rows and each cache keeps a block
//! table — memory grows in O(tokens) pages and a retired request's blocks
//! are immediately reusable by the next admission at any length. Rows are
//! block-aligned (a row never straddles two blocks), so [`KvCache::k_row`]
//! still returns a contiguous slice and the attention kernel is unchanged.
//!
//! Blocks come from the size-class buffer arena ([`crate::alloc`]) — the
//! same pool the training runtime recycles its activations through — and
//! go back to it on [`KvCache::release`], so the arena's free list *is*
//! the block free list: a serving engine that admits and retires many
//! request streams allocates (nearly) zero fresh memory at steady state,
//! and the arena's `outstanding` gauge returns to baseline whenever all
//! requests have retired. A pool may be bounded ([`KvBlockPool::bounded`]):
//! [`KvCache::append`] then reports exhaustion as an error instead of
//! panicking, which the serving engine converts into admission
//! backpressure.

use std::sync::{Arc, Mutex};

use crate::{alloc, Result, TensorError};

/// Default block size (rows per page) used by [`KvCache::new`].
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

#[derive(Debug)]
struct PoolShared {
    hidden: usize,
    block_tokens: usize,
    /// Hard cap on concurrently allocated blocks (`usize::MAX` = unbounded).
    capacity_blocks: usize,
    /// Blocks currently handed out to caches.
    allocated: Mutex<usize>,
}

/// A shared fixed-size block allocator over the buffer arena.
///
/// Cloning the handle shares the pool: all clones draw against the same
/// block capacity. One pool serves every (slot, layer) cache of a device,
/// so the device's total KV memory is capped in *blocks*, not in
/// per-request high-water marks.
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    shared: Arc<PoolShared>,
}

impl KvBlockPool {
    /// Creates an unbounded pool handing out blocks of `block_tokens` rows
    /// of `hidden` floats each.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0` or `block_tokens == 0` (configuration bug).
    pub fn new(hidden: usize, block_tokens: usize) -> Self {
        Self::build(hidden, block_tokens, usize::MAX)
    }

    /// Creates a pool with a hard cap of `capacity_blocks` concurrently
    /// allocated blocks. When the cap is reached, [`KvCache::append`]
    /// returns [`TensorError::Exhausted`] instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0`, `block_tokens == 0` or
    /// `capacity_blocks == 0`.
    pub fn bounded(hidden: usize, block_tokens: usize, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "pool capacity must be positive");
        Self::build(hidden, block_tokens, capacity_blocks)
    }

    fn build(hidden: usize, block_tokens: usize, capacity_blocks: usize) -> Self {
        assert!(hidden > 0, "hidden must be positive");
        assert!(block_tokens > 0, "block size must be positive");
        KvBlockPool {
            shared: Arc::new(PoolShared {
                hidden,
                block_tokens,
                capacity_blocks,
                allocated: Mutex::new(0),
            }),
        }
    }

    /// Row width of every block.
    pub fn hidden(&self) -> usize {
        self.shared.hidden
    }

    /// Rows per block.
    pub fn block_tokens(&self) -> usize {
        self.shared.block_tokens
    }

    /// The block cap, if the pool is bounded.
    pub fn capacity_blocks(&self) -> Option<usize> {
        (self.shared.capacity_blocks != usize::MAX).then_some(self.shared.capacity_blocks)
    }

    /// Blocks currently handed out to caches.
    pub fn allocated_blocks(&self) -> usize {
        *self
            .shared
            .allocated
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Number of blocks needed to hold `tokens` rows — what an admission
    /// controller reserves per request and per layer.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.shared.block_tokens)
    }

    /// Takes one K block and one V block from the arena, each sized (and
    /// zero-filled) to exactly `block_tokens * hidden` floats.
    fn take_pair(&self) -> Result<(Vec<f32>, Vec<f32>)> {
        {
            let mut allocated = self
                .shared
                .allocated
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if *allocated >= self.shared.capacity_blocks {
                return Err(TensorError::Exhausted {
                    resource: "kv block pool",
                    capacity: self.shared.capacity_blocks,
                });
            }
            *allocated += 1;
        }
        let floats = self.shared.block_tokens * self.shared.hidden;
        let mut k = alloc::take_raw(floats);
        let mut v = alloc::take_raw(floats);
        k.resize(floats, 0.0);
        v.resize(floats, 0.0);
        Ok((k, v))
    }

    /// Returns a K/V block pair to the arena and frees its capacity slot.
    fn give_back(&self, k: Vec<f32>, v: Vec<f32>) {
        alloc::release(k);
        alloc::release(v);
        let mut allocated = self
            .shared
            .allocated
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *allocated = allocated.saturating_sub(1);
    }
}

/// One layer's cached keys and values for one sequence, stored as a block
/// table over a [`KvBlockPool`].
///
/// Rows are positions; each row holds `hidden` floats (all heads
/// concatenated, exactly the layout of the projected `K`/`V` matrices in
/// [`crate::nn::MultiHeadAttention`]). Row `i` lives at offset
/// `(i % block_tokens) * hidden` of block `i / block_tokens` — contiguous
/// within its block, so the row accessors are unchanged from the old
/// contiguous layout.
#[derive(Debug)]
pub struct KvCache {
    pool: KvBlockPool,
    k_blocks: Vec<Vec<f32>>,
    v_blocks: Vec<Vec<f32>>,
    len: usize,
}

impl KvCache {
    /// Creates an empty cache for rows of `hidden` floats over a private
    /// unbounded pool with the default block size. No memory is taken from
    /// the arena until the first [`Self::append`].
    pub fn new(hidden: usize) -> Self {
        Self::with_pool(&KvBlockPool::new(hidden, DEFAULT_BLOCK_TOKENS))
    }

    /// Creates an empty cache drawing blocks from a shared pool.
    pub fn with_pool(pool: &KvBlockPool) -> Self {
        KvCache {
            pool: pool.clone(),
            k_blocks: Vec::new(),
            v_blocks: Vec::new(),
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width (hidden size) of the cached keys/values.
    pub fn hidden(&self) -> usize {
        self.pool.hidden()
    }

    /// Blocks currently held by this cache (per side; K and V tables are
    /// always the same length).
    pub fn blocks(&self) -> usize {
        self.k_blocks.len()
    }

    /// Appends one position's key and value rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Exhausted`] if a new block is needed and the
    /// pool's block capacity is spent. The cache is unchanged in that
    /// case — the caller can retry after other requests retire.
    ///
    /// # Panics
    ///
    /// Panics if either row is not `hidden` floats long (caller bug).
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<()> {
        let hidden = self.pool.hidden();
        assert_eq!(k_row.len(), hidden, "key row width mismatch");
        assert_eq!(v_row.len(), hidden, "value row width mismatch");
        let bt = self.pool.block_tokens();
        if self.len == self.k_blocks.len() * bt {
            // The pool takes K and V blocks together, so the tables
            // cannot go out of step on exhaustion.
            let (k, v) = self.pool.take_pair()?;
            self.k_blocks.push(k);
            self.v_blocks.push(v);
        }
        let (block, slot) = (self.len / bt, self.len % bt);
        let at = slot * hidden;
        self.k_blocks[block][at..at + hidden].copy_from_slice(k_row);
        self.v_blocks[block][at..at + hidden].copy_from_slice(v_row);
        self.len += 1;
        Ok(())
    }

    /// Key row at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn k_row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "kv row {i} out of bounds (len {})", self.len);
        let (hidden, bt) = (self.pool.hidden(), self.pool.block_tokens());
        let at = (i % bt) * hidden;
        &self.k_blocks[i / bt][at..at + hidden]
    }

    /// Value row at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn v_row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "kv row {i} out of bounds (len {})", self.len);
        let (hidden, bt) = (self.pool.hidden(), self.pool.block_tokens());
        let at = (i % bt) * hidden;
        &self.v_blocks[i / bt][at..at + hidden]
    }

    /// Forgets all cached positions but keeps the blocks, so the same slot
    /// can serve a new sequence without going back to the pool.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Returns every block to the pool (and through it to the arena). The
    /// cache is empty afterwards and usable again.
    ///
    /// This is what a serving engine calls on request retirement: the
    /// arena's `outstanding` gauge drops back, the pool's capacity slots
    /// free up for admission, and the freed blocks serve the next request.
    pub fn release(&mut self) {
        self.len = 0;
        for (k, v) in self.k_blocks.drain(..).zip(self.v_blocks.drain(..)) {
            self.pool.give_back(k, v);
        }
    }

    /// Approximate bytes currently reserved by the cache's block table.
    pub fn reserved_bytes(&self) -> usize {
        let per_block = self.pool.block_tokens() * self.pool.hidden();
        2 * self.k_blocks.len() * per_block * std::mem::size_of::<f32>()
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut kv = KvCache::new(3);
        assert!(kv.is_empty());
        kv.append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        kv.append(&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]).unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.k_row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(kv.v_row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn growth_preserves_contents_across_block_boundaries() {
        // 100 rows over 16-token pages: 7 blocks, the last partial.
        let mut kv = KvCache::new(4);
        for i in 0..100 {
            let row = [i as f32; 4];
            kv.append(&row, &row).unwrap();
        }
        assert_eq!(kv.blocks(), 100usize.div_ceil(DEFAULT_BLOCK_TOKENS));
        for i in 0..100 {
            assert_eq!(kv.k_row(i)[0], i as f32, "row {i} lost in growth");
            assert_eq!(kv.v_row(i)[3], i as f32, "row {i} lost in growth");
        }
    }

    #[test]
    fn clear_keeps_capacity_release_returns_it() {
        let mut kv = KvCache::new(8);
        for _ in 0..32 {
            kv.append(&[0.5; 8], &[0.5; 8]).unwrap();
        }
        let reserved = kv.reserved_bytes();
        assert!(reserved > 0);
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.reserved_bytes(), reserved, "clear must keep blocks");
        kv.release();
        assert_eq!(kv.reserved_bytes(), 0, "release must drop blocks");
        // The cache stays usable after release.
        kv.append(&[1.0; 8], &[2.0; 8]).unwrap();
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn bounded_pool_exhaustion_is_an_error_not_a_panic() {
        let pool = KvBlockPool::bounded(4, 2, 2);
        let mut kv = KvCache::with_pool(&pool);
        for i in 0..4 {
            kv.append(&[i as f32; 4], &[i as f32; 4]).unwrap();
        }
        // Both blocks are spent; the fifth row needs a third block.
        let err = kv.append(&[9.0; 4], &[9.0; 4]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::Exhausted {
                resource: "kv block pool",
                capacity: 2
            }
        ));
        // The failed append left the cache intact and readable.
        assert_eq!(kv.len(), 4);
        assert_eq!(kv.k_row(3), &[3.0; 4]);
    }

    #[test]
    fn released_blocks_free_pool_capacity_for_the_next_cache() {
        let pool = KvBlockPool::bounded(4, 2, 2);
        let mut a = KvCache::with_pool(&pool);
        for _ in 0..4 {
            a.append(&[1.0; 4], &[1.0; 4]).unwrap();
        }
        assert_eq!(pool.allocated_blocks(), 2);
        let mut b = KvCache::with_pool(&pool);
        assert!(b.append(&[2.0; 4], &[2.0; 4]).is_err(), "pool is full");
        a.release();
        assert_eq!(pool.allocated_blocks(), 0);
        // Retirement freed the slots: the blocked cache can proceed now.
        b.append(&[2.0; 4], &[2.0; 4]).unwrap();
        assert_eq!(b.k_row(0), &[2.0; 4]);
    }

    #[test]
    fn shared_pool_counts_blocks_across_clones_and_drops() {
        let pool = KvBlockPool::new(2, 4);
        let handle = pool.clone();
        let mut kv = KvCache::with_pool(&pool);
        for _ in 0..5 {
            kv.append(&[0.0; 2], &[0.0; 2]).unwrap();
        }
        assert_eq!(handle.allocated_blocks(), 2);
        assert_eq!(handle.blocks_for(5), 2);
        assert_eq!(handle.blocks_for(8), 2);
        assert_eq!(handle.blocks_for(9), 3);
        drop(kv); // Drop releases through the shared pool.
        assert_eq!(handle.allocated_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_row_width_is_rejected() {
        let mut kv = KvCache::new(4);
        let _ = kv.append(&[0.0; 3], &[0.0; 4]);
    }
}
