//! Arena-backed key/value cache for incremental (decode) attention.
//!
//! Training runs attention over whole sequences, so every forward sees all
//! positions at once. A decode step sees **one new token** per sequence and
//! must attend over everything generated so far; recomputing the full
//! prefix per step is quadratic in context length. The [`KvCache`] keeps
//! one layer's projected keys and values for one sequence, growing as
//! tokens arrive.
//!
//! Both backing buffers come from the size-class buffer arena
//! ([`crate::alloc`]) — the same pool the training runtime recycles its
//! activations through — so a serving engine that admits and retires many
//! request streams allocates (nearly) zero fresh memory at steady state:
//! [`KvCache::release`] returns the buffers to the pool on request
//! retirement, and the next admitted request's cache takes them back.
//! Dropping a cache releases its buffers as well.

use crate::alloc;

/// One layer's cached keys and values for one sequence.
///
/// Rows are positions; each row holds `hidden` floats (all heads
/// concatenated, exactly the layout of the projected `K`/`V` matrices in
/// [`crate::nn::MultiHeadAttention`]).
#[derive(Debug, Default)]
pub struct KvCache {
    k: Vec<f32>,
    v: Vec<f32>,
    hidden: usize,
    len: usize,
}

impl KvCache {
    /// Creates an empty cache for rows of `hidden` floats. No memory is
    /// taken from the arena until the first [`Self::append`].
    pub fn new(hidden: usize) -> Self {
        KvCache {
            k: Vec::new(),
            v: Vec::new(),
            hidden,
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width (hidden size) of the cached keys/values.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Grows `buf` (via the arena) so it can hold at least `need` floats.
    fn reserve(buf: &mut Vec<f32>, need: usize) {
        if buf.capacity() >= need {
            return;
        }
        // Take the next size class and migrate; the old buffer goes back
        // to the pool for the next (smaller) cache to pick up.
        let mut grown = alloc::take_raw(need.max(buf.capacity() * 2));
        grown.extend_from_slice(buf);
        alloc::release(std::mem::replace(buf, grown));
    }

    /// Appends one position's key and value rows.
    ///
    /// # Panics
    ///
    /// Panics if either row is not `hidden` floats long (caller bug).
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.hidden, "key row width mismatch");
        assert_eq!(v_row.len(), self.hidden, "value row width mismatch");
        let need = (self.len + 1) * self.hidden;
        Self::reserve(&mut self.k, need);
        Self::reserve(&mut self.v, need);
        self.k.extend_from_slice(k_row);
        self.v.extend_from_slice(v_row);
        self.len += 1;
    }

    /// Key row at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn k_row(&self, i: usize) -> &[f32] {
        &self.k[i * self.hidden..(i + 1) * self.hidden]
    }

    /// Value row at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn v_row(&self, i: usize) -> &[f32] {
        &self.v[i * self.hidden..(i + 1) * self.hidden]
    }

    /// Forgets all cached positions but keeps the backing buffers, so the
    /// same slot can serve a new sequence without re-allocating.
    pub fn clear(&mut self) {
        self.k.clear();
        self.v.clear();
        self.len = 0;
    }

    /// Returns both backing buffers to the arena. The cache is empty
    /// afterwards and usable again (it will re-take from the pool).
    ///
    /// This is what a serving engine calls on request retirement: the
    /// arena's `outstanding` gauge drops back and the freed buffers serve
    /// the next admitted request.
    pub fn release(&mut self) {
        self.len = 0;
        alloc::release(std::mem::take(&mut self.k));
        alloc::release(std::mem::take(&mut self.v));
    }

    /// Approximate bytes currently reserved by the cache.
    pub fn reserved_bytes(&self) -> usize {
        (self.k.capacity() + self.v.capacity()) * std::mem::size_of::<f32>()
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut kv = KvCache::new(3);
        assert!(kv.is_empty());
        kv.append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        kv.append(&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.k_row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(kv.v_row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn growth_preserves_contents() {
        let mut kv = KvCache::new(4);
        for i in 0..100 {
            let row = [i as f32; 4];
            kv.append(&row, &row);
        }
        for i in 0..100 {
            assert_eq!(kv.k_row(i)[0], i as f32, "row {i} lost in growth");
            assert_eq!(kv.v_row(i)[3], i as f32, "row {i} lost in growth");
        }
    }

    #[test]
    fn clear_keeps_capacity_release_returns_it() {
        let mut kv = KvCache::new(8);
        for _ in 0..32 {
            kv.append(&[0.5; 8], &[0.5; 8]);
        }
        let reserved = kv.reserved_bytes();
        assert!(reserved > 0);
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.reserved_bytes(), reserved, "clear must keep buffers");
        kv.release();
        assert_eq!(kv.reserved_bytes(), 0, "release must drop buffers");
        // The cache stays usable after release.
        kv.append(&[1.0; 8], &[2.0; 8]);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_row_width_is_rejected() {
        let mut kv = KvCache::new(4);
        kv.append(&[0.0; 3], &[0.0; 4]);
    }
}
