//! Self-contained deterministic pseudo-random number generation.
//!
//! All randomness in the workspace flows through explicit [`Rng`] instances
//! so that the pipeline-parallel runtime and the single-device reference
//! build *bit-identical* initial weights (a precondition for the paper's
//! convergence-equivalence evaluation, Appendix E). The generator is a
//! SplitMix64 stream: tiny, fast, statistically solid for test-sized draws,
//! and — crucially for an offline-reproducible artifact — implemented here
//! with no external dependencies.

/// Types that can be sampled uniformly from a half-open range by an [`Rng`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Object-safe core of [`Rng`]: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The workspace-wide random-number interface, mirroring the subset of the
/// `rand` crate API the codebase was written against.
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample(self, range.start, range.end)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    fn gen_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for usize {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        // Modulo bias is < 2⁻⁴⁰ for every span in this workspace.
        lo + (rng.next_u64() % (hi - lo) as u64) as usize
    }
}

impl SampleUniform for u64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        lo + rng.next_u64() % (hi - lo)
    }
}

/// The workspace's standard deterministic generator (SplitMix64).
///
/// Named for drop-in compatibility with the `rand::rngs::StdRng` the code
/// was originally written against; the stream itself differs, which is fine
/// because every cross-implementation test asserts *relative* equivalence
/// from shared seeds, never absolute values.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small seeds.
        let mut rng = StdRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        };
        let _ = rng.next_u64();
        rng
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn integer_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }
}
