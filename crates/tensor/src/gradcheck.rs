//! Finite-difference gradient checking.
//!
//! Every manually-derived backward pass in this workspace is validated
//! against a central-difference approximation. This is the safety net that
//! lets us trust the equivalence results between the paper's Algorithms 1/2
//! and the reference implementation.

use crate::Tensor;

/// Result of a gradient check: the largest absolute and relative deviation
/// between the analytic and numeric gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest `|analytic − numeric|` over all coordinates.
    pub max_abs_err: f64,
    /// Largest `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether both deviations are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks the analytic gradient of a scalar-valued function at `x`.
///
/// `f` maps a tensor to a scalar loss; `analytic` is the claimed dL/dx.
/// Uses central differences with step `eps`.
///
/// # Panics
///
/// Panics if `analytic` has a different shape from `x` (a test bug, not a
/// data condition).
pub fn check_scalar_fn(
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    mut f: impl FnMut(&Tensor) -> f64,
) -> GradCheckReport {
    assert_eq!(
        x.shape(),
        analytic.shape(),
        "gradient shape must match input shape"
    );
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut probe = x.clone();
    for i in 0..x.len() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let plus = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let minus = f(&probe);
        probe.data_mut()[i] = orig;
        let numeric = (plus - minus) / (2.0 * eps as f64);
        let a = analytic.data()[i] as f64;
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_for_correct_gradient() {
        // L = sum(x^2), dL/dx = 2x.
        let x = Tensor::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.1]).unwrap();
        let analytic = x.scale(2.0);
        let report = check_scalar_fn(&x, &analytic, 1e-3, |t| {
            t.data().iter().map(|&v| (v as f64) * (v as f64)).sum()
        });
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn check_fails_for_wrong_gradient() {
        let x = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let wrong = x.scale(3.0); // should be 2x
        let report = check_scalar_fn(&x, &wrong, 1e-3, |t| {
            t.data().iter().map(|&v| (v as f64) * (v as f64)).sum()
        });
        assert!(!report.passes(1e-3), "{report:?}");
    }
}
