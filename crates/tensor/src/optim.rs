//! Optimizers operating on [`Param`] (a value + accumulated gradient pair).
//!
//! Pipeline-parallel training keeps each parameter on exactly one device and
//! steps it locally at the end of the iteration, so the optimizer interface
//! is deliberately simple: accumulate gradients during backward passes, then
//! call [`Optimizer::step`] once per parameter.

use crate::{Result, Tensor, TensorError};

/// A trainable parameter: the value tensor plus an accumulated gradient of
/// the same shape and (for Adam) first/second moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    value: Tensor,
    grad: Tensor,
    m: Tensor,
    v: Tensor,
}

impl Param {
    /// Wraps an initialized value tensor into a parameter with zeroed
    /// gradient and moments.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        }
    }

    /// The current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used when loading checkpoints / shards).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable access to the accumulated gradient (used by data-parallel
    /// gradient synchronization before the optimizer step).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Accumulates `g` into the gradient buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `g` has a different shape.
    pub fn accumulate(&mut self, g: &Tensor) -> Result<()> {
        self.grad.add_assign(g)
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// The Adam moment estimates `(m, v)` (for checkpointing).
    pub fn moments(&self) -> (&Tensor, &Tensor) {
        (&self.m, &self.v)
    }

    /// Reconstructs a parameter from checkpointed state (zeroed gradient).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the moments do not match
    /// the value's shape.
    pub fn from_state(value: Tensor, m: Tensor, v: Tensor) -> Result<Self> {
        if m.shape() != value.shape() || v.shape() != value.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "param_from_state",
                lhs: value.shape(),
                rhs: m.shape(),
            });
        }
        let (r, c) = value.shape();
        Ok(Param {
            value,
            grad: Tensor::zeros(r, c),
            m,
            v,
        })
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A first-order optimizer that updates one parameter at a time.
pub trait Optimizer {
    /// Applies one update using the parameter's accumulated gradient, then
    /// clears the gradient.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying tensor arithmetic (which
    /// indicate a bug in the caller's parameter bookkeeping).
    fn step(&mut self, param: &mut Param) -> Result<()>;

    /// Marks the end of an optimization step across all parameters
    /// (advances time-dependent state such as Adam's bias correction).
    fn next_iteration(&mut self);
}

/// Plain stochastic gradient descent: `w ← w − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param: &mut Param) -> Result<()> {
        if param.value.shape() != param.grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sgd_step",
                lhs: param.value.shape(),
                rhs: param.grad.shape(),
            });
        }
        let lr = self.lr;
        for (w, g) in param.value.data_mut().iter_mut().zip(param.grad.data()) {
            *w -= lr * g;
        }
        param.zero_grad();
        Ok(())
    }

    fn next_iteration(&mut self) {}
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
}

impl Adam {
    /// Creates Adam with the given learning rate and default
    /// `(β1, β2, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 1,
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The current bias-correction timestep (for checkpointing).
    pub fn timestep(&self) -> i32 {
        self.t
    }

    /// Restores the bias-correction timestep from a checkpoint.
    pub fn set_timestep(&mut self, t: i32) {
        self.t = t.max(1);
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param: &mut Param) -> Result<()> {
        if param.value.shape() != param.grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "adam_step",
                lhs: param.value.shape(),
                rhs: param.grad.shape(),
            });
        }
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t);
        let bc2 = 1.0 - b2.powi(self.t);
        let lr = self.lr;
        let eps = self.eps;
        let grads = param.grad.data().to_vec();
        for (((w, g), m), v) in param
            .value
            .data_mut()
            .iter_mut()
            .zip(&grads)
            .zip(param.m.data_mut())
            .zip(param.v.data_mut())
        {
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *w -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        param.zero_grad();
        Ok(())
    }

    fn next_iteration(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // d/dw of 0.5 * (w - 3)^2 elementwise.
        p.value().map(|w| w - 3.0)
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Param::new(Tensor::zeros(2, 2));
        let mut opt = Sgd::new(0.5);
        for _ in 0..50 {
            let g = quadratic_grad(&p);
            p.accumulate(&g).unwrap();
            opt.step(&mut p).unwrap();
            opt.next_iteration();
        }
        assert!(p.value().data().iter().all(|&w| (w - 3.0).abs() < 1e-3));
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Param::new(Tensor::zeros(1, 4));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            p.accumulate(&g).unwrap();
            opt.step(&mut p).unwrap();
            opt.next_iteration();
        }
        assert!(p.value().data().iter().all(|&w| (w - 3.0).abs() < 1e-2));
    }

    #[test]
    fn step_clears_gradient() {
        let mut p = Param::new(Tensor::ones(1, 2));
        p.accumulate(&Tensor::ones(1, 2)).unwrap();
        Sgd::new(0.1).step(&mut p).unwrap();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn gradient_accumulation_adds() {
        let mut p = Param::new(Tensor::zeros(1, 2));
        p.accumulate(&Tensor::ones(1, 2)).unwrap();
        p.accumulate(&Tensor::ones(1, 2)).unwrap();
        assert_eq!(p.grad().data(), &[2.0, 2.0]);
        assert!(p.accumulate(&Tensor::ones(2, 2)).is_err());
    }

    #[test]
    fn adam_matches_reference_first_step() {
        // One Adam step from w=0 with g=1 should move by exactly -lr
        // (m_hat = v_hat = g for t=1, ignoring eps).
        let mut p = Param::new(Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        p.accumulate(&Tensor::ones(1, 1)).unwrap();
        opt.step(&mut p).unwrap();
        assert!((p.value().data()[0] + 0.1).abs() < 1e-5);
    }
}
